//! Differential oracle for the crash-safe sharded index store
//! (`tind_core::store`).
//!
//! The store's contract is *byte-identity*: an index packed into any
//! number of shards and loaded back must encode to exactly the bytes of
//! the in-memory build (and of the legacy monolithic index file), and
//! must answer `search`, `search_batch`, and all-pairs discovery
//! identically. The kill sweep then proves the atomic-commit protocol:
//! a pack or repair killed before *every* write/fsync/rename boundary
//! leaves either the previous generation intact or the new one
//! complete — never a readable mix.

mod common;

use std::sync::Arc;

use proptest::prelude::*;
use tind_core::{
    discover_all_pairs, open_store, pack_store, repair_store, verify_store, AllPairsOptions,
    BatchOptions, DatasetDelta, DeltaError, IndexConfig, PackOptions, RepairOptions, StoreError,
    TindIndex,
};
use tind_model::Dataset;
// Only used inside `proptest!` blocks, which the offline shim discards.
#[allow(unused_imports)]
use tind_datagen::{generate, GeneratorConfig};

use common::strategies::{shard_files, world};

fn store_dir(name: &str) -> std::path::PathBuf {
    common::strategies::store_dir("store-roundtrip", name)
}

#[test]
fn roundtrip_is_byte_identical_at_every_shard_count() {
    let (dataset, index, params) = world(3);
    let baseline = tind_core::persist::encode_index(&index);

    // The legacy monolithic file is the third leg of the oracle.
    let legacy = std::env::temp_dir().join("tind-store-roundtrip-tests-legacy.idx");
    tind_core::persist::write_index_file(&index, &legacy).expect("write legacy");
    let from_file =
        tind_core::persist::read_index_file(&legacy, dataset.clone()).expect("read legacy");
    assert_eq!(tind_core::persist::encode_index(&from_file), baseline);

    let queries: Vec<u32> = (0..dataset.len() as u32).step_by(17).collect();
    let expected_single: Vec<Vec<u32>> =
        queries.iter().map(|&q| index.search(q, &params).results).collect();
    let expected_batch = index.search_batch_with(&queries, &params, &BatchOptions::default());
    let expected_pairs =
        discover_all_pairs(&index, &params, &AllPairsOptions::default()).expect("all-pairs").pairs;

    // 0 = the store's own default split.
    for shards in [1usize, 2, 4, 0] {
        let dir = store_dir(&format!("roundtrip-{shards}"));
        let report = pack_store(&index, &dir, &PackOptions { shards, ..Default::default() })
            .expect("pack");
        if shards != 0 {
            assert_eq!(report.shards, shards, "requested shard count honored");
        }
        let (loaded, load) = open_store(&dir, dataset.clone()).expect("open");
        assert!(load.is_clean(), "clean store loads without quarantine: {load:?}");
        assert_eq!(load.shards_total, report.shards);
        assert_eq!(
            tind_core::persist::encode_index(&loaded),
            baseline,
            "{shards}-shard store must round-trip byte-identically"
        );

        for (&q, expected) in queries.iter().zip(&expected_single) {
            assert_eq!(&loaded.search(q, &params).results, expected, "query {q}");
        }
        let batch = loaded.search_batch_with(&queries, &params, &BatchOptions::default());
        for (got, want) in batch.outcomes.iter().zip(&expected_batch.outcomes) {
            assert_eq!(
                got.as_ref().map(|o| &o.results),
                want.as_ref().map(|o| &o.results)
            );
        }
        let pairs = discover_all_pairs(&loaded, &params, &AllPairsOptions::default())
            .expect("all-pairs on loaded")
            .pairs;
        assert_eq!(pairs, expected_pairs);
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_file(&legacy).ok();
}

#[test]
fn pack_killed_at_every_boundary_recovers_to_a_whole_generation() {
    let (dataset, index, _params) = world(5);
    let dir = store_dir("kill-pack");
    pack_store(&index, &dir, &PackOptions { shards: 4, ..Default::default() }).expect("gen 1");
    let baseline = tind_core::persist::encode_index(&index);

    let mut ops = 0u64;
    let completed = loop {
        let options =
            PackOptions { shards: 4, kill_after_ops: Some(ops), ..Default::default() };
        match pack_store(&index, &dir, &options) {
            Err(StoreError::Killed { .. }) => {
                // The torn commit must be invisible: the store still
                // opens clean and byte-identical (the sweep disposes of
                // orphan temps and uncommitted generations).
                let (recovered, report) = open_store(&dir, dataset.clone())
                    .unwrap_or_else(|e| panic!("kill after {ops} ops broke the store: {e}"));
                assert!(report.is_clean(), "kill after {ops} ops left faults: {report:?}");
                assert_eq!(
                    tind_core::persist::encode_index(&recovered),
                    baseline,
                    "kill after {ops} ops changed the readable index"
                );
                ops += 1;
            }
            Ok(report) => break report,
            Err(other) => panic!("kill after {ops} ops: unexpected error {other}"),
        }
        assert!(ops < 10_000, "kill sweep did not terminate");
    };
    assert!(ops > 4, "the sweep must actually have exercised kill points");
    let (final_index, final_report) = open_store(&dir, dataset).expect("final open");
    assert!(final_report.is_clean());
    assert_eq!(final_report.generation, completed.generation);
    assert_eq!(tind_core::persist::encode_index(&final_index), baseline);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_shard_corruption_is_quarantined_and_repair_restores_byte_identity() {
    let (dataset, index, _params) = world(7);
    let baseline = tind_core::persist::encode_index(&index);
    let dir = store_dir("corrupt-each");
    pack_store(&index, &dir, &PackOptions { shards: 4, ..Default::default() }).expect("pack");
    let shards = shard_files(&dir);
    assert_eq!(shards.len(), 4);

    for (id, shard) in shards.iter().enumerate() {
        let pristine = std::fs::read(shard).expect("read shard");
        tind_core::fault::flip_file_byte(shard, pristine.len() / 2).expect("flip");

        // Load side: the bad shard is quarantined, not fatal, and the
        // mask names it.
        let (degraded, report) = open_store(&dir, dataset.clone()).expect("degraded open");
        assert_eq!(report.quarantined.len(), 1, "shard {id}");
        assert_eq!(report.quarantined[0].shard, id);
        let mask = degraded.shard_mask().expect("mask present");
        assert_eq!(mask.quarantined().len(), 1);
        assert!(mask.live_fraction() < 1.0);

        // Verify side: the fault carries expected vs actual CRC.
        let verify = verify_store(&dir).expect("verify runs");
        assert_eq!(verify.faults.len(), 1);
        match &verify.faults[0].error {
            StoreError::ShardCorrupt { shard, expected, actual } => {
                assert_eq!(*shard, id);
                assert_ne!(expected, actual);
            }
            other => panic!("shard {id}: expected ShardCorrupt, got {other}"),
        }

        // Repair rebuilds exactly the lost shard, bound to the manifest
        // digest, and the store is byte-identical again.
        let repaired =
            repair_store(&dir, &dataset, &RepairOptions::default()).expect("repair");
        assert_eq!(repaired.rebuilt, vec![id]);
        assert_eq!(std::fs::read(shard).expect("reread"), pristine, "shard bytes restored");
        let (restored, report) = open_store(&dir, dataset.clone()).expect("restored open");
        assert!(report.is_clean());
        assert_eq!(tind_core::persist::encode_index(&restored), baseline);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repair_killed_at_every_boundary_never_damages_intact_shards() {
    let (dataset, index, _params) = world(9);
    let baseline = tind_core::persist::encode_index(&index);
    let dir = store_dir("kill-repair");
    pack_store(&index, &dir, &PackOptions { shards: 4, ..Default::default() }).expect("pack");
    let victim = &shard_files(&dir)[1];
    let victim_len = std::fs::metadata(victim).expect("len").len() as usize;

    let mut ops = 0u64;
    loop {
        // (Re-)corrupt the victim, then attempt a repair that dies after
        // `ops` primitives.
        tind_core::fault::flip_file_byte(victim, victim_len / 2).expect("flip");
        match repair_store(&dir, &dataset, &RepairOptions { kill_after_ops: Some(ops) }) {
            Err(StoreError::Killed { .. }) => {
                // Crashed mid-repair: the store must still open (possibly
                // degraded), intact shards must be untouched, and a full
                // repair must still converge.
                let (_, report) = open_store(&dir, dataset.clone()).expect("open after kill");
                for fault in &report.quarantined {
                    assert_eq!(fault.shard, 1, "kill after {ops} ops spread damage");
                }
                repair_store(&dir, &dataset, &RepairOptions::default()).expect("full repair");
                ops += 1;
            }
            Ok(report) => {
                assert_eq!(report.rebuilt, vec![1]);
                break;
            }
            Err(other) => panic!("kill after {ops} ops: unexpected error {other}"),
        }
        assert!(ops < 1_000, "repair kill sweep did not terminate");
    }
    assert!(ops > 0, "the sweep must have exercised at least one kill point");
    let (final_index, report) = open_store(&dir, dataset).expect("final open");
    assert!(report.is_clean());
    assert_eq!(tind_core::persist::encode_index(&final_index), baseline);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_shard_masks_its_attributes_and_keeps_live_results_exact() {
    let (dataset, index, params) = world(11);
    let dir = store_dir("masked-results");
    pack_store(&index, &dir, &PackOptions { shards: 4, ..Default::default() }).expect("pack");
    // Lose the second shard (attributes 64..128).
    std::fs::remove_file(&shard_files(&dir)[1]).expect("remove shard");

    let (degraded, report) = open_store(&dir, dataset.clone()).expect("degraded open");
    assert_eq!(report.quarantined.len(), 1);
    let mask = degraded.shard_mask().expect("masked");
    let fault = &report.quarantined[0];
    assert_eq!((fault.attr_start, fault.attr_end), (64, 128));

    let mut compared = 0;
    for q in (0..dataset.len() as u32).step_by(13) {
        if mask.is_masked(q) {
            continue;
        }
        let expected: Vec<u32> = index
            .search(q, &params)
            .results
            .into_iter()
            .filter(|&rhs| !mask.is_masked(rhs))
            .collect();
        let got = degraded.search(q, &params).results;
        assert_eq!(got, expected, "query {q}: live results must stay exact");
        assert!(
            got.iter().all(|&rhs| !mask.is_masked(rhs)),
            "query {q}: masked attributes must never appear in results"
        );
        compared += 1;
    }
    assert!(compared > 5, "the sweep must have compared real queries");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_generations_and_orphan_temps_are_swept() {
    let (dataset, index, _params) = world(13);
    let dir = store_dir("sweep");
    pack_store(&index, &dir, &PackOptions { shards: 2, ..Default::default() }).expect("gen 1");
    let gen1_shards = shard_files(&dir);
    // Plant an orphan temp, as an interrupted writer would leave behind.
    std::fs::write(dir.join("g9-s0.shard.tmp"), b"torn").expect("plant temp");

    let report =
        pack_store(&index, &dir, &PackOptions { shards: 2, ..Default::default() }).expect("gen 2");
    assert_eq!(report.generation, 2);
    assert!(report.swept_temps >= 1, "orphan temp swept: {report:?}");
    assert!(report.swept_stale >= 1, "stale generation swept: {report:?}");
    for old in &gen1_shards {
        assert!(!old.exists(), "stale shard {} must be gone", old.display());
    }
    assert!(!dir.join("g9-s0.shard.tmp").exists());

    let (loaded, load) = open_store(&dir, dataset).expect("open gen 2");
    assert!(load.is_clean());
    assert_eq!(load.generation, 2);
    assert_eq!(
        tind_core::persist::encode_index(&loaded),
        tind_core::persist::encode_index(&index)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_refuses_the_wrong_dataset() {
    let (_, index, _) = world(15);
    let other = Arc::new(generate(&GeneratorConfig::small(200, 16)).dataset);
    let dir = store_dir("wrong-dataset");
    pack_store(&index, &dir, &PackOptions::default()).expect("pack");
    let err = open_store(&dir, other).expect_err("foreign dataset must be refused");
    assert!(
        matches!(err, StoreError::Mismatch(_)),
        "expected a fingerprint mismatch, got {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Successor of `base` with attribute `id`'s history rewritten (valid
/// delta input: same timeline, stable ids, append-only dictionary).
fn rewrite(base: &Arc<Dataset>, id: u32) -> Arc<Dataset> {
    let mut b = (**base).clone().into_builder();
    let name = base.attribute(id).name().to_owned();
    let mut h = tind_model::HistoryBuilder::new(name.as_str());
    let v = b.dictionary_mut().intern(&format!("masked-regression-{id}"));
    h.push(0, vec![v]);
    b.upsert_history(h.finish(base.timeline().last()));
    Arc::new(b.build())
}

/// Regression: `ShardMask` × delta. A degraded index (quarantined store
/// shard) must refuse deltas touching masked attributes with a typed
/// error naming the shard and carrying the `tind store repair` hint, and
/// must refuse to grow at all — while a delta confined to live shards
/// still applies, with live results staying exact.
#[test]
fn degraded_index_refuses_masked_deltas_but_applies_live_ones() {
    let (dataset, index, params) = world(17);
    let dir = store_dir("masked-delta");
    pack_store(&index, &dir, &PackOptions { shards: 4, ..Default::default() }).expect("pack");
    // Lose the second shard (attributes 64..128).
    std::fs::remove_file(&shard_files(&dir)[1]).expect("lose shard");
    let (mut degraded, report) = open_store(&dir, dataset.clone()).expect("degraded open");
    assert_eq!(report.quarantined.len(), 1);

    // Touching an attribute inside the lost range: typed refusal.
    let delta = DatasetDelta::diff(&dataset, rewrite(&dataset, 70)).expect("diff");
    let err = degraded.apply_delta(&delta).expect_err("masked delta must be refused");
    match &err {
        DeltaError::Masked { attr, shard, .. } => {
            assert_eq!(*attr, 70);
            assert_eq!(*shard, 1);
        }
        other => panic!("expected DeltaError::Masked, got {other}"),
    }
    assert!(err.to_string().contains("tind store repair"), "missing repair hint: {err}");

    // Growing a degraded index is refused outright (new columns would
    // have no home in the quarantined layout).
    let mut grower = (*dataset).clone().into_builder();
    let mut h = tind_model::HistoryBuilder::new("masked-regression-appended");
    let v = grower.dictionary_mut().intern("masked-regression-new");
    h.push(3, vec![v]);
    grower.upsert_history(h.finish(dataset.timeline().last()));
    let grow_delta =
        DatasetDelta::diff(&dataset, Arc::new(grower.build())).expect("grow diff");
    let err = degraded.apply_delta(&grow_delta).expect_err("growth must be refused");
    assert!(err.to_string().contains("refusing to grow"), "{err}");

    // A delta confined to live shards applies; the refusals above must
    // not have mutated anything, so it diffs cleanly against the
    // original snapshot.
    let merged = rewrite(&dataset, 5);
    let applied = degraded
        .apply_delta(&DatasetDelta::diff(&dataset, merged.clone()).expect("diff"))
        .expect("live-shard delta applies");
    assert_eq!(applied.touched_attrs, 1);

    // Live results over the merged dataset stay exact: equal to a cold
    // build with masked attributes filtered out.
    let mask = degraded.shard_mask().expect("still degraded");
    let cold = TindIndex::build(merged.clone(), IndexConfig { m: 256, ..IndexConfig::default() });
    let mut compared = 0;
    for q in (0..merged.len() as u32).step_by(13) {
        if mask.is_masked(q) {
            continue;
        }
        let expected: Vec<u32> = cold
            .search(q, &params)
            .results
            .into_iter()
            .filter(|&rhs| !mask.is_masked(rhs))
            .collect();
        assert_eq!(degraded.search(q, &params).results, expected, "query {q}");
        compared += 1;
    }
    assert!(compared > 5, "the sweep must have compared real queries");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized restatement of the kill sweep: any seed, any shard
    /// count, any kill point — a killed pack leaves a store that opens
    /// clean and byte-identical to the committed generation.
    #[test]
    fn prop_killed_pack_never_tears_the_store(
        seed in 0u64..500,
        shards in 1usize..5,
        kill_after in 0u64..40,
    ) {
        let dataset = Arc::new(generate(&GeneratorConfig::small(120, seed)).dataset);
        let config = IndexConfig { m: 128, ..IndexConfig::default() };
        let index = TindIndex::build(dataset.clone(), config);
        let dir = store_dir(&format!("prop-{seed}-{shards}-{kill_after}"));
        pack_store(&index, &dir, &PackOptions { shards, ..Default::default() })
            .expect("gen 1");
        let baseline = tind_core::persist::encode_index(&index);

        let options =
            PackOptions { shards, kill_after_ops: Some(kill_after), ..Default::default() };
        match pack_store(&index, &dir, &options) {
            Err(StoreError::Killed { .. }) | Ok(_) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
        let (recovered, report) = open_store(&dir, dataset).expect("recoverable");
        prop_assert!(report.is_clean());
        prop_assert_eq!(tind_core::persist::encode_index(&recovered), baseline);
        std::fs::remove_dir_all(&dir).ok();
    }
}
