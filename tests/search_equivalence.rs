//! Cross-crate integration tests: the index-based search must be exactly
//! equivalent to brute-force validation over realistic generated datasets,
//! for both directions and across parameter settings.

use std::sync::Arc;

use tind::core::search::brute_force_search;
use tind::core::{reverse::brute_force_reverse, IndexConfig, SliceConfig, TindIndex, TindParams};
use tind::datagen::{generate, GeneratorConfig};
use tind::model::WeightFn;

fn generated(seed: u64, n: usize) -> Arc<tind::model::Dataset> {
    Arc::new(generate(&GeneratorConfig::small(n, seed)).dataset)
}

#[test]
fn forward_search_equals_brute_force_on_generated_data() {
    let dataset = generated(1, 120);
    let index = TindIndex::build(dataset.clone(), IndexConfig { m: 1024, ..IndexConfig::default() });
    let timeline = dataset.timeline();
    let params_list = [
        TindParams::strict(),
        TindParams::paper_default(),
        TindParams::weighted(15.0, 31, WeightFn::constant_one()),
        TindParams::weighted(2.0, 3, WeightFn::exponential(0.999, timeline)),
        TindParams::eps_relaxed(0.02, timeline),
    ];
    for qid in (0..dataset.len() as u32).step_by(7) {
        for params in &params_list {
            let fast = index.search(qid, params).results;
            let brute = brute_force_search(&index, dataset.attribute(qid), Some(qid), params);
            assert_eq!(fast, brute, "query {qid} with {params:?}");
        }
    }
}

#[test]
fn reverse_search_equals_brute_force_on_generated_data() {
    let dataset = generated(2, 100);
    let index = TindIndex::build(dataset.clone(), IndexConfig::reverse_default());
    let params_list = [
        TindParams::strict(),
        TindParams::paper_default(),
        TindParams::weighted(3.0, 2, WeightFn::constant_one()),
    ];
    for qid in (0..dataset.len() as u32).step_by(9) {
        for params in &params_list {
            let fast = index.reverse_search(qid, params).results;
            let brute = brute_force_reverse(&index, dataset.attribute(qid), Some(qid), params);
            assert_eq!(fast, brute, "reverse query {qid} with {params:?}");
        }
    }
}

#[test]
fn growing_relaxation_never_removes_results() {
    let dataset = generated(3, 100);
    let index = TindIndex::build(
        dataset.clone(),
        IndexConfig {
            slices: SliceConfig::search_default(3.0, WeightFn::constant_one(), 31),
            ..IndexConfig::default()
        },
    );
    for qid in (0..dataset.len() as u32).step_by(11) {
        let mut prev: Option<Vec<u32>> = None;
        for eps in [0.0, 1.0, 3.0, 9.0, 27.0] {
            let results =
                index.search(qid, &TindParams::weighted(eps, 7, WeightFn::constant_one())).results;
            if let Some(prev) = &prev {
                for id in prev {
                    assert!(results.contains(id), "ε growth lost result {id} for query {qid}");
                }
            }
            prev = Some(results);
        }
        let mut prev: Option<Vec<u32>> = None;
        for delta in [0u32, 3, 7, 15, 31] {
            let results =
                index.search(qid, &TindParams::weighted(3.0, delta, WeightFn::constant_one())).results;
            if let Some(prev) = &prev {
                for id in prev {
                    assert!(results.contains(id), "δ growth lost result {id} for query {qid}");
                }
            }
            prev = Some(results);
        }
    }
}

#[test]
fn index_configuration_does_not_change_results() {
    // Whatever m, k, or strategy: the result set is identical — the index
    // only prunes, the validator decides.
    let dataset = generated(4, 90);
    let params = TindParams::paper_default();
    let baseline = {
        let index = TindIndex::build(dataset.clone(), IndexConfig::default());
        (0..dataset.len() as u32).map(|q| index.search(q, &params).results).collect::<Vec<_>>()
    };
    for config in [
        IndexConfig { m: 64, ..IndexConfig::default() },
        IndexConfig { m: 8192, k_hashes: 3, ..IndexConfig::default() },
        IndexConfig {
            slices: SliceConfig {
                k: 2,
                strategy: tind::core::SliceStrategy::WeightedRandom,
                sizing_eps: 3.0,
                sizing_weights: WeightFn::constant_one(),
                max_delta: 7,
                expanded_disjoint: true,
                start_stride: 8,
                attr_sample: 16,
            },
            ..IndexConfig::default()
        },
        IndexConfig { seed: 0xDEAD_BEEF, ..IndexConfig::default() },
    ] {
        let index = TindIndex::build(dataset.clone(), config);
        for (q, expected) in baseline.iter().enumerate() {
            let got = index.search(q as u32, &params).results;
            assert_eq!(&got, expected, "query {q} differs under alternate index config");
        }
    }
}

#[test]
fn planted_pairs_are_found_by_generous_search() {
    let g = generate(&GeneratorConfig::small(120, 5));
    let dataset = Arc::new(g.dataset);
    let index = TindIndex::build(
        dataset.clone(),
        IndexConfig {
            slices: SliceConfig::search_default(200.0, WeightFn::constant_one(), 45),
            ..IndexConfig::default()
        },
    );
    let generous = TindParams::weighted(200.0, 45, WeightFn::constant_one());
    for &(lhs, rhs) in g.truth.genuine_pairs() {
        // Renamed pairs are deliberately undiscoverable without σ-partial
        // containment; see tests/partial_recovery.rs.
        if matches!(g.truth.kind(lhs), tind::datagen::AttrKind::Derived { renamed: true, .. }) {
            continue;
        }
        let results = index.search(lhs, &generous).results;
        assert!(
            results.contains(&rhs),
            "planted pair ({lhs}, {rhs}) not found by generous search"
        );
    }
}
