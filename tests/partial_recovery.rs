//! Cross-crate test of the σ-partial extension: planted pairs whose
//! entity was renamed (§3.3) are invisible to exact tIND search at any
//! grid setting, but σ-partial search recovers them.

use std::sync::Arc;

use tind::core::partial::{partial_search, PartialParams};
use tind::core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind::datagen::{generate, AttrKind, GeneratorConfig};
use tind::model::WeightFn;

#[test]
fn sigma_partial_search_recovers_renamed_pairs() {
    // Crank the rename fraction so the test has material to work with.
    let mut cfg = GeneratorConfig::small(150, 77);
    cfg.rename_fraction = 0.5;
    let g = generate(&cfg);
    let dataset = Arc::new(g.dataset.clone());
    let index = TindIndex::build(
        dataset.clone(),
        IndexConfig {
            slices: SliceConfig::search_default(200.0, WeightFn::constant_one(), 45),
            ..IndexConfig::default()
        },
    );
    let generous = TindParams::weighted(60.0, 45, WeightFn::constant_one());

    let renamed: Vec<u32> =
        g.truth.ids_where(|k| matches!(k, AttrKind::Derived { renamed: true, .. }));
    assert!(renamed.len() >= 10, "only {} renamed attributes generated", renamed.len());

    let mut exact_hits = 0usize;
    let mut partial_hits = 0usize;
    let mut eligible = 0usize;
    for &lhs in &renamed {
        let AttrKind::Derived { source, .. } = g.truth.kind(lhs) else { unreachable!() };
        // The rename only bites if the attribute lives long enough for the
        // event to fire; the generator skips very short lives.
        let has_rename = g
            .dataset
            .attribute(lhs)
            .value_universe()
            .iter()
            .any(|&v| g.dataset.dictionary().resolve(v).starts_with("renamed-entity:"));
        // Long-lived attributes only: the rename lands in the first
        // quarter of life, so lifespan ≥ 300 guarantees a violation tail
        // far beyond the ε = 60 budget.
        if !has_rename || g.dataset.attribute(lhs).lifespan() < 300 {
            continue;
        }
        eligible += 1;
        if index.search(lhs, &generous).results.contains(&source) {
            exact_hits += 1;
        }
        let sigma = PartialParams::new(generous.clone(), 0.85);
        if partial_search(&index, lhs, &sigma).results.contains(&source) {
            partial_hits += 1;
        }
    }
    assert!(eligible >= 5, "only {eligible} renames materialized");
    assert_eq!(exact_hits, 0, "exact search must miss renamed pairs (permanent violation)");
    assert!(
        partial_hits * 10 >= eligible * 8,
        "σ-partial recovered only {partial_hits}/{eligible} renamed pairs"
    );
}

#[test]
fn renamed_pairs_do_not_break_the_rest_of_the_truth() {
    let mut cfg = GeneratorConfig::small(100, 13);
    cfg.rename_fraction = 0.3;
    let g = generate(&cfg);
    let tl = g.dataset.timeline();
    let generous = TindParams::weighted(200.0, 45, WeightFn::constant_one());
    for &(lhs, rhs) in g.truth.genuine_pairs() {
        if matches!(g.truth.kind(lhs), AttrKind::Derived { renamed: true, .. }) {
            continue;
        }
        assert!(
            tind::core::validate::validate(
                g.dataset.attribute(lhs),
                g.dataset.attribute(rhs),
                &generous,
                tl
            ),
            "non-renamed planted pair ({lhs}, {rhs}) must still validate"
        );
    }
}
