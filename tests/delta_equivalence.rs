//! Differential delta-oracle for semi-naive incremental maintenance
//! (`core::delta`).
//!
//! The contract under test: an index maintained through a randomized
//! schedule of page-granular deltas is indistinguishable from a cold
//! rebuild over the merged dataset — for `search`, `search_batch` at
//! worker counts {1, N}, `reverse_search`, and all-pairs discovery
//! (`refresh_pairs`, also at {1, N}) — and where data-dependent slice
//! selection may drift (the weighted-random reverse strategy),
//! `compact()` restores byte-identity. The serve layer's
//! `Engine::apply_delta` then inherits the same oracle: a store-backed
//! engine flips to a new committed generation, and a degraded engine
//! refuses deltas until repaired.

mod common;

use std::collections::BTreeSet;
use std::sync::Arc;

use common::strategies::{shard_files, world};
use tind_core::persist::encode_index;
use tind_core::{
    discover_all_pairs, open_store, pack_store, refresh_pairs, repair_store, AllPairsOptions,
    BatchOptions, DatasetDelta, IndexConfig, PackOptions, RepairOptions, TindIndex,
};
use tind_model::{Dataset, HistoryBuilder, ValueId};
use tind_serve::Engine;

/// Deterministic split-mix style generator: the schedule must be
/// reproducible everywhere (no `rand` dependency, identical under the
/// offline harness and cargo).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One page-granular update batch: rewrites `rewrites` randomly chosen
/// existing attributes with fresh version runs and appends `appends` new
/// attributes. Returns a valid successor (same timeline, stable ids,
/// append-only dictionary), exactly what `tind update` produces from a
/// delta dump.
fn evolve(base: &Dataset, rng: &mut Rng, rewrites: usize, appends: usize, step: usize) -> Arc<Dataset> {
    let tl = base.timeline();
    let mut b = base.clone().into_builder();
    let mut chosen: BTreeSet<u32> = BTreeSet::new();
    while chosen.len() < rewrites {
        chosen.insert(rng.below(base.len() as u64) as u32);
    }
    let names: Vec<String> =
        chosen.iter().map(|&id| base.attribute(id).name().to_owned()).collect();
    for (i, name) in names.iter().enumerate() {
        let mut h = HistoryBuilder::new(name.as_str());
        let mut day = rng.below(u64::from(tl.len()) / 2) as u32;
        for _ in 0..=rng.below(3) {
            let width = rng.below(5) as usize;
            let values: Vec<ValueId> = (0..width)
                .map(|_| {
                    if rng.below(2) == 0 {
                        // An id the base dictionary already interned.
                        rng.below(10) as ValueId
                    } else {
                        b.dictionary_mut().intern(&format!("delta-{step}-{i}-{}", rng.below(24)))
                    }
                })
                .collect();
            h.push(day, values);
            day += 1 + rng.below(8) as u32;
            if day > tl.last() {
                break;
            }
        }
        b.upsert_history(h.finish(tl.last()));
    }
    for n in 0..appends {
        let mut h = HistoryBuilder::new(format!("delta-attr-{step}-{n}"));
        let v = b.dictionary_mut().intern(&format!("delta-{step}-new-{n}"));
        h.push(rng.below(u64::from(tl.len())) as u32, vec![v, rng.below(10) as ValueId]);
        b.upsert_history(h.finish(tl.last()));
    }
    Arc::new(b.build())
}

fn pair_set(index: &TindIndex, params: &tind_core::TindParams) -> BTreeSet<(u32, u32)> {
    discover_all_pairs(index, params, &AllPairsOptions { threads: 2, ..Default::default() })
        .expect("all-pairs")
        .pairs
        .into_iter()
        .collect()
}

/// The tentpole oracle: three-step randomized schedules, two seeds, every
/// query surface compared against cold rebuilds of the merged dataset.
#[test]
fn randomized_delta_schedules_match_cold_rebuilds() {
    for seed in [21u64, 77] {
        let (base, mut forward, params) = world(seed);
        let forward_config = IndexConfig { m: 256, ..IndexConfig::default() };
        let mut reverse = TindIndex::build(base.clone(), IndexConfig::reverse_default());
        let mut pairs = pair_set(&forward, &params);
        let mut current = base;
        let mut rng = Rng(seed ^ 0xde17a);

        for step in 0..3usize {
            let rewrites = 1 + rng.below(4) as usize;
            let appends = rng.below(3) as usize;
            let next = evolve(&current, &mut rng, rewrites, appends, step);
            let delta = DatasetDelta::diff(&current, next.clone()).expect("valid successor");
            assert_eq!(delta.touched().len(), rewrites + appends, "seed {seed} step {step}");

            forward.apply_delta(&delta).expect("forward apply");
            reverse.apply_delta(&delta).expect("reverse apply");
            let cold_forward = TindIndex::build(next.clone(), forward_config.clone());
            let cold_reverse = TindIndex::build(next.clone(), IndexConfig::reverse_default());

            // Forward-default slicing is data-independent, so incremental
            // maintenance must keep the *encoding* byte-identical, not
            // just the answers.
            assert_eq!(
                encode_index(&forward),
                encode_index(&cold_forward),
                "seed {seed} step {step}: forward index diverged from cold build"
            );

            // Every query surface answers exactly like the cold build —
            // including against the reverse index, whose drifted slices
            // may differ byte-wise but must never change results.
            let queries: Vec<u32> = (0..next.len() as u32).step_by(9).collect();
            for &q in &queries {
                assert_eq!(
                    forward.search(q, &params).results,
                    cold_forward.search(q, &params).results,
                    "seed {seed} step {step} query {q}"
                );
                assert_eq!(
                    reverse.reverse_search(q, &params).results,
                    cold_reverse.reverse_search(q, &params).results,
                    "seed {seed} step {step} reverse query {q}"
                );
            }
            for threads in [1usize, 4] {
                let options = BatchOptions { threads, ..Default::default() };
                let live = forward.search_batch_with(&queries, &params, &options);
                let cold = cold_forward.search_batch_with(&queries, &params, &options);
                for (got, want) in live.outcomes.iter().zip(&cold.outcomes) {
                    assert_eq!(
                        got.as_ref().map(|o| &o.results),
                        want.as_ref().map(|o| &o.results),
                        "seed {seed} step {step} threads {threads}"
                    );
                }
            }

            // Semi-naive all-pairs maintenance equals cold discovery, and
            // is worker-count independent.
            let mut pairs_parallel = pairs.clone();
            refresh_pairs(&forward, &mut pairs, delta.touched(), &params, 1);
            refresh_pairs(&forward, &mut pairs_parallel, delta.touched(), &params, 4);
            assert_eq!(pairs, pairs_parallel, "seed {seed} step {step}: thread-count dependence");
            assert_eq!(
                pairs,
                pair_set(&cold_forward, &params),
                "seed {seed} step {step}: maintained pair set diverged"
            );

            current = next;
        }

        // Compaction realigns the reverse index's data-dependent slices
        // with a from-scratch build, byte for byte.
        let cold_reverse = TindIndex::build(current.clone(), IndexConfig::reverse_default());
        assert_eq!(encode_index(&reverse.compact()), encode_index(&cold_reverse));
        let cold_forward = TindIndex::build(current, forward_config);
        assert_eq!(encode_index(&forward.compact()), encode_index(&cold_forward));
    }
}

/// A store-backed engine flips its store to a freshly committed
/// generation before swapping the hot index: the directory afterwards
/// opens clean against the merged dataset and holds exactly the bytes
/// the engine serves.
#[test]
fn engine_apply_delta_flips_the_store_generation_atomically() {
    let (base, index, _) = world(33);
    let dir = common::strategies::store_dir("delta-equivalence", "engine-flip");
    pack_store(&index, &dir, &PackOptions { shards: 4, ..Default::default() }).expect("pack");
    let (engine, report) =
        Engine::from_store(&dir, base.clone(), 3.0, 7, None, 0).expect("from_store");
    assert!(report.is_clean());

    let merged = evolve(&base, &mut Rng(0xfeed), 3, 2, 0);
    let outcome = engine.apply_delta(merged.clone()).expect("delta applies");
    assert_eq!(outcome.index.touched_attrs, 5);
    assert_eq!(outcome.index.new_attrs, 2);
    assert_eq!(outcome.store_generation, Some(2), "store must advance one generation");

    let (reloaded, load) = open_store(&dir, merged).expect("flipped store opens");
    assert!(load.is_clean(), "flip left faults: {load:?}");
    assert_eq!(load.generation, 2);
    assert_eq!(
        encode_index(&reloaded),
        encode_index(&engine.forward()),
        "store bytes must match the hot index"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A degraded engine (quarantined store shard) refuses every delta with a
/// repair hint — updating around the hole would silently diverge the hot
/// index from the manifest digests — and accepts the same delta after
/// repair + promotion.
#[test]
fn degraded_engine_refuses_deltas_until_repaired() {
    let (base, index, _) = world(35);
    let dir = common::strategies::store_dir("delta-equivalence", "degraded-refusal");
    pack_store(&index, &dir, &PackOptions { shards: 4, ..Default::default() }).expect("pack");
    let shard = &shard_files(&dir)[2];
    let len = std::fs::metadata(shard).expect("len").len() as usize;
    tind_core::fault::flip_file_byte(shard, len / 2).expect("flip");

    let (engine, report) =
        Engine::from_store(&dir, base.clone(), 3.0, 7, None, 0).expect("degraded open");
    assert_eq!(report.quarantined.len(), 1);
    assert!(engine.is_degraded());

    let merged = evolve(&base, &mut Rng(0xbeef), 2, 1, 0);
    let err = engine.apply_delta(merged.clone()).expect_err("degraded engine must refuse");
    assert!(err.contains("quarantined"), "{err}");
    assert!(err.contains("repair"), "refusal must carry the repair hint: {err}");

    repair_store(&dir, &base, &RepairOptions::default()).expect("repair");
    assert!(engine.try_promote(), "repaired store must promote");
    let outcome = engine.apply_delta(merged).expect("post-repair delta applies");
    assert_eq!(outcome.store_generation, Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
