//! Differential suite for the plan-based validation kernel: on random and
//! generated histories, `QueryPlan` + `ValidationScratch` must produce the
//! same verdicts as both reference tiers (`violation_weight` and
//! `naive_violation_weight`) across {δ, ε, weight-fn} grids — including
//! when the two-sided early exit fires.
//!
//! Plain `#[test]`s run everywhere (cargo and the offline harness); the
//! `proptest!` block additionally fuzzes raw version structures under real
//! `cargo test`.

mod common;

use proptest::prelude::*;
use std::sync::Arc;

use common::strategies::{dataset_of, weight_grid};
// Only expanded inside `proptest!` blocks, which the offline shim discards.
#[allow(unused_imports)]
use common::strategies::history_strategy;
use tind::core::validate::{
    naive_validate, naive_violation_weight, validate, violation_weight, QueryPlan,
    ValidationScratch,
};
use tind::core::TindParams;
use tind::datagen::{generate, GeneratorConfig};
use tind::model::{Timeline, WeightFn};

/// Asserts the kernel agrees with both reference tiers on one pair under
/// one parameter setting: exact violation weight (no early exit) and
/// verdict (early exits enabled).
fn assert_kernel_matches(
    q: &tind::model::AttributeHistory,
    a: &tind::model::AttributeHistory,
    params: &TindParams,
    tl: Timeline,
    scratch: &mut ValidationScratch,
) {
    let plan = QueryPlan::new(q, params, tl);
    let exact = plan.violation_weight(a, scratch);
    let legacy = violation_weight(q, a, params, tl, false);
    let naive = naive_violation_weight(q, a, params, tl);
    assert!(
        (exact - legacy).abs() < 1e-9,
        "{}⊆{} {params:?}: plan {exact} vs legacy {legacy}",
        q.name(),
        a.name()
    );
    assert!(
        (exact - naive).abs() < 1e-9,
        "{}⊆{} {params:?}: plan {exact} vs naive {naive}",
        q.name(),
        a.name()
    );
    let verdict = plan.validate(a, scratch);
    assert_eq!(verdict, validate(q, a, params, tl), "{}⊆{} {params:?}", q.name(), a.name());
    assert_eq!(verdict, naive_validate(q, a, params, tl), "{}⊆{} {params:?}", q.name(), a.name());
}

#[test]
fn kernel_matches_references_on_generated_data() {
    let dataset = Arc::new(generate(&GeneratorConfig::small(40, 11)).dataset);
    let tl = dataset.timeline();
    let mut scratch = ValidationScratch::new();
    for qid in (0..dataset.len() as u32).step_by(5) {
        let q = dataset.attribute(qid);
        for aid in (1..dataset.len() as u32).step_by(7) {
            let a = dataset.attribute(aid);
            for delta in [0u32, 3, 14] {
                for eps in [0.0, 3.0, 30.0] {
                    for w in weight_grid(tl) {
                        // Scale ε for normalized weight families so both
                        // verdict outcomes stay reachable.
                        let eps = if matches!(w, WeightFn::Constant { .. }) {
                            eps
                        } else {
                            eps / tl.len() as f64
                        };
                        let params = TindParams::weighted(eps, delta, w);
                        assert_kernel_matches(q, a, &params, tl, &mut scratch);
                    }
                }
            }
        }
    }
    assert!(scratch.counters().validations > 0);
    assert_eq!(scratch.counters().invariant_breaches, 0);
}

#[test]
fn prove_valid_early_exit_verdicts_equal_exhaustive_evaluation() {
    let dataset = Arc::new(generate(&GeneratorConfig::small(30, 23)).dataset);
    let tl = dataset.timeline();
    let mut scratch = ValidationScratch::new();
    // Budgets near the full timeline weight make the prove-valid exit hot;
    // the verdict must still match the exhaustive reference exactly.
    let before = scratch.counters();
    for qid in (0..dataset.len() as u32).step_by(3) {
        let q = dataset.attribute(qid);
        for eps in [50.0, 200.0, 2000.0] {
            let params = TindParams::weighted(eps, 7, WeightFn::constant_one());
            let plan = QueryPlan::new(q, &params, tl);
            for aid in (0..dataset.len() as u32).step_by(4) {
                let a = dataset.attribute(aid);
                assert_eq!(
                    plan.validate(a, &mut scratch),
                    naive_validate(q, a, &params, tl),
                    "query {qid} candidate {aid} ε={eps}"
                );
            }
        }
    }
    let exits = scratch.counters().since(&before);
    assert!(
        exits.proved_valid_early > 0,
        "generous budgets never triggered the prove-valid exit ({exits:?})"
    );
}

#[test]
fn scratch_reuse_over_many_pairs_is_deterministic() {
    let dataset = Arc::new(generate(&GeneratorConfig::small(25, 7)).dataset);
    let tl = dataset.timeline();
    let params = TindParams::paper_default();
    let run = || {
        let mut scratch = ValidationScratch::new();
        let mut verdicts = Vec::new();
        for qid in 0..dataset.len() as u32 {
            let plan = QueryPlan::new(dataset.attribute(qid), &params, tl);
            for aid in 0..dataset.len() as u32 {
                verdicts.push(plan.validate(dataset.attribute(aid), &mut scratch));
            }
        }
        (verdicts, scratch.counters())
    };
    let (v1, c1) = run();
    let (v2, c2) = run();
    assert_eq!(v1, v2);
    assert_eq!(c1, c2, "counters are deterministic for a fixed workload");
}

#[test]
fn handcrafted_edge_histories_agree_across_all_tiers() {
    // Late appearance, early disappearance, empty versions, value churn —
    // the structural edges the three-stream merge must get right.
    let d = dataset_of(vec![
        vec![(0, vec![0, 1])],
        vec![(5, vec![0]), (20, vec![]), (40, vec![0, 1, 2])],
        vec![(0, vec![3]), (30, vec![0, 1, 3])],
        vec![(59, vec![0, 1])],
        vec![(10, vec![2]), (11, vec![0, 2]), (12, vec![1, 2])],
    ]);
    let tl = d.timeline();
    let mut scratch = ValidationScratch::new();
    for qid in 0..d.len() as u32 {
        for aid in 0..d.len() as u32 {
            for delta in [0u32, 1, 5, 30, 200] {
                for eps in [0.0, 2.0, 25.0] {
                    for w in weight_grid(tl) {
                        let params = TindParams::weighted(eps, delta, w);
                        assert_kernel_matches(
                            d.attribute(qid),
                            d.attribute(aid),
                            &params,
                            tl,
                            &mut scratch,
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The kernel must agree with both references on arbitrary version
    /// structures × {δ, ε, weight-fn}, exact weights and verdicts alike.
    #[test]
    fn kernel_equals_references_on_random_histories(
        q in history_strategy!(),
        a in history_strategy!(),
        delta in 0u32..20,
        eps in 0.0f64..10.0,
        weight_sel in 0usize..5,
    ) {
        let d = dataset_of(vec![q, a]);
        let tl = d.timeline();
        let weights = weight_grid(tl).swap_remove(weight_sel);
        let params = TindParams::weighted(eps, delta, weights);
        let mut scratch = ValidationScratch::new();
        let plan = QueryPlan::new(d.attribute(0), &params, tl);

        let exact = plan.violation_weight(d.attribute(1), &mut scratch);
        let naive = naive_violation_weight(d.attribute(0), d.attribute(1), &params, tl);
        prop_assert!((exact - naive).abs() < 1e-9, "plan {exact} vs naive {naive}");

        // Verdict with early exits enabled equals the exhaustive verdict.
        prop_assert_eq!(
            plan.validate(d.attribute(1), &mut scratch),
            params.within_budget(naive)
        );
        prop_assert_eq!(scratch.counters().invariant_breaches, 0);
    }

    /// Reflexivity survives the kernel under every weight family.
    #[test]
    fn kernel_reflexivity(
        q in history_strategy!(),
        delta in 0u32..10,
        eps in 0.0f64..5.0,
        weight_sel in 0usize..5,
    ) {
        let d = dataset_of(vec![q]);
        let tl = d.timeline();
        let params = TindParams::weighted(eps, delta, weight_grid(tl).swap_remove(weight_sel));
        let plan = QueryPlan::new(d.attribute(0), &params, tl);
        let mut scratch = ValidationScratch::new();
        prop_assert!(plan.validate(d.attribute(0), &mut scratch));
    }
}
