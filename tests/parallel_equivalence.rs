//! Differential oracles for the parallel kernels.
//!
//! Two contracts are pinned here, across crate boundaries and realistic
//! generated data:
//!
//! * **Parallel build determinism** — `TindIndex::build_with` must produce
//!   a *byte-identical* serialized index to the sequential
//!   `TindIndex::build` for every thread count (the serialized form covers
//!   every matrix bit, the cached universes, and the slice intervals, so
//!   byte equality is the strongest equivalence we can state).
//! * **Batch/search equivalence** — `search_batch` must return exactly the
//!   per-query `search` outcomes (results *and* stage statistics), which in
//!   turn must agree with the `naive_validate` ground truth.

use tind::core::persist::encode_index;
use tind::core::validate::naive_validate;
use tind::core::{BatchOptions, BuildOptions, CancelToken, IndexConfig, TindIndex, TindParams};
use tind::model::{MemoryBudget, WeightFn};
use tind_bench::{bench_dataset, bench_query_batches};

fn thread_counts() -> Vec<usize> {
    let cpus = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut counts = vec![1, 2, 7, cpus];
    counts.dedup();
    counts
}

#[test]
fn parallel_build_is_byte_identical_for_every_thread_count() {
    let dataset = bench_dataset(130, 9);
    for config in [
        IndexConfig { m: 512, ..IndexConfig::default() },
        IndexConfig { m: 256, ..IndexConfig::reverse_default() },
    ] {
        let baseline = encode_index(&TindIndex::build(dataset.clone(), config.clone()));
        for threads in thread_counts() {
            let options = BuildOptions { threads, ..BuildOptions::default() };
            let parallel = encode_index(&TindIndex::build_with(
                dataset.clone(),
                config.clone(),
                &options,
            ));
            assert!(
                baseline == parallel,
                "build with {threads} thread(s) diverged from the sequential oracle \
                 (m={}, reverse={})",
                config.m,
                config.build_reverse,
            );
        }
    }
}

#[test]
fn memory_starved_parallel_build_is_still_byte_identical() {
    let dataset = bench_dataset(90, 13);
    let config = IndexConfig { m: 512, ..IndexConfig::default() };
    let baseline = encode_index(&TindIndex::build(dataset.clone(), config.clone()));
    // A zero budget sheds every extra worker; the degraded build must not
    // change a single byte, only its parallelism.
    let options = BuildOptions {
        threads: 8,
        memory_budget: Some(MemoryBudget::new(0)),
        ..BuildOptions::default()
    };
    let starved = encode_index(&TindIndex::build_with(dataset.clone(), config, &options));
    assert!(baseline == starved, "memory-starved build diverged from the sequential oracle");
}

#[test]
fn search_batch_equals_per_query_search_and_ground_truth() {
    let dataset = bench_dataset(120, 11);
    let index =
        TindIndex::build(dataset.clone(), IndexConfig { m: 1024, ..IndexConfig::default() });
    let timeline = dataset.timeline();
    let batches = bench_query_batches(dataset.len(), 16, 3);
    let params_list = [
        TindParams::strict(),
        TindParams::paper_default(),
        TindParams::weighted(15.0, 31, WeightFn::constant_one()),
    ];
    for params in &params_list {
        for (bi, batch) in batches.iter().enumerate() {
            let outcomes = index.search_batch(batch, params);
            assert_eq!(outcomes.len(), batch.len());
            for (&qid, batched) in batch.iter().zip(&outcomes) {
                let single = index.search(qid, params);
                assert_eq!(
                    batched.results, single.results,
                    "batch {bi} query {qid} results diverged ({params:?})"
                );
                assert_eq!(
                    batched.stats, single.stats,
                    "batch {bi} query {qid} stats diverged ({params:?})"
                );
            }
        }
        // Ground truth on the first batch only (naive validation walks the
        // whole timeline per pair — quadratic, so keep it bounded).
        let batch = &batches[0];
        for (&qid, batched) in batch.iter().zip(index.search_batch(batch, params)) {
            let q = dataset.attribute(qid);
            let truth: Vec<u32> = (0..dataset.len() as u32)
                .filter(|&a| a != qid)
                .filter(|&a| naive_validate(q, dataset.attribute(a), params, timeline))
                .collect();
            assert_eq!(batched.results, truth, "query {qid} disagrees with naive_validate");
        }
    }
}

#[test]
fn batch_thread_counts_agree() {
    let dataset = bench_dataset(100, 17);
    let index =
        TindIndex::build(dataset.clone(), IndexConfig { m: 1024, ..IndexConfig::default() });
    let params = TindParams::paper_default();
    let batch = &bench_query_batches(dataset.len(), 24, 1)[0];
    let baseline = index.search_batch(batch, &params);
    for threads in thread_counts() {
        let options = BatchOptions { threads, ..BatchOptions::default() };
        let outcome = index.search_batch_with(batch, &params, &options);
        assert!(!outcome.cancelled);
        for (base, got) in baseline.iter().zip(&outcome.outcomes) {
            let got = got.as_ref().expect("uncancelled batch completes every query");
            assert_eq!(base.results, got.results, "{threads} thread(s)");
            assert_eq!(base.stats, got.stats, "{threads} thread(s)");
        }
    }
}

#[test]
fn cancelled_and_memory_starved_batches_degrade_gracefully() {
    let dataset = bench_dataset(60, 19);
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    let params = TindParams::paper_default();
    let batch = &bench_query_batches(dataset.len(), 8, 1)[0];

    let token = CancelToken::new();
    token.cancel();
    let cancelled = index.search_batch_with(
        batch,
        &params,
        &BatchOptions { cancel: Some(token), ..BatchOptions::default() },
    );
    assert!(cancelled.cancelled);
    assert!(cancelled.outcomes.iter().all(Option::is_none));

    let starved = index.search_batch_with(
        batch,
        &params,
        &BatchOptions {
            threads: 8,
            memory_budget: Some(MemoryBudget::new(0)),
            ..BatchOptions::default()
        },
    );
    assert_eq!(starved.threads_used, 1, "zero budget must shed every extra worker");
    assert!(!starved.cancelled);
    for (base, got) in index.search_batch(batch, &params).iter().zip(&starved.outcomes) {
        assert_eq!(&base.results, &got.as_ref().expect("completes").results);
    }
}
