//! Fault-injection suite for the `tind-serve` daemon.
//!
//! Every test drives a real in-process server over real TCP sockets and
//! asserts the *contract* of the failure model: hostile or unlucky input
//! always produces a typed JSON error with the documented status, no
//! worker thread ever dies, and a drain always terminates.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tind_core::CancelToken;
use tind_datagen::{generate, GeneratorConfig};
use tind_model::MemoryBudget;
use tind_serve::{ApiCall, Engine, ServeConfig, ServeOutcome, Server};

fn engine() -> Engine {
    let generated = generate(&GeneratorConfig::small(60, 11));
    Engine::build(Arc::new(generated.dataset), 3.0, 7, None, 0)
}

/// A running server plus the handles needed to stop it and inspect the
/// outcome.
struct Harness {
    addr: std::net::SocketAddr,
    shutdown: CancelToken,
    handle: std::thread::JoinHandle<Result<ServeOutcome, String>>,
}

impl Harness {
    fn start(config: ServeConfig) -> Harness {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral");
        let addr = server.local_addr();
        let shutdown = CancelToken::new();
        let handle = {
            let shutdown = shutdown.clone();
            std::thread::spawn(move || server.run(|| Ok(engine()), shutdown))
        };
        let h = Harness { addr, shutdown, handle };
        h.wait_ready();
        h
    }

    fn wait_ready(&self) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (status, body) = request(self.addr, "GET", "/healthz", "");
            if status == 200 && body.contains("\"serving\"") {
                return;
            }
            assert!(Instant::now() < deadline, "server never became ready");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn stop(self) -> ServeOutcome {
        self.shutdown.cancel();
        self.handle.join().expect("server thread").expect("serve outcome")
    }
}

/// Sends one HTTP request and returns `(status, body)`.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!("{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> (u16, String) {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn tight_timeouts() -> ServeConfig {
    ServeConfig {
        read_timeout: Duration::from_millis(200),
        max_body_bytes: 2048,
        max_header_bytes: 1024,
        ..ServeConfig::default()
    }
}

#[test]
fn slow_loris_is_cut_off_with_408() {
    let h = Harness::start(tight_timeouts());
    let mut stream = TcpStream::connect(h.addr).expect("connect");
    // Dribble a valid prefix and stall past the read budget.
    stream.write_all(b"POST /sea").expect("write");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 408, "{body}");
    assert!(body.contains("\"request_timeout\""), "{body}");
    // The reader that handled the loris still serves the next client.
    let (status, _) = request(h.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    h.stop();
}

#[test]
fn oversized_declared_body_is_413_before_transfer() {
    let h = Harness::start(tight_timeouts());
    let mut stream = TcpStream::connect(h.addr).expect("connect");
    // Declared length is over the cap; no body byte is ever sent.
    stream
        .write_all(b"POST /search HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
        .expect("write");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"payload_too_large\""), "{body}");
    h.stop();
}

#[test]
fn oversized_head_is_431() {
    let h = Harness::start(tight_timeouts());
    let mut stream = TcpStream::connect(h.addr).expect("connect");
    let padded = format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(4096));
    stream.write_all(padded.as_bytes()).expect("write");
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 431, "{body}");
    h.stop();
}

#[test]
fn malformed_inputs_are_typed_400s_404s_405s() {
    let h = Harness::start(ServeConfig::default());
    for (method, path, body, want) in [
        ("POST", "/search", "{not json", 400),
        ("POST", "/search", "[1,2,3]", 400),
        ("POST", "/search", "{\"query\":\"source-1\",\"epd\":1}", 400),
        ("POST", "/search", "{\"delta\":7}", 400),
        ("POST", "/search", "{\"query\":\"no-such-attribute\"}", 400),
        ("POST", "/explain", "{\"lhs\":\"source-1\"}", 400),
        ("GET", "/nope", "", 404),
        ("DELETE", "/search", "", 405),
    ] {
        let (status, response) = request(h.addr, method, path, body);
        assert_eq!(status, want, "{method} {path} {body} → {response}");
        assert!(response.contains("\"error\""), "{response}");
    }
    let outcome = h.stop();
    assert_eq!(outcome.panics, 0);
}

#[test]
fn queue_full_burst_sheds_with_429_and_retry_hint() {
    // One worker, minimal queue, and every executed call stalls briefly:
    // a concurrent burst must overflow admission and shed typed 429s.
    let config = ServeConfig {
        workers: 1,
        readers: 2,
        queue_capacity: 1,
        coalesce: 1,
        fault_hook: Some(Arc::new(|_call: &ApiCall| {
            std::thread::sleep(Duration::from_millis(150));
        })),
        ..ServeConfig::default()
    };
    let h = Harness::start(config);
    let addr = h.addr;
    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                request(addr, "POST", "/search", "{\"query\":\"source-1\"}")
            })
        })
        .collect();
    let mut statuses: Vec<u16> = Vec::new();
    let mut saw_retry_hint = false;
    for c in clients {
        let (status, body) = c.join().expect("client");
        if status == 429 {
            assert!(body.contains("\"overloaded\""), "{body}");
            saw_retry_hint |= body.contains("\"retry_after_ms\"");
        }
        statuses.push(status);
    }
    assert!(statuses.iter().any(|&s| s == 429), "burst never shed: {statuses:?}");
    assert!(statuses.iter().any(|&s| s == 200), "burst all shed: {statuses:?}");
    assert!(saw_retry_hint, "429 bodies must carry retry_after_ms");
    // Every shed was load, not damage: the daemon still serves.
    let (status, _) = request(addr, "POST", "/search", "{\"query\":\"source-1\"}");
    assert_eq!(status, 200);
    let outcome = h.stop();
    assert_eq!(outcome.panics, 0, "no worker died during the burst");
    assert!(outcome.shed > 0);
}

#[test]
fn expired_deadline_in_queue_is_a_typed_504() {
    // The single worker stalls on the first request; the second carries a
    // 10 ms deadline and expires while queued, so the pre-execution check
    // answers it 504 deterministically.
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        coalesce: 1,
        fault_hook: Some(Arc::new(|_call: &ApiCall| {
            std::thread::sleep(Duration::from_millis(300));
        })),
        ..ServeConfig::default()
    };
    let h = Harness::start(config);
    let addr = h.addr;
    let staller = std::thread::spawn(move || {
        request(addr, "POST", "/search", "{\"query\":\"source-1\"}")
    });
    std::thread::sleep(Duration::from_millis(50));
    let (status, body) =
        request(addr, "POST", "/search", "{\"query\":\"source-2\",\"timeout_ms\":10}");
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("\"deadline_exceeded\""), "{body}");
    let (status, _) = staller.join().expect("staller");
    assert_eq!(status, 200, "the stalled request itself still completes");
    let outcome = h.stop();
    assert!(outcome.deadline_timeouts >= 1);
}

#[test]
fn panicking_request_is_quarantined_and_the_worker_survives() {
    let trip = Arc::new(AtomicBool::new(true));
    let config = ServeConfig {
        workers: 1,
        fault_hook: Some(Arc::new({
            let trip = Arc::clone(&trip);
            move |_call: &ApiCall| {
                if trip.swap(false, Ordering::SeqCst) {
                    panic!("injected query panic");
                }
            }
        })),
        ..ServeConfig::default()
    };
    let h = Harness::start(config);
    let (status, body) = request(h.addr, "POST", "/search", "{\"query\":\"source-1\"}");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"internal_panic\""), "{body}");
    // Same worker (there is only one), next request: business as usual.
    let (status, body) = request(h.addr, "POST", "/search", "{\"query\":\"source-1\"}");
    assert_eq!(status, 200, "{body}");
    let outcome = h.stop();
    assert_eq!(outcome.panics, 1);
    assert_eq!(outcome.drained_clean, true);
}

#[test]
fn memory_pressure_sheds_with_typed_503() {
    // A ~60-attribute engine charges len*64+4096 ≈ 8 KiB per request; a
    // 1-byte budget can never cover it, so every query sheds.
    let config = ServeConfig {
        memory_budget: Some(MemoryBudget::new(1)),
        ..ServeConfig::default()
    };
    let h = Harness::start(config);
    let (status, body) = request(h.addr, "POST", "/search", "{\"query\":\"source-1\"}");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"overloaded_memory\""), "{body}");
    assert!(body.contains("\"retry_after_ms\""), "{body}");
    // Health endpoints don't charge the budget and still answer.
    let (status, _) = request(h.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let outcome = h.stop();
    assert!(outcome.shed >= 1);
}

#[test]
fn drain_cancels_stuck_work_after_the_grace_period() {
    // The worker stalls far past the drain grace; the watchdog must
    // cancel the in-flight wave with reason `Drain` (503) and the server
    // must still terminate, reporting the forced drain.
    let config = ServeConfig {
        workers: 1,
        drain_grace: Duration::from_millis(100),
        fault_hook: Some(Arc::new(|_call: &ApiCall| {
            std::thread::sleep(Duration::from_millis(600));
        })),
        ..ServeConfig::default()
    };
    let h = Harness::start(config);
    let addr = h.addr;
    let inflight = std::thread::spawn(move || {
        request(addr, "POST", "/search", "{\"query\":\"source-1\",\"timeout_ms\":30000}")
    });
    std::thread::sleep(Duration::from_millis(50));
    let outcome = h.stop();
    let (status, body) = inflight.join().expect("in-flight client");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"draining\""), "{body}");
    assert_eq!(outcome.drained_clean, false, "grace expiry must be reported");
}

#[test]
fn idle_drain_is_clean_and_new_requests_get_draining_503() {
    let h = Harness::start(ServeConfig::default());
    let (status, _) = request(h.addr, "POST", "/search", "{\"query\":\"source-1\"}");
    assert_eq!(status, 200);
    let outcome = h.stop();
    assert!(outcome.drained_clean);
    assert_eq!(outcome.requests, outcome.ok + outcome.errors);
}

#[test]
fn healthz_reports_loading_before_the_engine_is_up() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let shutdown = CancelToken::new();
    let handle = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            server.run(
                || {
                    std::thread::sleep(Duration::from_millis(400));
                    Ok(engine())
                },
                shutdown,
            )
        })
    };
    // While the loader sleeps: liveness yes, readiness no, queries 503.
    std::thread::sleep(Duration::from_millis(50));
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"loading\""), "{body}");
    assert!(body.contains("\"ready\":false"), "{body}");
    let (status, body) = request(addr, "POST", "/search", "{\"query\":\"source-1\"}");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"loading\""), "{body}");
    // After loading completes the same request succeeds.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _) = request(addr, "POST", "/search", "{\"query\":\"source-1\"}");
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
    shutdown.cancel();
    handle.join().expect("thread").expect("outcome");
}

#[test]
fn failed_load_tears_the_server_down_with_the_error() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let shutdown = CancelToken::new();
    let err = server
        .run(|| Err("dataset error: file vanished".to_string()), shutdown)
        .expect_err("load failure must surface");
    assert!(err.contains("file vanished"));
}

#[test]
fn metrics_endpoint_exposes_serve_families() {
    let h = Harness::start(ServeConfig::default());
    let (status, _) = request(h.addr, "POST", "/search", "{\"query\":\"source-1\"}");
    assert_eq!(status, 200);
    let (status, body) = request(h.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for family in ["serve.connections", "serve.requests", "serve.responses_ok"] {
        assert!(body.contains(family), "metrics missing {family}: {body}");
    }
    h.stop();
}

/// The opt-in result cache must be transparent: a hit returns a body
/// byte-identical (modulo the one wall-clock field) to the miss that
/// filled it, hit/miss counters are exported, and `/healthz` reports
/// the entry count.
#[test]
fn result_cache_is_transparent_and_counts_hits() {
    use tind_obs::json;

    let strip = |body: &str| match json::parse(body).expect("serve responses are valid JSON") {
        json::Value::Obj(fields) => {
            json::Value::Obj(fields.into_iter().filter(|(k, _)| k != "elapsed_ms").collect())
                .to_json()
        }
        other => other.to_json(),
    };
    let h = Harness::start(ServeConfig { cache: 32, ..ServeConfig::default() });
    for (path, body) in [
        ("/search", "{\"query\":\"source-1\"}"),
        ("/reverse-search", "{\"query\":\"source-2\"}"),
    ] {
        let (status, miss) = request(h.addr, "POST", path, body);
        assert_eq!(status, 200, "{miss}");
        let (status, hit) = request(h.addr, "POST", path, body);
        assert_eq!(status, 200, "{hit}");
        assert_eq!(strip(&miss), strip(&hit), "cache hit must be transparent ({path})");
    }
    // Different resolved parameters are a different key, not a stale hit.
    let (status, body) =
        request(h.addr, "POST", "/search", "{\"query\":\"source-1\",\"delta\":0}");
    assert_eq!(status, 200, "{body}");
    let (_, health) = request(h.addr, "GET", "/healthz", "");
    assert!(health.contains("\"cache_entries\":3"), "{health}");
    let (_, metrics) = request(h.addr, "GET", "/metrics", "");
    assert!(metrics.contains("serve.cache_hits"), "{metrics}");
    assert!(metrics.contains("serve.cache_misses"), "{metrics}");
    h.stop();
}

/// Live delta maintenance against a running daemon: `Engine::apply_delta`
/// swaps in the merged dataset without a restart, new answers reflect the
/// update, and the result cache drops exactly the affected entries.
#[test]
fn live_delta_updates_answers_and_prunes_cache_selectively() {
    use std::sync::OnceLock;
    use tind_model::{Dataset, DatasetBuilder, HistoryBuilder, Timeline};

    // Hand-built histories with unambiguous containments: q={a} ⊆
    // sup1={a,b}; p={c} ⊆ other={c}; nothing else holds.
    fn base() -> Dataset {
        let mut b = DatasetBuilder::new(Timeline::new(40));
        for (name, values) in
            [("q", vec!["a"]), ("sup1", vec!["a", "b"]), ("p", vec!["c"]), ("other", vec!["c"])]
        {
            let mut h = HistoryBuilder::new(name);
            let ids: Vec<_> = values.iter().map(|v| b.dictionary_mut().intern(v)).collect();
            h.push(0, ids);
            b.upsert_history(h.finish(39));
        }
        b.build()
    }
    // The delta drops `a` from sup1 (q ⊄ sup1 afterwards) and appends
    // sup2={a,d} (a new superset of q). p and other are untouched.
    fn merged(base: &Dataset) -> Dataset {
        let mut b = base.clone().into_builder();
        let mut h = HistoryBuilder::new("sup1");
        let bv = b.dictionary_mut().intern("b");
        h.push(0, vec![bv]);
        b.upsert_history(h.finish(39));
        let mut h = HistoryBuilder::new("sup2");
        let av = b.dictionary_mut().intern("a");
        let dv = b.dictionary_mut().intern("d");
        h.push(0, vec![av, dv]);
        b.upsert_history(h.finish(39));
        b.build()
    }

    let base = Arc::new(base());
    let engine_slot: Arc<OnceLock<Arc<Engine>>> = Arc::new(OnceLock::new());
    let config = ServeConfig {
        cache: 32,
        engine_hook: Some(Arc::new({
            let slot = Arc::clone(&engine_slot);
            move |engine| {
                let _ = slot.set(engine);
            }
        })),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let shutdown = CancelToken::new();
    let handle = {
        let shutdown = shutdown.clone();
        let base = base.clone();
        std::thread::spawn(move || {
            server.run(move || Ok(Engine::build(base, 3.0, 7, None, 0)), shutdown)
        })
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = request(addr, "GET", "/healthz", "");
        if status == 200 && body.contains("\"serving\"") {
            break;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Fill two cache entries; the oracle is membership by name.
    let (status, before) = request(addr, "POST", "/search", "{\"query\":\"q\"}");
    assert_eq!(status, 200, "{before}");
    assert!(before.contains("\"sup1\""), "{before}");
    let (status, p_before) = request(addr, "POST", "/search", "{\"query\":\"p\"}");
    assert_eq!(status, 200, "{p_before}");
    assert!(p_before.contains("\"other\""), "{p_before}");

    let engine = engine_slot.get().expect("engine hook ran").clone();
    let report = engine.apply_delta(Arc::new(merged(&base))).expect("delta applies");
    assert_eq!(report.index.touched_attrs, 2, "sup1 rewritten + sup2 appended");
    assert_eq!(report.index.new_attrs, 1);
    assert!(report.store_generation.is_none(), "built engine has no store");
    assert_eq!(report.cache_evicted, 1, "only q's entry lost/gained a result");
    assert_eq!(report.cache_retained, 1, "p's entry is provably unaffected");

    // New answers reflect the merged dataset without a restart.
    let (status, after) = request(addr, "POST", "/search", "{\"query\":\"q\"}");
    assert_eq!(status, 200, "{after}");
    assert!(after.contains("\"sup2\""), "{after}");
    assert!(!after.contains("\"sup1\""), "{after}");
    let (status, sup2) = request(addr, "POST", "/search", "{\"query\":\"sup2\"}");
    assert_eq!(status, 200, "appended attribute must resolve: {sup2}");

    // A non-successor is refused and leaves the engine serving.
    let err = engine.apply_delta(base.clone()).expect_err("shrinking delta must be refused");
    assert!(err.contains("delta rejected"), "{err}");
    let (status, _) = request(addr, "POST", "/search", "{\"query\":\"p\"}");
    assert_eq!(status, 200);

    shutdown.cancel();
    handle.join().expect("thread").expect("outcome");
}

/// Degraded serving: a store with one quarantined shard still comes up,
/// answers everything outside the lost attribute range, returns typed
/// `shard_unavailable` 503s inside it, and the background re-verify
/// promotes back to `serving` once `tind store repair` restores the
/// shard.
#[test]
fn quarantined_shard_serves_degraded_and_repair_promotes() {
    use tind_core::{pack_store, repair_store, PackOptions, RepairOptions};

    let dataset = Arc::new(generate(&GeneratorConfig::small(200, 21)).dataset);
    let dir = std::env::temp_dir().join("tind-serve-faults-degraded.store");
    let _ = std::fs::remove_dir_all(&dir);
    {
        // Pack with the same config the daemon resolves from (eps=3, δ=7)
        // so store-backed answers match built ones.
        let eng = Engine::build(dataset.clone(), 3.0, 7, None, 0);
        pack_store(&eng.forward(), &dir, &PackOptions { shards: 4, ..Default::default() })
            .expect("pack");
    }
    // Corrupt shard 1 → attributes 64..128 are lost.
    let victim = dir.join("g1-s1.shard");
    let len = std::fs::metadata(&victim).expect("shard exists").len() as usize;
    tind_core::fault::flip_file_byte(&victim, len / 2).expect("flip");

    let config = ServeConfig {
        reverify_interval: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let shutdown = CancelToken::new();
    let handle = {
        let shutdown = shutdown.clone();
        let dataset = dataset.clone();
        let dir = dir.clone();
        std::thread::spawn(move || {
            server.run(|| Engine::from_store(&dir, dataset, 3.0, 7, None, 0).map(|(e, _)| e), shutdown)
        })
    };

    // Comes up degraded — ready, but flagged, with the live fraction.
    let deadline = Instant::now() + Duration::from_secs(30);
    let health = loop {
        let (status, body) = request(addr, "GET", "/healthz", "");
        if status == 200 && body.contains("\"degraded\"") {
            break body;
        }
        assert!(Instant::now() < deadline, "server never reached degraded; last: {body}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(health.contains("\"ready\":true"), "{health}");
    assert!(health.contains("\"live_shard_fraction\":0.75"), "{health}");
    assert!(health.contains("\"quarantined_shards\":[1]"), "{health}");

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("\"name\":\"store.shards.quarantined\",\"value\":1"),
        "metrics must pin the quarantined count: {metrics}"
    );

    // Outside the lost range: normal answer, marked partial.
    let (status, body) = request(addr, "POST", "/search", "{\"query\":\"5\"}");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"partial\":true"), "{body}");
    assert!(body.contains("\"quarantined_shards\":[1]"), "{body}");

    // Inside the lost range: typed shard_unavailable, not a 500.
    let (status, body) = request(addr, "POST", "/search", "{\"query\":\"70\"}");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"shard_unavailable\""), "{body}");
    assert!(body.contains("quarantined store shard 1"), "{body}");

    // Reverse search never depends on the store (its index is built in
    // memory), so even the lost range answers.
    let (status, body) = request(addr, "POST", "/reverse-search", "{\"query\":\"70\"}");
    assert_eq!(status, 200, "{body}");

    // Repair the store out-of-band; the re-verify loop promotes.
    repair_store(&dir, &dataset, &RepairOptions::default()).expect("repair");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = request(addr, "GET", "/healthz", "");
        if status == 200 && body.contains("\"serving\"") {
            break;
        }
        assert!(Instant::now() < deadline, "repair never promoted; last: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
    // The formerly-lost attribute answers cleanly, with no partial marker.
    let (status, body) = request(addr, "POST", "/search", "{\"query\":\"70\"}");
    assert_eq!(status, 200, "{body}");
    assert!(!body.contains("\"partial\""), "{body}");

    shutdown.cancel();
    handle.join().expect("thread").expect("outcome");
    std::fs::remove_dir_all(&dir).ok();
}
