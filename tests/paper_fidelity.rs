//! Fidelity tests reconstructing the paper's own running examples:
//! Figure 2 (A–D), the Figure 4 pruning scenario, and the §3.4
//! non-transitivity counterexample.

use std::sync::Arc;

use tind::core::validate::{naive_violation_weight, validate};
use tind::core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind::model::{Dataset, DatasetBuilder, Timeline, WeightFn};

/// Figure 2 uses a three-timestamp history with country-code values.
/// Timestamps 1..3 in the paper map to 0..2 here.
fn figure2_dataset() -> (Arc<Dataset>, Timeline) {
    let tl = Timeline::new(3);
    let mut b = DatasetBuilder::new(tl);
    // (A) strict: Q ⊆ A at every timestamp.
    b.add_attribute("Q_a", &[(0, vec!["ITA"]), (1, vec!["ITA", "POL"])], 2);
    b.add_attribute("A_a", &[(0, vec!["ITA", "GER"]), (1, vec!["ITA", "POL", "GER"])], 2);
    // (B) ε-relaxed: violated at exactly one of three timestamps.
    b.add_attribute("Q_b", &[(0, vec!["ITA"]), (1, vec!["POL"]), (2, vec!["GER", "POL"])], 2);
    b.add_attribute("A_b", &[(0, vec!["ITA"]), (1, vec!["ITA"]), (2, vec!["GER", "POL"])], 2);
    // (§3.4) the third attribute of the transitivity counterexample.
    b.add_attribute("B_t", &[(0, vec!["ITA"]), (1, vec!["POL"]), (2, vec!["GER", "POL"])], 2);
    // (C) ε,δ-relaxed: Q needs POL at t=2; A carried it only at t=1.
    b.add_attribute("Q_c", &[(0, vec!["ITA"]), (2, vec!["ITA", "POL"])], 2);
    b.add_attribute("A_c", &[(0, vec!["ITA"]), (1, vec!["ITA", "POL"]), (2, vec!["ITA"])], 2);
    (Arc::new(b.build()), tl)
}

fn attr<'a>(d: &'a Arc<Dataset>, name: &str) -> &'a tind::model::AttributeHistory {
    d.attribute_by_name(name).expect("attribute exists").1
}

#[test]
fn figure2_a_strict_tind_holds() {
    let (d, tl) = figure2_dataset();
    assert!(validate(attr(&d, "Q_a"), attr(&d, "A_a"), &TindParams::strict(), tl));
}

#[test]
fn figure2_b_eps_one_third_tolerates_one_violation() {
    let (d, tl) = figure2_dataset();
    let q = attr(&d, "Q_b");
    let a = attr(&d, "A_b");
    // Violated at exactly t=1 (POL not in A then).
    assert!(
        (naive_violation_weight(q, a, &TindParams::strict(), tl) - 1.0).abs() < 1e-9
    );
    assert!(!validate(q, a, &TindParams::strict(), tl));
    // ε = 1/3 of the timestamps (the paper's Figure 2 (B) setting).
    assert!(validate(q, a, &TindParams::eps_relaxed(1.0 / 3.0, tl), tl));
}

#[test]
fn figure2_c_delta_heals_the_shifted_value() {
    let (d, tl) = figure2_dataset();
    let q = attr(&d, "Q_c");
    let a = attr(&d, "A_c");
    // Without δ, t=2 is violated (POL already gone from A).
    assert!(!validate(q, a, &TindParams::strict(), tl));
    // δ = 1: A[1] ∋ POL is inside the window of t=2.
    assert!(validate(q, a, &TindParams::weighted(0.0, 1, WeightFn::constant_one()), tl));
}

#[test]
fn figure2_d_decay_weights_discount_the_old_violation() {
    // Figure 2 (D): two violations whose *summed weight* stays within the
    // absolute ε because old timestamps weigh less.
    let tl = Timeline::new(4);
    let mut b = DatasetBuilder::new(tl);
    b.add_attribute("Q", &[(0, vec!["ITA", "POL"])], 3);
    b.add_attribute(
        "A",
        &[(0, vec!["ITA"]), (1, vec!["ITA", "POL"]), (2, vec!["ITA"]), (3, vec!["ITA", "POL"])],
        3,
    );
    let d = Arc::new(b.build());
    let q = attr(&d, "Q");
    let a = attr(&d, "A");
    // Violations at t=0 (weight a^3) and t=2 (weight a^1); with a = 0.5:
    // 0.125 + 0.5 = 0.625 ≤ 1, while two *unweighted* violations exceed
    // an ε of 1 day.
    let w = WeightFn::exponential(0.5, tl);
    assert!(validate(q, a, &TindParams::weighted(1.0, 0, w), tl));
    assert!(!validate(q, a, &TindParams::weighted(1.0, 0, WeightFn::constant_one()), tl));
}

#[test]
fn section_3_4_relaxed_tinds_are_not_transitive() {
    // The paper's exact counterexample: Q ⊆_{1/3} A and A ⊆_{1/3} B hold,
    // but Q ⊆_{1/3} B does not.
    let (d, tl) = figure2_dataset();
    let q = attr(&d, "Q_b"); // ITA | POL | GER,POL
    let a = attr(&d, "A_b"); // ITA | ITA | GER,POL
    let b = attr(&d, "B_t"); // ITA | POL | GER,POL  — same as Q
    let params = TindParams::eps_relaxed(1.0 / 3.0, tl);
    assert!(validate(q, a, &params, tl), "Q ⊆ A must hold");
    assert!(validate(a, b, &params, tl), "A ⊆ B must hold");
    // Q == B here, so Q ⊆ B trivially holds — the paper's counterexample
    // uses a *different* B; reconstruct it faithfully:
    let tlx = Timeline::new(3);
    let mut builder = DatasetBuilder::new(tlx);
    builder.add_attribute("Q", &[(0, vec!["ITA"]), (1, vec!["POL"]), (2, vec!["GER", "POL"])], 2);
    builder.add_attribute("A", &[(0, vec!["ITA"]), (1, vec!["ITA"]), (2, vec!["GER", "POL"])], 2);
    builder.add_attribute("B", &[(0, vec!["GER"]), (1, vec!["ITA"]), (2, vec!["GER", "POL"])], 2);
    let dx = Arc::new(builder.build());
    let (q, a, b) = (attr(&dx, "Q"), attr(&dx, "A"), attr(&dx, "B"));
    let params = TindParams::eps_relaxed(1.0 / 3.0, tlx);
    assert!(validate(q, a, &params, tlx), "Q ⊆_{{1/3}} A");
    assert!(validate(a, b, &params, tlx), "A ⊆_{{1/3}} B");
    assert!(!validate(q, b, &params, tlx), "transitivity must fail: Q ⊄_{{1/3}} B");
}

#[test]
fn figure4_time_slice_pruning_scenario() {
    // Figure 4: Q carries USA at timestamps 3 and 7; A carries USA only at
    // timestamp 5. With δ = 1 both slice checks detect violations and A is
    // pruned; with δ = 2 (too-generous index δ) the value leaks into both
    // windows and the index cannot prune — but validation still rejects.
    let tl = Timeline::new(9);
    let mut b = DatasetBuilder::new(tl);
    b.add_attribute(
        "Q",
        &[
            (0, vec!["GER"]),
            (3, vec!["USA", "GER"]),
            (5, vec!["GER"]),
            (7, vec!["USA", "GER"]),
        ],
        8,
    );
    b.add_attribute(
        "A",
        &[(0, vec!["GER"]), (5, vec!["USA", "GER"]), (6, vec!["GER"])],
        8,
    );
    let d = Arc::new(b.build());
    let q_id = d.attribute_by_name("Q").expect("Q").0;
    let params = TindParams::weighted(1.0, 1, WeightFn::constant_one());

    // Ground truth: violations at t=3 (window [2,4] has no USA) and t=7,8.
    let w = naive_violation_weight(attr(&d, "Q"), attr(&d, "A"), &params, tl);
    assert!((w - 3.0).abs() < 1e-9, "violation weight {w}");

    for index_delta in [1u32, 2] {
        let index = TindIndex::build(
            d.clone(),
            IndexConfig {
                m: 256,
                slices: SliceConfig::search_default(1.0, WeightFn::constant_one(), index_delta),
                ..IndexConfig::default()
            },
        );
        let out = index.search(q_id, &params);
        assert!(out.results.is_empty(), "A must be rejected at index δ={index_delta}");
    }
}
