//! Property-based tests over the core invariants, driven by randomly
//! generated attribute histories (not the workload generator — raw
//! arbitrary version structures, to hit edge cases the simulator avoids).

mod common;

use proptest::prelude::*;

use common::strategies::{build_history, dataset_of, history_strategy, TIMELINE};
use tind::bloom::{BitVec, BloomFilter};
use tind::core::search::brute_force_search;
use tind::core::validate::{naive_violation_weight, validate, violation_weight};
use tind::core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind::model::{binio, Interval, Timeline, ValueId, WeightFn};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 2 must agree with the per-timestamp reference validator
    /// on arbitrary history pairs and parameters.
    #[test]
    fn algorithm2_equals_naive(
        q in history_strategy!(),
        a in history_strategy!(),
        delta in 0u32..20,
        eps in 0.0f64..10.0,
        decay in proptest::option::of(0.5f64..0.99),
    ) {
        let d = dataset_of(vec![q, a]);
        let tl = d.timeline();
        let weights = match decay {
            Some(a) => WeightFn::exponential(a, tl),
            None => WeightFn::constant_one(),
        };
        let params = TindParams::weighted(eps, delta, weights);
        let fast = violation_weight(d.attribute(0), d.attribute(1), &params, tl, false);
        let naive = naive_violation_weight(d.attribute(0), d.attribute(1), &params, tl);
        prop_assert!((fast - naive).abs() < 1e-9, "fast {fast} vs naive {naive}");
        prop_assert_eq!(
            validate(d.attribute(0), d.attribute(1), &params, tl),
            params.within_budget(naive)
        );
    }

    /// Reflexivity (Section 3.4): every attribute is included in itself
    /// under every parameter setting.
    #[test]
    fn reflexivity(q in history_strategy!(), delta in 0u32..10, eps in 0.0f64..5.0) {
        let d = dataset_of(vec![q]);
        let params = TindParams::weighted(eps, delta, WeightFn::constant_one());
        prop_assert!(validate(d.attribute(0), d.attribute(0), &params, d.timeline()));
    }

    /// Violation weight is monotone: growing δ never increases it.
    #[test]
    fn delta_monotonicity(q in history_strategy!(), a in history_strategy!()) {
        let d = dataset_of(vec![q, a]);
        let tl = d.timeline();
        let mut prev = f64::INFINITY;
        for delta in [0u32, 1, 2, 4, 8, 16] {
            let params = TindParams::weighted(0.0, delta, WeightFn::constant_one());
            let w = violation_weight(d.attribute(0), d.attribute(1), &params, tl, false);
            prop_assert!(w <= prev + 1e-9, "violation grew from {prev} to {w} at δ={delta}");
            prev = w;
        }
    }

    /// Index search with arbitrary small datasets must equal brute force —
    /// the index may prune only provably invalid candidates.
    #[test]
    fn index_search_equals_brute_force(
        histories in proptest::collection::vec(history_strategy!(), 2..8),
        delta in 0u32..8,
        eps in 0.0f64..6.0,
    ) {
        let d = dataset_of(histories);
        let index = TindIndex::build(
            d.clone(),
            IndexConfig {
                m: 128,
                slices: SliceConfig::search_default(eps, WeightFn::constant_one(), 8),
                ..IndexConfig::default()
            },
        );
        let params = TindParams::weighted(eps, delta, WeightFn::constant_one());
        for qid in 0..d.len() as u32 {
            let fast = index.search(qid, &params).results;
            let brute = brute_force_search(&index, d.attribute(qid), Some(qid), &params);
            prop_assert_eq!(&fast, &brute, "query {} differs", qid);
        }
    }

    /// Bloom filters preserve subsets for arbitrary value sets and sizes.
    #[test]
    fn bloom_subset_preservation(
        small in proptest::collection::btree_set(0u32..500, 0..30),
        extra in proptest::collection::btree_set(0u32..500, 0..30),
        m in 8u32..512,
        k in 1u32..4,
    ) {
        let small: Vec<ValueId> = small.into_iter().collect();
        let mut big = small.clone();
        big.extend(extra);
        big.sort_unstable();
        big.dedup();
        let fs = BloomFilter::from_values(&small, m, k);
        let fb = BloomFilter::from_values(&big, m, k);
        prop_assert!(fs.may_be_subset_of(&fb));
        for &v in &small {
            prop_assert!(fs.may_contain(v));
        }
    }

    /// BitVec boolean algebra sanity: AND is intersection of one-sets.
    #[test]
    fn bitvec_and_is_intersection(
        xs in proptest::collection::btree_set(0usize..300, 0..60),
        ys in proptest::collection::btree_set(0usize..300, 0..60),
    ) {
        let mut a = BitVec::zeros(300);
        let mut b = BitVec::zeros(300);
        for &x in &xs { a.set(x); }
        for &y in &ys { b.set(y); }
        let mut and = a.clone();
        and.and_assign(&b);
        let expected: Vec<usize> = xs.intersection(&ys).copied().collect();
        prop_assert_eq!(and.iter_ones().collect::<Vec<_>>(), expected);
        // Subset relation matches set inclusion.
        prop_assert_eq!(and.is_subset_of(&a), true);
        prop_assert_eq!(and.is_subset_of(&b), true);
    }

    /// Weight functions: closed-form interval sums equal naive sums.
    #[test]
    fn weight_interval_sums(
        start in 0u32..TIMELINE,
        len in 1u32..TIMELINE,
        a in 0.5f64..0.999,
    ) {
        let tl = Timeline::new(TIMELINE);
        let end = (start + len - 1).min(tl.last());
        let interval = Interval::new(start, end);
        for w in [
            WeightFn::constant_one(),
            WeightFn::uniform_normalized(tl),
            WeightFn::exponential(a, tl),
            WeightFn::linear(tl),
        ] {
            let closed = w.interval_weight(interval);
            let naive: f64 = interval.iter().map(|t| w.weight(t)).sum();
            prop_assert!((closed - naive).abs() < 1e-9, "{w:?} on {interval}");
        }
    }

    /// History ↔ delta-stream conversion round-trips arbitrary histories.
    #[test]
    fn diff_roundtrip(q in history_strategy!()) {
        let h = build_history("h", &q, TIMELINE - 1);
        let (initial, deltas) = tind::model::diff::to_deltas(&h);
        let back = tind::model::diff::from_deltas(
            "h",
            h.first_observed(),
            initial,
            &deltas,
            h.last_observed(),
        );
        prop_assert_eq!(back.versions(), h.versions());
        // Churn accounting is consistent with the deltas.
        let stats = tind::model::diff::churn_stats(&h);
        prop_assert_eq!(stats.changes, deltas.len());
        prop_assert_eq!(
            stats.total_added + stats.total_removed,
            deltas.iter().map(|d| d.churn()).sum::<usize>()
        );
    }

    /// σ-partial validity is monotone in σ: lowering σ never invalidates.
    #[test]
    fn partial_sigma_monotone(
        q in history_strategy!(),
        a in history_strategy!(),
        delta in 0u32..6,
    ) {
        use tind::core::partial::{partial_validate, PartialParams};
        let d = dataset_of(vec![q, a]);
        let tl = d.timeline();
        let base = TindParams::weighted(2.0, delta, WeightFn::constant_one());
        let mut prev_valid = false;
        for sigma in [1.0, 0.8, 0.6, 0.4, 0.2] {
            let p = PartialParams::new(base.clone(), sigma);
            let valid = partial_validate(d.attribute(0), d.attribute(1), &p, tl);
            prop_assert!(!prev_valid || valid, "σ={sigma} invalidated a previously valid pair");
            prev_valid = valid;
        }
    }

    /// Binary serialization round-trips arbitrary datasets.
    #[test]
    fn binio_roundtrip(histories in proptest::collection::vec(history_strategy!(), 1..6)) {
        let d = dataset_of(histories);
        let bytes = binio::encode_dataset(&d);
        let d2 = binio::decode_dataset(bytes).expect("roundtrip decodes");
        prop_assert_eq!(d2.len(), d.len());
        prop_assert_eq!(d2.timeline(), d.timeline());
        for (id, h) in d.iter() {
            prop_assert_eq!(d2.attribute(id).versions(), h.versions());
            prop_assert_eq!(d2.attribute(id).last_observed(), h.last_observed());
        }
    }
}
