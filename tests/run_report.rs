//! End-to-end tests for the TINDRR run-report pipeline (ISSUE 5).
//!
//! Drives the real CLI dispatch (`tind_cli::dispatch`) so the reports
//! exercised here are exactly what `tind <cmd> --report FILE` writes:
//!
//! * the report schema is stable across worker thread counts — a report
//!   from `--threads 1` and `--threads 3`, with timings normalized away,
//!   is byte-identical;
//! * every counter's `total` equals the sum of its per-worker shards;
//! * an all-pairs run's `phase.*` spans cover ≥ 90% of wall time (the
//!   acceptance bar: the report accounts for where the run went);
//! * `tind verify` validates reports against the checked-in
//!   `devtools/report-schema.json` and cross-checks the
//!   `ingest.quarantined_total` gauge against a quarantine artifact.
//!
//! The obs registry is process-global and `dispatch` resets it per run,
//! so every test serializes on [`LOCK`].

use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

use tind::obs::{self, Value};
use tind_cli::dispatch;

/// Serializes tests: `dispatch` resets the process-global obs registry.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn run(tokens: &[&str]) -> Result<String, tind_cli::CliError> {
    let raw: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
    dispatch(&raw)
}

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tind-run-report-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// Generates a small dataset and returns its path (as a String for argv).
fn generate_dataset(name: &str, attributes: &str, seed: &str) -> String {
    let path = temp_file(name);
    let p = path.to_str().expect("utf8").to_string();
    run(&["generate", "--attributes", attributes, "--preset", "small", "--seed", seed, "--out", &p])
        .expect("generate");
    p
}

/// Reads a report file and returns its checksum-verified payload.
fn read_report(path: &str) -> Value {
    let text = std::fs::read_to_string(path).expect("read report");
    obs::verify_report(&text).expect("valid TINDRR report")
}

/// Normalizes a payload for snapshot comparison: zeroes every number
/// except `schema_version`, and empties the run-specific `args` and
/// per-worker `shards` arrays (shard *count* varies with --threads by
/// design; totals are checked separately).
fn normalize(value: &mut Value, key: &str) {
    match value {
        Value::Num(n) => {
            if key != "schema_version" {
                *n = 0.0;
            }
        }
        Value::Arr(items) => {
            if key == "args" || key == "shards" {
                items.clear();
            } else {
                for item in items.iter_mut() {
                    normalize(item, key);
                }
            }
        }
        Value::Obj(fields) => {
            for (k, v) in fields.iter_mut() {
                normalize(v, k);
            }
        }
        _ => {}
    }
}

fn gauge_value(payload: &Value, name: &str) -> Option<f64> {
    payload
        .get("metrics")?
        .get("gauges")?
        .as_arr()?
        .iter()
        .find(|g| g.get("name").and_then(Value::as_str) == Some(name))?
        .get("value")?
        .as_f64()
}

#[test]
fn report_schema_is_stable_across_thread_counts() {
    let _guard = lock();
    let data = generate_dataset("snap-data.tind", "120", "7");
    let r1 = temp_file("snap-t1.json");
    let r3 = temp_file("snap-t3.json");
    let (r1s, r3s) = (r1.to_str().expect("utf8"), r3.to_str().expect("utf8"));

    run(&["all-pairs", "--data", &data, "--threads", "1", "--quiet", "--report", r1s])
        .expect("all-pairs t1");
    run(&["all-pairs", "--data", &data, "--threads", "3", "--quiet", "--report", r3s])
        .expect("all-pairs t3");

    let mut p1 = read_report(r1s);
    let mut p3 = read_report(r3s);

    // Same deterministic work at any thread count: workload counters match
    // exactly even before normalization.
    for name in ["allpairs.queries_completed", "allpairs.pairs", "search.validations"] {
        let totals: Vec<f64> = [&p1, &p3]
            .iter()
            .map(|p| {
                p.get("metrics")
                    .and_then(|m| m.get("counters"))
                    .and_then(Value::as_arr)
                    .and_then(|cs| {
                        cs.iter().find(|c| c.get("name").and_then(Value::as_str) == Some(name))
                    })
                    .and_then(|c| c.get("total"))
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| panic!("counter {name} missing"))
            })
            .collect();
        assert_eq!(totals[0], totals[1], "counter {name} differs across thread counts");
    }

    normalize(&mut p1, "");
    normalize(&mut p3, "");
    assert_eq!(
        p1.to_json(),
        p3.to_json(),
        "normalized report payloads must be identical across thread counts"
    );
}

#[test]
fn counter_totals_equal_shard_sums_in_emitted_report() {
    let _guard = lock();
    let data = generate_dataset("shard-data.tind", "100", "11");
    let report = temp_file("shard-report.json");
    let rs = report.to_str().expect("utf8");
    run(&["all-pairs", "--data", &data, "--threads", "4", "--quiet", "--report", rs])
        .expect("all-pairs");

    let payload = read_report(rs);
    let counters = payload
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(Value::as_arr)
        .expect("counters array");
    assert!(!counters.is_empty(), "an all-pairs run must record counters");
    for counter in counters {
        let name = counter.get("name").and_then(Value::as_str).expect("name");
        let total = counter.get("total").and_then(Value::as_f64).expect("total");
        let shards = counter.get("shards").and_then(Value::as_arr).expect("shards");
        let sum: f64 = shards.iter().filter_map(Value::as_f64).sum();
        assert_eq!(total, sum, "counter {name}: total must equal the sum of its shards");
    }
}

#[test]
fn all_pairs_report_meets_phase_coverage_bar() {
    let _guard = lock();
    let data = generate_dataset("coverage-data.tind", "300", "3");
    let report = temp_file("coverage-report.json");
    let rs = report.to_str().expect("utf8");
    run(&["all-pairs", "--data", &data, "--threads", "2", "--quiet", "--report", rs])
        .expect("all-pairs");

    let payload = read_report(rs);
    let coverage =
        payload.get("phase_coverage").and_then(Value::as_f64).expect("phase_coverage");
    assert!(
        coverage >= 0.9,
        "phase spans must cover >= 90% of wall time, got {:.1}%",
        coverage * 100.0
    );
    // The phases themselves must be the documented all-pairs trio.
    let phases: Vec<&str> = payload
        .get("phases")
        .and_then(Value::as_arr)
        .expect("phases")
        .iter()
        .filter_map(|p| p.get("name").and_then(Value::as_str))
        .collect();
    for expected in ["phase.load", "phase.index_build", "phase.discover"] {
        assert!(phases.contains(&expected), "missing {expected} in {phases:?}");
    }
}

#[test]
fn verify_validates_report_against_checked_in_schema() {
    let _guard = lock();
    assert!(
        std::path::Path::new("devtools/report-schema.json").is_file(),
        "run tests from the workspace root"
    );
    let data = generate_dataset("schema-data.tind", "80", "5");
    let report = temp_file("schema-report.json");
    let rs = report.to_str().expect("utf8");
    run(&["all-pairs", "--data", &data, "--threads", "1", "--quiet", "--report", rs])
        .expect("all-pairs");

    let out = run(&["verify", rs, "--schema", "devtools/report-schema.json"]).expect("verify");
    assert!(out.contains("run report: `all-pairs`"), "{out}");
    assert!(out.contains("schema: conforms to devtools/report-schema.json"), "{out}");

    // Search and index reports conform to the same schema.
    let sr = temp_file("schema-search-report.json");
    let srs = sr.to_str().expect("utf8");
    run(&["search", "--data", &data, "--query", "0", "--report", srs]).expect("search");
    let out = run(&["verify", srs, "--schema", "devtools/report-schema.json"]).expect("verify");
    assert!(out.contains("run report: `search`"), "{out}");
    assert!(out.contains("schema: conforms"), "{out}");

    // A tampered payload fails checksum verification with a corrupt error.
    let tampered = std::fs::read_to_string(rs).expect("read").replace("all-pairs", "all-liars");
    std::fs::write(rs, tampered).expect("write");
    let err = run(&["verify", rs]).expect_err("tampered report must fail");
    assert!(err.to_string().contains("checksum mismatch"), "{err}");
}

/// One well-formed page whose table grows monotonically across six
/// revisions — enough versions and cardinality for the §5.1 filters.
fn ingest_page_xml(title: &str, id: u32) -> String {
    let games =
        ["Red", "Blue", "Gold", "Silver", "Crystal", "Ruby", "Sapphire", "Emerald", "Pearl"];
    let mut page = format!("<page><title>{title}</title><id>{id}</id>");
    for i in 0..6 {
        let mut table = String::from("{|\n! Game\n");
        for g in &games[..3 + i] {
            table.push_str(&format!("|-\n| {g}\n"));
        }
        table.push_str("|}");
        page.push_str(&format!(
            "<revision><timestamp>2001-0{}-01T00:00:00Z</timestamp><text>{table}</text></revision>",
            i + 2,
        ));
    }
    page.push_str("</page>");
    page
}

/// A page with no `<title>`: quarantined by ingestion.
fn broken_page_xml(id: u32) -> String {
    format!(
        "<page><id>{id}</id><revision><timestamp>2001-02-01T00:00:00Z</timestamp>\
         <text>x</text></revision></page>"
    )
}

#[test]
fn ingest_report_cross_checks_quarantine_artifact() {
    let _guard = lock();
    let dump = temp_file("qx-dump.xml");
    let mut xml = String::from("<mediawiki>\n");
    xml.push_str(&ingest_page_xml("Alpha", 1));
    xml.push_str(&broken_page_xml(2));
    xml.push_str(&ingest_page_xml("Beta", 3));
    xml.push_str("</mediawiki>");
    std::fs::write(&dump, xml).expect("write dump");
    let dump_s = dump.to_str().expect("utf8");

    let out_path = temp_file("qx-out.tind");
    let q_path = temp_file("qx-quarantine.tqr");
    let report = temp_file("qx-report.json");
    let (out_s, q_s, r_s) = (
        out_path.to_str().expect("utf8"),
        q_path.to_str().expect("utf8"),
        report.to_str().expect("utf8"),
    );
    run(&[
        "ingest", "--dump", dump_s, "--out", out_s, "--quiet", "--quarantine-report", q_s,
        "--report", r_s,
    ])
    .expect("ingest");

    // The running gauge reflects the quarantined page.
    let payload = read_report(r_s);
    assert_eq!(gauge_value(&payload, "ingest.quarantined_total"), Some(1.0));
    assert_eq!(gauge_value(&payload, "ingest.pages_seen"), None, "pages_seen is a counter");

    // verify cross-checks the gauge against the artifact's own totals.
    let out = run(&["verify", r_s, "--quarantine", q_s]).expect("cross-check");
    assert!(out.contains("run report: `ingest`"), "{out}");
    assert!(out.contains("quarantine: gauge matches"), "{out}");
    assert!(out.contains("(1 quarantined, 1 sampled)"), "{out}");

    // A quarantine artifact from a different (clean) run must be rejected.
    let clean_dump = temp_file("qx-clean-dump.xml");
    let mut xml = String::from("<mediawiki>\n");
    xml.push_str(&ingest_page_xml("Gamma", 4));
    xml.push_str("</mediawiki>");
    std::fs::write(&clean_dump, xml).expect("write dump");
    let clean_q = temp_file("qx-clean.tqr");
    let (cd_s, cq_s) = (clean_dump.to_str().expect("utf8"), clean_q.to_str().expect("utf8"));
    let clean_out = temp_file("qx-clean-out.tind");
    run(&[
        "ingest", "--dump", cd_s, "--out", clean_out.to_str().expect("utf8"), "--quiet",
        "--quarantine-report", cq_s,
    ])
    .expect("clean ingest");
    let err = run(&["verify", r_s, "--quarantine", cq_s]).expect_err("mismatch must fail");
    assert!(err.to_string().contains("quarantine mismatch"), "{err}");

    // A report with no ingest gauge (e.g. from a search run in its own
    // process) carries nothing to cross-check. Crafted by hand because the
    // obs registry keeps registered names for the life of *this* process,
    // so any report emitted after the ingest above would carry the gauge
    // (zeroed) even for non-ingest commands.
    let payload = obs::json::parse(
        r#"{"schema_version":1,"command":"search","args":[],"wall_ns":0,
            "phase_coverage":0,"phases":[],"spans":[],
            "metrics":{"counters":[],"gauges":[],"histograms":[]}}"#,
    )
    .expect("payload")
    .to_json();
    let nr = temp_file("qx-no-gauge-report.json");
    let nr_s = nr.to_str().expect("utf8");
    std::fs::write(
        &nr,
        format!("{{\"magic\":\"TINDRR1\",\"crc32\":{},\"payload\":{payload}}}\n", obs::crc32(payload.as_bytes())),
    )
    .expect("write report");
    let err = run(&["verify", nr_s, "--quarantine", q_s]).expect_err("no gauge");
    assert!(err.to_string().contains("no ingest.quarantined_total gauge"), "{err}");
}
