//! Differential oracle for the serve daemon: the concurrent server must
//! be an *observationally pure* wrapper around the one-shot engine.
//!
//! Three layers of equality, strongest first:
//!
//! 1. serve responses are byte-identical across worker counts {1, N}
//!    once the single wall-clock field (`elapsed_ms`) is stripped;
//! 2. serve search responses carry exactly the results and pruning
//!    stats of a direct `TindIndex` search on an identically-configured
//!    index;
//! 3. serve result counts agree with the one-shot CLI (`tind search`)
//!    run against the same dataset file and parameters.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tind::core::{CancelToken, IndexConfig, SliceConfig, TindIndex, TindParams};
use tind::datagen::{generate, GeneratorConfig};
use tind::model::{Dataset, WeightFn};
use tind::obs::json;
use tind::serve::{Engine, ServeConfig, Server};

const EPS: f64 = 3.0;
const DELTA: u32 = 7;

fn world() -> Arc<Dataset> {
    Arc::new(generate(&GeneratorConfig::small(90, 23)).dataset)
}

/// Sends one HTTP request, returns `(status, body)`.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!("{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).expect("write");
    stream.write_all(body.as_bytes()).expect("write body");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status");
    (status, raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string())
}

/// Drops the one wall-clock field, keeping everything else byte-exact.
fn strip_elapsed(body: &str) -> String {
    match json::parse(body).expect("serve responses are valid JSON") {
        json::Value::Obj(fields) => {
            json::Value::Obj(fields.into_iter().filter(|(k, _)| k != "elapsed_ms").collect())
                .to_json()
        }
        other => other.to_json(),
    }
}

/// The fixed probe workload: forward + reverse searches over several
/// attributes (with parameter overrides exercised), plus explains.
fn workload() -> Vec<(&'static str, String)> {
    let mut calls = Vec::new();
    for q in ["source-1", "source-2", "source-3", "source-4", "source-5"] {
        calls.push(("/search", format!("{{\"query\":\"{q}\",\"limit\":50}}")));
        calls.push(("/reverse-search", format!("{{\"query\":\"{q}\",\"limit\":50}}")));
    }
    calls.push(("/search", "{\"query\":\"source-1\",\"eps\":1.5,\"delta\":3,\"limit\":50}".into()));
    calls.push(("/explain", "{\"lhs\":\"source-1\",\"rhs\":\"source-2\"}".into()));
    calls.push(("/explain", "{\"lhs\":\"source-3\",\"rhs\":\"source-1\",\"eps\":9}".into()));
    calls
}

/// Runs the workload against a fresh server with `workers` executor
/// threads and returns the elapsed-stripped response bodies in order.
fn serve_workload(dataset: Arc<Dataset>, workers: usize) -> Vec<String> {
    let config = ServeConfig { workers, ..ServeConfig::default() };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let shutdown = CancelToken::new();
    let handle = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            server.run(move || Ok(Engine::build(dataset, EPS, DELTA, None, 0)), shutdown)
        })
    };
    let ready = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = request(addr, "GET", "/healthz", "");
        if status == 200 && body.contains("\"serving\"") {
            break;
        }
        assert!(Instant::now() < ready, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut responses = Vec::new();
    for (path, body) in workload() {
        let (status, response) = request(addr, "POST", path, &body);
        assert_eq!(status, 200, "{path} {body} → {response}");
        responses.push(strip_elapsed(&response));
    }
    shutdown.cancel();
    handle.join().expect("server thread").expect("outcome");
    responses
}

#[test]
fn responses_are_byte_identical_across_worker_counts() {
    let dataset = world();
    let single = serve_workload(dataset.clone(), 1);
    let multi = serve_workload(dataset, 4);
    assert_eq!(single.len(), multi.len());
    for (i, (a, b)) in single.iter().zip(&multi).enumerate() {
        assert_eq!(a, b, "workload item {i} diverged between workers=1 and workers=4");
    }
}

#[test]
fn serve_search_matches_a_direct_index_search_exactly() {
    let dataset = world();
    let responses = serve_workload(dataset.clone(), 2);

    // The oracle: an index configured exactly as Engine::build configures
    // its forward index, queried directly.
    let params = TindParams::weighted(EPS, DELTA, WeightFn::constant_one());
    let config = IndexConfig {
        slices: SliceConfig::search_default(EPS, WeightFn::constant_one(), DELTA),
        ..IndexConfig::default()
    };
    let index = TindIndex::build(dataset.clone(), config);

    for (response, (path, body)) in responses.iter().zip(workload()) {
        if path != "/search" || body.contains("\"eps\"") {
            continue;
        }
        let parsed = json::parse(response).expect("json");
        let name = parsed.get("query").and_then(|v| v.as_str()).expect("query").to_string();
        let (qid, _) = dataset.attribute_by_name(&name).expect("known attribute");
        let outcome = index.search(qid, &params);

        let served: Vec<String> = parsed
            .get("results")
            .and_then(|v| v.as_arr())
            .expect("results")
            .iter()
            .map(|r| r.get("name").and_then(|v| v.as_str()).expect("name").to_string())
            .collect();
        let direct: Vec<String> =
            outcome.results.iter().map(|&id| dataset.attribute(id).name().to_string()).collect();
        assert_eq!(served, direct, "result set diverged for '{name}'");
        assert_eq!(
            parsed.get("result_count").and_then(|v| v.as_f64()),
            Some(outcome.results.len() as f64)
        );

        let stats = parsed.get("stats").expect("stats");
        let expected: &[(&str, f64)] = &[
            ("initial", outcome.stats.initial as f64),
            ("after_required", outcome.stats.after_required as f64),
            ("after_slices", outcome.stats.after_slices as f64),
            ("after_exact", outcome.stats.after_exact as f64),
            ("validated", outcome.stats.validated as f64),
            ("validations_run", outcome.stats.validations_run as f64),
            ("early_valid_exits", outcome.stats.early_valid_exits as f64),
            ("early_invalid_exits", outcome.stats.early_invalid_exits as f64),
        ];
        for &(field, want) in expected {
            assert_eq!(
                stats.get(field).and_then(|v| v.as_f64()),
                Some(want),
                "stat '{field}' diverged for '{name}'"
            );
        }
    }
}

#[test]
fn serve_agrees_with_the_one_shot_cli() {
    let dataset = world();
    let dir = std::env::temp_dir().join("tind-serve-differential");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let data = dir.join("world.tind");
    tind::model::binio::write_dataset_file(&dataset, &data).expect("write dataset");
    let data_str = data.to_str().expect("utf8 path");

    let responses = serve_workload(dataset.clone(), 2);
    for (response, (path, body)) in responses.iter().zip(workload()) {
        if path == "/explain" || body.contains("\"eps\"") {
            continue;
        }
        let parsed = json::parse(response).expect("json");
        let name = parsed.get("query").and_then(|v| v.as_str()).expect("query").to_string();
        let count = parsed.get("result_count").and_then(|v| v.as_f64()).expect("count") as usize;

        let verb = if path == "/search" { "search" } else { "reverse-search" };
        let cli = tind_cli::dispatch(&[
            verb.to_string(),
            "--data".into(),
            data_str.into(),
            "--query".into(),
            name.clone(),
            "--limit".into(),
            "50".into(),
        ])
        .expect("cli run");
        let first = cli.lines().next().expect("cli output");
        assert!(
            first.starts_with(&format!("{count} results for '{name}'")),
            "CLI disagreed for {verb} '{name}': serve={count}, cli line: {first}"
        );
        // Every served result name appears in the CLI listing.
        for r in parsed.get("results").and_then(|v| v.as_arr()).expect("results") {
            let rname = r.get("name").and_then(|v| v.as_str()).expect("name");
            assert!(cli.contains(rname), "result '{rname}' missing from CLI output");
        }
    }
}
