//! Differential oracle for the zero-copy arena shard layout
//! (`tind_core::store`, `TINDSH` v2).
//!
//! The arena's contract extends the store's byte-identity guarantee
//! across *backings*: an index packed in the arena layout and opened
//! onto the heap, borrowed from an mmap, or served through `pread`
//! windows must encode to exactly the bytes of the in-memory build and
//! answer `search`, `search_batch`, `reverse_search`, and all-pairs
//! discovery identically at every worker count. The windowed backing is
//! additionally pinned under a memory budget *below* the index size:
//! eviction pressure must never change an answer.

mod common;

use std::sync::Arc;

use tind_core::{
    discover_all_pairs, migrate_store, open_store_with, pack_store, verify_store,
    AllPairsOptions, BatchOptions, IndexConfig, OpenOptions, PackOptions, ShardFormat,
    StoreBacking, TindIndex, TindParams,
};
use tind_datagen::{generate, GeneratorConfig};
use tind_model::{Dataset, MemoryBudget};

fn store_dir(name: &str) -> std::path::PathBuf {
    common::strategies::store_dir("arena-backings", name)
}

/// A generated world with both search directions indexed, so the
/// reverse leg of the oracle is real (M_R is packed into the shards).
fn reverse_world(seed: u64) -> (Arc<Dataset>, TindIndex, TindParams) {
    let dataset = Arc::new(generate(&GeneratorConfig::small(200, seed)).dataset);
    let config = IndexConfig { m: 256, build_reverse: true, ..IndexConfig::default() };
    let index = TindIndex::build(dataset.clone(), config);
    (dataset, index, TindParams::paper_default())
}

const BACKINGS: [StoreBacking; 3] =
    [StoreBacking::Heap, StoreBacking::Mmap, StoreBacking::Windowed];

fn open_options(backing: StoreBacking) -> OpenOptions {
    OpenOptions {
        backing,
        // The windowed backing needs *a* budget to charge against; a
        // generous one keeps this roundtrip free of eviction effects
        // (the under-budget test below applies the pressure).
        memory_budget: (backing == StoreBacking::Windowed)
            .then(|| MemoryBudget::new(1 << 30)),
    }
}

#[test]
fn arena_roundtrip_is_byte_identical_across_backings_and_shard_counts() {
    let (dataset, index, _params) = reverse_world(21);
    let baseline = tind_core::persist::encode_index(&index);

    // 0 = the store's own default split.
    for shards in [1usize, 2, 4, 0] {
        let dir = store_dir(&format!("roundtrip-{shards}"));
        let report = pack_store(
            &index,
            &dir,
            &PackOptions { shards, format: ShardFormat::Arena, ..Default::default() },
        )
        .expect("pack");
        for backing in BACKINGS {
            let (loaded, load) =
                open_store_with(&dir, dataset.clone(), &open_options(backing)).expect("open");
            assert!(load.is_clean(), "{backing:?}: clean arena store loads clean: {load:?}");
            assert_eq!(load.format, ShardFormat::Arena);
            assert_eq!(load.shards_total, report.shards);
            assert_eq!(
                tind_core::persist::encode_index(&loaded),
                baseline,
                "{shards}-shard arena store via {backing:?} must round-trip byte-identically"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn searches_are_identical_across_backings_at_multiple_worker_counts() {
    let (dataset, index, params) = reverse_world(23);
    let dir = store_dir("differential");
    pack_store(
        &index,
        &dir,
        &PackOptions { shards: 4, format: ShardFormat::Arena, ..Default::default() },
    )
    .expect("pack");

    let queries: Vec<u32> = (0..dataset.len() as u32).step_by(11).collect();
    let expected_single: Vec<Vec<u32>> =
        queries.iter().map(|&q| index.search(q, &params).results).collect();
    let expected_reverse: Vec<Vec<u32>> =
        queries.iter().map(|&q| index.reverse_search(q, &params).results).collect();
    let expected_pairs =
        discover_all_pairs(&index, &params, &AllPairsOptions::default()).expect("all-pairs").pairs;

    for backing in BACKINGS {
        let (loaded, _) =
            open_store_with(&dir, dataset.clone(), &open_options(backing)).expect("open");
        for (&q, expected) in queries.iter().zip(&expected_single) {
            assert_eq!(&loaded.search(q, &params).results, expected, "{backing:?} query {q}");
        }
        for (&q, expected) in queries.iter().zip(&expected_reverse) {
            assert_eq!(
                &loaded.reverse_search(q, &params).results,
                expected,
                "{backing:?} reverse query {q}"
            );
        }
        for threads in [1usize, 4] {
            let batch = loaded.search_batch_with(
                &queries,
                &params,
                &BatchOptions { threads, ..Default::default() },
            );
            for ((got, want), &q) in batch.outcomes.iter().zip(&expected_single).zip(&queries) {
                assert_eq!(
                    got.as_ref().map(|o| &o.results),
                    Some(want),
                    "{backing:?} batch query {q} at {threads} workers"
                );
            }
            let pairs = discover_all_pairs(
                &loaded,
                &params,
                &AllPairsOptions { threads, ..Default::default() },
            )
            .expect("all-pairs on loaded")
            .pairs;
            assert_eq!(pairs, expected_pairs, "{backing:?} all-pairs at {threads} workers");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The beyond-RAM acceptance pin: a memory budget well below the index's
/// resident size must still answer every query exactly — windows evict
/// and reload (or overcommit) under pressure, never degrade results.
#[test]
fn windowed_backing_below_index_size_still_answers_exactly() {
    let (dataset, index, params) = reverse_world(25);
    let dir = store_dir("tiny-budget");
    pack_store(
        &index,
        &dir,
        &PackOptions { shards: 4, format: ShardFormat::Arena, ..Default::default() },
    )
    .expect("pack");

    let full_bytes = index.bloom_bytes();
    assert!(full_bytes > 0);
    let budget = MemoryBudget::new(full_bytes / 8);
    let options = OpenOptions {
        backing: StoreBacking::Windowed,
        memory_budget: Some(budget.clone()),
    };
    let (loaded, report) = open_store_with(&dir, dataset.clone(), &options).expect("open");
    assert!(report.is_clean());
    assert_eq!(report.backing, StoreBacking::Windowed);
    let pool = report.window_pool.clone().expect("windowed open exposes its pool");

    let queries: Vec<u32> = (0..dataset.len() as u32).step_by(7).collect();
    for &q in &queries {
        assert_eq!(
            loaded.search(q, &params).results,
            index.search(q, &params).results,
            "query {q} under budget pressure"
        );
        assert_eq!(
            loaded.reverse_search(q, &params).results,
            index.reverse_search(q, &params).results,
            "reverse query {q} under budget pressure"
        );
    }
    let batch =
        loaded.search_batch_with(&queries, &params, &BatchOptions { threads: 4, ..Default::default() });
    for (got, &q) in batch.outcomes.iter().zip(&queries) {
        assert_eq!(
            got.as_ref().map(|o| o.results.clone()),
            Some(index.search(q, &params).results),
            "batched query {q} under budget pressure"
        );
    }

    let stats = pool.stats();
    assert!(stats.loads > 0, "windows must actually have been read: {stats:?}");
    assert!(
        stats.evictions > 0 || stats.overcommits > 0,
        "a budget below the index size must have exercised eviction pressure: {stats:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `migrate` converts a legacy store in place (new generation, same
/// atomic commit point) and the result is byte-identical in both
/// directions: legacy → arena → legacy.
#[test]
fn migrate_roundtrips_between_layouts_byte_identically() {
    let (dataset, index, params) = reverse_world(27);
    let baseline = tind_core::persist::encode_index(&index);
    let dir = store_dir("migrate");
    pack_store(&index, &dir, &PackOptions { shards: 2, ..Default::default() }).expect("pack legacy");

    let to_arena = migrate_store(&dir, dataset.clone(), ShardFormat::Arena, &PackOptions {
        shards: 2,
        ..Default::default()
    })
    .expect("migrate to arena");
    assert_eq!(to_arena.generation, 2);
    verify_store(&dir).expect("arena store verifies deep");
    let (arena, load) = open_store_with(
        &dir,
        dataset.clone(),
        &open_options(StoreBacking::Mmap),
    )
    .expect("open migrated");
    assert!(load.is_clean());
    assert_eq!(load.format, ShardFormat::Arena);
    assert_eq!(tind_core::persist::encode_index(&arena), baseline);
    let probe = 17u32;
    assert_eq!(arena.search(probe, &params).results, index.search(probe, &params).results);

    let back = migrate_store(&dir, dataset.clone(), ShardFormat::Legacy, &PackOptions {
        shards: 2,
        ..Default::default()
    })
    .expect("migrate back to legacy");
    assert_eq!(back.generation, 3);
    let (legacy, load) =
        open_store_with(&dir, dataset, &OpenOptions::default()).expect("open legacy again");
    assert!(load.is_clean());
    assert_eq!(load.format, ShardFormat::Legacy);
    assert_eq!(tind_core::persist::encode_index(&legacy), baseline);
    std::fs::remove_dir_all(&dir).ok();
}
