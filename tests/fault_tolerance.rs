//! Cross-crate fault-tolerance tests: checkpoint/resume determinism,
//! panic quarantine, and checksummed-persistence corruption rejection.
//!
//! The deterministic tests below enumerate *every* kill point
//! exhaustively; the `proptest!` block at the bottom re-covers the same
//! invariants under randomized datasets, thread counts, and corruption
//! offsets (it is skipped by the offline harness, which stubs out
//! proptest — see `devtools/offline-check/run.sh`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use tind::core::checkpoint::Checkpoint;
use tind::core::fault::{flip_bit, poison_hook, truncated, FaultHook};
use tind::core::{
    discover_all_pairs, AllPairsError, AllPairsOptions, CancelToken, CheckpointPolicy,
    IndexConfig, TindIndex, TindParams,
};
use tind::datagen::{generate, GeneratorConfig};
use tind::model::binio::{decode_dataset, encode_dataset, BinIoError};
use tind::model::Dataset;

fn small_world(attributes: usize, seed: u64) -> (Arc<Dataset>, TindIndex, TindParams) {
    let dataset = Arc::new(generate(&GeneratorConfig::small(attributes, seed)).dataset);
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    (dataset, index, TindParams::paper_default())
}

fn ckpt_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tind-fault-tolerance-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

/// Runs all-pairs, killing it at the query boundary after `kill_after`
/// completed queries (threads=1 makes the boundary exact), then resumes
/// from the checkpoint and returns both outcomes' pairs.
fn kill_and_resume(
    index: &TindIndex,
    params: &TindParams,
    path: &std::path::Path,
    kill_after: usize,
) -> (Vec<(u32, u32)>, usize) {
    let _ = std::fs::remove_file(path);
    let token = CancelToken::new();
    let counter = Arc::new(AtomicUsize::new(0));
    let hook: FaultHook = {
        let token = token.clone();
        let counter = Arc::clone(&counter);
        Arc::new(move |_q| {
            if counter.fetch_add(1, Ordering::Relaxed) >= kill_after {
                token.cancel();
            }
        })
    };
    let interrupted = discover_all_pairs(
        index,
        params,
        &AllPairsOptions {
            threads: 1,
            cancel: Some(token),
            checkpoint: Some(CheckpointPolicy::new(path).every(1)),
            fault_hook: Some(hook),
            ..Default::default()
        },
    )
    .expect("interrupted run still returns an outcome");

    let cp = Checkpoint::read_file(path).expect("checkpoint readable after kill");
    let resumed = discover_all_pairs(
        index,
        params,
        &AllPairsOptions {
            resume_from: Some(cp),
            ..Default::default()
        },
    )
    .expect("resumed run completes");
    assert!(!resumed.cancelled);
    (resumed.pairs, interrupted.completed_queries)
}

#[test]
fn killing_after_every_checkpoint_boundary_resumes_identically() {
    let (_dataset, index, params) = small_world(28, 5);
    let full = discover_all_pairs(&index, &params, &AllPairsOptions::default())
        .expect("uninterrupted run");
    assert!(!full.pairs.is_empty(), "test needs a dataset with some tINDs");
    let path = ckpt_path("every-boundary.tcp");

    // Every possible kill point, including "before the first query" and
    // "after the last one".
    for kill_after in 0..=full.total_queries {
        let (pairs, completed) = kill_and_resume(&index, &params, &path, kill_after);
        assert_eq!(
            pairs, full.pairs,
            "kill after {kill_after} queries ({completed} completed) changed the result"
        );
    }
}

#[test]
fn resume_skips_completed_queries() {
    let (_dataset, index, params) = small_world(24, 9);
    let path = ckpt_path("resume-skips.tcp");
    let _ = std::fs::remove_file(&path);

    let token = CancelToken::new();
    let counter = Arc::new(AtomicUsize::new(0));
    let hook: FaultHook = {
        let token = token.clone();
        let counter = Arc::clone(&counter);
        Arc::new(move |_q| {
            if counter.fetch_add(1, Ordering::Relaxed) >= 7 {
                token.cancel();
            }
        })
    };
    discover_all_pairs(
        &index,
        &params,
        &AllPairsOptions {
            threads: 1,
            cancel: Some(token),
            checkpoint: Some(CheckpointPolicy::new(&path).every(1)),
            fault_hook: Some(hook),
            ..Default::default()
        },
    )
    .expect("interrupted run");

    let cp = Checkpoint::read_file(&path).expect("checkpoint");
    let done_before = cp.completed.len();
    assert!(done_before >= 7, "checkpoint holds the completed prefix");
    let resumed = discover_all_pairs(
        &index,
        &params,
        &AllPairsOptions { resume_from: Some(cp), ..Default::default() },
    )
    .expect("resumed run");
    assert_eq!(resumed.resumed_queries, done_before);
    assert_eq!(
        resumed.completed_queries,
        resumed.total_queries,
        "resume must finish the remainder"
    );
}

#[test]
fn checkpoint_from_different_dataset_or_params_is_refused() {
    let (dataset_a, index_a, params) = small_world(20, 1);
    let (dataset_b, index_b, _) = small_world(20, 2);

    let cp = Checkpoint::fresh(&dataset_a, &params);
    assert!(cp.verify_matches(&dataset_a, &params).is_ok());
    assert!(matches!(cp.verify_matches(&dataset_b, &params), Err(BinIoError::Corrupt(_))));

    let other_params = TindParams::weighted(99.0, 3, tind::model::WeightFn::constant_one());
    assert!(matches!(cp.verify_matches(&dataset_a, &other_params), Err(BinIoError::Corrupt(_))));

    // The discovery entry point enforces the same guard.
    let err = discover_all_pairs(
        &index_b,
        &params,
        &AllPairsOptions { resume_from: Some(cp), ..Default::default() },
    )
    .expect_err("foreign checkpoint must be refused");
    assert!(matches!(err, AllPairsError::ResumeMismatch(_)), "{err}");
    // Matching everything still works, so the guard is not just "always
    // refuse".
    let own = Checkpoint::fresh(&dataset_a, &params);
    discover_all_pairs(
        &index_a,
        &params,
        &AllPairsOptions { resume_from: Some(own), ..Default::default() },
    )
    .expect("own fresh checkpoint resumes fine");
}

#[test]
fn poisoned_queries_are_quarantined_and_rest_matches_brute_force() {
    let (dataset, index, params) = small_world(26, 3);
    let poison: Vec<u32> = vec![0, 7, 13];
    let outcome = discover_all_pairs(
        &index,
        &params,
        &AllPairsOptions {
            threads: 4,
            fault_hook: Some(poison_hook(&poison)),
            ..Default::default()
        },
    )
    .expect("quarantine keeps the run alive");
    assert_eq!(outcome.poisoned_queries, poison, "all planted panics quarantined");
    assert_eq!(
        outcome.completed_queries,
        dataset.len(),
        "poisoned queries still count as completed (they will not be retried)"
    );

    // Brute force: per-query search over every healthy query.
    let mut expected: Vec<(u32, u32)> = Vec::new();
    for q in 0..dataset.len() as u32 {
        if poison.contains(&q) {
            continue;
        }
        expected.extend(index.search(q, &params).results.into_iter().map(|rhs| (q, rhs)));
    }
    expected.sort_unstable();
    assert_eq!(outcome.pairs, expected, "healthy queries must be unaffected by the poison");
}

#[test]
fn corrupted_dataset_files_are_rejected_with_typed_errors() {
    let (dataset, _index, _params) = small_world(12, 4);
    let clean = encode_dataset(&dataset);
    decode_dataset(clean.clone()).expect("clean bytes decode");

    // Truncation at every length short of the full file.
    for keep in 0..clean.len() {
        let cut = truncated(&clean, keep);
        assert!(
            decode_dataset(cut.into()).is_err(),
            "truncation to {keep}/{} bytes must fail",
            clean.len()
        );
    }
    // A sweep of single-bit flips (every 97th bit keeps it fast): always a
    // typed checksum error — never a silent wrong decode.
    let total_bits = clean.len() * 8;
    for bit in (0..total_bits).step_by(97) {
        let mut rotten = clean.to_vec();
        flip_bit(&mut rotten, bit);
        match decode_dataset(rotten.into()) {
            Err(BinIoError::Checksum { .. }) => {}
            // Flips inside the magic header are reported as the more
            // specific wrong-magic/wrong-version corruption.
            Err(BinIoError::Corrupt(_)) if bit < 64 => {}
            other => panic!("bit {bit}: expected checksum rejection, got {other:?}"),
        }
    }
}

#[test]
fn corrupted_index_and_checkpoint_files_are_rejected() {
    let (dataset, index, params) = small_world(12, 6);

    let index_bytes = tind::core::persist::encode_index(&index);
    tind::core::persist::decode_index(index_bytes.clone(), dataset.clone())
        .expect("clean index decodes");
    // Each rejected flip still costs a full-file CRC scan, so sample a
    // fixed number of (deterministically spread) bit positions rather
    // than a fixed stride — index files are large.
    let total_bits = index_bytes.len() * 8;
    let stride = (total_bits / 24).max(1) | 1;
    for bit in (0..total_bits).step_by(stride) {
        let mut rotten = index_bytes.to_vec();
        flip_bit(&mut rotten, bit);
        assert!(
            tind::core::persist::decode_index(rotten.into(), dataset.clone()).is_err(),
            "index bit {bit}"
        );
    }
    for keep in [0, 7, 8, index_bytes.len() / 2, index_bytes.len() - 1] {
        let cut = truncated(&index_bytes, keep);
        assert!(
            tind::core::persist::decode_index(cut.into(), dataset.clone()).is_err(),
            "index truncated to {keep}"
        );
    }

    let mut cp = Checkpoint::fresh(&dataset, &params);
    cp.completed = vec![0, 2, 5];
    cp.pairs = vec![(0, 1), (2, 4)];
    let cp_bytes = cp.encode();
    assert_eq!(Checkpoint::decode(cp_bytes.clone()).expect("clean checkpoint"), cp);
    for bit in 0..cp_bytes.len() * 8 {
        let mut rotten = cp_bytes.to_vec();
        flip_bit(&mut rotten, bit);
        assert!(Checkpoint::decode(rotten.into()).is_err(), "checkpoint bit {bit}");
    }
    for keep in 0..cp_bytes.len() {
        let cut = truncated(&cp_bytes, keep);
        assert!(Checkpoint::decode(cut.into()).is_err(), "checkpoint truncated to {keep}");
    }
}

/// Single-byte corruption matrix over **every** persisted format: each
/// file is flipped at a header, body, and trailer position via
/// [`flip_file_byte`], and each flip must be detected by that format's
/// reader — never a silent wrong decode.
#[test]
fn every_persisted_format_detects_single_byte_corruption() {
    use tind::core::fault::flip_file_byte;
    use tind::core::store::{pack_store, verify_store, PackOptions};

    let dir = std::env::temp_dir().join("tind-fault-tolerance-formats");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let (dataset, index, params) = small_world(80, 7);

    // A (path, detector) pair per format; the detector returns true when
    // the reader rejected the file.
    type Detector = Box<dyn Fn() -> bool>;
    let mut formats: Vec<(&str, std::path::PathBuf, Detector)> = Vec::new();

    let ds_path = dir.join("dataset.tind");
    std::fs::write(&ds_path, encode_dataset(&dataset)).expect("write dataset");
    let p = ds_path.clone();
    formats.push((
        "dataset (TINDDS)",
        ds_path.clone(),
        Box::new(move || decode_dataset(std::fs::read(&p).expect("read").into()).is_err()),
    ));

    let idx_path = dir.join("index.idx");
    tind::core::persist::write_index_file(&index, &idx_path).expect("write index");
    let p = idx_path.clone();
    let ds = dataset.clone();
    formats.push((
        "index (TINDIX)",
        idx_path.clone(),
        Box::new(move || tind::core::persist::read_index_file(&p, ds.clone()).is_err()),
    ));

    let cp_path = dir.join("progress.tcp");
    let mut cp = Checkpoint::fresh(&dataset, &params);
    cp.completed = vec![0, 3, 9];
    cp.pairs = vec![(0, 1), (3, 7)];
    cp.write_file(&cp_path).expect("write checkpoint");
    let p = cp_path.clone();
    formats.push((
        "checkpoint (TINDCP)",
        cp_path.clone(),
        Box::new(move || Checkpoint::read_file(&p).is_err()),
    ));

    let q_path = dir.join("quarantine.tqr");
    let mut q = tind::model::QuarantineReport::new(77, 4);
    q.pages_seen = 10;
    q.pages_kept = 9;
    q.record(123, "Broken page", "unparsable timestamp");
    q.write_file(&q_path).expect("write quarantine");
    let p = q_path.clone();
    formats.push((
        "quarantine report (TINDQR)",
        q_path.clone(),
        Box::new(move || tind::model::QuarantineReport::read_file(&p).is_err()),
    ));

    let ic_path = dir.join("ingest.tic");
    let ic = tind::wiki::IngestCheckpoint {
        source_fingerprint: 77,
        config_digest: 5,
        resume_offset: 4096,
        next_fallback_page_id: 2,
        quarantine: q.clone(),
        pipeline: Default::default(),
        dataset_bytes: encode_dataset(&dataset),
    };
    ic.write_file(&ic_path).expect("write ingest checkpoint");
    let p = ic_path.clone();
    formats.push((
        "ingest checkpoint (TINDIC)",
        ic_path.clone(),
        Box::new(move || tind::wiki::IngestCheckpoint::read_file(&p).is_err()),
    ));

    let rr_path = dir.join("report.json");
    let report = tind::obs::RunReport::collect("fault-matrix", &[], 1);
    std::fs::write(&rr_path, report.to_json()).expect("write run report");
    let p = rr_path.clone();
    formats.push((
        "run report (TINDRR)",
        rr_path.clone(),
        Box::new(move || {
            let text = match std::fs::read(&p) {
                Ok(raw) => match String::from_utf8(raw) {
                    Ok(text) => text,
                    Err(_) => return true,
                },
                Err(_) => return true,
            };
            tind::obs::verify_report(&text).is_err()
        }),
    ));

    let tf_path = dir.join("trace.tindtf");
    {
        use tind::obs::trace as tr;
        let root = tr::alloc_context();
        let start = tr::now_ns();
        tr::record_span(
            root.child(tr::alloc_span_id()),
            root.span_id,
            "fault.matrix.child",
            start,
            10_000,
        );
        tr::record_span(root, 0, "fault.matrix.root", start, 50_000);
        std::fs::write(&tf_path, tind::obs::collect_trace(root, &[]).to_json())
            .expect("write trace");
    }
    let p = tf_path.clone();
    formats.push((
        "trace (TINDTF)",
        tf_path.clone(),
        Box::new(move || {
            let text = match std::fs::read(&p) {
                Ok(raw) => match String::from_utf8(raw) {
                    Ok(text) => text,
                    Err(_) => return true,
                },
                Err(_) => return true,
            };
            tind::obs::verify_trace(&text).is_err()
        }),
    ));

    let store_dir = dir.join("index.store");
    pack_store(&index, &store_dir, &PackOptions { shards: 2, ..Default::default() })
        .expect("pack store");
    let store_detector = |d: std::path::PathBuf| -> Detector {
        Box::new(move || match verify_store(&d) {
            Ok(report) => !report.faults.is_empty(),
            Err(_) => true,
        })
    };
    formats.push((
        "store manifest (TINDIS)",
        store_dir.join("index.manifest"),
        store_detector(store_dir.clone()),
    ));
    formats.push((
        "store shard (TINDSH)",
        store_dir.join("g1-s0.shard"),
        store_detector(store_dir.clone()),
    ));
    formats.push((
        "store shard (TINDSH, second)",
        store_dir.join("g1-s1.shard"),
        store_detector(store_dir.clone()),
    ));

    // The arena layout (TINDSH v2) gets its own rows: its open path is
    // header-CRC-only, so deep verification must still catch head, body,
    // and trailer flips.
    let arena_dir = dir.join("arena.store");
    pack_store(
        &index,
        &arena_dir,
        &PackOptions {
            shards: 2,
            format: tind::core::store::ShardFormat::Arena,
            ..Default::default()
        },
    )
    .expect("pack arena store");
    formats.push((
        "arena shard (TINDSH v2)",
        arena_dir.join("g1-s0.shard"),
        store_detector(arena_dir.clone()),
    ));
    formats.push((
        "arena shard (TINDSH v2, second)",
        arena_dir.join("g1-s1.shard"),
        store_detector(arena_dir.clone()),
    ));

    for (name, path, detects) in &formats {
        assert!(!detects(), "{name}: pristine file must verify");
        let len = std::fs::metadata(path).expect("metadata").len() as usize;
        // Header (inside the magic), body, and trailer (inside the CRC).
        for offset in [3, len / 2, len - 2] {
            flip_file_byte(path, offset).expect("flip");
            assert!(
                detects(),
                "{name}: byte flip at offset {offset}/{len} went undetected"
            );
            // Flip back; the format must verify again (the detector is
            // really reacting to the corruption, not to a stale state).
            flip_file_byte(path, offset).expect("unflip");
            assert!(!detects(), "{name}: restored file must verify again");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A payload-corrupted TINDTF trace must be refused with the failing
/// byte offset named in the error, mirroring every other checksummed
/// format's refusal contract.
#[test]
fn corrupt_trace_refusal_names_the_byte_offset() {
    use tind::obs::trace as tr;
    let root = tr::alloc_context();
    tr::record_span(root, 0, "fault.offset.root", tr::now_ns(), 1_000);
    let text = tind::obs::collect_trace(root, &[]).to_json();
    assert!(tind::obs::verify_trace(&text).is_ok(), "pristine trace verifies");

    // Corrupt one payload byte without breaking JSON syntax: the stored
    // CRC no longer matches, and the refusal must name where.
    let corrupted = text.replacen("\"dropped\":", "\"dropPed\":", 1);
    assert_ne!(corrupted, text, "trace payload carries a `dropped` field");
    let err = tind::obs::verify_trace(&corrupted).expect_err("corruption detected");
    assert!(
        err.contains("byte offset"),
        "refusal must name the byte offset: {err}"
    );
}

/// Arena-specific refusal matrix. Body and trailer corruption must
/// surface as the *typed* [`BinIoError::Checksum`] carrying the failing
/// byte offset (that is what `tind verify` prints), and the zero-copy
/// open path — which never reads matrix words — must still refuse
/// truncated and misaligned mappings up front.
#[test]
fn arena_corruption_is_typed_with_offsets_and_bad_maps_are_refused() {
    use tind::core::fault::flip_file_byte;
    use tind::core::store::{
        open_store_with, pack_store, verify_store, OpenOptions, PackOptions, ShardFormat,
        StoreBacking, StoreError,
    };
    use tind::model::checksum::{crc32, TRAILER_LEN};

    let (dataset, index, _params) = small_world(80, 11);
    let dir = std::env::temp_dir().join("tind-fault-tolerance-arena");
    let _ = std::fs::remove_dir_all(&dir);
    pack_store(
        &index,
        &dir,
        &PackOptions { shards: 2, format: ShardFormat::Arena, ..Default::default() },
    )
    .expect("pack arena");
    let shard = dir.join("g1-s0.shard");
    let pristine = std::fs::read(&shard).expect("read shard");
    let len = pristine.len();
    let mmap_open = |expect_fault: bool| {
        let options =
            OpenOptions { backing: StoreBacking::Mmap, ..OpenOptions::default() };
        let (_, report) =
            open_store_with(&dir, dataset.clone(), &options).expect("open never hard-fails");
        assert_eq!(
            !report.is_clean(),
            expect_fault,
            "mmap open quarantine state: {report:?}"
        );
    };

    // Body flip: deep verify pins the trailer offset (the whole payload
    // hashes wrong, reported against the trailer position).
    flip_file_byte(&shard, len / 2).expect("flip body");
    let report = verify_store(&dir).expect("verify runs");
    assert_eq!(report.faults.len(), 1);
    match &report.faults[0].error {
        StoreError::Bin(BinIoError::Checksum { offset, .. }) => {
            assert_eq!(*offset, (len - TRAILER_LEN) as u64, "offset names the failing check");
        }
        // The manifest digest check may fire first, which is equally
        // typed — but the streaming CRC must be what names an offset.
        StoreError::ShardCorrupt { shard, .. } => assert_eq!(*shard, 0),
        other => panic!("body flip: expected a typed checksum fault, got {other}"),
    }
    std::fs::write(&shard, &pristine).expect("restore");

    // Trailer flip: same typed rejection.
    flip_file_byte(&shard, len - 1).expect("flip trailer");
    let report = verify_store(&dir).expect("verify runs");
    assert_eq!(report.faults.len(), 1, "trailer flip detected");
    std::fs::write(&shard, &pristine).expect("restore");

    // Header flip (inside the section table): the *open* path itself
    // refuses via the header CRC — zero-copy never trusts an unverified
    // header — and the shard is quarantined, not fatal.
    flip_file_byte(&shard, 50).expect("flip header");
    mmap_open(true);
    std::fs::write(&shard, &pristine).expect("restore");
    mmap_open(false);

    // Truncated map: the file no longer matches the manifest's committed
    // byte length, refused before any section is handed out.
    std::fs::write(&shard, &pristine[..len / 2]).expect("truncate");
    mmap_open(true);
    std::fs::write(&shard, &pristine).expect("restore");

    // Misaligned map: re-point section 0 at an offset that is not
    // 64-byte aligned and re-seal the header CRC so *only* the alignment
    // check can object. ARENA_FIXED_HEADER is 48; the section table's
    // first entry is its offset at byte 48.
    let mut warped = pristine.clone();
    let off = u64::from_le_bytes(warped[48..56].try_into().expect("8 bytes"));
    warped[48..56].copy_from_slice(&(off + 8).to_le_bytes());
    let table_end = (1usize..1024)
        .find(|&e| {
            // Recover the header-CRC position: fixed header + (targets+1)
            // section entries; scanning is cheap and avoids hardcoding
            // the target count.
            let end = 48 + e * 16;
            end + 4 <= pristine.len()
                && crc32(&pristine[..end])
                    == u32::from_le_bytes(pristine[end..end + 4].try_into().expect("4 bytes"))
        })
        .map(|e| 48 + e * 16)
        .expect("header CRC located");
    let seal = crc32(&warped[..table_end]);
    warped[table_end..table_end + 4].copy_from_slice(&seal.to_le_bytes());
    std::fs::write(&shard, &warped).expect("write misaligned");
    mmap_open(true);
    std::fs::write(&shard, &pristine).expect("restore");
    mmap_open(false);

    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized re-statement of the exhaustive boundary test: any seed,
    /// any kill point, any resume thread count — resuming yields exactly
    /// the uninterrupted pairs.
    #[test]
    fn prop_kill_anywhere_resume_identical(
        seed in 0u64..1000,
        kill_after in 0usize..30,
        resume_threads in 1usize..5,
    ) {
        let (_dataset, index, params) = small_world(22, seed);
        let full = discover_all_pairs(&index, &params, &AllPairsOptions::default())
            .expect("uninterrupted run");
        let path = ckpt_path(&format!("prop-{seed}-{kill_after}-{resume_threads}.tcp"));
        let _ = std::fs::remove_file(&path);

        let token = CancelToken::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let hook: FaultHook = {
            let token = token.clone();
            let counter = Arc::clone(&counter);
            Arc::new(move |_q| {
                if counter.fetch_add(1, Ordering::Relaxed) >= kill_after {
                    token.cancel();
                }
            })
        };
        discover_all_pairs(&index, &params, &AllPairsOptions {
            threads: 1,
            cancel: Some(token),
            checkpoint: Some(CheckpointPolicy::new(&path).every(1)),
            fault_hook: Some(hook),
            ..Default::default()
        }).expect("interrupted run");

        let cp = Checkpoint::read_file(&path).expect("checkpoint readable");
        prop_assert!(cp.verify_matches(&_dataset, &params).is_ok());
        let resumed = discover_all_pairs(&index, &params, &AllPairsOptions {
            threads: resume_threads,
            resume_from: Some(cp),
            ..Default::default()
        }).expect("resumed run");
        prop_assert_eq!(resumed.pairs, full.pairs);
        let _ = std::fs::remove_file(&path);
    }

    /// Any single bit flip in an encoded checkpoint is rejected.
    #[test]
    fn prop_checkpoint_bit_flips_rejected(bit_seed in 0usize..10_000) {
        let (dataset, _index, params) = small_world(10, 8);
        let mut cp = Checkpoint::fresh(&dataset, &params);
        cp.completed = vec![1, 3, 4];
        cp.pairs = vec![(1, 2)];
        let bytes = cp.encode();
        let bit = bit_seed % (bytes.len() * 8);
        let mut rotten = bytes.to_vec();
        flip_bit(&mut rotten, bit);
        prop_assert!(Checkpoint::decode(rotten.into()).is_err());
    }
}
