//! End-to-end request-tracing tests for the serve daemon.
//!
//! Tracing must be a pure observer: forced-sample traces change no
//! response bytes at any worker count, every request's `serve.exec` span
//! parents to exactly one `serve.wave` span (the coalesced execution it
//! shared), the exported `TINDTF` envelope round-trips bit-exactly
//! through parse → re-serialize, and a forced `/search` trace accounts
//! for ≥90% of the request's wall time.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tind::core::CancelToken;
use tind::datagen::{generate, GeneratorConfig};
use tind::model::Dataset;
use tind::obs::trace::trace_envelope;
use tind::obs::{json, verify_trace, ParsedTrace};
use tind::serve::{Engine, ServeConfig, Server};

const EPS: f64 = 3.0;
const DELTA: u32 = 7;

fn world() -> Arc<Dataset> {
    Arc::new(generate(&GeneratorConfig::small(90, 23)).dataset)
}

/// Sends one HTTP request with extra headers; returns
/// `(status, raw_header_block, body)`.
fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut head = format!("{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n", body.len());
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).expect("write");
    stream.write_all(body.as_bytes()).expect("write body");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status");
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

/// Drops the one wall-clock field, keeping everything else byte-exact.
fn strip_elapsed(body: &str) -> String {
    match json::parse(body).expect("serve responses are valid JSON") {
        json::Value::Obj(fields) => {
            json::Value::Obj(fields.into_iter().filter(|(k, _)| k != "elapsed_ms").collect())
                .to_json()
        }
        other => other.to_json(),
    }
}

/// Starts a server over `dataset`, runs `f` against its address, then
/// drains it and returns `f`'s result.
fn with_server<T>(
    dataset: Arc<Dataset>,
    config: ServeConfig,
    f: impl FnOnce(std::net::SocketAddr) -> T,
) -> T {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let shutdown = CancelToken::new();
    let handle = {
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            server.run(move || Ok(Engine::build(dataset, EPS, DELTA, None, 0)), shutdown)
        })
    };
    let ready = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = request(addr, "GET", "/healthz", "", &[]);
        if status == 200 && body.contains("\"serving\"") {
            break;
        }
        assert!(Instant::now() < ready, "server never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
    let out = f(addr);
    shutdown.cancel();
    handle.join().expect("server thread").expect("outcome");
    out
}

fn search_workload() -> Vec<(&'static str, String)> {
    let mut calls = Vec::new();
    for q in ["source-1", "source-2", "source-3", "source-4"] {
        calls.push(("/search", format!("{{\"query\":\"{q}\",\"limit\":50}}")));
        calls.push(("/reverse-search", format!("{{\"query\":\"{q}\",\"limit\":50}}")));
    }
    calls.push(("/explain", "{\"lhs\":\"source-1\",\"rhs\":\"source-2\"}".into()));
    calls
}

/// Runs the workload, forcing a trace on every request when `traced`,
/// and returns the elapsed-stripped bodies in order.
fn run_workload(dataset: Arc<Dataset>, workers: usize, traced: bool) -> Vec<String> {
    let config = ServeConfig { workers, ..ServeConfig::default() };
    with_server(dataset, config, |addr| {
        let headers: &[(&str, &str)] = if traced { &[("X-Tind-Trace", "1")] } else { &[] };
        search_workload()
            .into_iter()
            .map(|(path, body)| {
                let (status, head, response) = request(addr, "POST", path, &body, headers);
                assert_eq!(status, 200, "{path} {body} → {response}");
                if traced {
                    assert!(
                        head.contains("X-Tind-Trace-Id: 0x"),
                        "forced-sample responses must name their trace id\n{head}"
                    );
                }
                strip_elapsed(&response)
            })
            .collect()
    })
}

/// Tracing is observationally pure: forcing a trace on every request
/// changes no response bytes, at one worker and at four.
#[test]
fn traced_responses_are_byte_identical_to_untraced_at_both_worker_counts() {
    let dataset = world();
    let baseline = run_workload(dataset.clone(), 1, false);
    for workers in [1, 4] {
        let traced = run_workload(dataset.clone(), workers, true);
        assert_eq!(baseline.len(), traced.len());
        for (i, (a, b)) in baseline.iter().zip(&traced).enumerate() {
            assert_eq!(
                a, b,
                "workload item {i} diverged between untraced workers=1 \
                 and traced workers={workers}"
            );
        }
    }
}

/// Fetches `/debug/trace?format=tindtf`, verifies every line's checksum,
/// and returns the parsed traces in export order. A trace becomes
/// visible only once its wave closes (collection runs after the
/// response is written), so this polls until every id in `expect` is
/// exported.
fn fetch_traces(
    addr: std::net::SocketAddr,
    last: usize,
    expect: &[String],
) -> Vec<(String, ParsedTrace)> {
    let path = format!("/debug/trace?last={last}&format=tindtf");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, body) = request(addr, "GET", &path, "", &[]);
        assert_eq!(status, 200, "{body}");
        let traces: Vec<(String, ParsedTrace)> = body
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|line| {
                let payload = verify_trace(line).expect("every exported line verifies");
                let parsed = ParsedTrace::from_payload(&payload).expect("payload decodes");
                (format!("{line}\n"), parsed)
            })
            .collect();
        if expect.iter().all(|id| traces.iter().any(|(_, t)| t.trace_id == *id)) {
            return traces;
        }
        assert!(
            Instant::now() < deadline,
            "forced traces {expect:?} never all appeared in the export"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The core tentpole contract, checked per forced trace:
/// * the root `serve.request` span covers ≥90% of wall time through its
///   `serve.queued` / `serve.coalesced` / `serve.exec` children;
/// * `serve.exec` parents to exactly one `serve.wave` span, reached via
///   a `serve.wave_link` event — the coalesced wave the request shared;
/// * no event references a span that was never recorded.
fn assert_trace_shape(parsed: &ParsedTrace) {
    let root = parsed.root().expect("trace carries its root span");
    assert_eq!(root.name, "serve.request");
    assert_eq!(root.parent, "0x0", "the request span is the trace root");

    let spans_named = |name: &str| {
        parsed
            .events
            .iter()
            .filter(|e| e.kind == "span" && e.name == name)
            .collect::<Vec<_>>()
    };
    for stage in ["serve.queued", "serve.coalesced"] {
        let stage_spans = spans_named(stage);
        assert_eq!(stage_spans.len(), 1, "exactly one {stage} span");
        assert_eq!(stage_spans[0].parent, root.span, "{stage} hangs off the request root");
    }

    let execs = spans_named("serve.exec");
    assert_eq!(execs.len(), 1, "exactly one serve.exec span");
    let waves = spans_named("serve.wave");
    assert_eq!(waves.len(), 1, "exactly one serve.wave span is merged into the trace");
    assert_eq!(
        execs[0].parent, waves[0].span,
        "serve.exec must parent to the shared wave span"
    );

    let links: Vec<_> = parsed
        .events
        .iter()
        .filter(|e| e.kind == "link" && e.name == "serve.wave_link")
        .collect();
    assert_eq!(links.len(), 1, "one wave link per request");
    assert_eq!(links[0].span, waves[0].span, "the link targets the wave span");
    assert_eq!(links[0].parent, root.span, "the link hangs off the request root");

    assert_eq!(parsed.missing_parents(), 0, "no dangling span references");
    let coverage = parsed.coverage().expect("root span present");
    assert!(
        coverage >= 0.90,
        "stage spans must cover ≥90% of request wall time, got {coverage:.3}"
    );
}

/// Forced `/search` traces export through `/debug/trace` with full
/// stage coverage, a single shared wave parent, bit-exact `TINDTF`
/// round-trips, and a Chrome `trace_event` rendering.
#[test]
fn forced_search_traces_cover_wall_time_and_round_trip_bit_exactly() {
    let dataset = world();
    let config = ServeConfig { workers: 2, trace_last: 8, ..ServeConfig::default() };
    with_server(dataset, config, |addr| {
        let mut forced_ids = Vec::new();
        for q in ["source-1", "source-2", "source-3"] {
            let body = format!("{{\"query\":\"{q}\",\"limit\":50}}");
            let (status, head, _) =
                request(addr, "POST", "/search", &body, &[("X-Tind-Trace", "1")]);
            assert_eq!(status, 200);
            let id = head
                .lines()
                .find_map(|l| l.strip_prefix("X-Tind-Trace-Id: "))
                .expect("forced responses carry X-Tind-Trace-Id")
                .trim()
                .to_string();
            forced_ids.push(id);
        }

        let exported = fetch_traces(addr, 8, &forced_ids);
        for id in &forced_ids {
            let (line, parsed) = exported
                .iter()
                .find(|(_, t)| t.trace_id == *id)
                .unwrap_or_else(|| panic!("forced trace {id} must be exported"));
            assert_trace_shape(parsed);

            // Bit-exact round-trip: parse → re-serialize reproduces the
            // exported envelope byte for byte.
            assert_eq!(
                &trace_envelope(&parsed.to_value()),
                line,
                "TINDTF round-trip must be bit-exact"
            );

            // Chrome export: complete events for spans, instants for links.
            let chrome = parsed.to_chrome_json();
            assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
            assert!(chrome.contains("\"ph\":\"i\""), "{chrome}");
            assert!(chrome.contains("serve.request"), "{chrome}");
            assert!(chrome.contains("serve.wave"), "{chrome}");
        }

        // The JSON format serves the same traces with loss accounting.
        let (status, _, body) = request(addr, "GET", "/debug/trace?format=json", "", &[]);
        assert_eq!(status, 200);
        let doc = json::parse(&body).expect("json");
        assert!(doc.get("count").is_some(), "{body}");
        assert!(doc.get("dropped_spans_total").is_some(), "{body}");
        let traces = doc.get("traces").and_then(|v| v.as_arr()).expect("traces array");
        assert!(!traces.is_empty(), "forced traces are retained");
    });
}

/// A coalesced wave is genuinely shared: requests batched into the same
/// wave parent their `serve.exec` spans to the *same* wave span id.
#[test]
fn coalesced_requests_share_one_wave_span() {
    let dataset = world();
    // One worker + generous coalescing, and the first executed call
    // stalls 300 ms: the burst below queues behind it and is drained
    // into a shared wave deterministically.
    let tripped = Arc::new(std::sync::atomic::AtomicBool::new(true));
    let config = ServeConfig {
        workers: 1,
        coalesce: 16,
        trace_last: 16,
        fault_hook: Some(Arc::new({
            let tripped = Arc::clone(&tripped);
            move |_call: &tind::serve::ApiCall| {
                if tripped.swap(false, std::sync::atomic::Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(300));
                }
            }
        })),
        ..ServeConfig::default()
    };
    with_server(dataset, config, |addr| {
        // The staller trips the hook and occupies the only worker.
        let staller = std::thread::spawn(move || {
            let (status, _, _) =
                request(addr, "POST", "/search", "{\"query\":\"source-7\"}", &[]);
            assert_eq!(status, 200);
        });
        std::thread::sleep(Duration::from_millis(80));

        let queries: Vec<String> =
            (1..=6).map(|i| format!("{{\"query\":\"source-{i}\",\"limit\":50}}")).collect();
        let handles: Vec<_> = queries
            .into_iter()
            .map(|body| {
                std::thread::spawn(move || {
                    let (status, head, _) =
                        request(addr, "POST", "/search", &body, &[("X-Tind-Trace", "1")]);
                    assert_eq!(status, 200);
                    head.lines()
                        .find_map(|l| l.strip_prefix("X-Tind-Trace-Id: "))
                        .expect("trace id header")
                        .trim()
                        .to_string()
                })
            })
            .collect();
        let ids: Vec<String> = handles.into_iter().map(|h| h.join().expect("join")).collect();
        staller.join().expect("staller");

        let exported = fetch_traces(addr, 16, &ids);
        let mut wave_of = std::collections::HashMap::new();
        for id in &ids {
            let (_, parsed) = exported
                .iter()
                .find(|(_, t)| t.trace_id == *id)
                .unwrap_or_else(|| panic!("forced trace {id} must be exported"));
            assert_trace_shape(parsed);
            let wave = parsed
                .events
                .iter()
                .find(|e| e.kind == "span" && e.name == "serve.wave")
                .expect("wave span")
                .span
                .clone();
            *wave_of.entry(wave).or_insert(0usize) += 1;
        }
        // Six requests against one worker cannot each have run alone:
        // at least one wave span must be shared by several requests.
        assert!(
            wave_of.values().any(|&n| n >= 2),
            "expected at least one shared wave, got {wave_of:?}"
        );
    });
}
