//! End-to-end integration: generator → wikitext revision stream → wiki
//! extraction pipeline → tIND index → discovery, with ground truth checked
//! at the far end.

use std::sync::Arc;

use tind::core::{IndexConfig, SliceConfig, TindIndex, TindParams};
use tind::datagen::{generate, revisions::render_revisions, GeneratorConfig};
use tind::model::WeightFn;
use tind::wiki::{extract_dataset, PipelineConfig};

#[test]
fn extracted_dataset_supports_tind_discovery_of_planted_pairs() {
    let cfg = GeneratorConfig::small(60, 31);
    let generated = generate(&cfg);
    let revisions = render_revisions(&generated.dataset);
    let (extracted, report) = extract_dataset(revisions, &PipelineConfig::new(cfg.timeline_days));
    assert_eq!(report.attributes_kept, generated.dataset.len());

    let extracted = Arc::new(extracted);
    let index = TindIndex::build(
        extracted.clone(),
        IndexConfig {
            slices: SliceConfig::search_default(200.0, WeightFn::constant_one(), 45),
            ..IndexConfig::default()
        },
    );
    let generous = TindParams::weighted(200.0, 45, WeightFn::constant_one());

    // Every planted pair must be rediscoverable on the *extracted* dataset
    // (ids differ; map through names). Renamed pairs are exempt: they are
    // deliberately undiscoverable without σ-partial containment.
    for &(lhs, rhs) in generated.truth.genuine_pairs() {
        if matches!(
            generated.truth.kind(lhs),
            tind::datagen::AttrKind::Derived { renamed: true, .. }
        ) {
            continue;
        }
        let lhs_name =
            format!("Page {} ▸ Data ▸ Value", generated.dataset.attribute(lhs).name());
        let rhs_name =
            format!("Page {} ▸ Data ▸ Value", generated.dataset.attribute(rhs).name());
        let (lhs_id, _) = extracted.attribute_by_name(&lhs_name).expect("lhs extracted");
        let (rhs_id, _) = extracted.attribute_by_name(&rhs_name).expect("rhs extracted");
        let results = index.search(lhs_id, &generous).results;
        assert!(
            results.contains(&rhs_id),
            "planted pair {lhs_name} ⊆ {rhs_name} lost through the pipeline"
        );
    }
}

#[test]
fn pipeline_report_is_consistent_with_dataset() {
    let cfg = GeneratorConfig::small(40, 8);
    let generated = generate(&cfg);
    let revisions = render_revisions(&generated.dataset);
    let total_revisions = revisions.len();
    let (extracted, report) = extract_dataset(revisions, &PipelineConfig::new(cfg.timeline_days));
    assert_eq!(report.revisions, total_revisions);
    assert_eq!(report.pages, generated.dataset.len());
    assert_eq!(report.attributes_kept, extracted.len());
    assert!(report.attributes_before_filters >= report.attributes_kept);
    assert!(report.columns_tracked >= report.attributes_before_filters);
}

#[test]
fn dataset_file_roundtrip_preserves_search_results() {
    let cfg = GeneratorConfig::small(50, 12);
    let generated = generate(&cfg);
    let dir = std::env::temp_dir().join("tind-integration-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("roundtrip.tind");
    tind::model::binio::write_dataset_file(&generated.dataset, &path).expect("write");
    let reloaded = Arc::new(tind::model::binio::read_dataset_file(&path).expect("read"));
    std::fs::remove_file(&path).ok();

    let original = Arc::new(generated.dataset);
    let params = TindParams::paper_default();
    let idx1 = TindIndex::build(original.clone(), IndexConfig::default());
    let idx2 = TindIndex::build(reloaded.clone(), IndexConfig::default());
    for q in 0..original.len() as u32 {
        assert_eq!(
            idx1.search(q, &params).results,
            idx2.search(q, &params).results,
            "query {q} differs after file roundtrip"
        );
    }
}
