//! Corpus and parameter generators shared by the workspace test suites
//! (`proptests`, `validation_kernel`, `store_roundtrip`,
//! `delta_equivalence`).
//!
//! Two tiers:
//!
//! * Plain constructors (`dataset_of`, `world`, `weight_grid`, ...)
//!   callable from any `#[test]`, including under the offline rustc
//!   harness.
//! * [`history_strategy!`] — the raw proptest combinator for arbitrary
//!   version structures. It is a *macro*, not a `fn`, so suites that
//!   only invoke it inside `proptest!` blocks still compile against the
//!   offline proptest shim (which discards those blocks unexpanded);
//!   a module-level `impl Strategy` return type would not.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use tind::core::{IndexConfig, TindIndex, TindParams};
use tind::datagen::{generate, GeneratorConfig};
use tind::model::{
    AttributeHistory, Dataset, DatasetBuilder, HistoryBuilder, Timeline, ValueId, WeightFn,
};

/// The fixed small timeline every random-history suite runs on.
pub const TIMELINE: u32 = 60;

/// One attribute history as `(start, value-set)` runs.
pub type Versions = Vec<(u32, Vec<ValueId>)>;

/// Canonicalizes raw generated runs: chronological order, one version
/// per timestamp. `history_strategy!` applies this via `prop_map`.
pub fn canon(mut versions: Versions) -> Versions {
    versions.sort_by_key(|(t, _)| *t);
    versions.dedup_by_key(|(t, _)| *t);
    versions
}

/// The raw proptest combinator behind every random-history suite:
/// between 1 and 6 versions, starts in `0..TIMELINE-5`, values from the
/// 12-id universe `dataset_of` interns. Yields canonicalized
/// [`Versions`]. Usable both at module level (`q in history_strategy!()`)
/// and nested (`proptest::collection::vec(history_strategy!(), 2..8)`).
macro_rules! history_strategy {
    () => {
        proptest::collection::vec(
            (
                0u32..$crate::common::strategies::TIMELINE - 5,
                proptest::collection::vec(0u32..12, 0..6),
            ),
            1..6,
        )
        .prop_map($crate::common::strategies::canon)
    };
}
pub(crate) use history_strategy;

/// Builds one history; the attribute stays observed through `last` (or
/// its final version's start, whichever is later).
pub fn build_history(name: &str, versions: &[(u32, Vec<ValueId>)], last: u32) -> AttributeHistory {
    let mut b = HistoryBuilder::new(name);
    for (t, values) in versions {
        b.push(*t, values.clone());
    }
    b.finish(last.max(versions.last().expect("non-empty").0))
}

/// Assembles generated histories into a dataset over [`TIMELINE`],
/// pre-interning ids 0..12 so the strategy's raw `ValueId`s are
/// dictionary-valid.
pub fn dataset_of(histories: Vec<Versions>) -> Arc<Dataset> {
    let mut builder = DatasetBuilder::new(Timeline::new(TIMELINE));
    for v in 0..12 {
        builder.dictionary_mut().intern(&format!("value-{v}"));
    }
    for (i, versions) in histories.into_iter().enumerate() {
        builder.add_history(build_history(&format!("attr-{i}"), &versions, TIMELINE - 1));
    }
    Arc::new(builder.build())
}

/// The weight-function grid differential checks sweep: the closed-form
/// families plus an arbitrary per-timestamp table.
pub fn weight_grid(tl: Timeline) -> Vec<WeightFn> {
    let custom: Vec<f64> = (0..tl.len()).map(|t| 0.25 + 1.5 * f64::from(t % 7) / 7.0).collect();
    vec![
        WeightFn::constant_one(),
        WeightFn::uniform_normalized(tl),
        WeightFn::exponential(0.9, tl),
        WeightFn::linear(tl),
        WeightFn::piecewise(&custom),
    ]
}

/// A generated 200-attribute world with a built index: four 64-column
/// blocks, so shard counts 1, 2, 4 are all distinct partitions (and 4
/// is the maximum the layout allows).
pub fn world(seed: u64) -> (Arc<Dataset>, TindIndex, TindParams) {
    let dataset = Arc::new(generate(&GeneratorConfig::small(200, seed)).dataset);
    let config = IndexConfig { m: 256, ..IndexConfig::default() };
    let index = TindIndex::build(dataset.clone(), config);
    (dataset, index, TindParams::paper_default())
}

/// A fresh (pre-wiped) store directory under the system temp dir,
/// namespaced per suite so concurrent test binaries never collide.
pub fn store_dir(suite: &str, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tind-{suite}-tests")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The `.shard` files of a store directory, sorted by name.
pub fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("readdir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "shard"))
        .collect();
    files.sort();
    files
}
