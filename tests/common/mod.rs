//! Helpers shared by the workspace integration suites.
//!
//! Each file in `tests/` is its own crate root; this directory module is
//! pulled in with `mod common;` and is NOT itself a test target (both
//! cargo and the offline harness only treat `tests/*.rs` files as
//! roots). Every suite uses a different subset of the helpers — and the
//! offline harness's proptest shim discards `proptest!` blocks, taking
//! the `history_strategy!` expansions with them — so the module-wide
//! unused allows are deliberate.
#![allow(dead_code, unused_imports, unused_macros)]

pub mod strategies;
