//! # tind — temporal inclusion dependency discovery
//!
//! Facade crate re-exporting the full public API of the workspace: a Rust
//! implementation of *"Efficient Discovery of Temporal Inclusion
//! Dependencies in Wikipedia Tables"* (EDBT 2024).
//!
//! See the workspace README for a quickstart and `DESIGN.md` for the system
//! inventory.

pub use tind_baseline as baseline;
pub use tind_obs as obs;
pub use tind_bloom as bloom;
pub use tind_core as core;
pub use tind_datagen as datagen;
pub use tind_eval as eval;
pub use tind_model as model;
pub use tind_serve as serve;
pub use tind_wiki as wiki;
