#!/usr/bin/env bash
# Tier-1 CI gate.
#
# Networked path: release build, full test suite, and clippy with warnings
# denied (scoped to the workspace's own code; `--no-deps` keeps registry
# crates out of the lint run).
#
# Offline caveat: this container may have no route to the crates.io
# registry (nor a vendored copy or populated `$CARGO_HOME`), in which case
# cargo cannot resolve external dependencies at all and every cargo step
# fails before compiling a single workspace crate. When that happens we
# fall back to `devtools/offline-check/run.sh`, which typechecks the whole
# workspace and runs the unit/integration tests with plain rustc against
# minimal in-repo shims (see that script's header for its coverage gaps:
# proptest! blocks expand to nothing, criterion benches are only
# smoke-run, and the shim RNG is a different stream). To make the full
# path work offline, vendor the registry once while networked:
# `cargo vendor` + the printed `.cargo/config.toml` stanza.

set -euo pipefail
cd "$(dirname "$0")"

if cargo metadata --format-version 1 >/dev/null 2>&1; then
    cargo build --release
    cargo test -q
    cargo clippy --workspace --all-targets --no-deps -- -D warnings
    # Smoke the parallel-build/batched-search bench in Criterion's test
    # mode (one iteration per point) so the bench targets can't rot.
    TIND_BENCH_ATTRS=200 cargo bench -p tind-bench --bench batch_search -- --test
    TIND_BENCH_ATTRS=200 cargo bench -p tind-bench --bench validate_kernel -- --test
    # The obs overhead guard (plain binary, asserts <2% span cost) doubles
    # as the BENCH_obs.json emitter.
    # (absolute path: cargo bench runs the binary from the package dir)
    TIND_BENCH_ATTRS=200 TIND_BENCH_OBS_OUT="$PWD/target/BENCH_obs.json" \
        cargo bench -p tind-bench --bench obs_overhead
    # Run-report smoke: emit a TINDRR report through the real CLI and
    # validate it against the checked-in schema.
    cargo run --release -q -p tind-cli -- generate --attributes 120 --preset small \
        --seed 5 --out target/report-smoke.tind >/dev/null
    cargo run --release -q -p tind-cli -- all-pairs --data target/report-smoke.tind \
        --threads 2 --quiet --report target/report-smoke.json >/dev/null
    cargo run --release -q -p tind-cli -- verify target/report-smoke.json \
        --schema devtools/report-schema.json
    cargo run --release -q -p tind-cli -- verify target/BENCH_obs.json \
        --schema devtools/report-schema.json
    # Serve smoke: boot the query daemon, hit it over TCP, SIGINT-drain
    # it, and schema-verify the report it flushes on the way down.
    devtools/serve-smoke.sh target/release/tind target
    # Trace smoke: force-sample a /search trace, export it through
    # /debug/trace, and render + checksum-verify it with the CLI.
    devtools/trace-smoke.sh target/release/tind target
    # Store smoke: pack a sharded store, recover from simulated crash
    # debris, corrupt a shard, serve degraded, repair, promote.
    devtools/store-smoke.sh target/release/tind target
    # Update smoke: ingest a base dump, apply a delta dump with in-place
    # index maintenance, and pin the result byte-identical to a cold
    # rebuild (plus TINDUC kill/resume and the TINDRR report).
    devtools/update-smoke.sh target/release/tind target
    echo "ci: full cargo gate passed"
else
    echo "ci: cargo cannot reach a registry (offline, nothing vendored);"
    echo "ci: falling back to the shim-based offline check."
    devtools/offline-check/run.sh
fi
