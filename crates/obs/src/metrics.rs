//! Named counters, gauges, and histograms behind a global registry.
//!
//! * `Counter` — monotonically increasing `u64`, sharded across 16
//!   cache-line-padded atomics so concurrent workers don't bounce one
//!   line; `value()` sums the shards.
//! * `Gauge` — an `f64` stored as bits in an `AtomicU64`; supports
//!   `set`, `add`, and `set_max` (high-water marks).
//! * `Histogram` — 64 log2 buckets over `u64` samples (bucket *i* holds
//!   values whose bit length is *i*), plus a running sum.
//!
//! `counter("search.validations")` interns the name and leaks one
//! allocation per distinct metric, returning a `&'static` handle callers
//! cache; `reset_metrics()` zeroes values but keeps registrations, so
//! handles stay valid across runs. Names use dotted
//! `component.metric` form (see DESIGN.md §7 for the convention).

#[cfg(not(feature = "obs-off"))]
pub use enabled::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, Histogram,
};

#[cfg(feature = "obs-off")]
pub use disabled::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, Histogram,
};

/// Shards per counter; a power of two so the thread-slot mapping is a mask.
pub const COUNTER_SHARDS: usize = 16;

/// Log2 buckets per histogram.
pub const HIST_BUCKETS: usize = 64;

/// Point-in-time copy of one metric's value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter {
        total: u64,
        /// Per-shard partial sums; `total` is their sum (the report and
        /// the shard-sum property test both rely on that).
        shards: Vec<u64>,
    },
    Gauge(f64),
    Histogram {
        count: u64,
        sum: u64,
        /// Non-empty buckets as `(upper_bound, count)`; the bound is the
        /// largest value the bucket admits.
        buckets: Vec<(u64, u64)>,
    },
}

#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    pub name: String,
    pub value: MetricValue,
}

#[cfg(not(feature = "obs-off"))]
mod enabled {
    use super::{MetricSnapshot, MetricValue, COUNTER_SHARDS, HIST_BUCKETS};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// One atomic on its own cache line.
    #[repr(align(64))]
    struct Padded(AtomicU64);

    impl Padded {
        fn new() -> Self {
            Padded(AtomicU64::new(0))
        }
    }

    /// Round-robin shard assignment: each thread gets a stable slot.
    fn shard_index() -> usize {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
        }
        SLOT.with(|s| *s)
    }

    pub struct Counter {
        shards: [Padded; COUNTER_SHARDS],
    }

    impl Counter {
        fn new() -> Self {
            Counter { shards: std::array::from_fn(|_| Padded::new()) }
        }

        #[inline]
        pub fn add(&self, n: u64) {
            self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        }

        #[inline]
        pub fn incr(&self) {
            self.add(1);
        }

        pub fn value(&self) -> u64 {
            self.shard_values().iter().sum()
        }

        pub fn shard_values(&self) -> Vec<u64> {
            self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).collect()
        }

        fn reset(&self) {
            for s in &self.shards {
                s.0.store(0, Ordering::Relaxed);
            }
        }
    }

    pub struct Gauge {
        bits: AtomicU64,
    }

    impl Gauge {
        fn new() -> Self {
            Gauge { bits: AtomicU64::new(0f64.to_bits()) }
        }

        pub fn set(&self, v: f64) {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }

        pub fn get(&self) -> f64 {
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }

        pub fn add(&self, delta: f64) {
            let mut cur = self.bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + delta).to_bits();
                match self.bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(observed) => cur = observed,
                }
            }
        }

        /// Raise the gauge to `v` if `v` is larger (high-water mark).
        pub fn set_max(&self, v: f64) {
            let mut cur = self.bits.load(Ordering::Relaxed);
            loop {
                if f64::from_bits(cur) >= v {
                    return;
                }
                match self.bits.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(observed) => cur = observed,
                }
            }
        }

        fn reset(&self) {
            self.set(0.0);
        }
    }

    pub struct Histogram {
        buckets: [AtomicU64; HIST_BUCKETS],
        sum: AtomicU64,
    }

    impl Histogram {
        fn new() -> Self {
            Histogram {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
            }
        }

        /// Bucket index = bit length of the sample (0 stays in bucket 0),
        /// clamped to the last bucket.
        #[inline]
        pub fn record(&self, v: u64) {
            let idx = ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1);
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }

        pub fn count(&self) -> u64 {
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
        }

        pub fn sum(&self) -> u64 {
            self.sum.load(Ordering::Relaxed)
        }

        /// Non-empty `(upper_bound, count)` buckets in ascending order.
        pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
            self.buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (super::bucket_upper_bound(i), n))
                })
                .collect()
        }

        /// Estimated `q`-quantile (see [`super::histogram_quantile`]).
        pub fn quantile(&self, q: f64) -> u64 {
            super::histogram_quantile(&self.nonzero_buckets(), q)
        }

        fn reset(&self) {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.sum.store(0, Ordering::Relaxed);
        }
    }

    enum MetricRef {
        Counter(&'static Counter),
        Gauge(&'static Gauge),
        Histogram(&'static Histogram),
    }

    fn registry() -> &'static Mutex<Vec<(String, MetricRef)>> {
        static REGISTRY: OnceLock<Mutex<Vec<(String, MetricRef)>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn lock() -> MutexGuard<'static, Vec<(String, MetricRef)>> {
        registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Look up or create the counter named `name`. The handle is
    /// `&'static`; hot paths should call this once and reuse it.
    pub fn counter(name: &str) -> &'static Counter {
        let mut reg = lock();
        for (n, m) in reg.iter() {
            if n == name {
                match m {
                    MetricRef::Counter(c) => return c,
                    _ => panic!("metric `{name}` already registered with a different type"),
                }
            }
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        reg.push((name.to_string(), MetricRef::Counter(c)));
        c
    }

    pub fn gauge(name: &str) -> &'static Gauge {
        let mut reg = lock();
        for (n, m) in reg.iter() {
            if n == name {
                match m {
                    MetricRef::Gauge(g) => return g,
                    _ => panic!("metric `{name}` already registered with a different type"),
                }
            }
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        reg.push((name.to_string(), MetricRef::Gauge(g)));
        g
    }

    pub fn histogram(name: &str) -> &'static Histogram {
        let mut reg = lock();
        for (n, m) in reg.iter() {
            if n == name {
                match m {
                    MetricRef::Histogram(h) => return h,
                    _ => panic!("metric `{name}` already registered with a different type"),
                }
            }
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        reg.push((name.to_string(), MetricRef::Histogram(h)));
        h
    }

    /// Copy every registered metric, sorted by name.
    pub fn metrics_snapshot() -> Vec<MetricSnapshot> {
        let reg = lock();
        let mut out: Vec<MetricSnapshot> = reg
            .iter()
            .map(|(name, m)| MetricSnapshot {
                name: name.clone(),
                value: match m {
                    MetricRef::Counter(c) => MetricValue::Counter {
                        total: c.value(),
                        shards: c.shard_values(),
                    },
                    MetricRef::Gauge(g) => MetricValue::Gauge(g.get()),
                    MetricRef::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.nonzero_buckets(),
                    },
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Zero every metric's value; registrations (and `&'static` handles)
    /// survive, so one leaked allocation per distinct name is the cap.
    pub fn reset_metrics() {
        for (_, m) in lock().iter() {
            match m {
                MetricRef::Counter(c) => c.reset(),
                MetricRef::Gauge(g) => g.reset(),
                MetricRef::Histogram(h) => h.reset(),
            }
        }
    }
}

/// Largest value admitted by log2 bucket `i` (bit length == `i`). The
/// last bucket also absorbs bit-length-64 samples, so its bound is MAX.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Smallest value a bucket with upper bound `bound` admits (the bound of
/// the previous log2 bucket plus one).
fn bucket_lower_bound(bound: u64) -> u64 {
    if bound == 0 {
        0
    } else {
        bound / 2 + 1
    }
}

/// Estimate the `q`-quantile (0.0 ≤ q ≤ 1.0) of a log2-bucketed sample
/// set given ascending `(upper_bound, count)` pairs, as produced by
/// [`Histogram::nonzero_buckets`] or parsed back from a TINDRR report.
///
/// Nearest-rank selection locates the bucket; the value is then
/// log-linearly interpolated between the bucket's lower and upper bound
/// by the rank's position within it. Exact for single-value buckets
/// (0 and 1), at most one octave off otherwise — plenty for the p50/p90/
/// p99 latency attribution this feeds. Returns 0 for an empty histogram.
pub fn histogram_quantile(buckets: &[(u64, u64)], q: f64) -> u64 {
    let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    // Nearest-rank: the k-th smallest sample, 1-based.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for &(bound, n) in buckets {
        if seen + n >= rank {
            let lo = bucket_lower_bound(bound);
            if bound <= lo || n == 0 {
                return bound;
            }
            // Position of the rank inside this bucket, in (0, 1].
            let frac = (rank - seen) as f64 / n as f64;
            let est = lo as f64 + frac * (bound - lo) as f64;
            return est.round().min(bound as f64) as u64;
        }
        seen += n;
    }
    buckets.last().map_or(0, |&(bound, _)| bound)
}

#[cfg(feature = "obs-off")]
mod disabled {
    use super::{MetricSnapshot, COUNTER_SHARDS};

    pub struct Counter;
    pub struct Gauge;
    pub struct Histogram;

    static COUNTER: Counter = Counter;
    static GAUGE: Gauge = Gauge;
    static HISTOGRAM: Histogram = Histogram;

    impl Counter {
        #[inline(always)]
        pub fn add(&self, _n: u64) {}
        #[inline(always)]
        pub fn incr(&self) {}
        pub fn value(&self) -> u64 {
            0
        }
        pub fn shard_values(&self) -> Vec<u64> {
            vec![0; COUNTER_SHARDS]
        }
    }

    impl Gauge {
        #[inline(always)]
        pub fn set(&self, _v: f64) {}
        pub fn get(&self) -> f64 {
            0.0
        }
        #[inline(always)]
        pub fn add(&self, _delta: f64) {}
        #[inline(always)]
        pub fn set_max(&self, _v: f64) {}
    }

    impl Histogram {
        #[inline(always)]
        pub fn record(&self, _v: u64) {}
        pub fn count(&self) -> u64 {
            0
        }
        pub fn sum(&self) -> u64 {
            0
        }
        pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
            Vec::new()
        }
        pub fn quantile(&self, _q: f64) -> u64 {
            0
        }
    }

    pub fn counter(_name: &str) -> &'static Counter {
        &COUNTER
    }

    pub fn gauge(_name: &str) -> &'static Gauge {
        &GAUGE
    }

    pub fn histogram(_name: &str) -> &'static Histogram {
        &HISTOGRAM
    }

    pub fn metrics_snapshot() -> Vec<MetricSnapshot> {
        Vec::new()
    }

    pub fn reset_metrics() {}
}

// Property pin for the report invariant: a counter's total is exactly the
// sum of its per-worker shards, for any interleaving of adds across any
// number of threads. (The offline harness expands `proptest!` to nothing;
// `counter_totals_equal_shard_sums_across_threads` below is the fixed-shape
// pin of the same property that still runs there.)
#[cfg(all(test, not(feature = "obs-off")))]
#[allow(unused_imports)] // the offline shim expands `proptest!` to nothing
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn counter_total_equals_shard_sum(
            amounts in proptest::collection::vec(0u64..1_000, 1..64),
            threads in 1usize..8,
        ) {
            let _g = crate::test_guard();
            let c = counter("test.metrics.prop_shard_sum");
            let before = c.value();
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let amounts = amounts.clone();
                    std::thread::spawn(move || {
                        let c = counter("test.metrics.prop_shard_sum");
                        for &a in &amounts {
                            c.add(a);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let shards = c.shard_values();
            prop_assert_eq!(c.value(), shards.iter().sum::<u64>());
            prop_assert_eq!(
                c.value() - before,
                amounts.iter().sum::<u64>() * threads as u64
            );
        }
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn counter_totals_equal_shard_sums_across_threads() {
        let _g = crate::test_guard();
        let c = counter("test.metrics.shard_sum");
        let before = c.value();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let c = counter("test.metrics.shard_sum");
                    for k in 0..100u64 {
                        c.add((i + k) % 7);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let shards = c.shard_values();
        assert_eq!(shards.len(), COUNTER_SHARDS);
        assert_eq!(c.value(), shards.iter().sum::<u64>());
        let expected: u64 = (0..8u64).map(|i| (0..100).map(|k| (i + k) % 7).sum::<u64>()).sum();
        assert_eq!(c.value() - before, expected);
    }

    #[test]
    fn gauge_set_add_and_high_water() {
        let _g = crate::test_guard();
        let g = gauge("test.metrics.gauge");
        g.set(2.5);
        g.add(1.5);
        assert_eq!(g.get(), 4.0);
        g.set_max(3.0);
        assert_eq!(g.get(), 4.0);
        g.set_max(10.0);
        assert_eq!(g.get(), 10.0);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let _g = crate::test_guard();
        let h = histogram("test.metrics.hist");
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 0u64.wrapping_add(1 + 2 + 3 + 4 + 1000).wrapping_add(u64::MAX));
        let buckets = h.nonzero_buckets();
        // 0 → bound 0; 1 → bound 1; 2,3 → bound 3; 4 → bound 7; 1000 → bound 1023.
        assert!(buckets.contains(&(0, 1)));
        assert!(buckets.contains(&(1, 1)));
        assert!(buckets.contains(&(3, 2)));
        assert!(buckets.contains(&(7, 1)));
        assert!(buckets.contains(&(1023, 1)));
        assert!(buckets.contains(&(u64::MAX, 1)));
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        let _g = crate::test_guard();
        // Degenerate cases first: empty, and single-value buckets.
        assert_eq!(histogram_quantile(&[], 0.5), 0);
        assert_eq!(histogram_quantile(&[(0, 10)], 0.99), 0);
        assert_eq!(histogram_quantile(&[(1, 4)], 0.5), 1);

        // 100 samples in the [512, 1023] bucket: every quantile lands
        // inside the bucket, ordered by rank.
        let b = [(1023u64, 100u64)];
        let p50 = histogram_quantile(&b, 0.50);
        let p90 = histogram_quantile(&b, 0.90);
        let p99 = histogram_quantile(&b, 0.99);
        assert!((512..=1023).contains(&p50));
        assert!(p50 <= p90 && p90 <= p99 && p99 <= 1023);

        // Two buckets, 90 low + 10 high: p50 stays low, p99 lands high.
        let b = [(15u64, 90u64), (1023u64, 10u64)];
        assert!(histogram_quantile(&b, 0.50) <= 15);
        assert!(histogram_quantile(&b, 0.99) >= 512);

        // Live histogram agrees with the free function on its own buckets.
        let h = histogram("test.metrics.quantile");
        for v in [1u64, 2, 4, 8, 16, 700, 700, 700, 700, 70_000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), histogram_quantile(&h.nonzero_buckets(), 0.5));
        assert!(h.quantile(0.0) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(1.0));
        assert!(h.quantile(1.0) >= 65_536, "max quantile reaches the top bucket");
    }

    #[test]
    fn registry_interns_and_snapshots() {
        let _g = crate::test_guard();
        let a = counter("test.metrics.interned");
        let b = counter("test.metrics.interned");
        assert!(std::ptr::eq(a, b));
        a.add(3);
        let snap = metrics_snapshot();
        let mine = snap.iter().find(|m| m.name == "test.metrics.interned").unwrap();
        match &mine.value {
            MetricValue::Counter { total, shards } => {
                assert!(*total >= 3);
                assert_eq!(*total, shards.iter().sum::<u64>());
            }
            other => panic!("wrong type: {other:?}"),
        }
        // Snapshot is name-sorted.
        let names: Vec<_> = snap.iter().map(|m| m.name.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_valid() {
        let _g = crate::test_guard();
        let c = counter("test.metrics.reset");
        c.add(41);
        reset_metrics();
        assert_eq!(c.value(), 0);
        c.incr();
        assert_eq!(c.value(), 1);
    }
}
