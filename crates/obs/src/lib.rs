//! # tind-obs — hand-rolled observability for the tIND workspace
//!
//! Spans, a metrics registry, and checksummed `TINDRR` run reports, built
//! on `std` alone so the offline rustc harness (and the air-gapped CI
//! path) keeps working — no `tracing`, no `metrics`, no serde.
//!
//! * [`span`] — hierarchical wall-time spans with allocation-free
//!   enter/exit; per-thread ring buffers + aggregates, merged at run end.
//! * [`trace`] — request-scoped tracing: explicit-parent interval events
//!   under a propagated [`TraceContext`], per-thread bounded rings, and
//!   the checksummed `TINDTF` / Chrome `trace_event` exporters.
//! * [`metrics`] — named counters (sharded atomics), gauges, and
//!   log2-bucket histograms (with p50/p90/p99 estimation) behind an
//!   interning registry.
//! * [`history`] — a fixed-size ring of periodic registry snapshots
//!   (delta-encoded counters) for `GET /metrics/history` and TINDRR.
//! * [`report`] — the `TINDRR` JSON artifact (`--report <path>`): phase
//!   timings, span aggregates, metric values, CRC-32 checksum, plus a
//!   schema-subset validator for `devtools/report-schema.json`.
//! * [`reporter`] — shared progress/stats line policy and formatting for
//!   the CLI (quiet/interval handling, uniform duration/rate/ETA shapes).
//! * [`json`] — the minimal canonical JSON model the above ride on.
//!
//! Span/metric state is process-global by design: one CLI invocation is
//! one run. [`reset`] clears it (the CLI calls this as dispatch starts).
//!
//! ## Metric families
//!
//! Producers register names lazily, so the registry only carries what a
//! run touched. Established families: `search.*` / `allpairs.*` /
//! `index.*` / `ingest.*` / `memory.*` from the pipeline crates, and the
//! `tind-serve` daemon's `serve.*` family — `serve.connections`,
//! `serve.requests`, `serve.responses_ok`, `serve.responses_error`,
//! `serve.shed_queue`, `serve.shed_memory`, `serve.panics`,
//! `serve.deadline_timeouts`, `serve.draining_rejects`, `serve.waves`,
//! `serve.coalesced_requests` (counters), `serve.queue_depth` (gauge),
//! and `serve.wave_size` / `serve.request_latency_ns` plus the
//! per-endpoint attribution split
//! `serve.latency.{search,reverse_search,explain}.{queued,coalesced,exec}_ns`
//! (histograms). The observability layer reports on itself through
//! `obs.spans.dropped_total`, counting events lost to span- or
//! trace-ring overflow. [`metrics_value`] snapshots the registry in the
//! exact JSON shape the `TINDRR` report embeds, which is also what
//! `/metrics` serves.
//!
//! Building with the `obs-off` feature compiles spans and metrics down to
//! no-ops (zero-sized guards, inert shared metric handles); reports can
//! still be emitted but carry only wall time. A bench
//! (`crates/bench/benches/obs_overhead.rs`) asserts the enabled layer
//! stays under 2% of stage-4 validation cost.

pub mod history;
pub mod json;
pub mod metrics;
pub mod report;
pub mod reporter;
pub mod span;
pub mod trace;

pub use history::{history_tick, history_value, set_history_capacity};
pub use json::Value;
pub use metrics::{counter, gauge, histogram, histogram_quantile, metrics_snapshot, Counter,
    Gauge, Histogram, MetricSnapshot, MetricValue};
pub use report::{crc32, metrics_value, validate_schema, verify_report, RunReport, REPORT_MAGIC,
    REPORT_PREFIX, SCHEMA_VERSION};
pub use reporter::{fmt_duration_ns, fmt_eta_secs, fmt_pipeline, fmt_rate,
    fmt_validation_summary, Reporter};
pub use span::{recent_spans, span, span_snapshot, SpanEvent, SpanGuard, SpanStats};
pub use trace::{collect_trace, verify_trace, ParsedEvent, ParsedTrace, TraceContext,
    TraceEvent, TraceEventKind, TraceSnapshot, TraceSpan, TRACE_MAGIC, TRACE_PREFIX};

/// Clear all recorded spans, trace events, metrics, and history ticks.
/// Call once at the start of a run (the CLI does this in `dispatch`);
/// `&'static` metric handles stay valid.
pub fn reset() {
    span::reset_spans();
    trace::reset_traces();
    metrics::reset_metrics();
    history::reset_history();
}

/// Serializes tests that touch the process-global span/metric state.
#[cfg(test)]
#[allow(dead_code)] // unused when `obs-off` compiles the stateful tests out
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn reset_clears_spans_and_metrics_together() {
        let _g = crate::test_guard();
        crate::counter("test.lib.reset").add(5);
        {
            let _s = crate::span("test.lib.reset_span");
        }
        crate::reset();
        assert_eq!(crate::counter("test.lib.reset").value(), 0);
        assert!(crate::span_snapshot().iter().all(|s| s.name != "test.lib.reset_span"));
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_is_inert_but_api_complete() {
        let c = crate::counter("test.lib.off");
        c.add(5);
        assert_eq!(c.value(), 0);
        {
            let _s = crate::span("test.lib.off_span");
        }
        assert!(crate::span_snapshot().is_empty());
        crate::gauge("g").set(1.0);
        assert_eq!(crate::gauge("g").get(), 0.0);
        crate::histogram("h").record(7);
        assert_eq!(crate::histogram("h").count(), 0);
        crate::reset();
        let report = crate::RunReport::collect("off", &[], 100);
        assert!(crate::verify_report(&report.to_json()).is_ok());
    }
}
