//! Minimal JSON value model with a canonical writer and a strict parser.
//!
//! The run-report checksum covers the *serialized payload bytes*, so the
//! writer must be deterministic: objects preserve insertion order, no
//! whitespace is emitted, numbers use Rust's shortest-roundtrip `f64`
//! formatting (integral values within `2^53` print without a fraction),
//! and string escapes are fixed. Re-serializing a parsed document that
//! this writer produced yields the identical bytes, which is what lets
//! `verify_report` recompute the CRC.

use std::fmt::Write as _;

/// Largest integer magnitude `f64` represents exactly.
const MAX_SAFE_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// Nesting depth cap for the parser (defense against stack overflow on
/// adversarial input handed to `tind verify`).
const MAX_DEPTH: usize = 128;

/// An owned JSON document. Objects are ordered key/value vectors, not
/// maps: report sections render in the order they were inserted.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Integers above 2^53 lose precision as `f64`; callers encode those
    /// (fingerprints, checksums) as hex strings instead.
    pub fn num(v: f64) -> Value {
        Value::Num(v)
    }

    /// Object field lookup (first match; canonical documents have unique keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a field, preserving the position of an existing key.
    pub fn set(&mut self, key: &str, value: Value) {
        if let Value::Obj(fields) = self {
            match fields.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => fields.push((key.to_string(), value)),
            }
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Canonical serialization: compact, insertion-ordered, deterministic.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(v) => write_num(*v, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        // NaN/inf have no JSON spelling; null keeps the document parseable.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() <= MAX_SAFE_INT {
        let _ = write!(out, "{}", v as i64);
    } else {
        // Rust's Display for f64 is shortest-roundtrip, so
        // parse(write(v)) == v and write(parse(write(v))) == write(v).
        let _ = write!(out, "{v}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Strict recursive-descent parser. Accepts standard JSON (including
/// escapes the canonical writer never emits, so hand-written schema files
/// parse too); rejects trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes (UTF-8 passes through verbatim).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: input is &str and we only stopped on ASCII bytes,
                // so the run is valid UTF-8 on char boundaries.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.eat(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xdc00..0xe000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?,
                );
            }
            _ => return Err(self.err("invalid escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_canonical_scalars() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::Num(0.0).to_json(), "0");
        assert_eq!(Value::Num(42.0).to_json(), "42");
        assert_eq!(Value::Num(-3.0).to_json(), "-3");
        assert_eq!(Value::Num(0.5).to_json(), "0.5");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::str("a\"b\\c\nd").to_json(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn preserves_object_insertion_order() {
        let v = Value::obj([
            ("zebra", Value::Num(1.0)),
            ("alpha", Value::Num(2.0)),
            ("mid", Value::Arr(vec![Value::Bool(false), Value::Null])),
        ]);
        assert_eq!(v.to_json(), "{\"zebra\":1,\"alpha\":2,\"mid\":[false,null]}");
    }

    #[test]
    fn roundtrips_written_documents_byte_identically() {
        let doc = Value::obj([
            ("name", Value::str("índice tíndalo \u{1F600} \t end")),
            ("ints", Value::Arr((0..5).map(|i| Value::Num(i as f64 * 1e12)).collect())),
            ("floats", Value::Arr(vec![Value::Num(0.1), Value::Num(2.5e-7), Value::Num(1e300)])),
            ("nested", Value::obj([("deep", Value::obj([("x", Value::Num(-0.0))]))])),
        ]);
        let text = doc.to_json();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn parses_foreign_escapes_and_whitespace() {
        let v = parse(" { \"k\" : \"a\\/b\\u0041\\ud83d\\ude00\" , \"n\" : -1.5e2 } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_str().unwrap(), "a/bA\u{1F600}");
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), -150.0);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"\\u12\"", "1 2", "\"\\ud800x\""] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn set_replaces_in_place_and_appends() {
        let mut v = Value::obj([("a", Value::Num(1.0)), ("b", Value::Num(2.0))]);
        v.set("a", Value::Num(9.0));
        v.set("c", Value::Num(3.0));
        assert_eq!(v.to_json(), "{\"a\":9,\"b\":2,\"c\":3}");
    }
}
