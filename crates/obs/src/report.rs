//! `TINDRR` run reports: checksummed JSON snapshots of one run's spans
//! and metrics, emitted by the CLI's `--report <path>`.
//!
//! On-disk shape (one line, canonical serialization):
//!
//! ```json
//! {"magic":"TINDRR1","crc32":<u32>,"payload":{...}}
//! ```
//!
//! The CRC-32 (same polynomial as the binary artifact trailers) covers
//! the canonically serialized payload bytes, so `verify_report` can
//! recompute it after parsing. The payload carries:
//!
//! * `schema_version`, `command`, `args`, `wall_ns`
//! * `phases` — spans whose name starts with `phase.` (the CLI wraps
//!   each coarse stage of a command in one), plus `phase_coverage`
//!   (Σ phase time / wall time; the acceptance bar is ≥ 0.9)
//! * `spans` — every span aggregate (name, count, total_ns, max_ns)
//! * `metrics` — `counters` (with per-shard partials), `gauges`,
//!   `histograms` (log2 buckets)
//! * any extra sections a command appends (e.g. index diagnostics)
//!
//! `devtools/report-schema.json` pins this shape; `validate_schema`
//! implements the JSON-Schema subset the file uses.

use crate::json::{self, Value};
use crate::metrics::{metrics_snapshot, MetricValue};
use crate::span::span_snapshot;

/// Magic string identifying a run report ("TINDRR" + format version).
pub const REPORT_MAGIC: &str = "TINDRR1";

/// Version of the payload layout, bumped on breaking schema changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Prefix that marks a span as a coarse CLI phase.
pub const PHASE_PREFIX: &str = "phase.";

/// Leading bytes of a serialized report; `tind verify` sniffs these the
/// way it sniffs the binary artifact magics.
pub const REPORT_PREFIX: &str = "{\"magic\":\"TINDRR";

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) — bit-serial; reports are
/// small and this keeps the crate table-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(crc & 1));
        }
    }
    !crc
}

/// Snapshot the whole metric registry as the canonical `metrics` JSON
/// object: `{"counters":[...],"gauges":[...],"histograms":[...]}`.
///
/// This is the same shape embedded in a `TINDRR` report payload; the
/// serve daemon's `/metrics` endpoint returns it directly so a scrape
/// and a final report agree field-for-field.
pub fn metrics_value() -> Value {
    // Intern the ring-overflow drop counter up front so scrapes and
    // reports always list it — a 0 reading is the "no data was lost"
    // signal, which matters as much as a nonzero one.
    crate::metrics::counter(crate::span::DROPPED_COUNTER);
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for m in metrics_snapshot() {
        match m.value {
            MetricValue::Counter { total, shards } => counters.push(Value::obj([
                ("name", Value::str(m.name)),
                ("total", Value::num(total as f64)),
                (
                    "shards",
                    Value::Arr(shards.into_iter().map(|s| Value::num(s as f64)).collect()),
                ),
            ])),
            MetricValue::Gauge(v) => gauges.push(Value::obj([
                ("name", Value::str(m.name)),
                ("value", Value::num(v)),
            ])),
            MetricValue::Histogram { count, sum, buckets } => {
                histograms.push(Value::obj([
                    ("name", Value::str(m.name)),
                    ("count", Value::num(count as f64)),
                    ("sum", Value::num(sum as f64)),
                    (
                        "p50",
                        Value::num(crate::metrics::histogram_quantile(&buckets, 0.50) as f64),
                    ),
                    (
                        "p90",
                        Value::num(crate::metrics::histogram_quantile(&buckets, 0.90) as f64),
                    ),
                    (
                        "p99",
                        Value::num(crate::metrics::histogram_quantile(&buckets, 0.99) as f64),
                    ),
                    (
                        "buckets",
                        Value::Arr(
                            buckets
                                .into_iter()
                                .map(|(bound, n)| {
                                    // u64::MAX exceeds f64's exact range;
                                    // bounds ride along as hex strings.
                                    Value::obj([
                                        ("le", Value::str(format!("{bound:#x}"))),
                                        ("count", Value::num(n as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]))
            }
        }
    }
    Value::obj([
        ("counters", Value::Arr(counters)),
        ("gauges", Value::Arr(gauges)),
        ("histograms", Value::Arr(histograms)),
    ])
}

/// An in-memory run report: the payload object, ready to extend with
/// command-specific sections and serialize.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    payload: Value,
}

impl RunReport {
    /// Snapshot the current span aggregates and metric registry into a
    /// payload. `wall_ns` is the caller-measured wall time of the run;
    /// phase coverage is computed against it.
    pub fn collect(command: &str, args: &[String], wall_ns: u64) -> RunReport {
        let spans = span_snapshot();

        let phase_total: u64 = spans
            .iter()
            .filter(|s| s.name.starts_with(PHASE_PREFIX))
            .map(|s| s.total_ns)
            .sum();
        let coverage = if wall_ns == 0 { 0.0 } else { phase_total as f64 / wall_ns as f64 };

        let span_value = |name: &str, count: u64, total_ns: u64, max_ns: u64| {
            Value::obj([
                ("name", Value::str(name)),
                ("count", Value::num(count as f64)),
                ("total_ns", Value::num(total_ns as f64)),
                ("max_ns", Value::num(max_ns as f64)),
            ])
        };

        let phases: Vec<Value> = spans
            .iter()
            .filter(|s| s.name.starts_with(PHASE_PREFIX))
            .map(|s| span_value(s.name, s.count, s.total_ns, s.max_ns))
            .collect();
        let all_spans: Vec<Value> = spans
            .iter()
            .map(|s| span_value(s.name, s.count, s.total_ns, s.max_ns))
            .collect();

        let mut payload = Value::obj([
            ("schema_version", Value::num(SCHEMA_VERSION as f64)),
            ("command", Value::str(command)),
            ("args", Value::Arr(args.iter().map(Value::str).collect())),
            ("wall_ns", Value::num(wall_ns as f64)),
            ("phase_coverage", Value::num(coverage)),
            ("phases", Value::Arr(phases)),
            ("spans", Value::Arr(all_spans)),
            ("metrics", metrics_value()),
        ]);
        // Long-running commands that ticked the metrics-history ring get
        // their time series embedded; one-shot commands stay compact.
        if crate::history::history_len() > 0 {
            payload.set("metrics_history", crate::history::history_value());
        }
        RunReport { payload }
    }

    /// Append (or replace) a command-specific section in the payload.
    pub fn insert_section(&mut self, name: &str, value: Value) {
        self.payload.set(name, value);
    }

    pub fn payload(&self) -> &Value {
        &self.payload
    }

    /// Fraction of wall time covered by `phase.*` spans.
    pub fn phase_coverage(&self) -> f64 {
        self.payload.get("phase_coverage").and_then(Value::as_f64).unwrap_or(0.0)
    }

    /// Serialize with magic + CRC envelope (trailing newline included).
    pub fn to_json(&self) -> String {
        let body = self.payload.to_json();
        let crc = crc32(body.as_bytes());
        format!("{{\"magic\":\"{REPORT_MAGIC}\",\"crc32\":{crc},\"payload\":{body}}}\n")
    }
}

/// Parse and integrity-check a serialized report; returns the payload.
pub fn verify_report(text: &str) -> Result<Value, String> {
    let doc = json::parse(text.trim_end()).map_err(|e| e.to_string())?;
    match doc.get("magic").and_then(Value::as_str) {
        Some(REPORT_MAGIC) => {}
        Some(other) => return Err(format!("unsupported report magic `{other}`")),
        None => return Err("missing `magic` field".to_string()),
    }
    let stored = doc
        .get("crc32")
        .and_then(Value::as_f64)
        .ok_or_else(|| "missing `crc32` field".to_string())?;
    let payload = doc.get("payload").ok_or_else(|| "missing `payload` field".to_string())?;
    let actual = crc32(payload.to_json().as_bytes());
    if stored != f64::from(actual) {
        return Err(format!("checksum mismatch: stored {stored}, computed {actual}"));
    }
    Ok(payload.clone())
}

/// Validate `value` against a JSON-Schema subset: `type` (string or list),
/// `required`, `properties`, `items`, `enum`, `minimum`, `maximum`.
/// Unknown object fields are allowed (reports may carry extra sections).
/// Returns human-readable errors with `$`-rooted paths; empty = valid.
pub fn validate_schema(value: &Value, schema: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    check(value, schema, "$", &mut errors);
    errors
}

fn type_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Arr(_) => "array",
        Value::Obj(_) => "object",
    }
}

fn type_matches(value: &Value, wanted: &str) -> bool {
    match wanted {
        "integer" => matches!(value, Value::Num(v) if v.fract() == 0.0),
        other => type_name(value) == other,
    }
}

fn check(value: &Value, schema: &Value, path: &str, errors: &mut Vec<String>) {
    if errors.len() >= 64 {
        return; // enough to act on; don't flood on totally-wrong documents
    }
    if let Some(ty) = schema.get("type") {
        let ok = match ty {
            Value::Str(s) => type_matches(value, s),
            Value::Arr(options) => options
                .iter()
                .filter_map(Value::as_str)
                .any(|s| type_matches(value, s)),
            _ => true,
        };
        if !ok {
            errors.push(format!("{path}: expected type {}, got {}", ty.to_json(), type_name(value)));
            return;
        }
    }
    if let Some(Value::Arr(allowed)) = schema.get("enum") {
        if !allowed.contains(value) {
            errors.push(format!("{path}: value {} not in enum", value.to_json()));
        }
    }
    if let (Some(min), Some(v)) = (schema.get("minimum").and_then(Value::as_f64), value.as_f64()) {
        if v < min {
            errors.push(format!("{path}: {v} below minimum {min}"));
        }
    }
    if let (Some(max), Some(v)) = (schema.get("maximum").and_then(Value::as_f64), value.as_f64()) {
        if v > max {
            errors.push(format!("{path}: {v} above maximum {max}"));
        }
    }
    if let Some(Value::Arr(required)) = schema.get("required") {
        for key in required.iter().filter_map(Value::as_str) {
            if value.get(key).is_none() {
                errors.push(format!("{path}: missing required field `{key}`"));
            }
        }
    }
    if let Some(Value::Obj(props)) = schema.get("properties") {
        for (key, sub) in props {
            if let Some(field) = value.get(key) {
                check(field, sub, &format!("{path}.{key}"), errors);
            }
        }
    }
    if let (Some(items), Some(elems)) = (schema.get("items"), value.as_arr()) {
        for (i, elem) in elems.iter().enumerate() {
            check(elem, items, &format!("{path}[{i}]"), errors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn collect_serialize_verify_roundtrip() {
        let _g = crate::test_guard();
        crate::reset();
        crate::metrics::counter("test.report.counter").add(7);
        crate::metrics::gauge("test.report.gauge").set(0.25);
        crate::metrics::histogram("test.report.hist").record(100);
        {
            let _p = crate::span::span("phase.test");
        }
        let mut report =
            RunReport::collect("unit-test", &["--flag".to_string()], 1_000_000);
        report.insert_section("extra", Value::obj([("answer", Value::num(42.0))]));

        let text = report.to_json();
        assert!(text.starts_with(REPORT_PREFIX));
        let payload = verify_report(&text).expect("roundtrip verifies");
        assert_eq!(payload.get("command").unwrap().as_str().unwrap(), "unit-test");
        assert_eq!(
            payload.get("extra").unwrap().get("answer").unwrap().as_f64().unwrap(),
            42.0
        );
        let phases = payload.get("phases").unwrap().as_arr().unwrap();
        assert!(phases
            .iter()
            .any(|p| p.get("name").unwrap().as_str() == Some("phase.test")));
        let counters = payload.get("metrics").unwrap().get("counters").unwrap().as_arr().unwrap();
        let c = counters
            .iter()
            .find(|c| c.get("name").unwrap().as_str() == Some("test.report.counter"))
            .unwrap();
        assert_eq!(c.get("total").unwrap().as_f64().unwrap(), 7.0);
        let shard_sum: f64 = c
            .get("shards")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| s.as_f64().unwrap())
            .sum();
        assert_eq!(shard_sum, 7.0);
    }

    #[test]
    fn tampering_fails_verification() {
        let report = RunReport::collect("t", &[], 10);
        let text = report.to_json();
        let tampered = text.replace("\"wall_ns\":10", "\"wall_ns\":11");
        assert_ne!(text, tampered);
        assert!(verify_report(&tampered).unwrap_err().contains("checksum"));
        assert!(verify_report("{\"magic\":\"NOPE\",\"crc32\":0,\"payload\":{}}")
            .unwrap_err()
            .contains("magic"));
    }

    #[test]
    fn schema_subset_validates_and_reports_paths() {
        let schema = json::parse(
            r#"{
                "type": "object",
                "required": ["name", "count"],
                "properties": {
                    "name": {"type": "string"},
                    "count": {"type": "integer", "minimum": 0},
                    "tags": {"type": "array", "items": {"type": "string"}},
                    "mode": {"enum": ["fast", "slow"]}
                }
            }"#,
        )
        .unwrap();

        let good = json::parse(
            r#"{"name":"x","count":3,"tags":["a","b"],"mode":"fast","extra":true}"#,
        )
        .unwrap();
        assert!(validate_schema(&good, &schema).is_empty());

        let bad = json::parse(r#"{"count":-1.5,"tags":["a",7],"mode":"medium"}"#).unwrap();
        let errors = validate_schema(&bad, &schema);
        assert!(errors.iter().any(|e| e.contains("missing required field `name`")));
        assert!(errors.iter().any(|e| e.contains("$.count")));
        assert!(errors.iter().any(|e| e.contains("$.tags[1]")));
        assert!(errors.iter().any(|e| e.contains("not in enum")));
    }
}
