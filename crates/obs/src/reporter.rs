//! One voice for CLI progress and stats lines.
//!
//! Before this module the four command families (search, batch search,
//! reverse, all-pairs) each formatted their own progress and summary
//! lines, and `ingest` printed rates as `{:.0}/s` while `all-pairs`
//! printed none at all. `Reporter` centralizes the quiet/interval policy
//! and the formatting helpers give every path the same shapes:
//! durations as `1.23s` / `45.6ms`, rates as `123.4 unit/s`, ETAs as
//! `~12s left`.
//!
//! This module is always compiled (it has no span/metric state), so
//! `--quiet` behaves identically under `obs-off`.

/// Progress/stat emission policy for one command invocation.
#[derive(Clone, Copy, Debug)]
pub struct Reporter {
    quiet: bool,
    /// Emit a progress line every `every` items; 0 disables progress.
    every: usize,
}

impl Reporter {
    pub fn new(quiet: bool, every: usize) -> Reporter {
        Reporter { quiet, every }
    }

    pub fn quiet(&self) -> bool {
        self.quiet
    }

    /// Progress interval in items (0 when progress is disabled).
    pub fn every(&self) -> usize {
        if self.quiet {
            0
        } else {
            self.every
        }
    }

    /// Should a progress line fire after finishing item number `done`?
    pub fn tick(&self, done: usize) -> bool {
        let every = self.every();
        every != 0 && done % every == 0
    }

    /// Progress lines go to stderr so piped stdout stays machine-readable.
    pub fn progress(&self, line: impl AsRef<str>) {
        if !self.quiet {
            eprintln!("{}", line.as_ref());
        }
    }

    /// Human-facing result/summary lines go to stdout.
    pub fn stat(&self, line: impl AsRef<str>) {
        if !self.quiet {
            println!("{}", line.as_ref());
        }
    }
}

/// `1.23s`, `45.6ms`, `789µs`, `123ns` — one duration shape everywhere.
pub fn fmt_duration_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{}µs", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// `123.4 pages/s`; an unmeasurably short elapsed prints `- pages/s`.
pub fn fmt_rate(count: u64, elapsed_secs: f64, unit: &str) -> String {
    if elapsed_secs <= 0.0 {
        format!("- {unit}/s")
    } else {
        format!("{:.1} {unit}/s", count as f64 / elapsed_secs)
    }
}

/// `~12s left` / `~3m left` / `~2h left`.
pub fn fmt_eta_secs(secs: f64) -> String {
    if !secs.is_finite() || secs < 0.0 {
        return "~? left".to_string();
    }
    if secs >= 5400.0 {
        format!("~{:.0}h left", secs / 3600.0)
    } else if secs >= 90.0 {
        format!("~{:.0}m left", secs / 60.0)
    } else {
        format!("~{secs:.0}s left")
    }
}

/// The Algorithm-1 funnel in one shape:
/// `initial 1000 → required 120 → slices 40 → exact 12 → valid 7`.
pub fn fmt_pipeline(stages: &[(&str, u64)]) -> String {
    stages
        .iter()
        .map(|(name, n)| format!("{name} {n}"))
        .collect::<Vec<_>>()
        .join(" → ")
}

/// The stage-4 summary every search-family command prints:
/// `validation: 940 runs in 1.2ms (61 early-valid, 112 early-invalid exits)`.
pub fn fmt_validation_summary(
    validations: u64,
    early_valid: u64,
    early_invalid: u64,
    nanos: u64,
) -> String {
    format!(
        "validation: {validations} runs in {} ({early_valid} early-valid, {early_invalid} early-invalid exits)",
        fmt_duration_ns(nanos)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_pick_the_right_unit() {
        assert_eq!(fmt_duration_ns(0), "0ns");
        assert_eq!(fmt_duration_ns(999), "999ns");
        assert_eq!(fmt_duration_ns(45_600), "45µs");
        assert_eq!(fmt_duration_ns(45_600_000), "45.6ms");
        assert_eq!(fmt_duration_ns(1_230_000_000), "1.23s");
    }

    #[test]
    fn rates_and_etas_are_uniform() {
        assert_eq!(fmt_rate(500, 2.0, "pages"), "250.0 pages/s");
        assert_eq!(fmt_rate(500, 0.0, "queries"), "- queries/s");
        assert_eq!(fmt_eta_secs(12.4), "~12s left");
        assert_eq!(fmt_eta_secs(180.0), "~3m left");
        assert_eq!(fmt_eta_secs(7200.0), "~2h left");
        assert_eq!(fmt_eta_secs(f64::NAN), "~? left");
    }

    #[test]
    fn pipeline_and_validation_lines() {
        assert_eq!(
            fmt_pipeline(&[("initial", 1000), ("required", 120), ("valid", 7)]),
            "initial 1000 → required 120 → valid 7"
        );
        assert_eq!(
            fmt_validation_summary(940, 61, 112, 1_200_000),
            "validation: 940 runs in 1.2ms (61 early-valid, 112 early-invalid exits)"
        );
    }

    #[test]
    fn reporter_policy() {
        let loud = Reporter::new(false, 10);
        assert!(loud.tick(10));
        assert!(!loud.tick(11));
        assert_eq!(loud.every(), 10);
        let quiet = Reporter::new(true, 10);
        assert!(!quiet.tick(10));
        assert_eq!(quiet.every(), 0);
        let off = Reporter::new(false, 0);
        assert!(!off.tick(10));
    }
}
