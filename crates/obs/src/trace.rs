//! Request-scoped tracing: explicit-parent interval events in bounded
//! per-thread rings, with checksummed `TINDTF` export.
//!
//! The span layer ([`crate::span`]) aggregates — it can say *stage 4 cost
//! 40% overall* but not *why this request was slow*. This module records
//! per-request timelines instead: a [`TraceContext`] (128-bit trace id +
//! span id) is allocated per accepted request, propagated explicitly
//! across threads (admission queues, coalesced batch waves, the core
//! search kernels), and every completed interval is recorded as a
//! [`TraceEvent`] carrying its own span id and an explicit
//! `parent_span_id` edge. Events land in the recording thread's bounded
//! ring — no allocation on the hot path (names are `&'static str`, rings
//! are preallocated) — and are only *collected* (scanned and merged
//! across rings) for requests that were sampled, off the hot path.
//!
//! Ring overflow is never silent: each overwrite bumps the thread's drop
//! count and the `obs.spans.dropped_total` counter, and the drop total
//! rides along in every [`TraceSnapshot`] so renderers can warn that a
//! trace may be incomplete.
//!
//! Cross-thread spans (a request's queue wait starts on a reader thread
//! and ends on a worker) are recorded with explicit start/duration via
//! [`record_span`] using the shared [`now_ns`] clock; same-thread scopes
//! use the RAII [`TraceSpan`]. A coalesced wave gets its *own* trace id;
//! each member records a link event ([`record_link`]) naming the wave's
//! span, and member exec spans parent directly to it — collection then
//! merges the member's and the wave's trace ids into one timeline.
//!
//! With `obs-off` every recording function is a no-op, [`TraceSpan`] is
//! zero-sized, and collection returns empty snapshots; the pure
//! export/verify half (TINDTF envelope, Chrome JSON) stays available so
//! `tind trace` can still render files produced by enabled builds.
//!
//! ## `TINDTF` on-disk shape
//!
//! Same envelope discipline as `TINDRR` (one line, canonical JSON, CRC-32
//! over the serialized payload bytes):
//!
//! ```json
//! {"magic":"TINDTF1","crc32":<u32>,"payload":{"schema_version":1,
//!  "trace_id":"0x…","root_span_id":"0x…","dropped":0,"events":[
//!  {"trace":"0x…","span":"0x…","parent":"0x…","name":"serve.request",
//!   "tid":3,"start_ns":12,"dur_ns":3456,"kind":"span"}]}}
//! ```
//!
//! Ids are hex strings (they exceed `f64`'s exact integer range); times
//! are nanoseconds since the process-wide obs epoch.

use crate::json::{self, Value};
use crate::report::crc32;

/// Capacity of each thread's ring buffer of trace events.
pub const TRACE_RING_CAPACITY: usize = 4096;

/// Magic string identifying a trace file ("TINDTF" + format version).
pub const TRACE_MAGIC: &str = "TINDTF1";

/// Leading bytes of a serialized trace file; `tind verify` sniffs these
/// the way it sniffs `TINDRR` reports and the binary artifact magics.
pub const TRACE_PREFIX: &str = "{\"magic\":\"TINDTF";

/// Version of the trace payload layout.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Identity carried by one traced request (or wave): which trace its
/// events belong to and which span new children should parent to.
///
/// `trace_id` 0 / `span_id` 0 mean "not traced" — recording against a
/// zeroed context is harmless, and parent id 0 marks a root span.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    pub trace_id: u128,
    pub span_id: u64,
}

impl TraceContext {
    /// The same trace, re-rooted at `span_id` — how a parent hands its
    /// children the edge to attach to.
    pub fn child(self, span_id: u64) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id }
    }
}

/// What a recorded event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A completed interval (`span_id` is the interval's own id).
    Span,
    /// A cross-trace edge: `span_id` names a span in *another* trace
    /// (e.g. the shared wave span) that `parent_span_id` links to.
    Link,
}

/// One recorded trace event. `parent_span_id == 0` marks a root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub trace_id: u128,
    pub span_id: u64,
    pub parent_span_id: u64,
    pub name: &'static str,
    /// Small stable id of the recording thread (Chrome export lane).
    pub tid: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub kind: TraceEventKind,
}

/// A collected trace: every event whose trace id matched, merged across
/// all thread rings and sorted, plus the drop total at collection time
/// (nonzero ⇒ the trace may be missing events).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSnapshot {
    pub trace_id: u128,
    pub root_span_id: u64,
    pub dropped: u64,
    pub events: Vec<TraceEvent>,
}

#[cfg(not(feature = "obs-off"))]
pub use enabled::{
    alloc_context, alloc_span_id, collect_trace, now_ns, record_link, record_span,
    reset_traces, trace_drops_total, TraceSpan,
};

#[cfg(feature = "obs-off")]
pub use disabled::{
    alloc_context, alloc_span_id, collect_trace, now_ns, record_link, record_span,
    reset_traces, trace_drops_total, TraceSpan,
};

#[cfg(not(feature = "obs-off"))]
mod enabled {
    use super::{TraceContext, TraceEvent, TraceEventKind, TraceSnapshot, TRACE_RING_CAPACITY};
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

    struct ThreadTraces {
        tid: u32,
        ring: Vec<TraceEvent>,
        /// Next slot to overwrite once the ring is full.
        ring_next: usize,
        /// Events overwritten before anyone collected them.
        dropped: u64,
    }

    impl ThreadTraces {
        fn record(&mut self, event: TraceEvent) {
            if self.ring.len() < TRACE_RING_CAPACITY {
                self.ring.push(event);
            } else {
                self.ring[self.ring_next] = event;
                self.ring_next = (self.ring_next + 1) % TRACE_RING_CAPACITY;
                self.dropped += 1;
                crate::span::drop_counter().incr();
            }
        }
    }

    type Shared = Arc<Mutex<ThreadTraces>>;

    fn registry() -> &'static Mutex<Vec<Shared>> {
        static REGISTRY: OnceLock<Mutex<Vec<Shared>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    thread_local! {
        static STATE: Shared = {
            static NEXT_TID: AtomicU32 = AtomicU32::new(1);
            let state = Arc::new(Mutex::new(ThreadTraces {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                ring: Vec::with_capacity(TRACE_RING_CAPACITY),
                ring_next: 0,
                dropped: 0,
            }));
            lock(registry()).push(state.clone());
            state
        };
    }

    /// Nanoseconds since the process-wide obs epoch — the shared clock
    /// every trace event is stamped with, so intervals recorded on
    /// different threads are directly comparable.
    pub fn now_ns() -> u64 {
        crate::span::epoch_elapsed_ns()
    }

    /// Allocate a fresh trace identity (128-bit trace id + root span id).
    /// Trace ids mix a per-process nonce with a counter, so ids from
    /// different runs of a long-lived fleet don't collide when traces are
    /// exported side by side; span ids are process-unique and nonzero.
    pub fn alloc_context() -> TraceContext {
        static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
        static NONCE: OnceLock<u64> = OnceLock::new();
        let nonce = *NONCE.get_or_init(|| {
            // Wall-clock nanos make a good-enough uniqueness nonce; the
            // low bits differ between any two process starts.
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0x5eed, |d| d.as_nanos() as u64)
                | 1
        });
        let low = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        TraceContext {
            trace_id: (u128::from(nonce) << 64) | u128::from(low),
            span_id: alloc_span_id(),
        }
    }

    /// Process-unique nonzero span id — for callers that record
    /// cross-thread intervals with [`record_span`] and need the interval's
    /// identity before (or on a different thread than) the recording.
    pub fn alloc_span_id() -> u64 {
        static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
        NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
    }

    /// Record a completed interval with explicit identity and timing —
    /// the cross-thread form (queue waits start on one thread and end on
    /// another, where RAII guards can't follow).
    pub fn record_span(
        ctx: TraceContext,
        parent_span_id: u64,
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
    ) {
        if ctx.trace_id == 0 {
            return;
        }
        record(TraceEvent {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id,
            name,
            tid: 0,
            start_ns,
            dur_ns,
            kind: TraceEventKind::Span,
        });
    }

    /// Record a cross-trace edge in `ctx.trace_id`: `linked_span_id`
    /// (a span of another trace, e.g. the shared wave span) is linked
    /// from `ctx.span_id`.
    pub fn record_link(
        ctx: TraceContext,
        linked_span_id: u64,
        name: &'static str,
        at_ns: u64,
    ) {
        if ctx.trace_id == 0 {
            return;
        }
        record(TraceEvent {
            trace_id: ctx.trace_id,
            span_id: linked_span_id,
            parent_span_id: ctx.span_id,
            name,
            tid: 0,
            start_ns: at_ns,
            dur_ns: 0,
            kind: TraceEventKind::Link,
        });
    }

    fn record(mut event: TraceEvent) {
        STATE.with(|s| {
            let mut t = lock(s);
            event.tid = t.tid;
            t.record(event);
        });
    }

    /// RAII same-thread trace span: allocates its span id up front (so
    /// children can parent to [`TraceSpan::id`] before it closes) and
    /// records on drop with `parent = ctx.span_id`. A `None` context is
    /// a complete no-op — not even the clock is read.
    pub struct TraceSpan {
        ctx: Option<(TraceContext, u64, &'static str)>,
        start_ns: u64,
    }

    impl TraceSpan {
        pub fn start(ctx: Option<TraceContext>, name: &'static str) -> TraceSpan {
            match ctx {
                Some(c) if c.trace_id != 0 => TraceSpan {
                    ctx: Some((c, alloc_span_id(), name)),
                    start_ns: now_ns(),
                },
                _ => TraceSpan { ctx: None, start_ns: 0 },
            }
        }

        /// This span's own id (0 when not tracing) — what children use
        /// as their parent edge, via [`TraceContext::child`].
        pub fn id(&self) -> u64 {
            self.ctx.map_or(0, |(_, id, _)| id)
        }

        /// The context children of this span should record under.
        pub fn child_ctx(&self) -> Option<TraceContext> {
            self.ctx.map(|(c, id, _)| c.child(id))
        }
    }

    impl Drop for TraceSpan {
        fn drop(&mut self) {
            if let Some((ctx, span_id, name)) = self.ctx {
                let end = now_ns();
                record(TraceEvent {
                    trace_id: ctx.trace_id,
                    span_id,
                    parent_span_id: ctx.span_id,
                    name,
                    tid: 0,
                    start_ns: self.start_ns,
                    dur_ns: end.saturating_sub(self.start_ns),
                    kind: TraceEventKind::Span,
                });
            }
        }
    }

    /// Collect every event belonging to `root.trace_id` or any id in
    /// `extra` (e.g. the wave trace a request's exec span parents into),
    /// merged across all thread rings and sorted by start time. Runs off
    /// the hot path — only sampled requests pay for a scan.
    pub fn collect_trace(root: TraceContext, extra: &[u128]) -> TraceSnapshot {
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut dropped = 0u64;
        for shared in lock(registry()).iter() {
            let state = lock(shared);
            dropped += state.dropped;
            events.extend(
                state
                    .ring
                    .iter()
                    .filter(|e| e.trace_id == root.trace_id || extra.contains(&e.trace_id))
                    .cloned(),
            );
        }
        events.sort_by_key(|e| (e.start_ns, e.span_id));
        TraceSnapshot { trace_id: root.trace_id, root_span_id: root.span_id, dropped, events }
    }

    /// Total trace events dropped to ring overflow across all threads.
    pub fn trace_drops_total() -> u64 {
        lock(registry()).iter().map(|s| lock(s).dropped).sum()
    }

    /// Clear all recorded trace events and drop state for exited threads.
    pub fn reset_traces() {
        let mut reg = lock(registry());
        reg.retain(|shared| Arc::strong_count(shared) > 1);
        for shared in reg.iter() {
            let mut state = lock(shared);
            state.ring.clear();
            state.ring_next = 0;
            state.dropped = 0;
        }
    }
}

#[cfg(feature = "obs-off")]
mod disabled {
    use super::{TraceContext, TraceSnapshot};

    pub fn now_ns() -> u64 {
        0
    }

    pub fn alloc_context() -> TraceContext {
        TraceContext { trace_id: 0, span_id: 0 }
    }

    pub fn alloc_span_id() -> u64 {
        0
    }

    #[inline(always)]
    pub fn record_span(
        _ctx: TraceContext,
        _parent_span_id: u64,
        _name: &'static str,
        _start_ns: u64,
        _dur_ns: u64,
    ) {
    }

    #[inline(always)]
    pub fn record_link(
        _ctx: TraceContext,
        _linked_span_id: u64,
        _name: &'static str,
        _at_ns: u64,
    ) {
    }

    /// Zero-cost no-op guard.
    pub struct TraceSpan;

    impl TraceSpan {
        #[inline(always)]
        pub fn start(_ctx: Option<TraceContext>, _name: &'static str) -> TraceSpan {
            TraceSpan
        }

        pub fn id(&self) -> u64 {
            0
        }

        pub fn child_ctx(&self) -> Option<TraceContext> {
            None
        }
    }

    pub fn collect_trace(root: TraceContext, _extra: &[u128]) -> TraceSnapshot {
        TraceSnapshot {
            trace_id: root.trace_id,
            root_span_id: root.span_id,
            dropped: 0,
            events: Vec::new(),
        }
    }

    pub fn trace_drops_total() -> u64 {
        0
    }

    pub fn reset_traces() {}
}

// ---------------------------------------------------------------------
// Export / verify — pure data transforms, available with or without
// `obs-off` (the CLI must render trace files however it was built).
// ---------------------------------------------------------------------

fn hex_u128(v: u128) -> Value {
    Value::str(format!("{v:#x}"))
}

fn hex_u64(v: u64) -> Value {
    Value::str(format!("{v:#x}"))
}

fn kind_str(kind: TraceEventKind) -> &'static str {
    match kind {
        TraceEventKind::Span => "span",
        TraceEventKind::Link => "link",
    }
}

impl TraceSnapshot {
    /// The canonical `TINDTF` payload object.
    pub fn to_value(&self) -> Value {
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                Value::obj([
                    ("trace", hex_u128(e.trace_id)),
                    ("span", hex_u64(e.span_id)),
                    ("parent", hex_u64(e.parent_span_id)),
                    ("name", Value::str(e.name)),
                    ("tid", Value::num(f64::from(e.tid))),
                    ("start_ns", Value::num(e.start_ns as f64)),
                    ("dur_ns", Value::num(e.dur_ns as f64)),
                    ("kind", Value::str(kind_str(e.kind))),
                ])
            })
            .collect();
        Value::obj([
            ("schema_version", Value::num(TRACE_SCHEMA_VERSION as f64)),
            ("trace_id", hex_u128(self.trace_id)),
            ("root_span_id", hex_u64(self.root_span_id)),
            ("dropped", Value::num(self.dropped as f64)),
            ("events", Value::Arr(events)),
        ])
    }

    /// Serialize with the `TINDTF` magic + CRC envelope (one line).
    pub fn to_json(&self) -> String {
        trace_envelope(&self.to_value())
    }
}

/// Wrap a trace payload in the checksummed one-line envelope.
pub fn trace_envelope(payload: &Value) -> String {
    let body = payload.to_json();
    let crc = crc32(body.as_bytes());
    format!("{{\"magic\":\"{TRACE_MAGIC}\",\"crc32\":{crc},\"payload\":{body}}}\n")
}

/// Parse and integrity-check a serialized `TINDTF` line; returns the
/// payload. Every refusal names the failing byte offset: parse errors
/// carry the parser's position, and a checksum mismatch reports the
/// offset of the payload whose bytes no longer match the stored CRC.
pub fn verify_trace(text: &str) -> Result<Value, String> {
    let doc = json::parse(text.trim_end()).map_err(|e| e.to_string())?;
    match doc.get("magic").and_then(Value::as_str) {
        Some(TRACE_MAGIC) => {}
        Some(other) => return Err(format!("unsupported trace magic `{other}`")),
        None => return Err("missing `magic` field".to_string()),
    }
    let stored = doc
        .get("crc32")
        .and_then(Value::as_f64)
        .ok_or_else(|| "missing `crc32` field".to_string())?;
    let payload = doc.get("payload").ok_or_else(|| "missing `payload` field".to_string())?;
    let actual = crc32(payload.to_json().as_bytes());
    if stored != f64::from(actual) {
        let payload_offset = text.find("\"payload\":").map_or(0, |p| p + "\"payload\":".len());
        return Err(format!(
            "checksum mismatch over payload at byte offset {payload_offset}: \
             stored {stored}, computed {actual}"
        ));
    }
    Ok(payload.clone())
}

/// An owned trace decoded from a `TINDTF` payload — what `tind trace`
/// renders and diffs. [`ParsedTrace::to_value`] reproduces the payload
/// bit-exactly (round-trip is pinned by tests).
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedTrace {
    pub trace_id: String,
    pub root_span_id: String,
    pub dropped: u64,
    pub events: Vec<ParsedEvent>,
}

/// One owned event of a [`ParsedTrace`]; ids stay in their hex spelling.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedEvent {
    pub trace: String,
    pub span: String,
    pub parent: String,
    pub name: String,
    pub tid: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub kind: String,
}

impl ParsedTrace {
    /// Decode a verified payload (see [`verify_trace`]).
    pub fn from_payload(payload: &Value) -> Result<ParsedTrace, String> {
        let field_str = |v: &Value, name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("trace payload missing string field `{name}`"))
        };
        let field_num = |v: &Value, name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_f64)
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("trace payload missing numeric field `{name}`"))
        };
        let version = field_num(payload, "schema_version")?;
        if version != TRACE_SCHEMA_VERSION {
            return Err(format!("unsupported trace schema_version {version}"));
        }
        let events_raw = payload
            .get("events")
            .and_then(Value::as_arr)
            .ok_or_else(|| "trace payload missing `events` array".to_string())?;
        let mut events = Vec::with_capacity(events_raw.len());
        for (i, e) in events_raw.iter().enumerate() {
            let kind = field_str(e, "kind").map_err(|err| format!("events[{i}]: {err}"))?;
            if kind != "span" && kind != "link" {
                return Err(format!("events[{i}]: unknown kind `{kind}`"));
            }
            events.push(ParsedEvent {
                trace: field_str(e, "trace").map_err(|err| format!("events[{i}]: {err}"))?,
                span: field_str(e, "span").map_err(|err| format!("events[{i}]: {err}"))?,
                parent: field_str(e, "parent").map_err(|err| format!("events[{i}]: {err}"))?,
                name: field_str(e, "name").map_err(|err| format!("events[{i}]: {err}"))?,
                tid: field_num(e, "tid").map_err(|err| format!("events[{i}]: {err}"))? as u32,
                start_ns: field_num(e, "start_ns")
                    .map_err(|err| format!("events[{i}]: {err}"))?,
                dur_ns: field_num(e, "dur_ns").map_err(|err| format!("events[{i}]: {err}"))?,
                kind,
            });
        }
        Ok(ParsedTrace {
            trace_id: field_str(payload, "trace_id")?,
            root_span_id: field_str(payload, "root_span_id")?,
            dropped: field_num(payload, "dropped")?,
            events,
        })
    }

    /// Re-encode as the canonical payload — bit-identical to the
    /// [`TraceSnapshot::to_value`] output it was parsed from.
    pub fn to_value(&self) -> Value {
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                Value::obj([
                    ("trace", Value::str(e.trace.clone())),
                    ("span", Value::str(e.span.clone())),
                    ("parent", Value::str(e.parent.clone())),
                    ("name", Value::str(e.name.clone())),
                    ("tid", Value::num(f64::from(e.tid))),
                    ("start_ns", Value::num(e.start_ns as f64)),
                    ("dur_ns", Value::num(e.dur_ns as f64)),
                    ("kind", Value::str(e.kind.clone())),
                ])
            })
            .collect();
        Value::obj([
            ("schema_version", Value::num(TRACE_SCHEMA_VERSION as f64)),
            ("trace_id", Value::str(self.trace_id.clone())),
            ("root_span_id", Value::str(self.root_span_id.clone())),
            ("dropped", Value::num(self.dropped as f64)),
            ("events", Value::Arr(events)),
        ])
    }

    /// The root span event, when present.
    pub fn root(&self) -> Option<&ParsedEvent> {
        self.events.iter().find(|e| e.span == self.root_span_id && e.kind == "span")
    }

    /// Events referencing a span id that was recorded nowhere — a
    /// dangling parent edge, or a link whose target span is absent.
    /// Evidence of ring overflow or partial collection.
    pub fn missing_parents(&self) -> usize {
        let known: std::collections::HashSet<&str> = self
            .events
            .iter()
            .filter(|e| e.kind == "span")
            .map(|e| e.span.as_str())
            .collect();
        self.events
            .iter()
            .filter(|e| {
                (e.parent != "0x0" && !known.contains(e.parent.as_str()))
                    || (e.kind == "link" && !known.contains(e.span.as_str()))
            })
            .count()
    }

    /// Fraction of the root span's wall time covered by the union of
    /// its recorded descendant intervals (1.0 when fully attributed;
    /// `None` without a root). The acceptance bar for served request
    /// traces is ≥ 0.9.
    pub fn coverage(&self) -> Option<f64> {
        let root = self.root()?;
        if root.dur_ns == 0 {
            return Some(1.0);
        }
        let (lo, hi) = (root.start_ns, root.start_ns + root.dur_ns);
        let mut intervals: Vec<(u64, u64)> = self
            .events
            .iter()
            .filter(|e| e.kind == "span" && e.span != self.root_span_id)
            .map(|e| (e.start_ns.clamp(lo, hi), (e.start_ns + e.dur_ns).clamp(lo, hi)))
            .filter(|(a, b)| b > a)
            .collect();
        intervals.sort_unstable();
        let mut covered = 0u64;
        let mut cursor = lo;
        for (a, b) in intervals {
            let a = a.max(cursor);
            if b > a {
                covered += b - a;
                cursor = b;
            }
        }
        Some(covered as f64 / root.dur_ns as f64)
    }

    /// Export as Chrome `trace_event` JSON (the `chrome://tracing` /
    /// Perfetto "JSON Array Format"): spans become complete (`ph:"X"`)
    /// events with microsecond timestamps, links become instants.
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                let mut ev = Value::obj([
                    ("name", Value::str(e.name.clone())),
                    ("cat", Value::str("tind")),
                    ("ph", Value::str(if e.kind == "span" { "X" } else { "i" })),
                    ("ts", Value::num(e.start_ns as f64 / 1000.0)),
                    ("pid", Value::num(1.0)),
                    ("tid", Value::num(f64::from(e.tid))),
                    (
                        "args",
                        Value::obj([
                            ("trace", Value::str(e.trace.clone())),
                            ("span", Value::str(e.span.clone())),
                            ("parent", Value::str(e.parent.clone())),
                        ]),
                    ),
                ]);
                if e.kind == "span" {
                    ev.set("dur", Value::num(e.dur_ns as f64 / 1000.0));
                } else {
                    ev.set("s", Value::str("t"));
                }
                ev
            })
            .collect();
        Value::obj([
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", Value::str("ns")),
        ])
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TraceSnapshot {
        TraceSnapshot {
            trace_id: 0xabc_0000_0001,
            root_span_id: 7,
            dropped: 0,
            events: vec![
                TraceEvent {
                    trace_id: 0xabc_0000_0001,
                    span_id: 7,
                    parent_span_id: 0,
                    name: "serve.request",
                    tid: 1,
                    start_ns: 100,
                    dur_ns: 1000,
                    kind: TraceEventKind::Span,
                },
                TraceEvent {
                    trace_id: 0xabc_0000_0001,
                    span_id: 8,
                    parent_span_id: 7,
                    name: "serve.queued",
                    tid: 2,
                    start_ns: 100,
                    dur_ns: 400,
                    kind: TraceEventKind::Span,
                },
                TraceEvent {
                    trace_id: 0xabc_0000_0001,
                    span_id: 99,
                    parent_span_id: 7,
                    name: "serve.wave_link",
                    tid: 2,
                    start_ns: 500,
                    dur_ns: 0,
                    kind: TraceEventKind::Link,
                },
                TraceEvent {
                    trace_id: 0xabc_0000_0002,
                    span_id: 99,
                    parent_span_id: 0,
                    name: "serve.wave",
                    tid: 2,
                    start_ns: 500,
                    dur_ns: 600,
                    kind: TraceEventKind::Span,
                },
            ],
        }
    }

    #[test]
    fn tindtf_roundtrips_bit_exactly() {
        let snap = sample_snapshot();
        let text = snap.to_json();
        assert!(text.starts_with(TRACE_PREFIX));
        let payload = verify_trace(&text).expect("pristine trace verifies");
        let parsed = ParsedTrace::from_payload(&payload).expect("decodes");
        assert_eq!(parsed.events.len(), 4);
        assert_eq!(trace_envelope(&parsed.to_value()), text, "round trip is bit-exact");
    }

    #[test]
    fn tampering_is_refused_with_an_offset() {
        let text = sample_snapshot().to_json();
        let tampered = text.replace("\"dur_ns\":1000", "\"dur_ns\":1001");
        assert_ne!(text, tampered);
        let err = verify_trace(&tampered).unwrap_err();
        assert!(err.contains("byte offset"), "error names an offset: {err}");
        let garbled = text.replace("{\"magic\"", "{\"magic");
        let err = verify_trace(&garbled).unwrap_err();
        assert!(err.contains("byte"), "parse errors carry offsets: {err}");
        assert!(verify_trace("{\"magic\":\"NOPE1\",\"crc32\":0,\"payload\":{}}")
            .unwrap_err()
            .contains("magic"));
    }

    #[test]
    fn coverage_and_missing_parents_flag_incomplete_traces() {
        let snap = sample_snapshot();
        let parsed =
            ParsedTrace::from_payload(&verify_trace(&snap.to_json()).unwrap()).unwrap();
        // queued [100,500) + the merged wave span [500,1100) tile the
        // whole 1000ns root.
        let cov = parsed.coverage().expect("has a root");
        assert!((cov - 1.0).abs() < 1e-9, "coverage {cov}");
        assert_eq!(parsed.missing_parents(), 0, "wave span 99 is recorded");

        // Drop the wave span: the link's target dangles and coverage
        // falls to the queued span's 400ns.
        let mut cut = parsed.clone();
        cut.events.retain(|e| e.name != "serve.wave");
        assert_eq!(cut.missing_parents(), 1);
        let cov = cut.coverage().expect("root survives");
        assert!((cov - 0.4).abs() < 1e-9, "coverage {cov}");
    }

    #[test]
    fn chrome_export_is_deterministic_and_flags_links() {
        let parsed = ParsedTrace::from_payload(
            &verify_trace(&sample_snapshot().to_json()).unwrap(),
        )
        .unwrap();
        let chrome = parsed.to_chrome_json();
        assert_eq!(chrome, parsed.to_chrome_json());
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"name\":\"serve.wave\""));
        assert!(chrome.starts_with("{\"traceEvents\":["));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn record_and_collect_links_through_a_shared_wave() {
        let _g = crate::test_guard();
        reset_traces();
        let req = alloc_context();
        let wave = alloc_context();
        let t0 = now_ns();
        record_span(req, 0, "serve.request", t0, 1000);
        record_link(req, wave.span_id, "serve.wave_link", t0 + 10);
        record_span(wave, 0, "serve.wave", t0 + 10, 500);
        {
            let child = TraceSpan::start(Some(wave), "core.search.stage4");
            assert_ne!(child.id(), 0);
            assert_eq!(child.child_ctx().unwrap().span_id, child.id());
        }

        let snap = collect_trace(req, &[wave.trace_id]);
        assert_eq!(snap.trace_id, req.trace_id);
        assert_eq!(snap.root_span_id, req.span_id);
        let names: Vec<&str> = snap.events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"serve.request"));
        assert!(names.contains(&"serve.wave"));
        assert!(names.contains(&"serve.wave_link"));
        assert!(names.contains(&"core.search.stage4"));
        let link = snap.events.iter().find(|e| e.kind == TraceEventKind::Link).unwrap();
        assert_eq!(link.span_id, wave.span_id);
        assert_eq!(link.parent_span_id, req.span_id);
        let stage = snap.events.iter().find(|e| e.name == "core.search.stage4").unwrap();
        assert_eq!(stage.parent_span_id, wave.span_id, "stage parents to the wave span");

        // Other traces never leak into a collection.
        let other = alloc_context();
        record_span(other, 0, "noise", t0, 5);
        let again = collect_trace(req, &[wave.trace_id]);
        assert!(again.events.iter().all(|e| e.name != "noise"));
        reset_traces();
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn ring_overflow_counts_drops() {
        let _g = crate::test_guard();
        reset_traces();
        crate::metrics::reset_metrics();
        let ctx = alloc_context();
        for i in 0..(TRACE_RING_CAPACITY + 25) {
            record_span(ctx.child(ctx.span_id + i as u64), 0, "flood", i as u64, 1);
        }
        assert_eq!(trace_drops_total(), 25);
        assert_eq!(crate::counter("obs.spans.dropped_total").value(), 25);
        let snap = collect_trace(ctx, &[]);
        assert_eq!(snap.dropped, 25, "snapshots carry the drop total");
        assert_eq!(snap.events.len(), TRACE_RING_CAPACITY);
        reset_traces();
        assert_eq!(trace_drops_total(), 0);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_trace_layer_is_inert() {
        let ctx = alloc_context();
        assert_eq!(ctx.trace_id, 0);
        record_span(ctx, 0, "x", 0, 1);
        record_link(ctx, 1, "l", 0);
        let s = TraceSpan::start(Some(ctx), "y");
        assert_eq!(s.id(), 0);
        drop(s);
        assert!(collect_trace(ctx, &[]).events.is_empty());
        assert_eq!(trace_drops_total(), 0);
        // The pure exporters still work on hand-built data.
        let snap = TraceSnapshot {
            trace_id: 1,
            root_span_id: 1,
            dropped: 0,
            events: Vec::new(),
        };
        assert!(verify_trace(&snap.to_json()).is_ok());
    }
}
