//! Lightweight hierarchical wall-time spans.
//!
//! `span("core.search.stage4")` returns a guard; dropping it records the
//! elapsed time into the calling thread's state: a bounded ring buffer of
//! recent raw events plus per-name aggregates (count / total / max).
//! Thread states register themselves in a global list on first use, so
//! the enter/exit path touches only the thread's own mutex — uncontended
//! except while a snapshot or reset is walking the registry — and
//! allocates nothing (names are `&'static str`, aggregate slots are
//! reused, the ring is preallocated).
//!
//! Ring overflow is counted, never silent: each overwritten event bumps
//! the owning thread's drop count and the shared
//! `obs.spans.dropped_total` counter (also fed by the trace-event rings
//! in [`crate::trace`]), so `/metrics` and TINDRR reports reveal when
//! recent-event data is incomplete.
//!
//! With the `obs-off` feature the guard is a zero-sized no-op and every
//! query function returns empty data.

#[cfg(not(feature = "obs-off"))]
pub use enabled::{
    recent_spans, reset_spans, span, span_drops_total, span_snapshot, SpanGuard,
};

#[cfg(not(feature = "obs-off"))]
pub(crate) use enabled::{drop_counter, epoch_elapsed_ns};

#[cfg(feature = "obs-off")]
pub use disabled::{recent_spans, reset_spans, span, span_drops_total, span_snapshot, SpanGuard};

/// Name of the counter tracking ring-overflow event drops across both
/// the span rings and the trace-event rings.
pub const DROPPED_COUNTER: &str = "obs.spans.dropped_total";

/// Capacity of each thread's ring buffer of raw span events.
pub const RING_CAPACITY: usize = 1024;

/// One completed span occurrence, relative to the process-wide epoch
/// (the instant the span layer was first touched).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    pub name: &'static str,
    /// Nesting depth at entry on the recording thread (0 = thread-top-level).
    pub depth: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// Per-name aggregate merged across all threads.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStats {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

#[cfg(not(feature = "obs-off"))]
mod enabled {
    use super::{SpanEvent, SpanStats, RING_CAPACITY};
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    struct Agg {
        name: &'static str,
        count: u64,
        total_ns: u64,
        max_ns: u64,
    }

    struct ThreadSpans {
        depth: u32,
        ring: Vec<SpanEvent>,
        /// Next ring slot to overwrite once the ring is full.
        ring_next: usize,
        /// Raw events overwritten before any snapshot saw them.
        dropped: u64,
        aggs: Vec<Agg>,
    }

    impl ThreadSpans {
        fn new() -> Self {
            ThreadSpans {
                depth: 0,
                ring: Vec::new(),
                ring_next: 0,
                dropped: 0,
                aggs: Vec::new(),
            }
        }

        fn record(&mut self, event: SpanEvent) {
            // Linear scan: a run touches a few dozen distinct span names,
            // and pointer equality short-circuits the common case.
            let name = event.name;
            match self
                .aggs
                .iter_mut()
                .find(|a| std::ptr::eq(a.name, name) || a.name == name)
            {
                Some(agg) => {
                    agg.count += 1;
                    agg.total_ns += event.dur_ns;
                    agg.max_ns = agg.max_ns.max(event.dur_ns);
                }
                None => self.aggs.push(Agg {
                    name,
                    count: 1,
                    total_ns: event.dur_ns,
                    max_ns: event.dur_ns,
                }),
            }
            if self.ring.len() < RING_CAPACITY {
                self.ring.push(event);
            } else {
                self.ring[self.ring_next] = event;
                self.ring_next = (self.ring_next + 1) % RING_CAPACITY;
                self.dropped += 1;
                drop_counter().incr();
            }
        }
    }

    /// Cached handle to the shared overflow counter (also bumped by the
    /// trace-event rings). Interned once so the overflow path stays
    /// allocation-free after the first drop.
    pub(crate) fn drop_counter() -> &'static crate::metrics::Counter {
        static HANDLE: OnceLock<&'static crate::metrics::Counter> = OnceLock::new();
        HANDLE.get_or_init(|| crate::metrics::counter(super::DROPPED_COUNTER))
    }

    type Shared = Arc<Mutex<ThreadSpans>>;

    fn registry() -> &'static Mutex<Vec<Shared>> {
        static REGISTRY: OnceLock<Mutex<Vec<Shared>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    /// Nanoseconds elapsed since the shared epoch — the same timebase
    /// span events use, exposed so trace events land on the same clock.
    pub(crate) fn epoch_elapsed_ns() -> u64 {
        Instant::now().saturating_duration_since(epoch()).as_nanos() as u64
    }

    /// A poisoned lock only means a panic elsewhere while holding it; the
    /// span data is still sound enough for diagnostics, so keep going.
    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    thread_local! {
        static STATE: Shared = {
            let state = Arc::new(Mutex::new(ThreadSpans::new()));
            lock(registry()).push(state.clone());
            state
        };
    }

    /// RAII guard: records the span on drop.
    pub struct SpanGuard {
        name: &'static str,
        depth: u32,
        start: Instant,
    }

    /// Open a span. Cheap (two thread-local mutex ops + two clock reads);
    /// safe to call on any thread, including inside worker pools.
    #[inline]
    pub fn span(name: &'static str) -> SpanGuard {
        epoch(); // pin the epoch before taking `start`
        let depth = STATE.with(|s| {
            let mut t = lock(s);
            t.depth += 1;
            t.depth - 1
        });
        SpanGuard { name, depth, start: Instant::now() }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let dur_ns = self.start.elapsed().as_nanos() as u64;
            let start_ns =
                self.start.saturating_duration_since(epoch()).as_nanos() as u64;
            let event =
                SpanEvent { name: self.name, depth: self.depth, start_ns, dur_ns };
            STATE.with(|s| {
                let mut t = lock(s);
                t.depth = t.depth.saturating_sub(1);
                t.record(event);
            });
        }
    }

    /// Merge per-name aggregates across every registered thread, sorted
    /// by name.
    pub fn span_snapshot() -> Vec<SpanStats> {
        let mut merged: Vec<SpanStats> = Vec::new();
        for shared in lock(registry()).iter() {
            let state = lock(shared);
            for agg in &state.aggs {
                match merged.iter_mut().find(|s| s.name == agg.name) {
                    Some(s) => {
                        s.count += agg.count;
                        s.total_ns += agg.total_ns;
                        s.max_ns = s.max_ns.max(agg.max_ns);
                    }
                    None => merged.push(SpanStats {
                        name: agg.name,
                        count: agg.count,
                        total_ns: agg.total_ns,
                        max_ns: agg.max_ns,
                    }),
                }
            }
        }
        merged.sort_by(|a, b| a.name.cmp(b.name));
        merged
    }

    /// The most recent raw events across all threads (ring buffers merged,
    /// ordered by start time, truncated to the last `limit`).
    pub fn recent_spans(limit: usize) -> Vec<SpanEvent> {
        let mut events: Vec<SpanEvent> = Vec::new();
        for shared in lock(registry()).iter() {
            events.extend(lock(shared).ring.iter().cloned());
        }
        events.sort_by_key(|e| e.start_ns);
        if events.len() > limit {
            events.drain(..events.len() - limit);
        }
        events
    }

    /// Total raw span events lost to ring overflow across all threads
    /// since the last reset (aggregates keep counting regardless).
    pub fn span_drops_total() -> u64 {
        lock(registry()).iter().map(|s| lock(s).dropped).sum()
    }

    /// Clear all recorded spans and drop state for threads that have
    /// exited. Call at the start of a run; active depth on live threads is
    /// preserved so in-flight guards stay balanced.
    pub fn reset_spans() {
        let mut reg = lock(registry());
        // strong_count == 1 means the owning thread's TLS slot is gone.
        reg.retain(|shared| Arc::strong_count(shared) > 1);
        for shared in reg.iter() {
            let mut state = lock(shared);
            state.ring.clear();
            state.ring_next = 0;
            state.dropped = 0;
            state.aggs.clear();
        }
    }
}

#[cfg(feature = "obs-off")]
mod disabled {
    use super::{SpanEvent, SpanStats};

    /// Zero-sized no-op guard.
    pub struct SpanGuard;

    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    pub fn span_snapshot() -> Vec<SpanStats> {
        Vec::new()
    }

    pub fn recent_spans(_limit: usize) -> Vec<SpanEvent> {
        Vec::new()
    }

    pub fn span_drops_total() -> u64 {
        0
    }

    pub fn reset_spans() {}
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    // Span state is process-global; serialize the tests that assert on it.
    use crate::test_guard as guard;

    #[test]
    fn records_nested_spans_with_depth() {
        let _g = guard();
        reset_spans();
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        let stats = span_snapshot();
        let outer = stats.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = stats.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Inner closes before outer, so it can never exceed it.
        assert!(inner.total_ns <= outer.total_ns);

        let events = recent_spans(16);
        let outer_ev = events.iter().find(|e| e.name == "test.outer").unwrap();
        let inner_ev = events.iter().find(|e| e.name == "test.inner").unwrap();
        assert_eq!(outer_ev.depth, 0);
        assert_eq!(inner_ev.depth, 1);
    }

    #[test]
    fn aggregates_repeated_spans() {
        let _g = guard();
        reset_spans();
        for _ in 0..10 {
            let _s = span("test.repeat");
        }
        let stats = span_snapshot();
        let s = stats.iter().find(|s| s.name == "test.repeat").unwrap();
        assert_eq!(s.count, 10);
        assert!(s.max_ns <= s.total_ns);
    }

    #[test]
    fn merges_across_threads() {
        let _g = guard();
        reset_spans();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..25 {
                        let _s = span("test.worker");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = span_snapshot();
        let s = stats.iter().find(|s| s.name == "test.worker").unwrap();
        assert_eq!(s.count, 100);
    }

    #[test]
    fn ring_is_bounded() {
        let _g = guard();
        reset_spans();
        for _ in 0..(RING_CAPACITY + 50) {
            let _s = span("test.flood");
        }
        assert!(recent_spans(usize::MAX).len() <= RING_CAPACITY + 64);
        let stats = span_snapshot();
        let s = stats.iter().find(|s| s.name == "test.flood").unwrap();
        // Aggregates keep counting even after the ring wraps.
        assert_eq!(s.count, (RING_CAPACITY + 50) as u64);
    }

    #[test]
    fn ring_overflow_is_counted_not_silent() {
        let _g = guard();
        reset_spans();
        crate::metrics::reset_metrics();
        assert_eq!(span_drops_total(), 0);
        for _ in 0..(RING_CAPACITY + 50) {
            let _s = span("test.drop_count");
        }
        // This thread's ring overflowed exactly 50 times (other live
        // threads may add more if their rings wrap concurrently).
        assert!(span_drops_total() >= 50);
        assert!(crate::metrics::counter(crate::span::DROPPED_COUNTER).value() >= 50);
        reset_spans();
        assert_eq!(span_drops_total(), 0, "reset clears per-thread drop counts");
    }

    #[test]
    fn reset_clears_everything() {
        let _g = guard();
        {
            let _s = span("test.cleared");
        }
        reset_spans();
        assert!(span_snapshot().iter().all(|s| s.name != "test.cleared"));
        assert!(recent_spans(usize::MAX).iter().all(|e| e.name != "test.cleared"));
    }
}
