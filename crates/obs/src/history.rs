//! Time-series layer over the metrics registry: a fixed-size ring of
//! periodic registry snapshots, so a run's latency/QPS/cache-hit
//! *trajectory* is visible rather than just its end-state totals.
//!
//! A driver (the serve main loop, or any long-running command) calls
//! [`history_tick`] on its own cadence; each tick captures the registry
//! and stores a compact delta record: counters and histogram totals are
//! delta-encoded against the previous tick (zero deltas are elided),
//! gauges are stored absolute. The ring holds the most recent
//! [`history_capacity`] ticks — older ticks are dropped and counted, so
//! consumers can tell a short run from a truncated one.
//!
//! [`history_value`] renders the ring as canonical JSON for
//! `GET /metrics/history` and for embedding in TINDRR reports (the
//! report layer includes it only when at least one tick was recorded).
//! With `obs-off` the whole layer is a no-op.

use crate::json::Value;

/// Default number of ticks retained.
pub const DEFAULT_HISTORY_CAPACITY: usize = 256;

#[cfg(not(feature = "obs-off"))]
pub use enabled::{
    history_capacity, history_len, history_tick, history_value, reset_history,
    set_history_capacity,
};

#[cfg(feature = "obs-off")]
pub use disabled::{
    history_capacity, history_len, history_tick, history_value, reset_history,
    set_history_capacity,
};

#[cfg(not(feature = "obs-off"))]
mod enabled {
    use super::{render, Tick, DEFAULT_HISTORY_CAPACITY};
    use crate::metrics::{metrics_snapshot, MetricValue};
    use std::collections::VecDeque;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct History {
        capacity: usize,
        /// Ticks evicted after the ring filled.
        ticks_dropped: u64,
        /// Last-seen absolute totals, for delta encoding:
        /// name → (counter_total) or (hist_count, hist_sum).
        prev_counters: Vec<(String, u64)>,
        prev_hists: Vec<(String, (u64, u64))>,
        ticks: VecDeque<Tick>,
    }

    fn state() -> &'static Mutex<History> {
        static STATE: OnceLock<Mutex<History>> = OnceLock::new();
        STATE.get_or_init(|| {
            Mutex::new(History {
                capacity: DEFAULT_HISTORY_CAPACITY,
                ticks_dropped: 0,
                prev_counters: Vec::new(),
                prev_hists: Vec::new(),
                ticks: VecDeque::new(),
            })
        })
    }

    fn lock() -> MutexGuard<'static, History> {
        state().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lookup<T: Copy>(prev: &[(String, T)], name: &str) -> Option<T> {
        prev.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    fn store<T>(prev: &mut Vec<(String, T)>, name: &str, v: T) {
        match prev.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = v,
            None => prev.push((name.to_string(), v)),
        }
    }

    /// Number of ticks the ring retains (0 disables recording).
    pub fn history_capacity() -> usize {
        lock().capacity
    }

    /// Resize the ring; evicts oldest ticks if shrinking below the
    /// current length. Capacity 0 turns recording off entirely.
    pub fn set_history_capacity(capacity: usize) {
        let mut h = lock();
        h.capacity = capacity;
        while h.ticks.len() > capacity {
            h.ticks.pop_front();
            h.ticks_dropped += 1;
        }
    }

    /// Ticks currently held.
    pub fn history_len() -> usize {
        lock().ticks.len()
    }

    /// Capture the registry now and append a delta-encoded tick.
    pub fn history_tick() {
        let snap = metrics_snapshot();
        let t_ns = crate::span::epoch_elapsed_ns();
        let mut h = lock();
        if h.capacity == 0 {
            return;
        }
        let mut tick = Tick {
            t_ns,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        for m in &snap {
            match &m.value {
                MetricValue::Counter { total, .. } => {
                    let prev = lookup(&h.prev_counters, &m.name).unwrap_or(0);
                    // A reset between ticks makes totals go backwards;
                    // re-baseline rather than emit a bogus delta.
                    let delta = total.saturating_sub(prev);
                    store(&mut h.prev_counters, &m.name, *total);
                    if delta > 0 {
                        tick.counters.push((m.name.clone(), delta));
                    }
                }
                MetricValue::Gauge(v) => {
                    if *v != 0.0 {
                        tick.gauges.push((m.name.clone(), *v));
                    }
                }
                MetricValue::Histogram { count, sum, .. } => {
                    let (pc, ps) = lookup(&h.prev_hists, &m.name).unwrap_or((0, 0));
                    let dc = count.saturating_sub(pc);
                    let ds = sum.saturating_sub(ps);
                    store(&mut h.prev_hists, &m.name, (*count, *sum));
                    if dc > 0 {
                        tick.histograms.push((m.name.clone(), dc, ds));
                    }
                }
            }
        }
        if h.ticks.len() >= h.capacity {
            h.ticks.pop_front();
            h.ticks_dropped += 1;
        }
        h.ticks.push_back(tick);
    }

    /// Render the ring as canonical JSON.
    pub fn history_value() -> crate::json::Value {
        let h = lock();
        render(h.capacity, h.ticks_dropped, h.ticks.iter())
    }

    /// Clear ticks, drop counts, and delta baselines; capacity persists.
    pub fn reset_history() {
        let mut h = lock();
        h.ticks.clear();
        h.ticks_dropped = 0;
        h.prev_counters.clear();
        h.prev_hists.clear();
    }
}

#[cfg(feature = "obs-off")]
mod disabled {
    use crate::json::Value;

    pub fn history_capacity() -> usize {
        0
    }

    pub fn set_history_capacity(_capacity: usize) {}

    pub fn history_len() -> usize {
        0
    }

    #[inline(always)]
    pub fn history_tick() {}

    pub fn history_value() -> Value {
        super::render(0, 0, std::iter::empty())
    }

    pub fn reset_history() {}
}

/// One recorded tick: monotonically timestamped deltas since the
/// previous tick (counters/histograms) plus absolute gauge values.
struct Tick {
    t_ns: u64,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, u64, u64)>,
}

fn render<'a>(
    capacity: usize,
    ticks_dropped: u64,
    ticks: impl Iterator<Item = &'a Tick>,
) -> Value {
    let ticks: Vec<Value> = ticks
        .map(|t| {
            Value::obj([
                ("t_ns", Value::num(t.t_ns as f64)),
                (
                    "counters",
                    Value::Arr(
                        t.counters
                            .iter()
                            .map(|(name, delta)| {
                                Value::obj([
                                    ("name", Value::str(name.clone())),
                                    ("delta", Value::num(*delta as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "gauges",
                    Value::Arr(
                        t.gauges
                            .iter()
                            .map(|(name, v)| {
                                Value::obj([
                                    ("name", Value::str(name.clone())),
                                    ("value", Value::num(*v)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "histograms",
                    Value::Arr(
                        t.histograms
                            .iter()
                            .map(|(name, dc, ds)| {
                                Value::obj([
                                    ("name", Value::str(name.clone())),
                                    ("count_delta", Value::num(*dc as f64)),
                                    ("sum_delta", Value::num(*ds as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Value::obj([
        ("capacity", Value::num(capacity as f64)),
        ("ticks_dropped", Value::num(ticks_dropped as f64)),
        ("ticks", Value::Arr(ticks)),
    ])
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;
    use crate::json::Value;

    #[test]
    fn ticks_delta_encode_counters_and_bound_the_ring() {
        let _g = crate::test_guard();
        crate::metrics::reset_metrics();
        reset_history();
        set_history_capacity(4);

        let c = crate::counter("test.history.requests");
        c.add(5);
        history_tick();
        c.add(7);
        history_tick();
        history_tick(); // no movement → counter elided

        let v = history_value();
        let ticks = v.get("ticks").and_then(Value::as_arr).unwrap();
        assert_eq!(ticks.len(), 3);
        let delta_of = |tick: &Value| -> Option<f64> {
            tick.get("counters").and_then(Value::as_arr).and_then(|cs| {
                cs.iter()
                    .find(|e| e.get("name").and_then(Value::as_str) == Some("test.history.requests"))
                    .and_then(|e| e.get("delta").and_then(Value::as_f64))
            })
        };
        assert_eq!(delta_of(&ticks[0]), Some(5.0));
        assert_eq!(delta_of(&ticks[1]), Some(7.0));
        assert_eq!(delta_of(&ticks[2]), None, "zero deltas are elided");

        // Timestamps never go backwards.
        let t: Vec<f64> = ticks
            .iter()
            .map(|tk| tk.get("t_ns").and_then(Value::as_f64).unwrap())
            .collect();
        assert!(t.windows(2).all(|w| w[0] <= w[1]));

        // Overflow drops oldest and counts it.
        for _ in 0..6 {
            history_tick();
        }
        let v = history_value();
        assert_eq!(v.get("ticks").and_then(Value::as_arr).unwrap().len(), 4);
        assert!(v.get("ticks_dropped").and_then(Value::as_f64).unwrap() >= 5.0);

        reset_history();
        set_history_capacity(DEFAULT_HISTORY_CAPACITY);
        assert_eq!(history_len(), 0);
    }

    #[test]
    fn histograms_and_gauges_are_captured() {
        let _g = crate::test_guard();
        crate::metrics::reset_metrics();
        reset_history();
        set_history_capacity(8);

        crate::gauge("test.history.depth").set(3.5);
        let h = crate::histogram("test.history.lat");
        h.record(100);
        h.record(900);
        history_tick();

        let v = history_value();
        let tick = &v.get("ticks").and_then(Value::as_arr).unwrap()[0];
        let gauges = tick.get("gauges").and_then(Value::as_arr).unwrap();
        assert!(gauges.iter().any(|g| {
            g.get("name").and_then(Value::as_str) == Some("test.history.depth")
                && g.get("value").and_then(Value::as_f64) == Some(3.5)
        }));
        let hists = tick.get("histograms").and_then(Value::as_arr).unwrap();
        let mine = hists
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("test.history.lat"))
            .expect("histogram tick present");
        assert_eq!(mine.get("count_delta").and_then(Value::as_f64), Some(2.0));
        assert_eq!(mine.get("sum_delta").and_then(Value::as_f64), Some(1000.0));

        // Capacity 0 disables recording entirely.
        reset_history();
        set_history_capacity(0);
        history_tick();
        assert_eq!(history_len(), 0);
        set_history_capacity(DEFAULT_HISTORY_CAPACITY);
    }
}
