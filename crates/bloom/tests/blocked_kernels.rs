//! Differential tests for the word-blocked kernels: the strip-wise BitVec
//! operations and the batched matrix narrowing must agree bit-for-bit with
//! their word-at-a-time / per-query references on arbitrary inputs.
//!
//! Property tests drive randomized shapes (ragged tails, empty query sets,
//! empty candidate sets); the plain `#[test]`s below pin the same
//! equivalences on fixed awkward shapes so the offline harness (where
//! `proptest!` expands to nothing) keeps the coverage.

use proptest::prelude::*;
use tind_bloom::{BitVec, BloomFilter, BloomMatrix, BloomMatrixBuilder};

/// Small deterministic generator so both the property tests and the fixed
/// tests can derive arbitrary-looking data from one seed.
fn lcg(mut state: u64) -> impl FnMut() -> u64 {
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 16
    }
}

/// A matrix over `num_cols` columns with pseudo-random small value sets
/// (some columns deliberately left empty), plus the per-column value sets.
fn random_matrix(num_cols: usize, m: u32, seed: u64) -> (BloomMatrix, Vec<Vec<u32>>) {
    let mut next = lcg(seed);
    let mut builder = BloomMatrixBuilder::new(m, num_cols, 2);
    let mut columns = Vec::with_capacity(num_cols);
    for col in 0..num_cols {
        let len = (next() % 12) as usize; // 0 => empty column
        let values: Vec<u32> = (0..len).map(|_| (next() % 5_000) as u32).collect();
        builder.insert_column(col, &values);
        columns.push(values);
    }
    (builder.build(), columns)
}

fn random_queries(count: usize, m: u32, seed: u64) -> Vec<BloomFilter> {
    let mut next = lcg(seed);
    (0..count)
        .map(|_| {
            let len = (next() % 9) as usize; // empty query sets included
            let values: Vec<u32> = (0..len).map(|_| (next() % 5_000) as u32).collect();
            BloomFilter::from_values(&values, m, 2)
        })
        .collect()
}

fn random_candidates(count: usize, num_cols: usize, seed: u64) -> Vec<BitVec> {
    let mut next = lcg(seed);
    (0..count)
        .map(|i| {
            let mut c = BitVec::ones(num_cols);
            if i % 4 == 0 {
                c.clear_all(); // empty candidate sets must survive the kernel
            } else {
                for _ in 0..(next() % 8) {
                    c.clear(next() as usize % num_cols.max(1));
                }
            }
            c
        })
        .collect()
}

/// The reference: per-query narrowing via the existing single-query kernel.
fn narrow_each(
    matrix: &BloomMatrix,
    queries: &[BloomFilter],
    candidates: &[BitVec],
    supersets: bool,
) -> Vec<BitVec> {
    queries
        .iter()
        .zip(candidates)
        .map(|(q, c)| {
            let mut c = c.clone();
            if supersets {
                matrix.narrow_to_supersets(q, &mut c);
            } else {
                matrix.narrow_to_subsets(q, &mut c);
            }
            c
        })
        .collect()
}

fn assert_batch_matches(num_cols: usize, m: u32, batch: usize, seed: u64) {
    let (matrix, _) = random_matrix(num_cols, m, seed);
    let queries = random_queries(batch, m, seed ^ 0xabcd);
    let candidates = random_candidates(batch, num_cols, seed ^ 0x1234);

    for supersets in [true, false] {
        let expected = narrow_each(&matrix, &queries, &candidates, supersets);
        let mut got = candidates.clone();
        if supersets {
            matrix.narrow_batch_to_supersets(&queries, &mut got);
        } else {
            matrix.narrow_batch_to_subsets(&queries, &mut got);
        }
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(
                e, g,
                "query {i} diverged (supersets={supersets}, n={num_cols}, m={m}, seed={seed})"
            );
        }
    }
}

fn assert_strip_ops_match(len: usize, seed: u64) {
    let mut next = lcg(seed);
    let words_per = len.div_ceil(64);
    let base: Vec<u64> = (0..words_per).map(|_| next()).collect();
    let mut reference_and = BitVec::ones(len);
    reference_and.and_assign_words(&base);
    let mut reference_andnot = BitVec::ones(len);
    reference_andnot.andnot_assign_words(&base);

    for strip_words in [1usize, 3, 8] {
        let mut blocked_and = BitVec::ones(len);
        let mut blocked_andnot = BitVec::ones(len);
        let mut offset = 0;
        while offset < words_per {
            let end = (offset + strip_words).min(words_per);
            blocked_and.and_assign_words_at(offset, &base[offset..end]);
            blocked_andnot.andnot_assign_words_at(offset, &base[offset..end]);
            offset = end;
        }
        assert_eq!(reference_and, blocked_and, "AND strips of {strip_words} (len={len})");
        assert_eq!(reference_andnot, blocked_andnot, "ANDNOT strips of {strip_words} (len={len})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_narrowing_matches_per_query_reference(
        num_cols in 1usize..300,
        mexp in 5u32..9,
        batch in 0usize..12,
        seed in any::<u64>(),
    ) {
        assert_batch_matches(num_cols, 1u32 << mexp, batch, seed);
    }

    #[test]
    fn strip_ops_match_full_width_reference(
        len in 1usize..500,
        seed in any::<u64>(),
    ) {
        assert_strip_ops_match(len, seed);
    }
}

// Fixed-shape pins of the same properties, exercised even where proptest
// is unavailable.

#[test]
fn batch_narrowing_matches_on_ragged_column_counts() {
    for (num_cols, seed) in [(70usize, 3u64), (130, 5), (64, 7), (1, 11), (63, 13)] {
        assert_batch_matches(num_cols, 256, 6, seed);
    }
}

#[test]
fn batch_narrowing_handles_degenerate_batches() {
    // Empty batch: nothing to do, nothing to panic about.
    let (matrix, _) = random_matrix(50, 128, 21);
    matrix.narrow_batch_to_supersets(&[], &mut []);
    matrix.narrow_batch_to_subsets(&[], &mut []);
    // All-empty candidate sets and all-empty queries.
    assert_batch_matches(50, 128, 4, 0); // seed 0 → lcg starts empty-heavy
}

#[test]
fn strip_ops_match_on_ragged_tails() {
    for len in [1usize, 63, 64, 65, 70, 127, 128, 130, 447] {
        assert_strip_ops_match(len, len as u64 * 31 + 7);
    }
}
