//! Word-region backings for zero-copy Bloom matrices.
//!
//! A [`WordRegion`] is a read-only run of `u64` words that a
//! [`crate::BloomMatrix`] segment can borrow instead of own:
//!
//! * `Heap` — an owned, resident word buffer (the classic backing);
//! * `Mapped` — a window into an `mmap`'d arena file, borrowed with no
//!   decode and no copy;
//! * `Windowed` — a `pread`-on-demand window managed by a [`WindowPool`],
//!   charged against a [`MemoryBudget`] and evicted LRU under pressure,
//!   so an index larger than RAM still serves every query.
//!
//! Kernels access a region through a [`RegionGuard`], which pins the
//! backing (the mmap, or the loaded window's `Arc`) for the duration of
//! the operation — a concurrent eviction can drop the *pool's* reference
//! but never the words a guard is reading.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use tind_model::{Charge, MemoryBudget};

/// A read-only memory-mapped file whose 64-byte-aligned sections can be
/// borrowed directly as `&[u64]`.
///
/// On unix this is a real `mmap(PROT_READ, MAP_PRIVATE)` — opening is
/// O(1) regardless of file size, and cold pages are paged in (and
/// reclaimed) by the kernel. Elsewhere the file is read into an aligned
/// heap buffer, preserving the API at the cost of residency.
#[derive(Debug)]
pub struct MmapFile {
    ptr: *const u8,
    len: usize,
    /// Heap fallback (non-unix): the buffer `ptr` points into.
    _fallback: Option<Vec<u64>>,
    /// Keeps the unix fd's file open for the mapping's lifetime.
    _file: Option<std::fs::File>,
}

// The mapping is immutable and read-only for its whole lifetime.
unsafe impl Send for MmapFile {}
unsafe impl Sync for MmapFile {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_failed(p: *mut c_void) -> bool {
        p as isize == -1
    }
}

impl MmapFile {
    /// Maps `path` read-only. The whole file is visible immediately; no
    /// byte is read until a page is touched.
    pub fn map(path: &Path) -> io::Result<MmapFile> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "cannot map an empty file"));
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if sys::map_failed(ptr) {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapFile { ptr: ptr as *const u8, len, _fallback: None, _file: Some(file) })
        }
        #[cfg(not(unix))]
        {
            // Aligned heap fallback: read everything into a u64 buffer so
            // word views stay valid on platforms without mmap.
            use std::io::Read;
            let mut file = file;
            let mut raw = Vec::with_capacity(len);
            file.read_to_end(&mut raw)?;
            let mut words = vec![0u64; len.div_ceil(8)];
            unsafe {
                std::ptr::copy_nonoverlapping(raw.as_ptr(), words.as_mut_ptr() as *mut u8, len);
            }
            let ptr = words.as_ptr() as *const u8;
            Ok(MmapFile { ptr, len, _fallback: Some(words), _file: None })
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a successful map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Borrows `len_words` words starting at `byte_off`, or `None` when
    /// the range is out of bounds or not 8-byte aligned. The mmap base is
    /// page-aligned, so an aligned file offset yields an aligned pointer.
    pub fn words_at(&self, byte_off: usize, len_words: usize) -> Option<&[u64]> {
        let byte_len = len_words.checked_mul(8)?;
        let end = byte_off.checked_add(byte_len)?;
        if end > self.len || byte_off % 8 != 0 {
            return None;
        }
        let ptr = unsafe { self.ptr.add(byte_off) } as *const u64;
        Some(unsafe { std::slice::from_raw_parts(ptr, len_words) })
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self._fallback.is_none() {
            unsafe {
                sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
            }
        }
    }
}

/// A file handle windows `pread` from; shared by every slot of one shard.
#[derive(Debug)]
pub struct WindowFile {
    file: std::fs::File,
    /// Serializes seek+read on platforms without positional reads.
    #[cfg(not(unix))]
    lock: Mutex<()>,
}

impl WindowFile {
    /// Opens `path` for positional reads.
    pub fn open(path: &Path) -> io::Result<WindowFile> {
        Ok(WindowFile {
            file: std::fs::File::open(path)?,
            #[cfg(not(unix))]
            lock: Mutex::new(()),
        })
    }

    /// Reads exactly `buf.len()` bytes at absolute offset `off`.
    pub fn read_exact_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, off)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let _guard = self.lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut f = &self.file;
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(buf)
        }
    }
}

/// Counters describing a [`WindowPool`]'s behavior, for metrics mirrors
/// and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowStats {
    /// Windows read from disk (cold loads, including re-loads after
    /// eviction).
    pub loads: u64,
    /// Windows evicted to make room under the memory budget.
    pub evictions: u64,
    /// Loads that exceeded the budget even after evicting everything
    /// evictable — served uncharged, because correctness beats accounting.
    pub overcommits: u64,
}

/// Shared manager for `pread`-on-demand windows: owns the memory budget
/// and the LRU registry used to evict cold windows under pressure.
#[derive(Debug)]
pub struct WindowPool {
    budget: Option<MemoryBudget>,
    slots: Mutex<Vec<Weak<WindowSlot>>>,
    tick: AtomicU64,
    loads: AtomicU64,
    evictions: AtomicU64,
    overcommits: AtomicU64,
}

impl WindowPool {
    /// Creates a pool; window bytes are charged against `budget` when
    /// one is given, and loads evict the coldest resident windows until
    /// the charge fits.
    pub fn new(budget: Option<MemoryBudget>) -> Arc<WindowPool> {
        Arc::new(WindowPool {
            budget,
            slots: Mutex::new(Vec::new()),
            tick: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            overcommits: AtomicU64::new(0),
        })
    }

    /// Registers a new window over `len_words` words at `byte_off` of
    /// `file`. Nothing is read until the first [`WindowSlot::load`].
    pub fn slot(
        self: &Arc<WindowPool>,
        file: Arc<WindowFile>,
        byte_off: u64,
        len_words: usize,
    ) -> Arc<WindowSlot> {
        let slot = Arc::new(WindowSlot {
            pool: Arc::clone(self),
            file,
            byte_off,
            len_words,
            resident: Mutex::new(None),
            last_used: AtomicU64::new(0),
        });
        lock(&self.slots).push(Arc::downgrade(&slot));
        slot
    }

    /// Point-in-time load/eviction/overcommit counters.
    pub fn stats(&self) -> WindowStats {
        WindowStats {
            loads: self.loads.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            overcommits: self.overcommits.load(Ordering::Relaxed),
        }
    }

    /// Bytes currently resident across all live windows.
    pub fn resident_bytes(&self) -> usize {
        lock(&self.slots)
            .iter()
            .filter_map(Weak::upgrade)
            .filter(|s| lock(&s.resident).is_some())
            .map(|s| s.len_words * 8)
            .sum()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Charges `bytes`, evicting the coldest resident windows (other than
    /// `requester`) until the charge fits. `None` with `overcommit`
    /// counted means the budget can never cover this window — the load
    /// proceeds uncharged rather than failing the query.
    fn acquire(&self, bytes: usize, requester: *const WindowSlot) -> Option<Charge> {
        let budget = self.budget.as_ref()?;
        loop {
            if let Some(charge) = budget.try_charge(bytes) {
                return Some(charge);
            }
            if !self.evict_coldest(requester) {
                self.overcommits.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
    }

    /// Drops the least-recently-used resident window except `requester`;
    /// false when nothing is evictable.
    fn evict_coldest(&self, requester: *const WindowSlot) -> bool {
        let mut slots = lock(&self.slots);
        slots.retain(|w| w.strong_count() > 0);
        let victim = slots
            .iter()
            .filter_map(Weak::upgrade)
            .filter(|s| Arc::as_ptr(s) != requester && lock(&s.resident).is_some())
            .min_by_key(|s| s.last_used.load(Ordering::Relaxed));
        drop(slots);
        match victim {
            Some(slot) => {
                // Dropping the Resident releases its Charge; a RegionGuard
                // still reading the old Arc keeps the words alive until it
                // finishes.
                *lock(&slot.resident) = None;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }
}

#[derive(Debug)]
struct Resident {
    words: Arc<Vec<u64>>,
    _charge: Option<Charge>,
}

/// One on-demand window: a fixed `(file, byte_off, len_words)` range
/// that loads lazily through its pool and may be evicted between uses.
#[derive(Debug)]
pub struct WindowSlot {
    pool: Arc<WindowPool>,
    file: Arc<WindowFile>,
    byte_off: u64,
    len_words: usize,
    resident: Mutex<Option<Resident>>,
    last_used: AtomicU64,
}

impl WindowSlot {
    /// Window length in words.
    pub fn len_words(&self) -> usize {
        self.len_words
    }

    /// Whether the window is currently resident.
    pub fn is_resident(&self) -> bool {
        lock(&self.resident).is_some()
    }

    /// Returns the window's words, reading them from disk if evicted.
    ///
    /// # Errors
    /// Propagates the positional read's I/O error; the window stays
    /// non-resident so a later load can retry.
    pub fn load(self: &Arc<WindowSlot>) -> io::Result<Arc<Vec<u64>>> {
        self.last_used.store(self.pool.next_tick(), Ordering::Relaxed);
        let mut resident = lock(&self.resident);
        if let Some(r) = resident.as_ref() {
            return Ok(Arc::clone(&r.words));
        }
        let bytes = self.len_words * 8;
        let charge = self.pool.acquire(bytes, Arc::as_ptr(self));
        let mut words = vec![0u64; self.len_words];
        let buf = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, bytes)
        };
        self.file.read_exact_at(buf, self.byte_off)?;
        #[cfg(target_endian = "big")]
        for w in &mut words {
            *w = u64::from_le(w.to_ne_bytes().iter().fold(0u64, |acc, &b| acc << 8 | u64::from(b)));
        }
        self.pool.loads.fetch_add(1, Ordering::Relaxed);
        let words = Arc::new(words);
        *resident = Some(Resident { words: Arc::clone(&words), _charge: charge });
        Ok(words)
    }
}

/// A read-only run of `u64` words with one of three backings.
#[derive(Debug, Clone)]
pub enum WordRegion {
    /// Owned, resident words.
    Heap(Arc<Vec<u64>>),
    /// A window into an mmap'd file (`byte_off` must be 8-byte aligned).
    Mapped {
        /// The mapping the window borrows from.
        file: Arc<MmapFile>,
        /// Absolute byte offset of the window's first word.
        byte_off: usize,
        /// Window length in words.
        len_words: usize,
    },
    /// A `pread`-on-demand window managed by a [`WindowPool`].
    Windowed(Arc<WindowSlot>),
}

impl WordRegion {
    /// Region length in words.
    pub fn len_words(&self) -> usize {
        match self {
            WordRegion::Heap(v) => v.len(),
            WordRegion::Mapped { len_words, .. } => *len_words,
            WordRegion::Windowed(slot) => slot.len_words(),
        }
    }

    /// Bytes of this region resident on the heap right now (mmap windows
    /// are the kernel's pages, not ours).
    pub fn resident_bytes(&self) -> usize {
        match self {
            WordRegion::Heap(v) => v.len() * 8,
            WordRegion::Mapped { .. } => 0,
            WordRegion::Windowed(slot) => {
                if slot.is_resident() {
                    slot.len_words() * 8
                } else {
                    0
                }
            }
        }
    }

    /// Pins the region's words for reading.
    ///
    /// # Panics
    /// Panics when a windowed backing's disk read fails or a mapped
    /// window is out of the mapping's bounds — search kernels have no
    /// error channel, and the serve layer quarantines the panic into a
    /// typed 500 rather than returning silently wrong results.
    pub fn load(&self) -> RegionGuard {
        match self {
            WordRegion::Heap(v) => RegionGuard(GuardInner::Resident(Arc::clone(v))),
            WordRegion::Mapped { file, byte_off, len_words } => {
                let words = file
                    .words_at(*byte_off, *len_words)
                    .expect("mapped window must lie inside its validated arena");
                RegionGuard(GuardInner::Mapped {
                    ptr: words.as_ptr(),
                    len: words.len(),
                    _file: Arc::clone(file),
                })
            }
            WordRegion::Windowed(slot) => {
                let words = slot
                    .load()
                    .unwrap_or_else(|e| panic!("window read failed: {e}"));
                RegionGuard(GuardInner::Resident(words))
            }
        }
    }
}

#[derive(Debug)]
enum GuardInner {
    Resident(Arc<Vec<u64>>),
    Mapped { ptr: *const u64, len: usize, _file: Arc<MmapFile> },
}

/// Pins a [`WordRegion`]'s words (`Deref<Target = [u64]>`): holds the
/// backing `Arc`, so eviction or drops elsewhere never invalidate it.
#[derive(Debug)]
pub struct RegionGuard(GuardInner);

// Guards only expose shared reads of immutable data.
unsafe impl Send for RegionGuard {}
unsafe impl Sync for RegionGuard {}

impl std::ops::Deref for RegionGuard {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        match &self.0 {
            GuardInner::Resident(v) => v,
            GuardInner::Mapped { ptr, len, .. } => unsafe {
                std::slice::from_raw_parts(*ptr, *len)
            },
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tind-bloom-region-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    /// A file of `n` little-endian words `0, 10, 20, ...` with `pad`
    /// leading bytes of zeros.
    fn word_file(name: &str, n: usize, pad: usize) -> std::path::PathBuf {
        let path = scratch(name);
        let mut f = std::fs::File::create(&path).expect("create");
        f.write_all(&vec![0u8; pad]).expect("pad");
        for i in 0..n {
            f.write_all(&(i as u64 * 10).to_le_bytes()).expect("word");
        }
        f.sync_all().expect("sync");
        path
    }

    #[test]
    fn mmap_words_match_file_contents() {
        let path = word_file("map-basic.bin", 64, 64);
        let map = Arc::new(MmapFile::map(&path).expect("map"));
        assert_eq!(map.len(), 64 + 64 * 8);
        let words = map.words_at(64, 64).expect("aligned in-bounds window");
        assert_eq!(words[0], 0);
        assert_eq!(words[63], 630);
        // Misaligned and out-of-bounds windows are refused.
        assert!(map.words_at(63, 4).is_none(), "misaligned offset");
        assert!(map.words_at(64, 65).is_none(), "past the end");
        let region =
            WordRegion::Mapped { file: Arc::clone(&map), byte_off: 64 + 8, len_words: 3 };
        let guard = region.load();
        assert_eq!(&*guard, &[10, 20, 30]);
        assert_eq!(region.resident_bytes(), 0, "mapped windows are not heap-resident");
    }

    #[test]
    fn windowed_loads_evict_under_budget_and_stay_correct() {
        let path = word_file("window-evict.bin", 128, 0);
        // Budget covers exactly one 32-word window at a time.
        let pool = WindowPool::new(Some(MemoryBudget::new(32 * 8)));
        let file = Arc::new(WindowFile::open(&path).expect("open"));
        let a = pool.slot(Arc::clone(&file), 0, 32);
        let b = pool.slot(Arc::clone(&file), 32 * 8, 32);

        let wa = a.load().expect("load a");
        assert_eq!(wa[0], 0);
        assert!(a.is_resident());
        // Loading b must evict a (the only other resident window).
        let wb = b.load().expect("load b");
        assert_eq!(wb[0], 320);
        assert!(!a.is_resident(), "a evicted to fit b");
        // The guard-style Arc from before eviction still reads fine.
        assert_eq!(wa[31], 310);
        // Reloading a evicts b and re-reads identical words.
        let wa2 = a.load().expect("reload a");
        assert_eq!(&*wa2, &*wa);
        let stats = pool.stats();
        assert_eq!(stats.loads, 3);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.overcommits, 0);
    }

    #[test]
    fn window_too_large_for_budget_overcommits_instead_of_failing() {
        let path = word_file("window-overcommit.bin", 64, 0);
        let pool = WindowPool::new(Some(MemoryBudget::new(8)));
        let file = Arc::new(WindowFile::open(&path).expect("open"));
        let slot = pool.slot(file, 0, 64);
        let words = slot.load().expect("overcommitted load still succeeds");
        assert_eq!(words[5], 50);
        assert_eq!(pool.stats().overcommits, 1);
    }

    #[test]
    fn unbudgeted_pool_never_evicts() {
        let path = word_file("window-unbudgeted.bin", 96, 0);
        let pool = WindowPool::new(None);
        let file = Arc::new(WindowFile::open(&path).expect("open"));
        let slots: Vec<_> = (0..3).map(|i| pool.slot(Arc::clone(&file), i * 32 * 8, 32)).collect();
        for s in &slots {
            s.load().expect("load");
        }
        assert!(slots.iter().all(|s| s.is_resident()));
        assert_eq!(pool.stats().evictions, 0);
        assert_eq!(pool.resident_bytes(), 3 * 32 * 8);
    }

    #[test]
    fn heap_region_roundtrip() {
        let region = WordRegion::Heap(Arc::new(vec![7, 8, 9]));
        assert_eq!(region.len_words(), 3);
        assert_eq!(region.resident_bytes(), 24);
        assert_eq!(&*region.load(), &[7, 8, 9]);
    }
}
