//! A fixed-length bit vector with word-parallel boolean algebra.
//!
//! Used both for candidate sets over attributes (`|D|` bits) and for the
//! rows/filters of Bloom matrices. All bulk operations work on `u64` words;
//! bits past `len` in the final word are kept zero as an invariant so that
//! `count_ones`/`iter_ones` need no masking.

/// A fixed-length vector of bits.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec(len={}, ones={})", self.len, self.count_ones())
    }
}

const WORD_BITS: usize = 64;

#[inline]
fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitVec {
    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec { words: vec![0; words_for(len)], len }
    }

    /// Creates a vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec { words: vec![u64::MAX; words_for(len)], len };
        v.mask_tail();
        v
    }

    /// Zeroes any bits beyond `len` in the last word (internal invariant).
    #[inline]
    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i` to 0.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Sets all bits to 0.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Sets all bits to 1.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    /// Copies `other`'s bits into `self` without reallocating.
    pub fn copy_from(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// `self &= other`.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= !other` — the negated-row conjunction used for subset
    /// candidate search.
    pub fn andnot_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `self &= words`, where `words` is a raw row of the same word length.
    pub fn and_assign_words(&mut self, words: &[u64]) {
        assert_eq!(self.words.len(), words.len(), "word length mismatch");
        for (a, &b) in self.words.iter_mut().zip(words) {
            *a &= b;
        }
    }

    /// `self &= !words` for a raw row. The caller guarantees `words` has no
    /// bits set beyond `len` (Bloom-matrix rows maintain this).
    pub fn andnot_assign_words(&mut self, words: &[u64]) {
        assert_eq!(self.words.len(), words.len(), "word length mismatch");
        for (a, &b) in self.words.iter_mut().zip(words) {
            *a &= !b;
        }
        self.mask_tail();
    }

    /// Strip-local [`BitVec::and_assign_words`]: ANDs `words` into the word
    /// range starting at `word_offset`, leaving every other word untouched.
    /// The basis of the blocked batch-narrowing kernels, which sweep a
    /// matrix in cache-sized word strips instead of whole rows.
    pub fn and_assign_words_at(&mut self, word_offset: usize, words: &[u64]) {
        let end = word_offset
            .checked_add(words.len())
            .filter(|&end| end <= self.words.len())
            .expect("word strip out of bounds");
        for (a, &b) in self.words[word_offset..end].iter_mut().zip(words) {
            *a &= b;
        }
    }

    /// Strip-local [`BitVec::andnot_assign_words`]. Re-masks the tail so a
    /// strip covering the final partial word cannot leak bits past `len`.
    pub fn andnot_assign_words_at(&mut self, word_offset: usize, words: &[u64]) {
        let end = word_offset
            .checked_add(words.len())
            .filter(|&end| end <= self.words.len())
            .expect("word strip out of bounds");
        for (a, &b) in self.words[word_offset..end].iter_mut().zip(words) {
            *a &= !b;
        }
        self.mask_tail();
    }

    /// Whether every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Iterates the indices of zero bits in ascending order.
    pub fn iter_zeros(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.get(i))
    }

    /// Raw word storage (read-only).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes used by the word storage.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

/// Iterator over set-bit indices; see [`BitVec::iter_ones`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        v.set(0);
        v.set(64);
        v.set(129);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn ones_constructor_masks_tail() {
        let v = BitVec::ones(70);
        assert_eq!(v.count_ones(), 70);
        assert_eq!(v.words().len(), 2);
        assert_eq!(v.words()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn boolean_algebra() {
        let mut a = BitVec::zeros(100);
        let mut b = BitVec::zeros(100);
        for i in (0..100).step_by(2) {
            a.set(i);
        }
        for i in (0..100).step_by(3) {
            b.set(i);
        }
        let mut and = a.clone();
        and.and_assign(&b);
        assert!(and.iter_ones().all(|i| i % 6 == 0));
        assert_eq!(and.count_ones(), 17); // multiples of 6 in 0..100

        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.count_ones(), 50 + 34 - 17);

        let mut diff = a.clone();
        diff.andnot_assign(&b);
        assert!(diff.iter_ones().all(|i| i % 2 == 0 && i % 3 != 0));
    }

    #[test]
    fn subset_relation() {
        let mut small = BitVec::zeros(80);
        let mut big = BitVec::zeros(80);
        small.set(3);
        small.set(70);
        big.set(3);
        big.set(70);
        big.set(40);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(BitVec::zeros(80).is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut v = BitVec::zeros(200);
        let idx = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idx {
            v.set(i);
        }
        let collected: Vec<usize> = v.iter_ones().collect();
        assert_eq!(collected, idx);
    }

    #[test]
    fn iter_zeros_complements_iter_ones() {
        let mut v = BitVec::ones(70);
        v.clear(5);
        v.clear(69);
        let zeros: Vec<usize> = v.iter_zeros().collect();
        assert_eq!(zeros, vec![5, 69]);
    }

    #[test]
    fn set_all_then_clear_all() {
        let mut v = BitVec::zeros(67);
        v.set_all();
        assert_eq!(v.count_ones(), 67);
        v.clear_all();
        assert!(v.is_zero());
    }

    #[test]
    fn raw_word_operations() {
        let mut v = BitVec::ones(64);
        v.and_assign_words(&[0b1010]);
        assert_eq!(v.count_ones(), 2);
        v.andnot_assign_words(&[0b0010]);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn strip_word_operations_match_full_width() {
        // Apply the same row word-by-word via strips and in one full-width
        // call; results must be identical, including the masked tail.
        let len = 150;
        let row: Vec<u64> = vec![0xAAAA_AAAA_5555_5555, 0x0F0F_F0F0_1234_5678, u64::MAX];
        let mut full = BitVec::ones(len);
        full.and_assign_words(&row);
        let mut strips = BitVec::ones(len);
        for (w, chunk) in row.chunks(1).enumerate() {
            strips.and_assign_words_at(w, chunk);
        }
        assert_eq!(full, strips);

        let mut full = BitVec::ones(len);
        full.andnot_assign_words(&row);
        let mut strips = BitVec::ones(len);
        strips.andnot_assign_words_at(0, &row[0..2]);
        strips.andnot_assign_words_at(2, &row[2..3]);
        assert_eq!(full, strips);
        // The u64::MAX strip covered the ragged tail; no bit past len.
        assert_eq!(strips.count_ones(), full.count_ones());
        assert!(strips.words()[2] == 0, "tail word fully cleared");
    }

    #[test]
    fn strip_andnot_masks_ragged_tail() {
        let mut v = BitVec::ones(70);
        v.andnot_assign_words_at(1, &[0]);
        assert_eq!(v.count_ones(), 70, "andnot with zero strip is a no-op");
        v.andnot_assign_words_at(1, &[u64::MAX]);
        assert_eq!(v.count_ones(), 64, "bits 64..70 cleared, none leaked");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn strip_op_rejects_out_of_range() {
        let mut v = BitVec::zeros(64);
        v.and_assign_words_at(1, &[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_rejects_length_mismatch() {
        let mut a = BitVec::zeros(10);
        a.and_assign(&BitVec::zeros(11));
    }

    #[test]
    fn empty_bitvec() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.iter_ones().count(), 0);
    }
}
