//! Bloom filters over interned value sets.
//!
//! The hash function `h` maps a value set to a bit vector of `m` bits via
//! `k` double-hashing probes per value (Kirsch–Mitzenmacher). The property
//! the whole index rests on: `A ⊆ B ⇒ h(A) bitwise-⊆ h(B)` — inserting a
//! superset can only set *more* bits.

use crate::bitvec::BitVec;
use tind_model::hash::Hash128;
use tind_model::ValueId;

/// A Bloom filter of `m` bits with `k` hash probes per value.
///
/// # Examples
///
/// ```
/// use tind_bloom::BloomFilter;
///
/// let small = BloomFilter::from_values(&[1, 2, 3], 512, 2);
/// let big = BloomFilter::from_values(&[1, 2, 3, 4, 5], 512, 2);
/// // Subset relations are preserved — the basis of the MANY matrix trick.
/// assert!(small.may_be_subset_of(&big));
/// assert!(small.may_contain(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: BitVec,
    k_hashes: u32,
}

impl BloomFilter {
    /// Creates an empty filter.
    ///
    /// # Panics
    /// Panics if `m == 0` or `k_hashes == 0`.
    pub fn new(m: u32, k_hashes: u32) -> Self {
        assert!(m > 0, "filter size must be positive");
        assert!(k_hashes > 0, "need at least one hash probe");
        BloomFilter { bits: BitVec::zeros(m as usize), k_hashes }
    }

    /// Builds a filter directly from a value set.
    pub fn from_values(values: &[ValueId], m: u32, k_hashes: u32) -> Self {
        let mut f = BloomFilter::new(m, k_hashes);
        f.insert_all(values);
        f
    }

    /// Filter size `m` in bits.
    pub fn m(&self) -> u32 {
        self.bits.len() as u32
    }

    /// Number of hash probes per value.
    pub fn k_hashes(&self) -> u32 {
        self.k_hashes
    }

    /// Inserts one value.
    pub fn insert(&mut self, value: ValueId) {
        let h = Hash128::of_key(u64::from(value));
        for i in 0..self.k_hashes {
            self.bits.set(h.probe(i, self.m()) as usize);
        }
    }

    /// Inserts every value of a set.
    pub fn insert_all(&mut self, values: &[ValueId]) {
        for &v in values {
            self.insert(v);
        }
    }

    /// Whether `value` *may* be present (no false negatives).
    pub fn may_contain(&self, value: ValueId) -> bool {
        let h = Hash128::of_key(u64::from(value));
        (0..self.k_hashes).all(|i| self.bits.get(h.probe(i, self.m()) as usize))
    }

    /// Whether this filter's value set *may* be a subset of `other`'s
    /// (bitwise containment; no false negatives).
    pub fn may_be_subset_of(&self, other: &BloomFilter) -> bool {
        debug_assert_eq!(self.m(), other.m(), "filters must share m");
        debug_assert_eq!(self.k_hashes, other.k_hashes, "filters must share k");
        self.bits.is_subset_of(&other.bits)
    }

    /// The underlying bit vector.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Number of set bits (load of the filter).
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// The set-bit row indices; the rows a matrix query must AND together.
    pub fn set_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter_ones()
    }

    /// The zero-bit row indices; the rows a subset-direction matrix query
    /// must AND-NOT together.
    pub fn zero_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter_zeros()
    }

    /// Sets a raw bit position directly; used by
    /// [`crate::BloomMatrix::column_filter`] to reconstruct a column.
    pub(crate) fn set_raw_bit(&mut self, row: usize) {
        self.bits.set(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut f = BloomFilter::new(256, 2);
        for v in 0..20 {
            f.insert(v);
        }
        for v in 0..20 {
            assert!(f.may_contain(v), "no false negatives");
        }
    }

    #[test]
    fn subset_preservation() {
        let m = 512;
        let small: Vec<ValueId> = (0..10).collect();
        let big: Vec<ValueId> = (0..40).collect();
        let fs = BloomFilter::from_values(&small, m, 2);
        let fb = BloomFilter::from_values(&big, m, 2);
        assert!(fs.may_be_subset_of(&fb));
        assert!(fs.may_be_subset_of(&fs));
    }

    #[test]
    fn disjoint_sets_usually_not_subset() {
        // With m large relative to cardinality, a disjoint set should not
        // appear contained.
        let a: Vec<ValueId> = (0..8).collect();
        let b: Vec<ValueId> = (1000..1008).collect();
        let fa = BloomFilter::from_values(&a, 4096, 2);
        let fb = BloomFilter::from_values(&b, 4096, 2);
        assert!(!fa.may_be_subset_of(&fb));
    }

    #[test]
    fn empty_filter_is_subset_of_everything() {
        let empty = BloomFilter::new(128, 3);
        let full = BloomFilter::from_values(&[1, 2, 3], 128, 3);
        assert!(empty.may_be_subset_of(&full));
        assert!(empty.may_be_subset_of(&empty));
        assert_eq!(empty.count_ones(), 0);
    }

    #[test]
    fn k_probes_set_at_most_k_bits() {
        let mut f = BloomFilter::new(1 << 16, 4);
        f.insert(42);
        let ones = f.count_ones();
        assert!((1..=4).contains(&ones), "got {ones}");
    }

    #[test]
    fn set_and_zero_rows_partition() {
        let f = BloomFilter::from_values(&[5, 9, 100], 64, 2);
        let set: Vec<usize> = f.set_rows().collect();
        let zero: Vec<usize> = f.zero_rows().collect();
        assert_eq!(set.len() + zero.len(), 64);
        for r in &set {
            assert!(!zero.contains(r));
        }
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn rejects_zero_m() {
        BloomFilter::new(0, 2);
    }

    #[test]
    fn deterministic_across_instances() {
        let f1 = BloomFilter::from_values(&[1, 2, 3], 256, 2);
        let f2 = BloomFilter::from_values(&[3, 2, 1], 256, 2);
        assert_eq!(f1, f2, "same set, same filter regardless of insert order");
    }

    /// Statistical guard for the hashing pipeline: the empirical
    /// false-positive rate must track the analytic `(1 - e^{-kn/m})^k`
    /// estimate within a binomial confidence bound. A kernel rewrite that
    /// silently corrupts probing (biased rows, dropped probes, aliased
    /// lanes) shifts the observed rate far outside these bounds, while an
    /// intact implementation fails with probability well under 1e-5.
    #[test]
    fn empirical_fpr_within_binomial_bound_of_analytic_estimate() {
        for &(m, k, n) in &[(4096u32, 2u32, 400u32), (2048, 3, 250)] {
            let analytic =
                (1.0 - (-(f64::from(k) * f64::from(n)) / f64::from(m)).exp()).powi(k as i32);
            let trials_per_seed = 4000u32;
            let mut total_fp = 0u64;
            let mut total_trials = 0u64;
            for seed in 1u32..=5 {
                // Disjoint deterministic value ranges per seed; the value
                // ids themselves are arbitrary — the hash must spread them.
                let base = seed * 1_000_000;
                let inserted: Vec<ValueId> = (base..base + n).collect();
                let filter = BloomFilter::from_values(&inserted, m, k);
                let fp = (base + 500_000..base + 500_000 + trials_per_seed)
                    .filter(|&probe| filter.may_contain(probe))
                    .count() as u64;
                let rate = fp as f64 / f64::from(trials_per_seed);
                let sigma = (analytic * (1.0 - analytic) / f64::from(trials_per_seed)).sqrt();
                assert!(
                    (rate - analytic).abs() <= 5.0 * sigma + 0.005,
                    "m={m} k={k} n={n} seed {seed}: observed FPR {rate:.4}, analytic {analytic:.4}, σ={sigma:.4}"
                );
                total_fp += fp;
                total_trials += u64::from(trials_per_seed);
            }
            let rate = total_fp as f64 / total_trials as f64;
            let sigma = (analytic * (1.0 - analytic) / total_trials as f64).sqrt();
            assert!(
                (rate - analytic).abs() <= 4.0 * sigma + 0.003,
                "m={m} k={k} n={n} aggregate: observed FPR {rate:.4}, analytic {analytic:.4}, σ={sigma:.4}"
            );
        }
    }
}
