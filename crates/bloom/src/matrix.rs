//! The Bloom filter matrix: MANY's candidate index (Section 4.1).
//!
//! An `m × |D|` bit matrix whose `j`-th *column* is the Bloom filter of
//! attribute `j`'s value set, stored row-major so a query touches whole
//! rows:
//!
//! * **Superset candidates** (who may contain `Q`): AND together the rows
//!   where `h(Q)` is 1. A column that survives has every query bit set.
//! * **Subset candidates** (who may be contained in `Q`): AND together the
//!   *complements* of the rows where `h(Q)` is 0. A column that survives has
//!   no bit outside `h(Q)`.

use crate::bitvec::BitVec;
use crate::filter::BloomFilter;
use tind_model::hash::Hash128;
use tind_model::ValueId;

/// An immutable `m × num_cols` Bloom filter matrix.
///
/// # Examples
///
/// ```
/// use tind_bloom::{BitVec, BloomMatrixBuilder};
///
/// let mut builder = BloomMatrixBuilder::new(512, 2, 2);
/// builder.insert_column(0, &[1, 2, 3]);
/// builder.insert_column(1, &[100, 200]);
/// let matrix = builder.build();
///
/// // Which columns may contain {1, 2}? Only column 0.
/// let query = matrix.query_filter(&[1, 2]);
/// let mut candidates = BitVec::ones(2);
/// matrix.narrow_to_supersets(&query, &mut candidates);
/// assert!(candidates.get(0));
/// assert!(!candidates.get(1));
/// ```
#[derive(Debug, Clone)]
pub struct BloomMatrix {
    m: u32,
    num_cols: usize,
    k_hashes: u32,
    words_per_row: usize,
    rows: Vec<u64>,
}

/// Mutable assembly stage for a [`BloomMatrix`].
#[derive(Debug)]
pub struct BloomMatrixBuilder {
    matrix: BloomMatrix,
}

impl BloomMatrixBuilder {
    /// Creates an all-zero matrix of `m` rows and `num_cols` columns.
    ///
    /// # Panics
    /// Panics if `m == 0` or `k_hashes == 0`.
    pub fn new(m: u32, num_cols: usize, k_hashes: u32) -> Self {
        assert!(m > 0, "matrix needs at least one row");
        assert!(k_hashes > 0, "need at least one hash probe");
        let words_per_row = num_cols.div_ceil(64);
        BloomMatrixBuilder {
            matrix: BloomMatrix {
                m,
                num_cols,
                k_hashes,
                words_per_row,
                rows: vec![0u64; m as usize * words_per_row],
            },
        }
    }

    /// Inserts `values` into column `col` (the attribute's Bloom filter).
    /// May be called repeatedly for the same column; bits accumulate.
    pub fn insert_column(&mut self, col: usize, values: &[ValueId]) {
        assert!(col < self.matrix.num_cols, "column {col} out of range");
        let m = self.matrix.m;
        let (word, bit) = (col / 64, col % 64);
        for &v in values {
            let h = Hash128::of_key(u64::from(v));
            for i in 0..self.matrix.k_hashes {
                let row = h.probe(i, m) as usize;
                self.matrix.rows[row * self.matrix.words_per_row + word] |= 1u64 << bit;
            }
        }
    }

    /// Finalizes the matrix.
    pub fn build(self) -> BloomMatrix {
        self.matrix
    }
}

impl BloomMatrix {
    /// Number of rows `m` (the Bloom filter size).
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of columns (attributes).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Hash probes per value.
    pub fn k_hashes(&self) -> u32 {
        self.k_hashes
    }

    /// Hashes a value set into a query filter compatible with this matrix.
    pub fn query_filter(&self, values: &[ValueId]) -> BloomFilter {
        BloomFilter::from_values(values, self.m, self.k_hashes)
    }

    #[inline]
    fn row_words(&self, row: usize) -> &[u64] {
        &self.rows[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// Narrows `candidates` to columns that may be **supersets** of the
    /// queried value set: `candidates &= ⋀_{r: h(Q)[r]=1} M[r]`.
    ///
    /// No false negatives: a column whose value set truly contains the query
    /// set is never cleared.
    pub fn narrow_to_supersets(&self, query: &BloomFilter, candidates: &mut BitVec) {
        self.check_query(query, candidates);
        for row in query.set_rows() {
            candidates.and_assign_words(self.row_words(row));
            if candidates.is_zero() {
                return;
            }
        }
    }

    /// Narrows `candidates` to columns that may be **subsets** of the
    /// queried value set: `candidates &= ⋀_{r: h(Q)[r]=0} ¬M[r]`.
    pub fn narrow_to_subsets(&self, query: &BloomFilter, candidates: &mut BitVec) {
        self.check_query(query, candidates);
        for row in query.zero_rows() {
            candidates.andnot_assign_words(self.row_words(row));
            if candidates.is_zero() {
                return;
            }
        }
    }

    #[inline]
    fn check_query(&self, query: &BloomFilter, candidates: &BitVec) {
        assert_eq!(query.m(), self.m, "query filter size must match matrix rows");
        assert_eq!(query.k_hashes(), self.k_hashes, "query probe count must match matrix");
        assert_eq!(candidates.len(), self.num_cols, "candidate set must cover all columns");
    }

    /// Whether column `col`'s filter may contain all `values`
    /// (per-candidate check without materializing the column).
    pub fn column_may_contain_all(&self, col: usize, values: &[ValueId]) -> bool {
        debug_assert!(col < self.num_cols);
        let (word, bit) = (col / 64, col % 64);
        for &v in values {
            let h = Hash128::of_key(u64::from(v));
            for i in 0..self.k_hashes {
                let row = h.probe(i, self.m) as usize;
                if self.rows[row * self.words_per_row + word] >> bit & 1 == 0 {
                    return false;
                }
            }
        }
        true
    }

    /// Whether every set bit of column `col` lies within `filter` — the
    /// per-candidate subset-direction test (equivalent to surviving
    /// [`BloomMatrix::narrow_to_subsets`], but O(m) per column instead of
    /// O(zero-bits · |D|/64) for the whole matrix).
    pub fn column_within_filter(&self, col: usize, filter: &BloomFilter) -> bool {
        debug_assert!(col < self.num_cols);
        debug_assert_eq!(filter.m(), self.m);
        let (word, bit) = (col / 64, col % 64);
        for row in 0..self.m as usize {
            if self.rows[row * self.words_per_row + word] >> bit & 1 == 1
                && !filter.bits().get(row)
            {
                return false;
            }
        }
        true
    }

    /// Extracts column `col` as a standalone Bloom filter (diagnostics and
    /// reverse-search violation checks).
    pub fn column_filter(&self, col: usize) -> BloomFilter {
        debug_assert!(col < self.num_cols);
        let (word, bit) = (col / 64, col % 64);
        let mut f = BloomFilter::new(self.m, self.k_hashes);
        for row in 0..self.m as usize {
            if self.rows[row * self.words_per_row + word] >> bit & 1 == 1 {
                f.set_raw_bit(row);
            }
        }
        f
    }

    /// Heap bytes used by the row storage — the `(k+1)·|D|·m / 8` of the
    /// paper's memory-tradeoff discussion (Section 4.2.2).
    pub fn heap_bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<u64>()
    }

    /// Serializes the matrix (for index persistence).
    pub fn encode(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        use tind_model::binio::put_varint;
        put_varint(buf, u64::from(self.m));
        put_varint(buf, self.num_cols as u64);
        put_varint(buf, u64::from(self.k_hashes));
        for &w in &self.rows {
            buf.put_u64_le(w);
        }
    }

    /// Deserializes a matrix written by [`BloomMatrix::encode`].
    pub fn decode(buf: &mut bytes::Bytes) -> Result<Self, tind_model::binio::BinIoError> {
        use bytes::Buf;
        use tind_model::binio::{get_varint, BinIoError};
        let m = u32::try_from(get_varint(buf)?)
            .map_err(|_| BinIoError::Corrupt("matrix m overflow".into()))?;
        let num_cols = get_varint(buf)? as usize;
        let k_hashes = u32::try_from(get_varint(buf)?)
            .map_err(|_| BinIoError::Corrupt("matrix k overflow".into()))?;
        if m == 0 || k_hashes == 0 {
            return Err(BinIoError::Corrupt("degenerate matrix dimensions".into()));
        }
        let words_per_row = num_cols.div_ceil(64);
        let total_words = (m as usize)
            .checked_mul(words_per_row)
            .ok_or_else(|| BinIoError::Corrupt("matrix size overflow".into()))?;
        if buf.remaining() < total_words * 8 {
            return Err(BinIoError::Corrupt("truncated matrix rows".into()));
        }
        let mut rows = Vec::with_capacity(total_words);
        for _ in 0..total_words {
            rows.push(buf.get_u64_le());
        }
        Ok(BloomMatrix { m, num_cols, k_hashes, words_per_row, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three attributes: 0 = {0..10}, 1 = {0..5}, 2 = {100..110}.
    fn sample_matrix(m: u32) -> BloomMatrix {
        let mut b = BloomMatrixBuilder::new(m, 3, 2);
        let a0: Vec<ValueId> = (0..10).collect();
        let a1: Vec<ValueId> = (0..5).collect();
        let a2: Vec<ValueId> = (100..110).collect();
        b.insert_column(0, &a0);
        b.insert_column(1, &a1);
        b.insert_column(2, &a2);
        b.build()
    }

    #[test]
    fn superset_search_finds_true_supersets() {
        let m = sample_matrix(1024);
        let query: Vec<ValueId> = (0..5).collect();
        let qf = m.query_filter(&query);
        let mut cands = BitVec::ones(3);
        m.narrow_to_supersets(&qf, &mut cands);
        assert!(cands.get(0), "0..10 contains 0..5");
        assert!(cands.get(1), "0..5 contains itself");
        assert!(!cands.get(2), "100..110 disjoint (bloom should prune at this size)");
    }

    #[test]
    fn subset_search_finds_true_subsets() {
        let m = sample_matrix(1024);
        let query: Vec<ValueId> = (0..10).collect();
        let qf = m.query_filter(&query);
        let mut cands = BitVec::ones(3);
        m.narrow_to_subsets(&qf, &mut cands);
        assert!(cands.get(0));
        assert!(cands.get(1));
        assert!(!cands.get(2));
    }

    #[test]
    fn no_false_negatives_even_with_tiny_filters() {
        // With m = 8 there will be many collisions, but a true superset can
        // never be pruned.
        let m = sample_matrix(8);
        let query: Vec<ValueId> = (0..10).collect();
        let qf = m.query_filter(&query);
        let mut cands = BitVec::ones(3);
        m.narrow_to_supersets(&qf, &mut cands);
        assert!(cands.get(0), "true superset survived");
    }

    #[test]
    fn column_may_contain_all_matches_column_semantics() {
        let m = sample_matrix(2048);
        assert!(m.column_may_contain_all(0, &[0, 5, 9]));
        assert!(m.column_may_contain_all(1, &[0, 4]));
        assert!(!m.column_may_contain_all(1, &[0, 4, 99]));
        assert!(!m.column_may_contain_all(2, &[0]));
        assert!(m.column_may_contain_all(2, &[105]));
    }

    #[test]
    fn column_within_filter_matches_subset_search() {
        let m = sample_matrix(512);
        for query in [(0u32..10).collect::<Vec<_>>(), (0..5).collect(), (100..110).collect()] {
            let qf = m.query_filter(&query);
            let mut cands = BitVec::ones(3);
            m.narrow_to_subsets(&qf, &mut cands);
            for col in 0..3 {
                assert_eq!(
                    m.column_within_filter(col, &qf),
                    cands.get(col),
                    "probe and row mode disagree on column {col} for query {query:?}"
                );
            }
        }
    }

    #[test]
    fn column_filter_roundtrip() {
        let m = sample_matrix(256);
        let col0 = m.column_filter(0);
        let direct = BloomFilter::from_values(&(0..10).collect::<Vec<_>>(), 256, 2);
        assert_eq!(col0, direct);
    }

    #[test]
    fn empty_query_keeps_all_superset_candidates() {
        let m = sample_matrix(512);
        let qf = m.query_filter(&[]);
        let mut cands = BitVec::ones(3);
        m.narrow_to_supersets(&qf, &mut cands);
        assert_eq!(cands.count_ones(), 3, "empty set contained everywhere");
    }

    #[test]
    fn incremental_column_insertion_accumulates() {
        let mut b = BloomMatrixBuilder::new(512, 1, 2);
        b.insert_column(0, &[1, 2]);
        b.insert_column(0, &[3]);
        let m = b.build();
        assert!(m.column_may_contain_all(0, &[1, 2, 3]));
    }

    #[test]
    fn many_columns_across_word_boundaries() {
        let n = 200;
        let mut b = BloomMatrixBuilder::new(1024, n, 2);
        for col in 0..n {
            b.insert_column(col, &[col as ValueId, (col + 1) as ValueId]);
        }
        let m = b.build();
        // Query {70, 71} — only column 70 has both.
        let qf = m.query_filter(&[70, 71]);
        let mut cands = BitVec::ones(n);
        m.narrow_to_supersets(&qf, &mut cands);
        assert!(cands.get(70));
        // Surviving candidates must at least bloom-contain the query.
        for c in cands.iter_ones() {
            assert!(m.column_may_contain_all(c, &[70, 71]));
        }
    }

    #[test]
    fn heap_bytes_matches_paper_formula() {
        let m = BloomMatrixBuilder::new(4096, 128, 2).build();
        // 4096 rows × ceil(128/64)=2 words × 8 bytes.
        assert_eq!(m.heap_bytes(), 4096 * 2 * 8);
    }

    #[test]
    fn matrix_encode_decode_roundtrip() {
        let m = sample_matrix(512);
        let mut buf = bytes::BytesMut::new();
        m.encode(&mut buf);
        let mut bytes = buf.freeze();
        let m2 = BloomMatrix::decode(&mut bytes).expect("decodes");
        assert_eq!(m2.m(), m.m());
        assert_eq!(m2.num_cols(), m.num_cols());
        assert_eq!(m2.k_hashes(), m.k_hashes());
        for col in 0..3 {
            assert_eq!(m2.column_filter(col), m.column_filter(col));
        }
        assert!(!bytes::Buf::has_remaining(&bytes));
    }

    #[test]
    fn matrix_decode_rejects_truncation() {
        let m = sample_matrix(128);
        let mut buf = bytes::BytesMut::new();
        m.encode(&mut buf);
        let full = buf.freeze();
        let mut truncated = full.slice(0..full.len() / 2);
        assert!(BloomMatrix::decode(&mut truncated).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_bad_column() {
        let mut b = BloomMatrixBuilder::new(64, 2, 2);
        b.insert_column(2, &[1]);
    }
}
