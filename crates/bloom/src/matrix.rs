//! The Bloom filter matrix: MANY's candidate index (Section 4.1).
//!
//! An `m × |D|` bit matrix whose `j`-th *column* is the Bloom filter of
//! attribute `j`'s value set, stored row-major so a query touches whole
//! rows:
//!
//! * **Superset candidates** (who may contain `Q`): AND together the rows
//!   where `h(Q)` is 1. A column that survives has every query bit set.
//! * **Subset candidates** (who may be contained in `Q`): AND together the
//!   *complements* of the rows where `h(Q)` is 0. A column that survives has
//!   no bit outside `h(Q)`.
//!
//! ## Storage backings
//!
//! A matrix owns its words (`MatrixStorage::Owned`, the classic heap
//! layout) or borrows them as a sequence of column-range **segments**
//! ([`Segment`]), each backed by a [`WordRegion`] — owned words, an
//! mmap'd arena window, or a `pread`-on-demand window. Every search
//! kernel runs unchanged over either backing and produces bit-identical
//! candidate sets; mutating operations ([`BloomMatrix::replace_strip`],
//! [`BloomMatrix::grow_cols`]) first materialize borrowed segments into
//! owned words via [`BloomMatrix::ensure_owned`].

use crate::bitvec::BitVec;
use crate::filter::BloomFilter;
use crate::region::WordRegion;
use tind_model::hash::Hash128;
use tind_model::ValueId;

/// One column-range slice of a segmented matrix: `width` words of every
/// row (columns `64·word_start .. 64·(word_start+width)`), stored
/// row-major inside a [`WordRegion`] of exactly `m × width` words.
#[derive(Debug, Clone)]
pub struct Segment {
    /// First word column this segment covers.
    pub word_start: usize,
    /// Words per row in this segment.
    pub width: usize,
    /// The segment's `m × width` row-major words.
    pub words: WordRegion,
}

#[derive(Debug, Clone)]
enum MatrixStorage {
    Owned(Vec<u64>),
    Segmented(Vec<Segment>),
}

/// An immutable `m × num_cols` Bloom filter matrix.
///
/// # Examples
///
/// ```
/// use tind_bloom::{BitVec, BloomMatrixBuilder};
///
/// let mut builder = BloomMatrixBuilder::new(512, 2, 2);
/// builder.insert_column(0, &[1, 2, 3]);
/// builder.insert_column(1, &[100, 200]);
/// let matrix = builder.build();
///
/// // Which columns may contain {1, 2}? Only column 0.
/// let query = matrix.query_filter(&[1, 2]);
/// let mut candidates = BitVec::ones(2);
/// matrix.narrow_to_supersets(&query, &mut candidates);
/// assert!(candidates.get(0));
/// assert!(!candidates.get(1));
/// ```
#[derive(Debug, Clone)]
pub struct BloomMatrix {
    m: u32,
    num_cols: usize,
    k_hashes: u32,
    words_per_row: usize,
    storage: MatrixStorage,
}

/// Mutable assembly stage for a [`BloomMatrix`].
#[derive(Debug)]
pub struct BloomMatrixBuilder {
    matrix: BloomMatrix,
}

impl BloomMatrixBuilder {
    /// Creates an all-zero matrix of `m` rows and `num_cols` columns.
    ///
    /// # Panics
    /// Panics if `m == 0` or `k_hashes == 0`.
    pub fn new(m: u32, num_cols: usize, k_hashes: u32) -> Self {
        assert!(m > 0, "matrix needs at least one row");
        assert!(k_hashes > 0, "need at least one hash probe");
        let words_per_row = num_cols.div_ceil(64);
        BloomMatrixBuilder {
            matrix: BloomMatrix {
                m,
                num_cols,
                k_hashes,
                words_per_row,
                storage: MatrixStorage::Owned(vec![0u64; m as usize * words_per_row]),
            },
        }
    }

    /// Inserts `values` into column `col` (the attribute's Bloom filter).
    /// May be called repeatedly for the same column; bits accumulate.
    pub fn insert_column(&mut self, col: usize, values: &[ValueId]) {
        assert!(col < self.matrix.num_cols, "column {col} out of range");
        let m = self.matrix.m;
        let k = self.matrix.k_hashes;
        let words_per_row = self.matrix.words_per_row;
        let (word, bit) = (col / 64, col % 64);
        let rows = self.matrix.owned_rows_mut();
        for &v in values {
            let h = Hash128::of_key(u64::from(v));
            for i in 0..k {
                let row = h.probe(i, m) as usize;
                rows[row * words_per_row + word] |= 1u64 << bit;
            }
        }
    }

    /// Finalizes the matrix.
    pub fn build(self) -> BloomMatrix {
        self.matrix
    }

    /// ORs a pre-built 64-column strip into word-block `block` (columns
    /// `64·block .. 64·block + 64`). Bit-identical to having called
    /// [`BloomMatrixBuilder::insert_column`] for each of the strip's lanes:
    /// every lane's probes land in exactly the same `(row, bit)` positions,
    /// and because the merge is a pure OR of disjoint word columns, the
    /// order in which strips are merged is irrelevant. This is what makes
    /// parallel index construction byte-identical to the sequential build.
    ///
    /// Lanes that would fall past `num_cols` (a ragged final block) are
    /// masked off.
    pub fn merge_strip(&mut self, block: usize, strip: &BloomColumnStrip) {
        let m = &mut self.matrix;
        assert!(block < m.words_per_row, "block {block} out of range");
        assert_eq!(strip.m, m.m, "strip row count must match matrix");
        assert_eq!(strip.k_hashes, m.k_hashes, "strip probe count must match matrix");
        let lanes = m.num_cols - block * 64;
        let mask = if lanes >= 64 { u64::MAX } else { (1u64 << lanes) - 1 };
        let words_per_row = m.words_per_row;
        let rows = m.owned_rows_mut();
        for (row, &w) in strip.words.iter().enumerate() {
            rows[row * words_per_row + block] |= w & mask;
        }
    }
}

/// A standalone strip of up to 64 Bloom-matrix columns (`m` rows × one
/// `u64` of column lanes), built independently of the full matrix so column
/// blocks can be populated by parallel workers and positionally merged with
/// [`BloomMatrixBuilder::merge_strip`].
#[derive(Debug, Clone)]
pub struct BloomColumnStrip {
    m: u32,
    k_hashes: u32,
    words: Vec<u64>,
}

impl BloomColumnStrip {
    /// Creates an all-zero strip compatible with an `(m, k_hashes)` matrix.
    ///
    /// # Panics
    /// Panics if `m == 0` or `k_hashes == 0`.
    pub fn new(m: u32, k_hashes: u32) -> Self {
        assert!(m > 0, "strip needs at least one row");
        assert!(k_hashes > 0, "need at least one hash probe");
        BloomColumnStrip { m, k_hashes, words: vec![0u64; m as usize] }
    }

    /// Inserts `values` into column lane `lane` (`0..64`); bits accumulate,
    /// exactly like [`BloomMatrixBuilder::insert_column`].
    pub fn insert_lane(&mut self, lane: usize, values: &[ValueId]) {
        assert!(lane < 64, "lane {lane} out of range");
        let m = self.m;
        for &v in values {
            let h = Hash128::of_key(u64::from(v));
            for i in 0..self.k_hashes {
                let row = h.probe(i, m) as usize;
                self.words[row] |= 1u64 << lane;
            }
        }
    }

    /// Zeroes every lane so a worker can reuse the buffer for its next
    /// column block instead of allocating a fresh strip per work unit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Heap bytes held by the strip (one word per row) — the scratch a
    /// parallel build worker charges against a memory budget.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Reconstitutes a strip from raw row words (one `u64` of column lanes
    /// per row), the inverse of [`BloomColumnStrip::words`]. Used by the
    /// sharded index store, which persists strips as plain word arrays.
    ///
    /// # Panics
    /// Panics if `m == 0`, `k_hashes == 0`, or `words.len() != m`.
    pub fn from_words(m: u32, k_hashes: u32, words: Vec<u64>) -> Self {
        assert!(m > 0, "strip needs at least one row");
        assert!(k_hashes > 0, "need at least one hash probe");
        assert_eq!(words.len(), m as usize, "one word of lanes per row");
        BloomColumnStrip { m, k_hashes, words }
    }

    /// The strip's raw row words: element `r` holds the 64 column lanes of
    /// row `r`.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl BloomMatrix {
    /// Number of rows `m` (the Bloom filter size).
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of columns (attributes).
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Hash probes per value.
    pub fn k_hashes(&self) -> u32 {
        self.k_hashes
    }

    /// Assembles a matrix whose words are borrowed from `segments` instead
    /// of owned — the zero-copy open path of the arena store. Segments may
    /// arrive in any order but must tile the row width exactly: sorted by
    /// `word_start` they must be contiguous from word 0 through
    /// `num_cols.div_ceil(64)`, and each must hold `m × width` words.
    ///
    /// # Panics
    /// Panics on degenerate dimensions or a gap / overlap / length
    /// mismatch in the segment tiling.
    pub fn from_segments(
        m: u32,
        num_cols: usize,
        k_hashes: u32,
        mut segments: Vec<Segment>,
    ) -> Self {
        assert!(m > 0, "matrix needs at least one row");
        assert!(k_hashes > 0, "need at least one hash probe");
        let words_per_row = num_cols.div_ceil(64);
        segments.sort_by_key(|s| s.word_start);
        let mut expect = 0usize;
        for seg in &segments {
            assert_eq!(seg.word_start, expect, "segments must tile the row width contiguously");
            assert!(seg.width > 0, "segment must cover at least one word");
            assert_eq!(
                seg.words.len_words(),
                m as usize * seg.width,
                "segment must hold m × width words"
            );
            expect += seg.width;
        }
        assert_eq!(expect, words_per_row, "segments must cover the full row width");
        BloomMatrix { m, num_cols, k_hashes, words_per_row, storage: MatrixStorage::Segmented(segments) }
    }

    /// Whether the matrix owns its words (vs. borrowing segments).
    pub fn is_owned(&self) -> bool {
        matches!(self.storage, MatrixStorage::Owned(_))
    }

    /// Materializes borrowed segments into owned words; a no-op on an
    /// already-owned matrix. Mutating operations call this first, which is
    /// what keeps `apply_delta`'s exact strip replacement sound over
    /// zero-copy backings: the mutation happens on a private copy, never
    /// on the shared (possibly mmap'd) arena bytes.
    pub fn ensure_owned(&mut self) {
        if let MatrixStorage::Segmented(segments) = &self.storage {
            let mut rows = vec![0u64; self.m as usize * self.words_per_row];
            for seg in segments {
                let guard = seg.words.load();
                for row in 0..self.m as usize {
                    rows[row * self.words_per_row + seg.word_start..][..seg.width]
                        .copy_from_slice(&guard[row * seg.width..][..seg.width]);
                }
            }
            self.storage = MatrixStorage::Owned(rows);
        }
    }

    #[inline]
    fn owned_rows_mut(&mut self) -> &mut Vec<u64> {
        self.ensure_owned();
        match &mut self.storage {
            MatrixStorage::Owned(rows) => rows,
            MatrixStorage::Segmented(_) => unreachable!("ensure_owned materialized"),
        }
    }

    /// The segment covering word column `word` (segmented storage only).
    #[inline]
    fn segment_for(segments: &[Segment], word: usize) -> &Segment {
        let idx = segments.partition_point(|s| s.word_start + s.width <= word);
        let seg = &segments[idx];
        debug_assert!(word >= seg.word_start && word < seg.word_start + seg.width);
        seg
    }

    /// Hashes a value set into a query filter compatible with this matrix.
    pub fn query_filter(&self, values: &[ValueId]) -> BloomFilter {
        BloomFilter::from_values(values, self.m, self.k_hashes)
    }

    /// Narrows `candidates` to columns that may be **supersets** of the
    /// queried value set: `candidates &= ⋀_{r: h(Q)[r]=1} M[r]`.
    ///
    /// No false negatives: a column whose value set truly contains the query
    /// set is never cleared.
    pub fn narrow_to_supersets(&self, query: &BloomFilter, candidates: &mut BitVec) {
        self.check_query(query, candidates);
        match &self.storage {
            MatrixStorage::Owned(rows) => {
                for row in query.set_rows() {
                    candidates
                        .and_assign_words(&rows[row * self.words_per_row..][..self.words_per_row]);
                    if candidates.is_zero() {
                        return;
                    }
                }
            }
            MatrixStorage::Segmented(segments) => {
                // AND is commutative, so sweeping segment-major instead of
                // row-major yields the identical candidate set while
                // touching each segment's backing exactly once.
                for seg in segments {
                    let guard = seg.words.load();
                    for row in query.set_rows() {
                        candidates.and_assign_words_at(
                            seg.word_start,
                            &guard[row * seg.width..][..seg.width],
                        );
                    }
                    if candidates.is_zero() {
                        return;
                    }
                }
            }
        }
    }

    /// Narrows `candidates` to columns that may be **subsets** of the
    /// queried value set: `candidates &= ⋀_{r: h(Q)[r]=0} ¬M[r]`.
    pub fn narrow_to_subsets(&self, query: &BloomFilter, candidates: &mut BitVec) {
        self.check_query(query, candidates);
        match &self.storage {
            MatrixStorage::Owned(rows) => {
                for row in query.zero_rows() {
                    candidates.andnot_assign_words(
                        &rows[row * self.words_per_row..][..self.words_per_row],
                    );
                    if candidates.is_zero() {
                        return;
                    }
                }
            }
            MatrixStorage::Segmented(segments) => {
                for seg in segments {
                    let guard = seg.words.load();
                    for row in query.zero_rows() {
                        candidates.andnot_assign_words_at(
                            seg.word_start,
                            &guard[row * seg.width..][..seg.width],
                        );
                    }
                    if candidates.is_zero() {
                        return;
                    }
                }
            }
        }
    }

    /// Batched [`BloomMatrix::narrow_to_supersets`]: narrows one candidate
    /// set per query in a word-blocked sweep of the matrix.
    ///
    /// The candidate width is walked in fixed word strips and every query
    /// narrows its strip words before the sweep advances, so all row and
    /// candidate traffic stays within one column slice of the matrix at a
    /// time — the batch amortization of §4.2.2: on matrices too large for
    /// cache, a strip's column slice is fetched once per batch instead of
    /// re-streamed per query. Produces bit-identical candidate sets to the
    /// per-query loop (a query whose filter has no set rows — e.g. an
    /// empty value set — narrows nothing, matching the single-query
    /// path).
    pub fn narrow_batch_to_supersets(&self, queries: &[BloomFilter], candidates: &mut [BitVec]) {
        self.narrow_batch(queries, candidates, false);
    }

    /// Batched [`BloomMatrix::narrow_to_subsets`]; same blocked sweep over
    /// the complemented rows (the rows where each query's filter is zero).
    pub fn narrow_batch_to_subsets(&self, queries: &[BloomFilter], candidates: &mut [BitVec]) {
        self.narrow_batch(queries, candidates, true);
    }

    fn narrow_batch(&self, queries: &[BloomFilter], candidates: &mut [BitVec], complement: bool) {
        assert_eq!(queries.len(), candidates.len(), "one candidate set per query");
        for (query, cands) in queries.iter().zip(candidates.iter()) {
            self.check_query(query, cands);
        }
        // Strip width: 8 words = one 64-byte cache line of candidate bits.
        const STRIP_WORDS: usize = 8;
        let strip_live = |c: &BitVec, lo: usize, hi: usize| -> bool {
            c.words()[lo..hi].iter().any(|&w| w != 0)
        };
        match &self.storage {
            MatrixStorage::Owned(rows) => {
                let mut strip_start = 0;
                while strip_start < self.words_per_row {
                    let strip_end = (strip_start + STRIP_WORDS).min(self.words_per_row);
                    for (query, c) in queries.iter().zip(candidates.iter_mut()) {
                        // Candidate words that are all zero in this strip can
                        // never come back under AND / AND-NOT — skip or stop
                        // early, the blocked analogue of the single-query
                        // early exit on an emptied candidate set.
                        if !strip_live(c, strip_start, strip_end) {
                            continue;
                        }
                        if complement {
                            for row in query.zero_rows() {
                                let base = row * self.words_per_row;
                                let words = &rows[base + strip_start..base + strip_end];
                                c.andnot_assign_words_at(strip_start, words);
                                if !strip_live(c, strip_start, strip_end) {
                                    break;
                                }
                            }
                        } else {
                            for row in query.set_rows() {
                                let base = row * self.words_per_row;
                                let words = &rows[base + strip_start..base + strip_end];
                                c.and_assign_words_at(strip_start, words);
                                if !strip_live(c, strip_start, strip_end) {
                                    break;
                                }
                            }
                        }
                    }
                    strip_start = strip_end;
                }
            }
            MatrixStorage::Segmented(segments) => {
                // Same blocked sweep, with strips confined to one segment at
                // a time so each backing is pinned once per batch.
                for seg in segments {
                    let guard = seg.words.load();
                    let mut local_start = 0;
                    while local_start < seg.width {
                        let local_end = (local_start + STRIP_WORDS).min(seg.width);
                        let off = seg.word_start + local_start;
                        let len = local_end - local_start;
                        for (query, c) in queries.iter().zip(candidates.iter_mut()) {
                            if !strip_live(c, off, off + len) {
                                continue;
                            }
                            if complement {
                                for row in query.zero_rows() {
                                    let base = row * seg.width;
                                    let words = &guard[base + local_start..base + local_end];
                                    c.andnot_assign_words_at(off, words);
                                    if !strip_live(c, off, off + len) {
                                        break;
                                    }
                                }
                            } else {
                                for row in query.set_rows() {
                                    let base = row * seg.width;
                                    let words = &guard[base + local_start..base + local_end];
                                    c.and_assign_words_at(off, words);
                                    if !strip_live(c, off, off + len) {
                                        break;
                                    }
                                }
                            }
                        }
                        local_start = local_end;
                    }
                }
            }
        }
    }

    #[inline]
    fn check_query(&self, query: &BloomFilter, candidates: &BitVec) {
        assert_eq!(query.m(), self.m, "query filter size must match matrix rows");
        assert_eq!(query.k_hashes(), self.k_hashes, "query probe count must match matrix");
        assert_eq!(candidates.len(), self.num_cols, "candidate set must cover all columns");
    }

    /// Whether column `col`'s filter may contain all `values`
    /// (per-candidate check without materializing the column).
    pub fn column_may_contain_all(&self, col: usize, values: &[ValueId]) -> bool {
        debug_assert!(col < self.num_cols);
        let (word, bit) = (col / 64, col % 64);
        match &self.storage {
            MatrixStorage::Owned(rows) => {
                for &v in values {
                    let h = Hash128::of_key(u64::from(v));
                    for i in 0..self.k_hashes {
                        let row = h.probe(i, self.m) as usize;
                        if rows[row * self.words_per_row + word] >> bit & 1 == 0 {
                            return false;
                        }
                    }
                }
                true
            }
            MatrixStorage::Segmented(segments) => {
                let seg = Self::segment_for(segments, word);
                let guard = seg.words.load();
                let local = word - seg.word_start;
                for &v in values {
                    let h = Hash128::of_key(u64::from(v));
                    for i in 0..self.k_hashes {
                        let row = h.probe(i, self.m) as usize;
                        if guard[row * seg.width + local] >> bit & 1 == 0 {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }

    /// Whether every set bit of column `col` lies within `filter` — the
    /// per-candidate subset-direction test (equivalent to surviving
    /// [`BloomMatrix::narrow_to_subsets`], but O(m) per column instead of
    /// O(zero-bits · |D|/64) for the whole matrix).
    pub fn column_within_filter(&self, col: usize, filter: &BloomFilter) -> bool {
        debug_assert!(col < self.num_cols);
        debug_assert_eq!(filter.m(), self.m);
        let (word, bit) = (col / 64, col % 64);
        match &self.storage {
            MatrixStorage::Owned(rows) => {
                for row in 0..self.m as usize {
                    if rows[row * self.words_per_row + word] >> bit & 1 == 1
                        && !filter.bits().get(row)
                    {
                        return false;
                    }
                }
                true
            }
            MatrixStorage::Segmented(segments) => {
                let seg = Self::segment_for(segments, word);
                let guard = seg.words.load();
                let local = word - seg.word_start;
                for row in 0..self.m as usize {
                    if guard[row * seg.width + local] >> bit & 1 == 1 && !filter.bits().get(row) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Extracts column `col` as a standalone Bloom filter (diagnostics and
    /// reverse-search violation checks).
    pub fn column_filter(&self, col: usize) -> BloomFilter {
        debug_assert!(col < self.num_cols);
        let (word, bit) = (col / 64, col % 64);
        let mut f = BloomFilter::new(self.m, self.k_hashes);
        match &self.storage {
            MatrixStorage::Owned(rows) => {
                for row in 0..self.m as usize {
                    if rows[row * self.words_per_row + word] >> bit & 1 == 1 {
                        f.set_raw_bit(row);
                    }
                }
            }
            MatrixStorage::Segmented(segments) => {
                let seg = Self::segment_for(segments, word);
                let guard = seg.words.load();
                let local = word - seg.word_start;
                for row in 0..self.m as usize {
                    if guard[row * seg.width + local] >> bit & 1 == 1 {
                        f.set_raw_bit(row);
                    }
                }
            }
        }
        f
    }

    /// Heap bytes *resident* for the row storage — the `(k+1)·|D|·m / 8`
    /// of the paper's memory-tradeoff discussion (Section 4.2.2) when
    /// owned. Borrowed segments report only what is currently on our heap:
    /// mmap'd windows are the kernel's pages (0 here) and `pread` windows
    /// count only while resident — those bytes are charged to the
    /// `MemoryBudget` by the window pool itself.
    pub fn heap_bytes(&self) -> usize {
        match &self.storage {
            MatrixStorage::Owned(rows) => rows.len() * std::mem::size_of::<u64>(),
            MatrixStorage::Segmented(segments) => {
                segments.iter().map(|s| s.words.resident_bytes()).sum()
            }
        }
    }

    /// Extracts word-block `block` (columns `64·block .. 64·block + 64`) as
    /// a standalone strip — the exact inverse of
    /// [`BloomMatrixBuilder::merge_strip`], so
    /// `merge_strip(b, &extract_strip(b))` on an all-zero builder
    /// reproduces the block bit-for-bit. The sharded index store uses this
    /// to slice a built matrix into per-shard payloads.
    ///
    /// # Panics
    /// Panics if `block` is past the matrix's word width.
    pub fn extract_strip(&self, block: usize) -> BloomColumnStrip {
        assert!(block < self.words_per_row, "block {block} out of range");
        let words = match &self.storage {
            MatrixStorage::Owned(rows) => (0..self.m as usize)
                .map(|row| rows[row * self.words_per_row + block])
                .collect(),
            MatrixStorage::Segmented(segments) => {
                let seg = Self::segment_for(segments, block);
                let guard = seg.words.load();
                let local = block - seg.word_start;
                (0..self.m as usize).map(|row| guard[row * seg.width + local]).collect()
            }
        };
        BloomColumnStrip { m: self.m, k_hashes: self.k_hashes, words }
    }

    /// Overwrites word-block `block` (columns `64·block .. 64·block + 64`)
    /// with a freshly rendered strip — the in-place update primitive of the
    /// delta path. Unlike [`BloomMatrixBuilder::merge_strip`]'s OR, bits set
    /// by superseded column contents are cleared too, so the block ends up
    /// exactly as if the matrix had been built cold from the strip's
    /// current contents. Lanes past `num_cols` (a ragged final block) are
    /// masked off. On a borrowed (segmented) matrix the words are first
    /// materialized into a private owned copy — arena bytes are never
    /// written through.
    ///
    /// # Panics
    /// Panics if `block` is past the matrix's word width or the strip's
    /// `(m, k_hashes)` disagree with the matrix.
    pub fn replace_strip(&mut self, block: usize, strip: &BloomColumnStrip) {
        assert!(block < self.words_per_row, "block {block} out of range");
        assert_eq!(strip.m, self.m, "strip row count must match matrix");
        assert_eq!(strip.k_hashes, self.k_hashes, "strip probe count must match matrix");
        let lanes = self.num_cols - block * 64;
        let mask = if lanes >= 64 { u64::MAX } else { (1u64 << lanes) - 1 };
        let words_per_row = self.words_per_row;
        let rows = self.owned_rows_mut();
        for (row, &w) in strip.words.iter().enumerate() {
            rows[row * words_per_row + block] = w & mask;
        }
    }

    /// Widens the matrix to `new_num_cols` columns; appended columns start
    /// all-zero and existing column bits are preserved row by row. Used by
    /// the delta path when a revision batch introduces new attributes.
    /// Materializes borrowed segments first.
    ///
    /// # Panics
    /// Panics if `new_num_cols < num_cols` (matrices only grow).
    pub fn grow_cols(&mut self, new_num_cols: usize) {
        assert!(new_num_cols >= self.num_cols, "matrices only grow");
        self.ensure_owned();
        let new_words_per_row = new_num_cols.div_ceil(64);
        if new_words_per_row != self.words_per_row {
            let old_words_per_row = self.words_per_row;
            let m = self.m as usize;
            let rows = self.owned_rows_mut();
            let mut new_rows = vec![0u64; m * new_words_per_row];
            for row in 0..m {
                let src = row * old_words_per_row;
                let dst = row * new_words_per_row;
                new_rows[dst..dst + old_words_per_row]
                    .copy_from_slice(&rows[src..src + old_words_per_row]);
            }
            *rows = new_rows;
            self.words_per_row = new_words_per_row;
        }
        self.num_cols = new_num_cols;
    }

    /// Serializes the matrix (for index persistence). Byte-identical
    /// across backings: a segmented matrix encodes exactly as its owned
    /// materialization would.
    pub fn encode(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        use tind_model::binio::put_varint;
        put_varint(buf, u64::from(self.m));
        put_varint(buf, self.num_cols as u64);
        put_varint(buf, u64::from(self.k_hashes));
        match &self.storage {
            MatrixStorage::Owned(rows) => {
                for &w in rows {
                    buf.put_u64_le(w);
                }
            }
            MatrixStorage::Segmented(segments) => {
                let guards: Vec<_> = segments.iter().map(|s| s.words.load()).collect();
                for row in 0..self.m as usize {
                    for (seg, guard) in segments.iter().zip(&guards) {
                        for &w in &guard[row * seg.width..][..seg.width] {
                            buf.put_u64_le(w);
                        }
                    }
                }
            }
        }
    }

    /// Deserializes a matrix written by [`BloomMatrix::encode`].
    pub fn decode(buf: &mut bytes::Bytes) -> Result<Self, tind_model::binio::BinIoError> {
        use bytes::Buf;
        use tind_model::binio::{get_varint, BinIoError};
        let m = u32::try_from(get_varint(buf)?)
            .map_err(|_| BinIoError::Corrupt("matrix m overflow".into()))?;
        let num_cols = get_varint(buf)? as usize;
        let k_hashes = u32::try_from(get_varint(buf)?)
            .map_err(|_| BinIoError::Corrupt("matrix k overflow".into()))?;
        if m == 0 || k_hashes == 0 {
            return Err(BinIoError::Corrupt("degenerate matrix dimensions".into()));
        }
        let words_per_row = num_cols.div_ceil(64);
        let total_words = (m as usize)
            .checked_mul(words_per_row)
            .ok_or_else(|| BinIoError::Corrupt("matrix size overflow".into()))?;
        if buf.remaining() < total_words * 8 {
            return Err(BinIoError::Corrupt("truncated matrix rows".into()));
        }
        let mut rows = Vec::with_capacity(total_words);
        for _ in 0..total_words {
            rows.push(buf.get_u64_le());
        }
        Ok(BloomMatrix { m, num_cols, k_hashes, words_per_row, storage: MatrixStorage::Owned(rows) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Three attributes: 0 = {0..10}, 1 = {0..5}, 2 = {100..110}.
    fn sample_matrix(m: u32) -> BloomMatrix {
        let mut b = BloomMatrixBuilder::new(m, 3, 2);
        let a0: Vec<ValueId> = (0..10).collect();
        let a1: Vec<ValueId> = (0..5).collect();
        let a2: Vec<ValueId> = (100..110).collect();
        b.insert_column(0, &a0);
        b.insert_column(1, &a1);
        b.insert_column(2, &a2);
        b.build()
    }

    #[test]
    fn superset_search_finds_true_supersets() {
        let m = sample_matrix(1024);
        let query: Vec<ValueId> = (0..5).collect();
        let qf = m.query_filter(&query);
        let mut cands = BitVec::ones(3);
        m.narrow_to_supersets(&qf, &mut cands);
        assert!(cands.get(0), "0..10 contains 0..5");
        assert!(cands.get(1), "0..5 contains itself");
        assert!(!cands.get(2), "100..110 disjoint (bloom should prune at this size)");
    }

    #[test]
    fn subset_search_finds_true_subsets() {
        let m = sample_matrix(1024);
        let query: Vec<ValueId> = (0..10).collect();
        let qf = m.query_filter(&query);
        let mut cands = BitVec::ones(3);
        m.narrow_to_subsets(&qf, &mut cands);
        assert!(cands.get(0));
        assert!(cands.get(1));
        assert!(!cands.get(2));
    }

    #[test]
    fn no_false_negatives_even_with_tiny_filters() {
        // With m = 8 there will be many collisions, but a true superset can
        // never be pruned.
        let m = sample_matrix(8);
        let query: Vec<ValueId> = (0..10).collect();
        let qf = m.query_filter(&query);
        let mut cands = BitVec::ones(3);
        m.narrow_to_supersets(&qf, &mut cands);
        assert!(cands.get(0), "true superset survived");
    }

    #[test]
    fn column_may_contain_all_matches_column_semantics() {
        let m = sample_matrix(2048);
        assert!(m.column_may_contain_all(0, &[0, 5, 9]));
        assert!(m.column_may_contain_all(1, &[0, 4]));
        assert!(!m.column_may_contain_all(1, &[0, 4, 99]));
        assert!(!m.column_may_contain_all(2, &[0]));
        assert!(m.column_may_contain_all(2, &[105]));
    }

    #[test]
    fn column_within_filter_matches_subset_search() {
        let m = sample_matrix(512);
        for query in [(0u32..10).collect::<Vec<_>>(), (0..5).collect(), (100..110).collect()] {
            let qf = m.query_filter(&query);
            let mut cands = BitVec::ones(3);
            m.narrow_to_subsets(&qf, &mut cands);
            for col in 0..3 {
                assert_eq!(
                    m.column_within_filter(col, &qf),
                    cands.get(col),
                    "probe and row mode disagree on column {col} for query {query:?}"
                );
            }
        }
    }

    #[test]
    fn column_filter_roundtrip() {
        let m = sample_matrix(256);
        let col0 = m.column_filter(0);
        let direct = BloomFilter::from_values(&(0..10).collect::<Vec<_>>(), 256, 2);
        assert_eq!(col0, direct);
    }

    #[test]
    fn empty_query_keeps_all_superset_candidates() {
        let m = sample_matrix(512);
        let qf = m.query_filter(&[]);
        let mut cands = BitVec::ones(3);
        m.narrow_to_supersets(&qf, &mut cands);
        assert_eq!(cands.count_ones(), 3, "empty set contained everywhere");
    }

    #[test]
    fn incremental_column_insertion_accumulates() {
        let mut b = BloomMatrixBuilder::new(512, 1, 2);
        b.insert_column(0, &[1, 2]);
        b.insert_column(0, &[3]);
        let m = b.build();
        assert!(m.column_may_contain_all(0, &[1, 2, 3]));
    }

    #[test]
    fn many_columns_across_word_boundaries() {
        let n = 200;
        let mut b = BloomMatrixBuilder::new(1024, n, 2);
        for col in 0..n {
            b.insert_column(col, &[col as ValueId, (col + 1) as ValueId]);
        }
        let m = b.build();
        // Query {70, 71} — only column 70 has both.
        let qf = m.query_filter(&[70, 71]);
        let mut cands = BitVec::ones(n);
        m.narrow_to_supersets(&qf, &mut cands);
        assert!(cands.get(70));
        // Surviving candidates must at least bloom-contain the query.
        for c in cands.iter_ones() {
            assert!(m.column_may_contain_all(c, &[70, 71]));
        }
    }

    #[test]
    fn heap_bytes_matches_paper_formula() {
        let m = BloomMatrixBuilder::new(4096, 128, 2).build();
        // 4096 rows × ceil(128/64)=2 words × 8 bytes.
        assert_eq!(m.heap_bytes(), 4096 * 2 * 8);
    }

    #[test]
    fn matrix_encode_decode_roundtrip() {
        let m = sample_matrix(512);
        let mut buf = bytes::BytesMut::new();
        m.encode(&mut buf);
        let mut bytes = buf.freeze();
        let m2 = BloomMatrix::decode(&mut bytes).expect("decodes");
        assert_eq!(m2.m(), m.m());
        assert_eq!(m2.num_cols(), m.num_cols());
        assert_eq!(m2.k_hashes(), m.k_hashes());
        for col in 0..3 {
            assert_eq!(m2.column_filter(col), m.column_filter(col));
        }
        assert!(!bytes::Buf::has_remaining(&bytes));
    }

    #[test]
    fn matrix_decode_rejects_truncation() {
        let m = sample_matrix(128);
        let mut buf = bytes::BytesMut::new();
        m.encode(&mut buf);
        let full = buf.freeze();
        let mut truncated = full.slice(0..full.len() / 2);
        assert!(BloomMatrix::decode(&mut truncated).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_bad_column() {
        let mut b = BloomMatrixBuilder::new(64, 2, 2);
        b.insert_column(2, &[1]);
    }

    /// Column `col`'s values in the strip-equivalence tests.
    fn strip_test_values(col: usize) -> Vec<ValueId> {
        (0..(col % 7)).map(|i| (col * 13 + i) as ValueId).collect()
    }

    #[test]
    fn strip_merge_equals_sequential_insertion() {
        // 150 columns: two full blocks plus a ragged 22-lane block.
        let (m, n, k) = (512u32, 150usize, 2u32);
        let mut sequential = BloomMatrixBuilder::new(m, n, k);
        for col in 0..n {
            sequential.insert_column(col, &strip_test_values(col));
        }
        let sequential = sequential.build();

        let mut merged = BloomMatrixBuilder::new(m, n, k);
        // Merge blocks in reverse order to show order-independence.
        for block in (0..n.div_ceil(64)).rev() {
            let mut strip = BloomColumnStrip::new(m, k);
            for col in block * 64..((block + 1) * 64).min(n) {
                strip.insert_lane(col - block * 64, &strip_test_values(col));
            }
            merged.merge_strip(block, &strip);
        }
        let merged = merged.build();
        for col in 0..n {
            assert_eq!(merged.column_filter(col), sequential.column_filter(col), "column {col}");
        }
        // Byte-identical, not merely filter-equivalent.
        let (mut a, mut b) = (bytes::BytesMut::new(), bytes::BytesMut::new());
        sequential.encode(&mut a);
        merged.encode(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn strip_merge_masks_ragged_lanes() {
        // A strip with bits in lanes past num_cols must not corrupt the
        // matrix: only the 6 valid lanes of the final block survive.
        let mut b = BloomMatrixBuilder::new(64, 70, 2);
        let mut strip = BloomColumnStrip::new(64, 2);
        for lane in 0..64 {
            strip.insert_lane(lane, &[lane as ValueId]);
        }
        b.merge_strip(1, &strip);
        let m = b.build();
        let mut cands = BitVec::ones(70);
        m.narrow_to_subsets(&m.query_filter(&[]), &mut cands);
        // Columns 0..64 are empty (subset of anything), 64..70 got values;
        // the masked lanes 6..64 of block 1 must not have leaked anywhere.
        for col in 64..70 {
            assert!(m.column_filter(col).count_ones() > 0, "column {col} populated");
        }
        assert_eq!(cands.count_ones(), 64, "exactly the 64 empty columns survive");
    }

    #[test]
    fn extract_strip_inverts_merge_strip() {
        // 150 columns: two full blocks plus a ragged 22-lane block.
        let (m, n, k) = (512u32, 150usize, 2u32);
        let mut b = BloomMatrixBuilder::new(m, n, k);
        for col in 0..n {
            b.insert_column(col, &strip_test_values(col));
        }
        let original = b.build();
        let mut rebuilt = BloomMatrixBuilder::new(m, n, k);
        for block in 0..n.div_ceil(64) {
            rebuilt.merge_strip(block, &original.extract_strip(block));
        }
        let rebuilt = rebuilt.build();
        let (mut a, mut c) = (bytes::BytesMut::new(), bytes::BytesMut::new());
        original.encode(&mut a);
        rebuilt.encode(&mut c);
        assert_eq!(a, c, "extract → merge must reproduce the matrix bit-for-bit");
        // from_words(words().to_vec()) is the identity on strips.
        let strip = original.extract_strip(1);
        let copy = BloomColumnStrip::from_words(m, k, strip.words().to_vec());
        assert_eq!(strip.words(), copy.words());
    }

    #[test]
    fn replace_strip_equals_cold_rebuild_of_the_block() {
        // 150 columns: two full blocks plus a ragged 22-lane block. Start
        // from stale contents everywhere, replace each block with its
        // current strip, and demand byte-identity with a cold build — the
        // exact contract the delta path relies on (stale bits cleared).
        let (m, n, k) = (512u32, 150usize, 2u32);
        let mut stale = BloomMatrixBuilder::new(m, n, k);
        let mut fresh = BloomMatrixBuilder::new(m, n, k);
        for col in 0..n {
            stale.insert_column(col, &[(col * 31 + 5) as ValueId]);
            fresh.insert_column(col, &strip_test_values(col));
        }
        let mut updated = stale.build();
        let fresh = fresh.build();
        for block in 0..n.div_ceil(64) {
            let mut strip = BloomColumnStrip::new(m, k);
            for col in block * 64..((block + 1) * 64).min(n) {
                strip.insert_lane(col - block * 64, &strip_test_values(col));
            }
            updated.replace_strip(block, &strip);
        }
        let (mut a, mut b) = (bytes::BytesMut::new(), bytes::BytesMut::new());
        updated.encode(&mut a);
        fresh.encode(&mut b);
        assert_eq!(a, b, "replace_strip must leave the block as a cold build would");
    }

    #[test]
    fn replace_strip_masks_ragged_lanes() {
        let b = BloomMatrixBuilder::new(64, 70, 2);
        let mut strip = BloomColumnStrip::new(64, 2);
        for lane in 0..64 {
            strip.insert_lane(lane, &[lane as ValueId]);
        }
        let mut m = b.build();
        m.replace_strip(1, &strip);
        for col in 64..70 {
            assert!(m.column_filter(col).count_ones() > 0, "column {col} populated");
        }
        // Lanes 6..64 of block 1 must have been masked off: the block's
        // word carries no bits past lane 5 in any row.
        let masked = m.extract_strip(1);
        for &w in masked.words() {
            assert_eq!(w & !((1u64 << 6) - 1), 0, "masked lanes leaked");
        }
    }

    #[test]
    fn grow_cols_preserves_existing_columns_and_appends_zeros() {
        // 60 → 70 columns crosses a word boundary; 70 → 100 does not.
        let (m, k) = (256u32, 2u32);
        let mut b = BloomMatrixBuilder::new(m, 60, k);
        for col in 0..60 {
            b.insert_column(col, &strip_test_values(col));
        }
        let mut grown = b.build();
        grown.grow_cols(70);
        grown.grow_cols(100);
        assert_eq!(grown.num_cols(), 100);

        let mut cold = BloomMatrixBuilder::new(m, 100, k);
        for col in 0..60 {
            cold.insert_column(col, &strip_test_values(col));
        }
        let cold = cold.build();
        let (mut a, mut c) = (bytes::BytesMut::new(), bytes::BytesMut::new());
        grown.encode(&mut a);
        cold.encode(&mut c);
        assert_eq!(a, c, "grown matrix must equal a cold build with zero new columns");
    }

    #[test]
    fn batch_narrowing_matches_per_query_loop() {
        let n = 200;
        let mut b = BloomMatrixBuilder::new(256, n, 2);
        for col in 0..n {
            let vals: Vec<ValueId> = (0..col % 9).map(|i| (col * 3 + i) as ValueId).collect();
            b.insert_column(col, &vals);
        }
        let m = b.build();
        let query_sets: Vec<Vec<ValueId>> =
            vec![(0..5).collect(), vec![], (100..120).collect(), (7..9).collect()];
        let filters: Vec<BloomFilter> = query_sets.iter().map(|q| m.query_filter(q)).collect();

        for subsets in [false, true] {
            // Start from distinct candidate sets so per-query state is
            // genuinely independent.
            let mut batch: Vec<BitVec> = (0..filters.len())
                .map(|i| {
                    let mut c = BitVec::ones(n);
                    c.clear((i * 31) % n);
                    c
                })
                .collect();
            let mut reference = batch.clone();
            if subsets {
                m.narrow_batch_to_subsets(&filters, &mut batch);
                for (f, c) in filters.iter().zip(reference.iter_mut()) {
                    m.narrow_to_subsets(f, c);
                }
            } else {
                m.narrow_batch_to_supersets(&filters, &mut batch);
                for (f, c) in filters.iter().zip(reference.iter_mut()) {
                    m.narrow_to_supersets(f, c);
                }
            }
            assert_eq!(batch, reference, "subsets={subsets}");
        }
    }

    #[test]
    fn batch_narrowing_handles_empty_batch_and_empty_candidates() {
        let m = sample_matrix(512);
        m.narrow_batch_to_supersets(&[], &mut []);
        let qf = m.query_filter(&[1, 2]);
        let mut empty = vec![BitVec::zeros(3)];
        m.narrow_batch_to_supersets(&[qf.clone()], &mut empty);
        assert!(empty[0].is_zero(), "an empty candidate set stays empty");
        let mut empty = vec![BitVec::zeros(3)];
        m.narrow_batch_to_subsets(&[qf], &mut empty);
        assert!(empty[0].is_zero());
    }

    /// Rebuilds `owned` as a segmented matrix whose row width is split into
    /// heap-backed segments at the given word boundaries.
    fn segmented_copy(owned: &BloomMatrix, cuts: &[usize]) -> BloomMatrix {
        let wpr = owned.words_per_row;
        let mut bounds = vec![0usize];
        bounds.extend(cuts.iter().copied().filter(|&c| c > 0 && c < wpr));
        bounds.push(wpr);
        bounds.dedup();
        let segments = bounds
            .windows(2)
            .map(|w| {
                let (start, end) = (w[0], w[1]);
                let width = end - start;
                let mut words = Vec::with_capacity(owned.m as usize * width);
                for row in 0..owned.m as usize {
                    for block in start..end {
                        words.push(owned.extract_strip(block).words()[row]);
                    }
                }
                Segment { word_start: start, width, words: WordRegion::Heap(Arc::new(words)) }
            })
            .collect();
        BloomMatrix::from_segments(owned.m, owned.num_cols, owned.k_hashes, segments)
    }

    #[test]
    fn segmented_matrix_matches_owned_on_every_kernel() {
        let n = 200; // 4 word blocks, ragged tail
        let mut b = BloomMatrixBuilder::new(256, n, 2);
        for col in 0..n {
            b.insert_column(col, &strip_test_values(col));
        }
        let owned = b.build();
        for cuts in [vec![], vec![1], vec![2, 3], vec![1, 2, 3]] {
            let seg = segmented_copy(&owned, &cuts);
            assert!(!seg.is_owned());

            // Encode byte-identity across backings.
            let (mut a, mut c) = (bytes::BytesMut::new(), bytes::BytesMut::new());
            owned.encode(&mut a);
            seg.encode(&mut c);
            assert_eq!(a, c, "encode differs for cuts {cuts:?}");

            // Single-query and batch narrowing, both directions.
            let queries: Vec<Vec<ValueId>> =
                vec![(0..5).collect(), vec![], (100..120).collect(), (13..26).collect()];
            let filters: Vec<BloomFilter> = queries.iter().map(|q| owned.query_filter(q)).collect();
            for qf in &filters {
                for subsets in [false, true] {
                    let mut co = BitVec::ones(n);
                    let mut cs = BitVec::ones(n);
                    if subsets {
                        owned.narrow_to_subsets(qf, &mut co);
                        seg.narrow_to_subsets(qf, &mut cs);
                    } else {
                        owned.narrow_to_supersets(qf, &mut co);
                        seg.narrow_to_supersets(qf, &mut cs);
                    }
                    assert_eq!(co, cs, "cuts {cuts:?} subsets={subsets}");
                }
            }
            let mut batch_o: Vec<BitVec> = filters.iter().map(|_| BitVec::ones(n)).collect();
            let mut batch_s = batch_o.clone();
            owned.narrow_batch_to_supersets(&filters, &mut batch_o);
            seg.narrow_batch_to_supersets(&filters, &mut batch_s);
            assert_eq!(batch_o, batch_s, "batch supersets, cuts {cuts:?}");
            let mut batch_o: Vec<BitVec> = filters.iter().map(|_| BitVec::ones(n)).collect();
            let mut batch_s = batch_o.clone();
            owned.narrow_batch_to_subsets(&filters, &mut batch_o);
            seg.narrow_batch_to_subsets(&filters, &mut batch_s);
            assert_eq!(batch_o, batch_s, "batch subsets, cuts {cuts:?}");

            // Column-granular ops.
            for col in [0usize, 63, 64, 127, 128, n - 1] {
                assert_eq!(owned.column_filter(col), seg.column_filter(col), "col {col}");
                assert_eq!(
                    owned.column_may_contain_all(col, &[13, 14]),
                    seg.column_may_contain_all(col, &[13, 14])
                );
                let qf = owned.query_filter(&(0..40).collect::<Vec<_>>());
                assert_eq!(
                    owned.column_within_filter(col, &qf),
                    seg.column_within_filter(col, &qf)
                );
            }
            for block in 0..owned.words_per_row {
                assert_eq!(
                    owned.extract_strip(block).words(),
                    seg.extract_strip(block).words(),
                    "strip {block}"
                );
            }
        }
    }

    #[test]
    fn ensure_owned_materializes_byte_identically_and_allows_mutation() {
        let n = 150;
        let mut b = BloomMatrixBuilder::new(128, n, 2);
        for col in 0..n {
            b.insert_column(col, &strip_test_values(col));
        }
        let owned = b.build();
        let mut seg = segmented_copy(&owned, &[1, 2]);
        seg.ensure_owned();
        assert!(seg.is_owned());
        let (mut a, mut c) = (bytes::BytesMut::new(), bytes::BytesMut::new());
        owned.encode(&mut a);
        seg.encode(&mut c);
        assert_eq!(a, c);

        // A mutation on a segmented matrix must transparently materialize
        // and match the same mutation on the owned twin.
        let mut seg = segmented_copy(&owned, &[2]);
        let mut owned_mut = owned.clone();
        let mut strip = BloomColumnStrip::new(128, 2);
        strip.insert_lane(3, &[999]);
        seg.replace_strip(1, &strip);
        owned_mut.replace_strip(1, &strip);
        seg.grow_cols(200);
        owned_mut.grow_cols(200);
        let (mut a, mut c) = (bytes::BytesMut::new(), bytes::BytesMut::new());
        owned_mut.encode(&mut a);
        seg.encode(&mut c);
        assert_eq!(a, c, "mutations over a materialized segmented matrix diverged");
    }

    #[test]
    #[should_panic(expected = "tile the row width")]
    fn from_segments_rejects_gaps() {
        let m = 16u32;
        let seg = |start: usize, width: usize| Segment {
            word_start: start,
            width,
            words: WordRegion::Heap(Arc::new(vec![0u64; m as usize * width])),
        };
        // Words 0 and 2 present, word 1 missing.
        BloomMatrix::from_segments(m, 192, 2, vec![seg(0, 1), seg(2, 1)]);
    }
}
