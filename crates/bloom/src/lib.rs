//! # tind-bloom
//!
//! Bit vectors, Bloom filters, and the Bloom-filter **matrix** candidate
//! index of MANY (Tschirschnitz et al.), reused by the tIND index of
//! Section 4 of the paper.
//!
//! The central trick (Section 4.1): hash each attribute's value set into a
//! Bloom filter of `m` bits and lay the filters out as the *columns* of an
//! `m × |D|` bit matrix. Because Bloom filters preserve subset
//! relationships, all candidate supersets of a query `Q` are found by
//! AND-ing together the rows where `h(Q)` has a set bit — a handful of
//! word-parallel row conjunctions instead of `|D|` pairwise checks.
//! Candidate *subsets* are found by AND-ing the complements of the rows
//! where `h(Q)` is zero.

pub mod bitvec;
pub mod filter;
pub mod matrix;
pub mod region;

pub use bitvec::BitVec;
pub use filter::BloomFilter;
pub use matrix::{BloomColumnStrip, BloomMatrix, BloomMatrixBuilder, Segment};
pub use region::{MmapFile, RegionGuard, WindowFile, WindowPool, WindowSlot, WindowStats, WordRegion};
