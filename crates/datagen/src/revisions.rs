//! Rendering datasets as synthetic page-revision streams.
//!
//! To exercise the `tind-wiki` extraction pipeline end-to-end without real
//! Wikipedia dumps, a generated dataset is rendered *backwards* into
//! wikitext page revisions: each attribute becomes the single column of a
//! one-table page, with one revision per version change plus a final
//! "touch" revision pinning the observation end. Extracting that stream
//! through `tind_wiki::extract_dataset` reproduces the original histories —
//! the round-trip is asserted in the integration tests.

use tind_model::Dataset;
use tind_wiki::PageRevision;

/// Renders one value-set table in wikitext.
fn render_table(header: &str, values: &[&str]) -> String {
    let mut text = String::from("{| class=\"wikitable\"\n|+ Data\n");
    text.push_str(&format!("! {header}\n"));
    for v in values {
        text.push_str("|-\n");
        text.push_str(&format!("| {v}\n"));
    }
    text.push_str("|}\n");
    text
}

/// Renders every attribute of `dataset` as its own page's revision stream.
///
/// Guarantees for round-tripping through the extraction pipeline:
/// * one revision per version change, at the version's start day;
/// * a final revision repeating the last version at `last_observed`, so
///   the extracted history covers the same observation window (the
///   repeated content deduplicates into the same version).
pub fn render_revisions(dataset: &Dataset) -> Vec<PageRevision> {
    let dict = dataset.dictionary();
    let mut revisions = Vec::new();
    for (id, hist) in dataset.iter() {
        let title = format!("Page {}", hist.name());
        for version in hist.versions() {
            let values: Vec<&str> = version.values.iter().map(|&v| dict.resolve(v)).collect();
            revisions.push(PageRevision {
                page_id: id,
                title: title.clone(),
                day: version.start,
                seq_in_day: 0,
                wikitext: render_table("Value", &values),
            });
        }
        let last_version = hist.versions().last().expect("non-empty history");
        if hist.last_observed() > last_version.start {
            let values: Vec<&str> =
                last_version.values.iter().map(|&v| dict.resolve(v)).collect();
            revisions.push(PageRevision {
                page_id: id,
                title: title.clone(),
                day: hist.last_observed(),
                seq_in_day: 0,
                wikitext: render_table("Value", &values),
            });
        }
    }
    revisions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;
    use tind_wiki::pipeline::{extract_dataset, PipelineConfig};

    #[test]
    fn rendered_tables_parse_back() {
        let text = render_table("Game", &["Red", "Blue"]);
        let tables = tind_wiki::parse_tables(&text);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].headers, vec!["Game"]);
        assert_eq!(tables[0].column_values(0), vec!["Red", "Blue"]);
    }

    #[test]
    fn roundtrip_through_extraction_pipeline() {
        let cfg = GeneratorConfig::small(20, 77);
        let generated = generate(&cfg);
        let revisions = render_revisions(&generated.dataset);
        let (extracted, report) =
            extract_dataset(revisions, &PipelineConfig::new(cfg.timeline_days));
        assert_eq!(report.pages, generated.dataset.len());
        assert_eq!(
            extracted.len(),
            generated.dataset.len(),
            "every generated attribute passes the filters"
        );
        // Compare version structure attribute by attribute (by name).
        for (_, original) in generated.dataset.iter() {
            let name = format!("Page {} ▸ Data ▸ Value", original.name());
            let (_, roundtripped) =
                extracted.attribute_by_name(&name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(roundtripped.first_observed(), original.first_observed());
            assert_eq!(roundtripped.last_observed(), original.last_observed());
            assert_eq!(
                roundtripped.versions().len(),
                original.versions().len(),
                "version count differs for {name}"
            );
            for (v1, v2) in original.versions().iter().zip(roundtripped.versions()) {
                assert_eq!(v1.start, v2.start);
                let s1: Vec<&str> =
                    generated.dataset.resolve_set(&v1.values).into_iter().collect();
                let mut s2: Vec<&str> = extracted.resolve_set(&v2.values).into_iter().collect();
                s2.sort_unstable();
                let mut s1 = s1;
                s1.sort_unstable();
                assert_eq!(s1, s2, "values differ at version starting {}", v1.start);
            }
        }
    }

    #[test]
    fn final_touch_revision_only_when_needed() {
        let cfg = GeneratorConfig::small(10, 3);
        let g = generate(&cfg);
        let revisions = render_revisions(&g.dataset);
        for (id, hist) in g.dataset.iter() {
            let page_revs: Vec<_> = revisions.iter().filter(|r| r.page_id == id).collect();
            let expected = hist.versions().len()
                + usize::from(hist.last_observed() > hist.versions().last().unwrap().start);
            assert_eq!(page_revs.len(), expected);
        }
    }
}
