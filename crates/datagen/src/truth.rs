//! Ground truth: what the generator planted.
//!
//! Substitutes the paper's manual annotation (§5.5): an IND `(lhs, rhs)` is
//! *genuine* iff `lhs` was generated as a derived attribute of `rhs`. Every
//! other discovered IND — however persistent — counts as spurious, mirroring
//! the paper's labelling rule ("should hold if the respective tables were
//! complete and both columns have the same semantic type").

use tind_model::AttrId;

/// What role an attribute plays in the generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// Authoritative entity list.
    Source,
    /// Genuinely included in `source`.
    Derived {
        /// The attribute this one is derived from.
        source: AttrId,
        /// Whether the attribute was generated with the dirty profile
        /// (long delays, slow error fixes).
        dirty: bool,
        /// Whether one entity was permanently renamed mid-life (§3.3);
        /// such pairs stay genuine but need σ-partial containment to be
        /// rediscovered.
        renamed: bool,
    },
    /// Drawn from the shared noise pool; any INDs it takes part in are
    /// coincidental.
    Noise,
}

/// Ground-truth labels for a generated dataset.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    kinds: Vec<AttrKind>,
    /// Sorted list of genuine `(lhs, rhs)` pairs.
    genuine: Vec<(AttrId, AttrId)>,
}

impl GroundTruth {
    /// Assembles ground truth from per-attribute kinds.
    pub fn from_kinds(kinds: Vec<AttrKind>) -> Self {
        let mut genuine: Vec<(AttrId, AttrId)> = kinds
            .iter()
            .enumerate()
            .filter_map(|(id, k)| match k {
                AttrKind::Derived { source, .. } => Some((id as AttrId, *source)),
                _ => None,
            })
            .collect();
        genuine.sort_unstable();
        GroundTruth { kinds, genuine }
    }

    /// The role of an attribute.
    pub fn kind(&self, id: AttrId) -> AttrKind {
        self.kinds[id as usize]
    }

    /// Number of labelled attributes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether no attribute is labelled.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether the IND `lhs ⊆ rhs` is genuine.
    pub fn is_genuine(&self, lhs: AttrId, rhs: AttrId) -> bool {
        self.genuine.binary_search(&(lhs, rhs)).is_ok()
    }

    /// All genuine pairs, sorted.
    pub fn genuine_pairs(&self) -> &[(AttrId, AttrId)] {
        &self.genuine
    }

    /// Ids of all attributes of a kind-class.
    pub fn ids_where(&self, mut pred: impl FnMut(AttrKind) -> bool) -> Vec<AttrId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, &k)| pred(k))
            .map(|(id, _)| id as AttrId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genuine_pairs_follow_derivation() {
        let truth = GroundTruth::from_kinds(vec![
            AttrKind::Source,
            AttrKind::Derived { source: 0, dirty: false, renamed: false },
            AttrKind::Derived { source: 0, dirty: true, renamed: false },
            AttrKind::Noise,
        ]);
        assert_eq!(truth.len(), 4);
        assert!(truth.is_genuine(1, 0));
        assert!(truth.is_genuine(2, 0));
        assert!(!truth.is_genuine(0, 1), "direction matters");
        assert!(!truth.is_genuine(1, 2), "siblings are not genuine");
        assert!(!truth.is_genuine(3, 0));
        assert_eq!(truth.genuine_pairs(), &[(1, 0), (2, 0)]);
    }

    #[test]
    fn ids_where_selects_by_kind() {
        let truth = GroundTruth::from_kinds(vec![
            AttrKind::Source,
            AttrKind::Derived { source: 0, dirty: true, renamed: false },
            AttrKind::Noise,
        ]);
        assert_eq!(truth.ids_where(|k| matches!(k, AttrKind::Noise)), vec![2]);
        assert_eq!(
            truth.ids_where(|k| matches!(k, AttrKind::Derived { dirty: true, .. })),
            vec![1]
        );
    }
}
