//! Source attribute simulation.
//!
//! A source is an authoritative entity list (the right-hand side of a
//! planted genuine IND). It is born somewhere in the first half of the
//! timeline, lives an exponentially distributed lifespan, and undergoes a
//! Poisson number of changes — mostly insertions (entity lists grow), with
//! occasional removals.

use rand::{Rng, RngExt};
use tind_model::{HistoryBuilder, Timestamp, ValueId, ValueSet};

use crate::config::GeneratorConfig;
use crate::domains::{exponential, poisson, DomainPool};

/// One atomic change to an attribute's value set.
#[derive(Debug, Clone)]
pub struct ChangeEvent {
    /// Day the change takes effect.
    pub t: Timestamp,
    /// Values inserted.
    pub added: ValueSet,
    /// Values removed.
    pub removed: ValueSet,
}

/// A simulated source attribute, kept in diff form so derived attributes
/// can replay its changes with delays.
#[derive(Debug, Clone)]
pub struct SourceSim {
    /// Domain the source's entities come from.
    pub domain: usize,
    /// First observed day.
    pub birth: Timestamp,
    /// Last observed day (inclusive).
    pub death: Timestamp,
    /// Initial value set at `birth`.
    pub initial: ValueSet,
    /// Changes, strictly increasing in `t`, all within `(birth, death]`.
    pub changes: Vec<ChangeEvent>,
}

impl SourceSim {
    /// Materializes the value set valid at `t` (`None` outside life).
    pub fn set_at(&self, t: Timestamp) -> Option<ValueSet> {
        if t < self.birth || t > self.death {
            return None;
        }
        let mut set: std::collections::BTreeSet<ValueId> = self.initial.iter().copied().collect();
        for ch in &self.changes {
            if ch.t > t {
                break;
            }
            for &v in &ch.added {
                set.insert(v);
            }
            for &v in &ch.removed {
                set.remove(&v);
            }
        }
        Some(set.into_iter().collect())
    }

    /// Builds the attribute history.
    pub fn into_history(&self, name: &str) -> tind_model::AttributeHistory {
        let mut b = HistoryBuilder::new(name);
        b.push(self.birth, self.initial.clone());
        let mut set: std::collections::BTreeSet<ValueId> = self.initial.iter().copied().collect();
        for ch in &self.changes {
            for &v in &ch.added {
                set.insert(v);
            }
            for &v in &ch.removed {
                set.remove(&v);
            }
            b.push(ch.t, set.iter().copied().collect());
        }
        b.finish(self.death)
    }
}

/// Samples `count` distinct change days in `(birth, death]`.
pub(crate) fn sample_change_days<R: Rng>(
    birth: Timestamp,
    death: Timestamp,
    count: usize,
    rng: &mut R,
) -> Vec<Timestamp> {
    let span = (death - birth) as usize;
    let count = count.min(span);
    let mut days = std::collections::BTreeSet::new();
    while days.len() < count {
        days.insert(rng.random_range(birth + 1..=death));
    }
    days.into_iter().collect()
}

/// Simulates one source attribute.
pub fn simulate_source<R: Rng>(pool: &DomainPool, cfg: &GeneratorConfig, rng: &mut R) -> SourceSim {
    let n = cfg.timeline_days;
    let domain = rng.random_range(0..pool.num_domains());
    // Leave room for at least a 60-day life.
    let birth = rng.random_range(0..n.saturating_sub(60).max(1));
    let death = if rng.random::<f64>() < cfg.survivor_fraction {
        n - 1 // persists to the end of the observation period
    } else {
        let lifespan = exponential(cfg.mean_lifespan_days, rng).max(60.0) as u32;
        birth.saturating_add(lifespan).min(n - 1)
    };

    let card = rng.random_range(cfg.initial_cardinality.0..=cfg.initial_cardinality.1);
    let initial = pool.sample_distinct(domain, card, rng);

    let change_count = poisson(cfg.mean_changes * cfg.source_change_factor, rng).max(4);
    let days = sample_change_days(birth, death, change_count, rng);

    let mut current: std::collections::BTreeSet<ValueId> = initial.iter().copied().collect();
    let mut changes = Vec::with_capacity(days.len());
    for t in days {
        let mut added = ValueSet::new();
        let mut removed = ValueSet::new();
        if rng.random::<f64>() < 0.75 || current.len() <= 5 {
            // Growth: insert 1..=3 fresh entities.
            let how_many = rng.random_range(1..=3);
            for _ in 0..how_many {
                let v = pool.sample_entity(domain, rng);
                if current.insert(v) {
                    added.push(v);
                }
            }
            if added.is_empty() {
                // Zipf collisions: fall back to a guaranteed-fresh entity.
                if let Some(&v) = pool.domain(domain).iter().find(|v| !current.contains(v)) {
                    current.insert(v);
                    added.push(v);
                }
            }
        } else {
            // Shrink: remove one value (keeping the ≥5 floor).
            let idx = rng.random_range(0..current.len());
            let v = *current.iter().nth(idx).expect("non-empty");
            current.remove(&v);
            removed.push(v);
        }
        if added.is_empty() && removed.is_empty() {
            continue; // domain exhausted; nothing changed
        }
        added.sort_unstable();
        changes.push(ChangeEvent { t, added, removed });
    }
    SourceSim { domain, birth, death, initial, changes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (DomainPool, GeneratorConfig) {
        let mut dict = tind_model::Dictionary::new();
        let cfg = GeneratorConfig::small(50, 3);
        let pool =
            DomainPool::generate(&mut dict, cfg.num_domains, cfg.entities_per_domain, cfg.zipf_exponent);
        (pool, cfg)
    }

    #[test]
    fn source_respects_structural_invariants() {
        let (pool, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let s = simulate_source(&pool, &cfg, &mut rng);
            assert!(s.birth < s.death);
            assert!(s.death < cfg.timeline_days);
            assert!(s.initial.len() >= 5);
            assert!(s.changes.len() >= 4, "needs >= 4 changes, got {}", s.changes.len());
            assert!(s.changes.windows(2).all(|w| w[0].t < w[1].t));
            assert!(s.changes.iter().all(|c| c.t > s.birth && c.t <= s.death));
        }
    }

    #[test]
    fn history_matches_diff_replay() {
        let (pool, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let s = simulate_source(&pool, &cfg, &mut rng);
        let h = s.into_history("src");
        assert_eq!(h.first_observed(), s.birth);
        assert_eq!(h.last_observed(), s.death);
        for probe in [s.birth, (s.birth + s.death) / 2, s.death] {
            let expected = s.set_at(probe).expect("alive");
            assert_eq!(h.values_at(probe), &expected[..], "mismatch at t={probe}");
        }
        assert!(h.values_at(s.birth.wrapping_sub(1).min(s.birth)).len() <= h.value_universe().len());
    }

    #[test]
    fn set_at_outside_life_is_none() {
        let (pool, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let s = simulate_source(&pool, &cfg, &mut rng);
        if s.birth > 0 {
            assert!(s.set_at(s.birth - 1).is_none());
        }
        assert!(s.set_at(s.death + 1).is_none());
    }

    #[test]
    fn cardinality_never_drops_below_five() {
        let (pool, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let s = simulate_source(&pool, &cfg, &mut rng);
            let h = s.into_history("src");
            for v in h.versions() {
                assert!(v.values.len() >= 5, "version with {} values", v.values.len());
            }
        }
    }

    #[test]
    fn sample_change_days_handles_tight_spans() {
        let mut rng = StdRng::seed_from_u64(1);
        let days = sample_change_days(10, 13, 10, &mut rng);
        assert_eq!(days.len(), 3, "span of 3 caps the count");
        assert!(days.windows(2).all(|w| w[0] < w[1]));
    }
}
