//! Value domains with Zipf-skewed entity popularity.
//!
//! Each domain models a semantic type ("video games", "composers",
//! "countries"). Entities within a domain are drawn with Zipf-like skew:
//! popular entities appear in many attributes, which is what creates
//! realistic value overlap between related attributes and occasional
//! chance overlap between unrelated ones.

use rand::{Rng, RngExt};
use tind_model::{Dictionary, ValueId, ValueSet};

/// Pre-interned entity pools, one per domain, with cumulative Zipf weights.
#[derive(Debug)]
pub struct DomainPool {
    /// `entities[d][i]` is the id of the `i`-th most popular entity of
    /// domain `d`.
    entities: Vec<Vec<ValueId>>,
    /// Cumulative (unnormalized) Zipf weights per domain, shared shape.
    zipf_cum: Vec<f64>,
}

impl DomainPool {
    /// Interns `num_domains × entities_per_domain` entity strings and
    /// precomputes the sampling distribution.
    pub fn generate(
        dictionary: &mut Dictionary,
        num_domains: usize,
        entities_per_domain: usize,
        zipf_exponent: f64,
    ) -> Self {
        assert!(num_domains > 0 && entities_per_domain > 0);
        let entities = (0..num_domains)
            .map(|d| {
                (0..entities_per_domain)
                    .map(|i| dictionary.intern(&format!("D{d}:E{i}")))
                    .collect()
            })
            .collect();
        let mut zipf_cum = Vec::with_capacity(entities_per_domain);
        let mut acc = 0.0;
        for i in 0..entities_per_domain {
            acc += 1.0 / ((i + 1) as f64).powf(zipf_exponent);
            zipf_cum.push(acc);
        }
        DomainPool { entities, zipf_cum }
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.entities.len()
    }

    /// Entities per domain.
    pub fn domain_size(&self) -> usize {
        self.zipf_cum.len()
    }

    /// All entities of a domain in popularity order.
    pub fn domain(&self, d: usize) -> &[ValueId] {
        &self.entities[d]
    }

    /// Samples one entity from domain `d` with Zipf skew.
    pub fn sample_entity<R: Rng>(&self, d: usize, rng: &mut R) -> ValueId {
        let total = *self.zipf_cum.last().expect("non-empty domain");
        let r = rng.random::<f64>() * total;
        let idx = self.zipf_cum.partition_point(|&c| c < r);
        self.entities[d][idx.min(self.domain_size() - 1)]
    }

    /// Samples `count` *distinct* entities from domain `d` (canonical set).
    /// Saturates at the domain size.
    pub fn sample_distinct<R: Rng>(&self, d: usize, count: usize, rng: &mut R) -> ValueSet {
        let count = count.min(self.domain_size());
        let mut set = std::collections::BTreeSet::new();
        // Zipf rejection first; top up uniformly if skew keeps colliding.
        let mut attempts = 0;
        while set.len() < count && attempts < count * 20 {
            set.insert(self.sample_entity(d, rng));
            attempts += 1;
        }
        while set.len() < count {
            let idx = rng.random_range(0..self.domain_size());
            set.insert(self.entities[d][idx]);
        }
        set.into_iter().collect()
    }

    /// Samples an entity from any *other* domain — a foreign (erroneous)
    /// value relative to `own_domain`.
    pub fn sample_foreign<R: Rng>(&self, own_domain: usize, rng: &mut R) -> ValueId {
        if self.num_domains() == 1 {
            // Degenerate case: fall back to an unpopular same-domain entity,
            // which is at least unlikely to be in any given attribute.
            let idx = rng.random_range(self.domain_size() / 2..self.domain_size());
            return self.entities[0][idx];
        }
        let mut d = rng.random_range(0..self.num_domains() - 1);
        if d >= own_domain {
            d += 1;
        }
        self.sample_entity(d, rng)
    }
}

/// Samples from a Poisson distribution (Knuth's method; fine for the small
/// λ used for change counts).
pub fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> usize {
    debug_assert!(lambda > 0.0 && lambda < 200.0, "Knuth sampling needs small λ");
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples from an exponential distribution with the given mean.
pub fn exponential<R: Rng>(mean: f64, rng: &mut R) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool() -> (Dictionary, DomainPool) {
        let mut dict = Dictionary::new();
        let pool = DomainPool::generate(&mut dict, 4, 100, 0.8);
        (dict, pool)
    }

    #[test]
    fn generates_distinct_interned_entities() {
        let (dict, pool) = pool();
        assert_eq!(dict.len(), 400);
        assert_eq!(pool.num_domains(), 4);
        assert_eq!(pool.domain_size(), 100);
        assert_eq!(dict.resolve(pool.domain(2)[5]), "D2:E5");
    }

    #[test]
    fn zipf_sampling_prefers_popular_entities() {
        let (_, pool) = pool();
        let mut rng = StdRng::seed_from_u64(5);
        let mut top10 = 0;
        let trials = 5000;
        for _ in 0..trials {
            let v = pool.sample_entity(0, &mut rng);
            let rank = pool.domain(0).iter().position(|&e| e == v).unwrap();
            if rank < 10 {
                top10 += 1;
            }
        }
        // With s = 0.8 over 100 entities, the top-10 mass is ≈ 33%; uniform
        // would give 10%.
        assert!(top10 > trials / 5, "top-10 hit {top10}/{trials}");
    }

    #[test]
    fn sample_distinct_returns_canonical_sets() {
        let (_, pool) = pool();
        let mut rng = StdRng::seed_from_u64(7);
        let set = pool.sample_distinct(1, 30, &mut rng);
        assert_eq!(set.len(), 30);
        assert!(set.windows(2).all(|w| w[0] < w[1]));
        // Saturation at domain size.
        let all = pool.sample_distinct(1, 1000, &mut rng);
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn foreign_values_come_from_other_domains() {
        let (dict, pool) = pool();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let v = pool.sample_foreign(2, &mut rng);
            let name = dict.resolve(v);
            assert!(!name.starts_with("D2:"), "foreign value {name} from own domain");
        }
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 3000;
        let sum: usize = (0..n).map(|_| poisson(13.0, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 13.0).abs() < 0.5, "got mean {mean}");
    }

    #[test]
    fn exponential_mean_is_roughly_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 5000;
        let sum: f64 = (0..n).map(|_| exponential(500.0, &mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 500.0).abs() < 40.0, "got mean {mean}");
    }
}
