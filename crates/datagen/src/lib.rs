//! # tind-datagen
//!
//! Synthetic Wikipedia-like workload generator.
//!
//! The paper evaluates on 1.3 million attribute histories extracted from
//! 16.7 years of Wikipedia revision history — data we cannot ship. This
//! crate generates datasets with the same *shape* (documented in DESIGN.md):
//!
//! * **Source** attributes — authoritative entity lists ("all Pokémon
//!   games") that grow and occasionally shrink over a lifespan.
//! * **Derived** attributes — columns genuinely included in a source
//!   ("games Masuda composed for"): they adopt a subset of the source's
//!   values, follow its changes with a bounded *temporal delay*, and
//!   occasionally carry a short-lived *erroneous* foreign value — exactly
//!   the two dirt types the paper's ε and δ relaxations target (§3.3).
//! * **Noise** attributes — small sets drawn from a shared popular-value
//!   pool whose point-in-time containments produce the spurious static
//!   INDs that §5.5 measures (89% of static INDs were not genuine).
//!
//! Because derived→source links are *planted*, the generator emits exact
//! ground-truth labels ([`truth::GroundTruth`]), substituting for the
//! paper's manual annotation of 900 INDs.
//!
//! The [`revisions`] module additionally renders a generated dataset as a
//! stream of wikitext page revisions, so the `tind-wiki` extraction
//! pipeline can be exercised end-to-end.

pub mod config;
pub mod derived;
pub mod domains;
pub mod generator;
pub mod noise;
pub mod revisions;
pub mod source;
pub mod truth;

pub use config::GeneratorConfig;
pub use generator::{generate, GeneratedDataset};
pub use truth::{AttrKind, GroundTruth};
