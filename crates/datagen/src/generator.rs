//! Orchestrates full dataset generation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tind_model::{Dataset, DatasetBuilder, Timeline};

use crate::config::GeneratorConfig;
use crate::derived::{simulate_derived, Dirtiness};
use crate::domains::DomainPool;
use crate::noise::{build_noise_pool, simulate_noise};
use crate::source::{simulate_source, SourceSim};
use crate::truth::{AttrKind, GroundTruth};

/// A generated dataset together with its ground-truth labels.
#[derive(Debug)]
pub struct GeneratedDataset {
    /// The attribute histories (sources first, then derived, then noise).
    pub dataset: Dataset,
    /// Which pairs are genuine and what role each attribute plays.
    pub truth: GroundTruth,
}

/// Generates a dataset according to `config`; fully deterministic given
/// `config.seed`.
///
/// # Examples
///
/// ```
/// use tind_datagen::{generate, GeneratorConfig};
///
/// let generated = generate(&GeneratorConfig::small(50, 7));
/// assert!(generated.dataset.len() >= 45);
/// // Every planted genuine pair references real attributes.
/// for &(lhs, rhs) in generated.truth.genuine_pairs() {
///     assert!(generated.dataset.attribute(lhs).name().starts_with("derived"));
///     assert!(generated.dataset.attribute(rhs).name().starts_with("source"));
/// }
/// ```
pub fn generate(config: &GeneratorConfig) -> GeneratedDataset {
    config.validate();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let timeline = Timeline::new(config.timeline_days);
    let mut builder = DatasetBuilder::new(timeline);
    let pool = DomainPool::generate(
        builder.dictionary_mut(),
        config.num_domains,
        config.entities_per_domain,
        config.zipf_exponent,
    );

    let mut kinds: Vec<AttrKind> = Vec::with_capacity(config.total_attributes());

    // Sources.
    let sources: Vec<SourceSim> = (0..config.num_sources)
        .map(|_| simulate_source(&pool, config, &mut rng))
        .collect();
    for (i, s) in sources.iter().enumerate() {
        builder.add_history(s.into_history(&format!("source-{i}")));
        kinds.push(AttrKind::Source);
    }

    // Derived: spread round-robin over sources so every source gets some.
    for i in 0..config.num_derived {
        let source_idx = i % sources.len();
        let dirty = rng.random::<f64>() < config.dirty_fraction;
        let dirtiness = if dirty { Dirtiness::Dirty } else { Dirtiness::Clean };
        let renamed = rng.random::<f64>() < config.rename_fraction;
        let name = format!("derived-{i}-of-{source_idx}");
        let rename_value = renamed
            .then(|| builder.dictionary_mut().intern(&format!("renamed-entity:{name}")));
        let h = simulate_derived(
            &sources[source_idx],
            &pool,
            config,
            dirtiness,
            rename_value,
            &name,
            &mut rng,
        );
        builder.add_history(h);
        kinds.push(AttrKind::Derived { source: source_idx as u32, dirty, renamed });
    }

    // Noise: a mix of stable tiny sets, churning small sets, and large
    // core-covering sets so the latest snapshot carries realistic chance
    // containments (some persistent, most transient). Noise is organized
    // in *communities*, each with its own shared pool, so chance
    // containments — and thus spurious static INDs — scale linearly with
    // the dataset.
    let num_communities = config.num_noise.div_ceil(config.noise_community_size).max(1);
    let community_pools: Vec<Vec<tind_model::ValueId>> = (0..num_communities)
        .map(|c| {
            // Each community draws from a few domains of its own; overlap
            // between communities only arises through shared domains.
            let first = c * 3 % config.num_domains;
            let domains: Vec<usize> =
                (0..3.min(config.num_domains)).map(|k| (first + k) % config.num_domains).collect();
            build_noise_pool(&pool, config, &domains, &mut rng)
        })
        .collect();
    for i in 0..config.num_noise {
        let roll: f64 = rng.random();
        let flavor = if roll < config.stable_noise_fraction {
            crate::noise::NoiseFlavor::StableSmall
        } else if roll < config.stable_noise_fraction + config.small_noise_fraction {
            crate::noise::NoiseFlavor::Small
        } else {
            crate::noise::NoiseFlavor::Large
        };
        let community = i % num_communities;
        let h = simulate_noise(
            &community_pools[community],
            config,
            flavor,
            &format!("noise-{i}-c{community}"),
            &mut rng,
        );
        builder.add_history(h);
        kinds.push(AttrKind::Noise);
    }

    GeneratedDataset { dataset: builder.build(), truth: GroundTruth::from_kinds(kinds) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_model::stats::DatasetStats;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::small(60, 99);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.dataset.len(), b.dataset.len());
        for (id, h) in a.dataset.iter() {
            let h2 = b.dataset.attribute(id);
            assert_eq!(h.versions(), h2.versions(), "attribute {id} differs");
        }
        assert_eq!(a.truth.genuine_pairs(), b.truth.genuine_pairs());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::small(40, 1));
        let b = generate(&GeneratorConfig::small(40, 2));
        let same = a
            .dataset
            .iter()
            .zip(b.dataset.iter())
            .filter(|((_, x), (_, y))| x.versions() == y.versions())
            .count();
        assert!(same < a.dataset.len() / 2, "seeds produced near-identical data");
    }

    #[test]
    fn statistics_respect_paper_filters() {
        let g = generate(&GeneratorConfig::small(120, 7));
        let stats = DatasetStats::compute(&g.dataset);
        assert_eq!(stats.num_attributes, g.truth.len());
        for (_, h) in g.dataset.iter() {
            assert!(h.versions().len() >= 5, "'{}' has {} versions", h.name(), h.versions().len());
            assert!(h.median_cardinality() >= 5);
        }
        // Calibration sanity: changes in a plausible band around 13.
        assert!(stats.mean_changes > 6.0 && stats.mean_changes < 25.0, "{}", stats.mean_changes);
    }

    #[test]
    fn paper_shaped_statistics_are_calibrated() {
        let g = generate(&GeneratorConfig::paper_shaped(400, 5));
        let stats = DatasetStats::compute(&g.dataset);
        assert!(
            (stats.mean_changes - 13.0).abs() < 5.0,
            "mean changes {} too far from 13",
            stats.mean_changes
        );
        // Lifespans: exponential(2045) truncated by timeline and birth.
        assert!(
            stats.mean_lifespan > 700.0 && stats.mean_lifespan < 3000.0,
            "mean lifespan {}",
            stats.mean_lifespan
        );
        assert!(
            stats.mean_version_cardinality > 10.0 && stats.mean_version_cardinality < 80.0,
            "mean cardinality {}",
            stats.mean_version_cardinality
        );
    }

    #[test]
    fn planted_pairs_validate_at_generous_params() {
        use tind_core::validate::validate;
        use tind_core::TindParams;
        use tind_model::WeightFn;
        let cfg = GeneratorConfig::small(80, 123);
        let g = generate(&cfg);
        let tl = g.dataset.timeline();
        let generous = TindParams::weighted(
            200.0,
            cfg.dirty_delay_max,
            WeightFn::constant_one(),
        );
        for &(lhs, rhs) in g.truth.genuine_pairs() {
            // Renamed pairs are genuine but *deliberately* undiscoverable
            // without σ-partial containment (§3.3).
            if matches!(g.truth.kind(lhs), AttrKind::Derived { renamed: true, .. }) {
                continue;
            }
            assert!(
                validate(g.dataset.attribute(lhs), g.dataset.attribute(rhs), &generous, tl),
                "planted pair ({lhs}, {rhs}) fails even at generous params"
            );
        }
    }

    #[test]
    fn clean_planted_pairs_mostly_validate_at_paper_defaults() {
        use tind_core::validate::validate;
        use tind_core::TindParams;
        let cfg = GeneratorConfig::small(80, 321);
        let g = generate(&cfg);
        let tl = g.dataset.timeline();
        let p = TindParams::paper_default();
        let clean: Vec<u32> = g
            .truth
            .ids_where(|k| matches!(k, AttrKind::Derived { dirty: false, renamed: false, .. }));
        let valid = clean
            .iter()
            .filter(|&&id| {
                let AttrKind::Derived { source, .. } = g.truth.kind(id) else { unreachable!() };
                validate(g.dataset.attribute(id), g.dataset.attribute(source), &p, tl)
            })
            .count();
        assert!(
            valid * 10 >= clean.len() * 6,
            "only {valid}/{} clean pairs validate at paper defaults",
            clean.len()
        );
    }
}
