//! Generator configuration, calibrated against the paper's dataset
//! statistics (§5.1): ≈13 changes per attribute, ≈5.6-year lifespans inside
//! a 16.7-year (6148-day) timeline, mean version cardinality ≈28.

/// Knobs of the synthetic Wikipedia-like workload.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; every generation is fully deterministic given the config.
    pub seed: u64,
    /// Timeline length in days. The paper's span (early 2001 – late 2017)
    /// is 6148 days.
    pub timeline_days: u32,
    /// Number of source attributes (authoritative entity lists).
    pub num_sources: usize,
    /// Number of derived attributes (each genuinely included in a source).
    pub num_derived: usize,
    /// Number of noise attributes.
    pub num_noise: usize,
    /// Number of distinct value domains ("games", "people", ...).
    pub num_domains: usize,
    /// Entities per domain.
    pub entities_per_domain: usize,
    /// Zipf skew of entity popularity within a domain.
    pub zipf_exponent: f64,
    /// Mean number of changes per attribute (paper: 13). Minimum 4 is
    /// always enforced (the paper filters out attributes with fewer than
    /// five versions).
    pub mean_changes: f64,
    /// Change-rate multiplier for sources (curated entity lists are the
    /// busiest columns on Wikipedia — the reason Table 2's genuine share
    /// climbs with change frequency).
    pub source_change_factor: f64,
    /// Change-rate multiplier for noise attributes (stale common-string
    /// columns change rarely).
    pub noise_change_factor: f64,
    /// Mean lifespan in days (paper: ≈2045).
    pub mean_lifespan_days: f64,
    /// Fraction of attributes that survive to the end of the timeline
    /// (Wikipedia tables usually persist once created; this keeps the
    /// latest snapshot densely populated, as the paper's static-IND counts
    /// imply).
    pub survivor_fraction: f64,
    /// Zipf skew of value popularity *within the noise pool*; higher skew
    /// produces more chance containments at a single snapshot (the paper's
    /// spurious static INDs).
    pub noise_zipf_exponent: f64,
    /// Inclusive range of initial version cardinalities (paper mean: 28).
    pub initial_cardinality: (usize, usize),
    /// Maximum days a *clean* derived attribute lags behind its source.
    pub clean_delay_max: u32,
    /// Maximum lag for the *dirty* minority of derived attributes.
    pub dirty_delay_max: u32,
    /// Fraction of derived attributes that are dirty (long delays, more
    /// errors).
    pub dirty_fraction: f64,
    /// Probability that a derived change event also introduces a
    /// short-lived erroneous foreign value.
    pub error_rate: f64,
    /// Inclusive range of days an erroneous value survives before being
    /// fixed (clean attributes).
    pub clean_error_days: (u32, u32),
    /// Error survival range for dirty attributes.
    pub dirty_error_days: (u32, u32),
    /// Fraction of derived attributes that permanently *rename* one of
    /// their entities mid-life ("USA" → "United States") — the §3.3
    /// differing-entity-name issue that neither ε nor δ absorbs; only
    /// σ-partial containment recovers these pairs.
    pub rename_fraction: f64,
    /// Size of the shared popular-value pool noise attributes draw from.
    pub noise_pool_size: usize,
    /// Inclusive range of noise attribute cardinalities.
    pub noise_cardinality: (usize, usize),
    /// Size of the *core* of the noise pool: the handful of very popular
    /// values ("USA", "None", band names, ...) that recur across unrelated
    /// tables and create the chance containments behind spurious static
    /// INDs.
    pub noise_core_size: usize,
    /// Fraction of noise attributes that are small core-only sets (the
    /// left-hand sides of chance containments).
    pub small_noise_fraction: f64,
    /// Probability that a large noise attribute includes any given core
    /// value.
    pub core_inclusion_prob: f64,
    /// Size of the *stable core*: the first few pool values ("Yes", month
    /// names, ubiquitous countries, ...) that large noise attributes keep
    /// permanently once adopted. Containments inside the stable core are
    /// temporally persistent yet coincidental — the spurious INDs that
    /// even strict tIND discovery cannot filter (the reason the paper's
    /// strict precision is only 25%).
    pub stable_core_size: usize,
    /// Probability that a large noise attribute permanently keeps any
    /// given stable-core value.
    pub stable_keep_prob: f64,
    /// Fraction of noise attributes that live entirely inside the stable
    /// core (with subset-preserving toggle churn).
    pub stable_noise_fraction: f64,
    /// Noise attributes per *community*: each community shares its own
    /// value pool and core. Chance containments only arise within a
    /// community, so spurious static INDs scale linearly with the number
    /// of attributes (as in the paper's corpus: ≈0.7 static INDs per
    /// attribute at 1.3 M attributes) instead of quadratically.
    pub noise_community_size: usize,
}

impl GeneratorConfig {
    /// A small, fast configuration for unit tests and examples
    /// (~`total` attributes over a 2-year timeline).
    pub fn small(total: usize, seed: u64) -> Self {
        let num_sources = (total / 5).max(1);
        let num_derived = (total * 2 / 5).max(1);
        let num_noise = total.saturating_sub(num_sources + num_derived);
        GeneratorConfig {
            seed,
            timeline_days: 730,
            num_sources,
            num_derived,
            num_noise,
            num_domains: (num_sources / 4).clamp(2, 64),
            entities_per_domain: 400,
            zipf_exponent: 0.8,
            mean_changes: 13.0,
            source_change_factor: 1.25,
            noise_change_factor: 0.7,
            mean_lifespan_days: 500.0,
            survivor_fraction: 0.5,
            noise_zipf_exponent: 1.1,
            initial_cardinality: (5, 50),
            clean_delay_max: 7,
            dirty_delay_max: 45,
            dirty_fraction: 0.3,
            error_rate: 0.15,
            clean_error_days: (1, 3),
            dirty_error_days: (4, 30),
            rename_fraction: 0.08,
            noise_pool_size: 250,
            noise_cardinality: (5, 40),
            noise_core_size: 40,
            small_noise_fraction: 0.45,
            core_inclusion_prob: 0.75,
            stable_core_size: 15,
            stable_keep_prob: 0.55,
            stable_noise_fraction: 0.06,
            noise_community_size: 250,
        }
    }

    /// A paper-shaped configuration: full 6148-day timeline and the §5.1
    /// statistics, scaled to `total` attributes (the paper's full scale is
    /// `total = 1_300_000`).
    pub fn paper_shaped(total: usize, seed: u64) -> Self {
        let num_sources = (total / 5).max(1);
        let num_derived = (total * 2 / 5).max(1);
        let num_noise = total.saturating_sub(num_sources + num_derived);
        GeneratorConfig {
            seed,
            timeline_days: 6148,
            num_sources,
            num_derived,
            num_noise,
            num_domains: (num_sources / 8).clamp(4, 512),
            entities_per_domain: 1000,
            zipf_exponent: 0.8,
            mean_changes: 13.0,
            source_change_factor: 1.25,
            noise_change_factor: 0.7,
            mean_lifespan_days: 2045.0,
            survivor_fraction: 0.4,
            noise_zipf_exponent: 1.1,
            initial_cardinality: (5, 60),
            clean_delay_max: 7,
            dirty_delay_max: 60,
            dirty_fraction: 0.3,
            error_rate: 0.12,
            clean_error_days: (1, 3),
            dirty_error_days: (4, 40),
            rename_fraction: 0.08,
            noise_pool_size: 2000,
            noise_cardinality: (5, 40),
            noise_core_size: 50,
            small_noise_fraction: 0.45,
            core_inclusion_prob: 0.75,
            stable_core_size: 15,
            stable_keep_prob: 0.55,
            stable_noise_fraction: 0.06,
            noise_community_size: 250,
        }
    }

    /// Total number of attributes the configuration will generate.
    pub fn total_attributes(&self) -> usize {
        self.num_sources + self.num_derived + self.num_noise
    }

    /// Sanity-checks invariants the generator relies on.
    ///
    /// # Panics
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) {
        assert!(self.timeline_days >= 60, "timeline must cover at least 60 days");
        assert!(self.num_sources > 0, "need at least one source attribute");
        assert!(self.num_domains > 0, "need at least one domain");
        assert!(
            self.entities_per_domain >= self.initial_cardinality.1 * 2,
            "domains must hold enough entities for growth"
        );
        assert!(self.initial_cardinality.0 >= 5, "paper filter requires median cardinality >= 5");
        assert!(self.initial_cardinality.0 <= self.initial_cardinality.1);
        assert!(self.mean_changes >= 4.0, "paper filter requires at least 4 changes");
        assert!(self.source_change_factor > 0.0 && self.noise_change_factor > 0.0);
        assert!((0.0..=1.0).contains(&self.dirty_fraction));
        assert!((0.0..=1.0).contains(&self.error_rate));
        assert!((0.0..=1.0).contains(&self.survivor_fraction));
        assert!((0.0..=1.0).contains(&self.rename_fraction));
        assert!(self.noise_zipf_exponent >= 0.0);
        assert!(self.clean_error_days.0 >= 1 && self.clean_error_days.0 <= self.clean_error_days.1);
        assert!(self.dirty_error_days.0 >= 1 && self.dirty_error_days.0 <= self.dirty_error_days.1);
        assert!(self.noise_cardinality.0 >= 1 && self.noise_cardinality.0 <= self.noise_cardinality.1);
        assert!(
            self.noise_pool_size >= self.noise_cardinality.1 * 2,
            "noise pool must be larger than the largest noise attribute"
        );
        assert!(
            self.noise_core_size >= 10 && self.noise_core_size <= self.noise_pool_size,
            "noise core must fit inside the pool"
        );
        assert!((0.0..=1.0).contains(&self.small_noise_fraction));
        assert!((0.0..=1.0).contains(&self.core_inclusion_prob));
        assert!(
            self.stable_core_size >= 8 && self.stable_core_size <= self.noise_core_size,
            "stable core must fit inside the core"
        );
        assert!((0.0..=1.0).contains(&self.stable_keep_prob));
        assert!(self.noise_community_size >= 10, "communities must be non-trivial");
        assert!((0.0..=1.0).contains(&self.stable_noise_fraction));
        assert!(
            self.stable_noise_fraction + self.small_noise_fraction <= 1.0,
            "noise flavor fractions must not exceed 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        GeneratorConfig::small(100, 1).validate();
        GeneratorConfig::small(3, 1).validate();
        GeneratorConfig::paper_shaped(10_000, 2).validate();
    }

    #[test]
    fn totals_add_up() {
        let c = GeneratorConfig::small(100, 1);
        assert_eq!(c.total_attributes(), c.num_sources + c.num_derived + c.num_noise);
        assert!(c.total_attributes() >= 95 && c.total_attributes() <= 100);
    }

    #[test]
    #[should_panic(expected = "at least 60 days")]
    fn validate_rejects_tiny_timeline() {
        let mut c = GeneratorConfig::small(10, 1);
        c.timeline_days = 10;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "median cardinality")]
    fn validate_rejects_small_cardinality() {
        let mut c = GeneratorConfig::small(10, 1);
        c.initial_cardinality = (2, 50);
        c.validate();
    }
}
