//! Derived attribute simulation — the left-hand sides of planted genuine
//! INDs.
//!
//! A derived attribute adopts a subset of its source's values and replays
//! the source's changes with bounded delay:
//!
//! * **Insertions** are adopted late (or not at all) — harmless for
//!   containment, the derived side only lags behind.
//! * **Removals** are propagated late — this *does* break static
//!   containment during the lag window and is precisely the data-quality
//!   issue δ-containment heals (the source carried the value until the
//!   removal, so a δ at least as large as the lag finds it in the window).
//! * **Errors** occasionally insert a foreign value that no version of the
//!   source ever carries; it is fixed after a few days. These are the
//!   violations only ε can absorb.
//!
//! Attributes additionally receive containment-preserving *churn* (remove
//! an owned value, re-add it days later) when they would otherwise fall
//! under the paper's ≥5-version filter.

use rand::{Rng, RngExt};
use tind_model::{HistoryBuilder, Timestamp, ValueId};

use crate::config::GeneratorConfig;
use crate::domains::DomainPool;
use crate::source::SourceSim;

/// A scheduled set mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Op {
    Insert(ValueId),
    Remove(ValueId),
}

/// The simulated dirt level of a derived attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dirtiness {
    /// Short delays, errors fixed within days — discoverable at the
    /// paper's default (ε = 3, δ = 7).
    Clean,
    /// Long delays and slow fixes — needs generous relaxation settings.
    Dirty,
}

/// Simulates one derived attribute for `source`. Returns the history; the
/// genuine pair `(derived, source)` is recorded by the caller.
///
/// When `rename_value` is given, one adopted source value is permanently
/// replaced by it mid-life — the entity-rename dirt of §3.3 that makes
/// the (still genuine) pair undiscoverable without σ-partial containment.
pub fn simulate_derived<R: Rng>(
    source: &SourceSim,
    pool: &DomainPool,
    cfg: &GeneratorConfig,
    dirtiness: Dirtiness,
    rename_value: Option<tind_model::ValueId>,
    name: &str,
    rng: &mut R,
) -> tind_model::AttributeHistory {
    let (delay_max, error_days) = match dirtiness {
        Dirtiness::Clean => (cfg.clean_delay_max, cfg.clean_error_days),
        Dirtiness::Dirty => (cfg.dirty_delay_max, cfg.dirty_error_days),
    };

    // Life nested within the source's life (a derived column that outlives
    // its source would trail permanent violations and stop being genuine).
    let latest_birth = source.death.saturating_sub(30).max(source.birth);
    let birth = if latest_birth > source.birth {
        rng.random_range(source.birth..=latest_birth)
    } else {
        source.birth
    };
    let death = source.death;

    let adopt_rate: f64 = rng.random_range(0.55..0.95);
    // One characteristic lag per derived attribute (its maintainer's
    // responsiveness). A constant lag keeps propagated events in source
    // order — independent per-change delays could propagate a *removal*
    // before an earlier insertion, leaving a permanently leaked value.
    let delay: u32 = rng.random_range(0..=delay_max);

    // Initial set: an adopted subset of the source at birth.
    let source_at_birth = source.set_at(birth).expect("birth within source life");
    let mut initial: Vec<ValueId> =
        source_at_birth.iter().copied().filter(|_| rng.random::<f64>() < adopt_rate).collect();
    // Honor the ≥5 cardinality floor.
    for &v in &source_at_birth {
        if initial.len() >= 5 {
            break;
        }
        if !initial.contains(&v) {
            initial.push(v);
        }
    }
    initial.sort_unstable();
    let mut owned: std::collections::BTreeSet<ValueId> = initial.iter().copied().collect();

    // Replay source changes with delay.
    let mut events: Vec<(Timestamp, Op)> = Vec::new();
    for ch in &source.changes {
        if ch.t < birth {
            continue;
        }
        let te = ch.t.saturating_add(delay).min(death);
        for &v in &ch.added {
            if rng.random::<f64>() < adopt_rate && owned.insert(v) {
                events.push((te, Op::Insert(v)));
            }
        }
        for &v in &ch.removed {
            if owned.remove(&v) {
                events.push((te, Op::Remove(v)));
            }
        }
        // Transient erroneous insertion of a foreign value.
        if rng.random::<f64>() < cfg.error_rate {
            let dur = rng.random_range(error_days.0..=error_days.1);
            if te + dur <= death {
                let foreign = pool.sample_foreign(source.domain, rng);
                if !owned.contains(&foreign) {
                    events.push((te, Op::Insert(foreign)));
                    events.push((te + dur, Op::Remove(foreign)));
                }
            }
        }
    }

    // Permanent entity rename: from `tr` on, one adopted value appears
    // under a different name that the source never carries.
    if let Some(renamed) = rename_value {
        if death > birth + 4 {
            // Early in life, so the wrong name dominates the history (real
            // renames stick; a late rename would leave only a short
            // violation tail that ε could absorb).
            let tr = rng.random_range(birth + 1..=birth + (death - birth) / 4);
            if let Some(&victim) = owned.iter().next() {
                owned.remove(&victim);
                events.push((tr, Op::Remove(victim)));
                events.push((tr, Op::Insert(renamed)));
            }
        }
    }

    let mut history = materialize(name, birth, death, &initial, &mut events);

    // Containment-preserving churn until the ≥5-version filter is met.
    let mut guard = 0;
    while history.versions().len() < 5 && guard < 32 {
        guard += 1;
        if death - birth < 4 {
            break;
        }
        let t = rng.random_range(birth + 1..death);
        let owned_now: Vec<ValueId> = history.values_at(t).to_vec();
        if owned_now.len() <= 5 {
            continue;
        }
        // Churn only values the source carries both now and at the end —
        // re-adding anything else could plant a permanent violation.
        let source_now = source.set_at(t).unwrap_or_default();
        let source_end = source.set_at(death).unwrap_or_default();
        let Some(&v) = owned_now
            .iter()
            .find(|v| source_now.binary_search(v).is_ok() && source_end.binary_search(v).is_ok())
        else {
            continue;
        };
        events.push((t, Op::Remove(v)));
        events.push((t + 1, Op::Insert(v)));
        history = materialize(name, birth, death, &initial, &mut events);
    }
    history
}

/// Folds the event list into an attribute history.
fn materialize(
    name: &str,
    birth: Timestamp,
    death: Timestamp,
    initial: &[ValueId],
    events: &mut [(Timestamp, Op)],
) -> tind_model::AttributeHistory {
    events.sort_unstable();
    let mut set: std::collections::BTreeSet<ValueId> = initial.iter().copied().collect();
    let mut b = HistoryBuilder::new(name);
    b.push(birth, initial.to_vec());
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            match events[i].1 {
                Op::Insert(v) => {
                    set.insert(v);
                }
                Op::Remove(v) => {
                    set.remove(&v);
                }
            }
            i += 1;
        }
        if t > birth {
            b.push(t, set.iter().copied().collect());
        }
        // Events at exactly `birth` are folded into the initial version by
        // the builder's dedup (same timestamp is not allowed twice).
    }
    b.finish(death)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::simulate_source;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tind_core::validate::{naive_violation_weight, validate};
    use tind_core::TindParams;
    use tind_model::{Timeline, WeightFn};

    fn setup(seed: u64) -> (DomainPool, GeneratorConfig, StdRng) {
        let mut dict = tind_model::Dictionary::new();
        let cfg = GeneratorConfig::small(50, seed);
        let pool = DomainPool::generate(
            &mut dict,
            cfg.num_domains,
            cfg.entities_per_domain,
            cfg.zipf_exponent,
        );
        (pool, cfg, StdRng::seed_from_u64(seed))
    }

    #[test]
    fn clean_derived_validates_at_generous_params() {
        let (pool, cfg, mut rng) = setup(21);
        let tl = Timeline::new(cfg.timeline_days);
        for i in 0..15 {
            let src = simulate_source(&pool, &cfg, &mut rng);
            let d = simulate_derived(&src, &pool, &cfg, Dirtiness::Clean, None, &format!("d{i}"), &mut rng);
            let s = src.into_history("s");
            // Generous: ε covers worst-case error budget, δ covers max delay.
            let p = TindParams::weighted(60.0, cfg.clean_delay_max, WeightFn::constant_one());
            assert!(
                validate(&d, &s, &p, tl),
                "derived {i} violates even at generous params: weight {}",
                naive_violation_weight(&d, &s, &p, tl)
            );
        }
    }

    #[test]
    fn derived_respects_life_nesting_and_filters() {
        let (pool, cfg, mut rng) = setup(5);
        for i in 0..20 {
            let src = simulate_source(&pool, &cfg, &mut rng);
            let d = simulate_derived(&src, &pool, &cfg, Dirtiness::Clean, None, &format!("d{i}"), &mut rng);
            assert!(d.first_observed() >= src.birth);
            assert!(d.last_observed() <= src.death);
            assert!(d.median_cardinality() >= 5, "median {} too small", d.median_cardinality());
        }
    }

    #[test]
    fn dirty_derived_violates_more_than_clean() {
        let (pool, cfg, mut rng) = setup(33);
        let tl = Timeline::new(cfg.timeline_days);
        let p = TindParams::strict();
        let mut clean_total = 0.0;
        let mut dirty_total = 0.0;
        for i in 0..12 {
            let src = simulate_source(&pool, &cfg, &mut rng);
            let c = simulate_derived(&src, &pool, &cfg, Dirtiness::Clean, None, &format!("c{i}"), &mut rng);
            let d = simulate_derived(&src, &pool, &cfg, Dirtiness::Dirty, None, &format!("d{i}"), &mut rng);
            let s = src.into_history("s");
            clean_total += naive_violation_weight(&c, &s, &p, tl);
            dirty_total += naive_violation_weight(&d, &s, &p, tl);
        }
        assert!(
            dirty_total > clean_total,
            "dirty ({dirty_total}) should violate more than clean ({clean_total})"
        );
    }

    #[test]
    fn errors_are_transient() {
        // Every foreign value must disappear again: the final version
        // contains only source-universe values.
        let (pool, cfg, mut rng) = setup(8);
        for i in 0..15 {
            let src = simulate_source(&pool, &cfg, &mut rng);
            let d = simulate_derived(&src, &pool, &cfg, Dirtiness::Clean, None, &format!("d{i}"), &mut rng);
            let s = src.into_history("s");
            let universe = s.value_universe();
            let last = d.values_at(d.last_observed());
            for v in last {
                assert!(universe.binary_search(v).is_ok(), "foreign value survived to the end");
            }
        }
    }
}
