//! Noise attributes — the breeding ground for spurious INDs.
//!
//! Noise attributes draw value sets from a shared, popularity-skewed pool
//! and come in three flavors mirroring real open-data tables:
//!
//! * **Small** — a handful of very popular *core* values (country columns,
//!   status columns, ...). At a snapshot these are frequently contained in
//!   larger attributes by pure chance; their churn breaks the containments
//!   over time, so temporal discovery filters them (§5.5's 89% spurious
//!   static INDs).
//! * **Large** — a broad subset of the core plus a tail; the right-hand
//!   sides of the chance containments. A few *stable-core* values, once
//!   adopted, are kept permanently.
//! * **StableSmall** — tiny sets living entirely inside the stable core
//!   with subset-preserving toggle churn. Their containments persist
//!   across all of time while still being coincidental — the spurious INDs
//!   that even strict tIND discovery reports (why the paper's strict
//!   precision is only 25%, not 100%).

use rand::{Rng, RngExt};
use tind_model::{HistoryBuilder, Timestamp, ValueId};

use crate::config::GeneratorConfig;
use crate::domains::{exponential, poisson, DomainPool};
use crate::source::sample_change_days;

/// Which kind of noise attribute to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseFlavor {
    /// Tiny, temporally persistent stable-core set.
    StableSmall,
    /// Small, churning core set.
    Small,
    /// Large core-covering set with a permanent stable-core subset.
    Large,
}

/// Builds one community's popular-value pool: Zipf-weighted picks from the
/// community's `domains`, so noise overlaps the source/derived attributes
/// of those domains (and noise of *other* communities only where domains
/// are shared). The first [`GeneratorConfig::stable_core_size`] entries
/// play the role of the stable core.
pub fn build_noise_pool<R: Rng>(
    pool: &DomainPool,
    cfg: &GeneratorConfig,
    domains: &[usize],
    rng: &mut R,
) -> Vec<ValueId> {
    assert!(!domains.is_empty(), "community needs at least one domain");
    let mut values = std::collections::BTreeSet::new();
    let mut attempts = 0;
    while values.len() < cfg.noise_pool_size && attempts < cfg.noise_pool_size * 30 {
        let d = domains[rng.random_range(0..domains.len())];
        values.insert(pool.sample_entity(d, rng));
        attempts += 1;
    }
    values.into_iter().collect()
}

/// Samples a value from a slice with Zipf skew over positions: popular
/// entries recur across many noise attributes, which is what produces the
/// chance containments behind spurious static INDs.
fn sample_skewed<R: Rng>(values: &[ValueId], exponent: f64, rng: &mut R) -> ValueId {
    // Inverse-CDF approximation of a Zipf-like skew: u^(1+s) concentrates
    // mass near index 0; exact Zipf is unnecessary for workload shaping.
    let u: f64 = rng.random();
    let idx = ((values.len() as f64) * u.powf(1.0 + exponent)) as usize;
    values[idx.min(values.len() - 1)]
}

/// Samples birth/death honoring the survivor fraction.
fn life<R: Rng>(cfg: &GeneratorConfig, rng: &mut R) -> (Timestamp, Timestamp) {
    let n = cfg.timeline_days;
    let birth = rng.random_range(0..n.saturating_sub(60).max(1));
    let death = if rng.random::<f64>() < cfg.survivor_fraction {
        n - 1
    } else {
        let lifespan = exponential(cfg.mean_lifespan_days, rng).max(60.0) as u32;
        birth.saturating_add(lifespan).min(n - 1)
    };
    (birth, death)
}

/// Simulates one noise attribute over the shared pool.
pub fn simulate_noise<R: Rng>(
    noise_pool: &[ValueId],
    cfg: &GeneratorConfig,
    flavor: NoiseFlavor,
    name: &str,
    rng: &mut R,
) -> tind_model::AttributeHistory {
    match flavor {
        NoiseFlavor::StableSmall => simulate_stable_small(noise_pool, cfg, name, rng),
        NoiseFlavor::Small => simulate_churning(noise_pool, cfg, true, name, rng),
        NoiseFlavor::Large => simulate_churning(noise_pool, cfg, false, name, rng),
    }
}

/// Stable-core-only attribute with toggle churn: remove an owned value,
/// re-add it at the next change. Its value universe never grows, so any
/// containment it enjoys persists through all of time.
fn simulate_stable_small<R: Rng>(
    noise_pool: &[ValueId],
    cfg: &GeneratorConfig,
    name: &str,
    rng: &mut R,
) -> tind_model::AttributeHistory {
    let (birth, death) = life(cfg, rng);
    let stable_core = &noise_pool[..cfg.stable_core_size.min(noise_pool.len())];
    // Cardinality ≥ 6 so the toggled-down versions still pass the
    // median-cardinality ≥ 5 filter.
    let card = rng.random_range(6..=8).min(stable_core.len());
    let mut owned = std::collections::BTreeSet::new();
    let mut guard = 0;
    while owned.len() < card && guard < card * 50 {
        owned.insert(sample_skewed(stable_core, cfg.noise_zipf_exponent, rng));
        guard += 1;
    }
    for &v in stable_core {
        if owned.len() >= card {
            break;
        }
        owned.insert(v);
    }

    let change_count = poisson(cfg.mean_changes * cfg.noise_change_factor, rng).max(4);
    let days = sample_change_days(birth, death, change_count, rng);
    let mut b = HistoryBuilder::new(name);
    b.push(birth, owned.iter().copied().collect());
    let mut removed: Option<ValueId> = None;
    for t in days {
        match removed.take() {
            Some(v) => {
                owned.insert(v);
            }
            None => {
                let idx = rng.random_range(0..owned.len());
                let v = *owned.iter().nth(idx).expect("non-empty");
                owned.remove(&v);
                removed = Some(v);
            }
        }
        b.push(t, owned.iter().copied().collect());
    }
    b.finish(death)
}

/// Small (core) or large (core + tail, with a permanent stable subset)
/// churning attribute.
fn simulate_churning<R: Rng>(
    noise_pool: &[ValueId],
    cfg: &GeneratorConfig,
    small: bool,
    name: &str,
    rng: &mut R,
) -> tind_model::AttributeHistory {
    let (birth, death) = life(cfg, rng);
    let zipf = cfg.noise_zipf_exponent;
    let core = &noise_pool[..cfg.noise_core_size.min(noise_pool.len())];
    let stable_core = &noise_pool[..cfg.stable_core_size.min(noise_pool.len())];

    let mut permanent = std::collections::BTreeSet::new();
    let mut current: std::collections::BTreeSet<ValueId> = std::collections::BTreeSet::new();
    if small {
        let card = rng
            .random_range(cfg.noise_cardinality.0..=(cfg.noise_cardinality.0 + 4))
            .min(core.len());
        let mut guard = 0;
        while current.len() < card && guard < card * 50 {
            current.insert(sample_skewed(core, zipf, rng));
            guard += 1;
        }
        for &v in core.iter() {
            if current.len() >= card {
                break;
            }
            current.insert(v);
        }
    } else {
        // Permanently kept stable-core values.
        for &v in stable_core {
            if rng.random::<f64>() < cfg.stable_keep_prob {
                permanent.insert(v);
                current.insert(v);
            }
        }
        for &v in core {
            if rng.random::<f64>() < cfg.core_inclusion_prob {
                current.insert(v);
            }
        }
        let target = rng
            .random_range(
                (cfg.noise_cardinality.0 + cfg.noise_cardinality.1) / 2..=cfg.noise_cardinality.1,
            )
            .max(current.len());
        let mut guard = 0;
        while current.len() < target.min(noise_pool.len()) && guard < target * 50 {
            current.insert(sample_skewed(noise_pool, 0.2, rng));
            guard += 1;
        }
    }

    let change_count = poisson(cfg.mean_changes * cfg.noise_change_factor, rng).max(4);
    let days = sample_change_days(birth, death, change_count, rng);

    let mut b = HistoryBuilder::new(name);
    b.push(birth, current.iter().copied().collect());
    let replacement_pool = if small { core } else { noise_pool };
    // A removable (non-permanent) member, if any.
    let pick_removable = |current: &std::collections::BTreeSet<ValueId>,
                          permanent: &std::collections::BTreeSet<ValueId>,
                          rng: &mut R| {
        let removable: Vec<ValueId> =
            current.iter().copied().filter(|v| !permanent.contains(v)).collect();
        if removable.is_empty() {
            None
        } else {
            Some(removable[rng.random_range(0..removable.len())])
        }
    };
    // Inserts a value that is genuinely new (bounded resampling), so every
    // change produces a distinct version and the ≥5-version filter holds.
    let insert_fresh = |current: &mut std::collections::BTreeSet<ValueId>, rng: &mut R| {
        for _ in 0..64 {
            if current.insert(sample_skewed(replacement_pool, zipf, rng)) {
                return true;
            }
        }
        replacement_pool.iter().any(|&v| current.insert(v))
    };
    for t in days {
        // Random churn: replace, add, or remove a value (never a permanent
        // one).
        let roll: f64 = rng.random();
        if roll < 0.5 && current.len() > cfg.noise_cardinality.0 {
            // Replace: removal alone already changes the set; the insert
            // keeps cardinality stable. Re-inserting the removed value
            // would be a no-op change, so it is excluded.
            if let Some(v) = pick_removable(&current, &permanent, rng) {
                current.remove(&v);
                for _ in 0..64 {
                    let w = sample_skewed(replacement_pool, zipf, rng);
                    if w != v && current.insert(w) {
                        break;
                    }
                }
            } else {
                insert_fresh(&mut current, rng);
            }
        } else if roll < 0.8 {
            if !insert_fresh(&mut current, rng) {
                if let Some(v) = pick_removable(&current, &permanent, rng) {
                    current.remove(&v);
                }
            }
        } else if current.len() > cfg.noise_cardinality.0 {
            if let Some(v) = pick_removable(&current, &permanent, rng) {
                current.remove(&v);
            } else {
                insert_fresh(&mut current, rng);
            }
        } else {
            insert_fresh(&mut current, rng);
        }
        b.push(t, current.iter().copied().collect());
    }
    b.finish(death)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Vec<ValueId>, GeneratorConfig, StdRng) {
        let mut dict = tind_model::Dictionary::new();
        let cfg = GeneratorConfig::small(50, seed);
        let pool = DomainPool::generate(
            &mut dict,
            cfg.num_domains,
            cfg.entities_per_domain,
            cfg.zipf_exponent,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let noise_pool = build_noise_pool(&pool, &cfg, &[0, 1], &mut rng);
        (noise_pool, cfg, rng)
    }

    #[test]
    fn noise_pool_has_requested_size() {
        let (pool, cfg, _) = setup(3);
        assert!(pool.len() >= cfg.noise_pool_size * 9 / 10, "pool {} too small", pool.len());
        assert!(pool.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn noise_attributes_stay_within_pool_and_bounds() {
        let (pool, cfg, mut rng) = setup(5);
        for (i, flavor) in [NoiseFlavor::Small, NoiseFlavor::Large, NoiseFlavor::StableSmall]
            .into_iter()
            .cycle()
            .take(21)
            .enumerate()
        {
            let h = simulate_noise(&pool, &cfg, flavor, &format!("n{i}"), &mut rng);
            assert!(h.versions().len() >= 5, "{flavor:?} has {} versions", h.versions().len());
            assert!(h.median_cardinality() >= 5, "{flavor:?} median too small");
            for v in h.value_universe() {
                assert!(pool.binary_search(&v).is_ok(), "value outside pool");
            }
            assert!(h.last_observed() < cfg.timeline_days);
        }
    }

    #[test]
    fn small_noise_stays_in_core() {
        let (pool, cfg, mut rng) = setup(9);
        let core: Vec<ValueId> = pool[..cfg.noise_core_size].to_vec();
        for i in 0..10 {
            let h = simulate_noise(&pool, &cfg, NoiseFlavor::Small, &format!("s{i}"), &mut rng);
            for v in h.value_universe() {
                assert!(core.binary_search(&v).is_ok(), "small noise left the core");
            }
            assert!(h.versions()[0].values.len() <= cfg.noise_cardinality.0 + 4);
        }
    }

    #[test]
    fn large_noise_covers_much_of_the_core() {
        let (pool, cfg, mut rng) = setup(13);
        let core: Vec<ValueId> = pool[..cfg.noise_core_size].to_vec();
        let mut coverage = 0usize;
        let trials = 10;
        for i in 0..trials {
            let h = simulate_noise(&pool, &cfg, NoiseFlavor::Large, &format!("l{i}"), &mut rng);
            let first = &h.versions()[0].values;
            coverage += core.iter().filter(|v| first.binary_search(v).is_ok()).count();
        }
        let mean_cov = coverage as f64 / (trials as f64 * core.len() as f64);
        assert!(
            mean_cov > cfg.core_inclusion_prob - 0.15,
            "core coverage {mean_cov} too low vs {}",
            cfg.core_inclusion_prob
        );
    }

    #[test]
    fn large_noise_keeps_permanent_stable_values() {
        let (pool, cfg, mut rng) = setup(17);
        let stable: Vec<ValueId> = pool[..cfg.stable_core_size].to_vec();
        for i in 0..10 {
            let h = simulate_noise(&pool, &cfg, NoiseFlavor::Large, &format!("l{i}"), &mut rng);
            let first: Vec<ValueId> =
                h.versions()[0].values.iter().copied().filter(|v| stable.binary_search(v).is_ok()).collect();
            // Wait until the attribute settles: every initially-held stable
            // value must still be present in the final version... unless it
            // was a non-permanent core pick. We can only assert the weaker
            // property that *most* initial stable values survive.
            let last = h.values_at(h.last_observed());
            let surviving = first.iter().filter(|v| last.binary_search(v).is_ok()).count();
            assert!(
                surviving * 3 >= first.len() * 2,
                "only {surviving}/{} stable values survived",
                first.len()
            );
        }
    }

    #[test]
    fn stable_small_universe_never_grows() {
        let (pool, cfg, mut rng) = setup(21);
        for i in 0..10 {
            let h =
                simulate_noise(&pool, &cfg, NoiseFlavor::StableSmall, &format!("t{i}"), &mut rng);
            let initial = &h.versions()[0].values;
            assert_eq!(
                &h.value_universe(),
                initial,
                "toggle churn must not introduce new values"
            );
            assert!(initial.len() >= 6 && initial.len() <= 8);
            // Every version is a subset of the initial one.
            for v in h.versions() {
                assert!(tind_model::value::is_subset(&v.values, initial));
            }
        }
    }

    #[test]
    fn noise_churns_over_time() {
        let (pool, cfg, mut rng) = setup(7);
        let h = simulate_noise(&pool, &cfg, NoiseFlavor::Large, "n", &mut rng);
        let first = h.versions().first().expect("has versions");
        let last = h.versions().last().expect("has versions");
        assert_ne!(first.values, last.values, "noise should drift");
    }
}
