//! Command implementations. Every command returns its full textual output
//! so the layer is unit-testable; `main` only prints.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use tind_core::{
    discover_all_pairs, migrate_store, open_store, pack_store, repair_store, verify_store,
    AllPairsError, AllPairsOptions, BatchOptions, BuildOptions, CancelToken, Checkpoint,
    CheckpointPolicy, IndexConfig, OpenOptions, PackOptions, RepairOptions, ShardFormat,
    SliceConfig, StoreBacking, StoreError, TindIndex, TindParams,
};
use tind_datagen::{generate, GeneratorConfig};
use tind_eval::{ExpContext, Scale};
use tind_model::binio::{read_dataset_file, write_dataset_file, BinIoError};
use tind_model::stats::DatasetStats;
use tind_model::{AttrId, Dataset, MemoryBudget, WeightFn};
use tind_serve::{Engine, ServeConfig, Server};

use crate::args::{ArgError, Args};

/// Errors surfaced to the user. Each maps to a stable process exit code
/// (see [`CliError::exit_code`]) so orchestration scripts can distinguish
/// "bad invocation" from "corrupt data" from "interrupted run".
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// Unknown command or experiment.
    Unknown(String),
    /// Dataset file I/O or decoding failure (including checksum
    /// mismatches on any persisted artifact).
    Data(BinIoError),
    /// Other I/O failure (CSV output, ...).
    Io(std::io::Error),
    /// Fault-tolerant discovery failed (checkpoint unwritable, resume
    /// mismatch, or an unquarantined worker panic).
    Discovery(AllPairsError),
    /// A long-running command was interrupted (Ctrl-C or deadline) and
    /// stopped gracefully; `summary` describes the preserved progress.
    Interrupted {
        /// Human-readable progress report, including the checkpoint path
        /// when one was written.
        summary: String,
    },
    /// Anything else worth telling the user.
    Message(String),
}

/// Stable exit codes; documented in DESIGN.md ("Failure model & recovery").
impl CliError {
    /// The process exit code for this error.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Message(_) => 1,
            CliError::Args(_) | CliError::Unknown(_) => 2,
            CliError::Data(_) => 3,
            CliError::Io(_) => 4,
            CliError::Discovery(_) => 5,
            // Convention: 128 + SIGINT, like a shell reports an
            // interrupted child.
            CliError::Interrupted { .. } => 130,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "argument error: {e}"),
            CliError::Unknown(what) => write!(f, "unknown {what} (try `tind help`)"),
            CliError::Data(e) => write!(f, "dataset error: {e}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Discovery(e) => write!(f, "discovery error: {e}"),
            CliError::Interrupted { summary } => write!(f, "interrupted: {summary}"),
            CliError::Message(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}
impl From<BinIoError> for CliError {
    fn from(e: BinIoError) -> Self {
        CliError::Data(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<AllPairsError> for CliError {
    fn from(e: AllPairsError) -> Self {
        CliError::Discovery(e)
    }
}

/// Options each command understands; anything else is rejected before the
/// command runs, so a typo'd `--chekpoint` cannot silently strip fault
/// tolerance from a long job.
const PARAMS: &[&str] = &["eps", "delta", "decay"];
fn allowed_options(command: &str) -> Option<Vec<&'static str>> {
    let mut allowed: Vec<&str> = match command {
        "generate" => vec!["attributes", "seed", "preset", "out", "truth-out"],
        "stats" => vec!["data"],
        "search" => {
            vec![
                "data", "query", "limit", "index", "store", "batch", "threads", "build-threads",
                "report", "trace",
            ]
        }
        "reverse-search" => {
            vec!["data", "query", "limit", "index", "store", "build-threads", "report"]
        }
        "partial-search" => vec!["data", "query", "sigma", "limit"],
        "top-k" => vec!["data", "query", "k", "index", "build-threads"],
        "explain" => vec!["data", "lhs", "rhs"],
        "index" => vec!["data", "out", "m", "reverse", "build-threads", "report"],
        "explore" => vec!["data", "index", "build-threads"],
        "serve" => vec![
            "data", "store", "host", "port", "port-file", "workers", "readers", "queue",
            "coalesce", "deadline-ms", "max-deadline-ms", "read-timeout-ms", "write-timeout-ms",
            "max-body-bytes", "memory-limit", "drain-grace-ms", "reverify-ms", "cache",
            "plan-cache", "store-backing", "trace-last", "metrics-tick-ms", "build-threads",
            "report", "quiet",
        ],
        "store" => vec![
            "data", "index", "out", "store", "shards", "m", "reverse", "format", "build-threads",
            "report",
        ],
        "all-pairs" => vec![
            "data", "threads", "checkpoint", "checkpoint-every", "deadline", "memory-limit",
            "resume", "quiet", "progress", "build-threads", "report", "trace",
        ],
        "trace" => vec!["file", "diff", "chrome"],
        "verify" => vec!["file", "data", "schema", "quarantine", "report"],
        "pipeline" => vec!["dump", "timeline", "out", "demo", "attributes", "seed"],
        "ingest" => vec![
            "dump", "out", "timeline", "epoch", "max-page-bytes", "max-error-rate",
            "memory-limit", "checkpoint", "checkpoint-every", "deadline", "quarantine-report",
            "resume", "quiet", "progress", "report",
        ],
        "update" => vec![
            "dump", "data", "out", "index", "index-out", "compact", "epoch", "max-page-bytes",
            "max-error-rate", "memory-limit", "checkpoint", "checkpoint-every", "deadline",
            "quarantine-report", "resume", "quiet", "progress", "report",
        ],
        "experiment" => vec!["scale", "seed", "threads", "attributes", "queries", "csv-dir"],
        "list-experiments" | "help" | "--help" | "-h" => vec![],
        _ => return None,
    };
    if matches!(
        command,
        "search"
            | "reverse-search"
            | "partial-search"
            | "top-k"
            | "explain"
            | "index"
            | "all-pairs"
            | "serve"
            | "store"
    ) {
        allowed.extend_from_slice(PARAMS);
    }
    allowed.push("help");
    Some(allowed)
}

/// Dispatches a full command line (without the program name).
///
/// One invocation is one observability run: the span/metric registry is
/// reset here, and `--report PATH` (on the commands that accept it)
/// snapshots everything into a `TINDRR` report *after* the command
/// returns, so every `phase.*` guard has been dropped and the report's
/// own serialization/IO never counts against phase coverage.
pub fn dispatch(raw: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = raw.split_first() else {
        return Ok(crate::USAGE.to_string());
    };
    tind_obs::reset();
    let run_started = std::time::Instant::now();
    let args = Args::parse(rest.iter().cloned())?;
    if let Some(allowed) = allowed_options(command.as_str()) {
        args.expect_known(&allowed)?;
    }
    let report_path: Option<PathBuf> = args.opt::<String>("report")?.map(Into::into);
    let result = run_command(command, &args);
    // Interrupted runs stopped *gracefully* — their partial-progress
    // report is exactly what an operator wants to inspect afterwards, so
    // `--report` is honored for them too (a drained `tind serve` flushes
    // its final report this way).
    let reportable = matches!(&result, Ok(_) | Err(CliError::Interrupted { .. }));
    if let (Some(path), true) = (&report_path, reportable) {
        let wall_ns = run_started.elapsed().as_nanos() as u64;
        let report = tind_obs::RunReport::collect(command, rest, wall_ns);
        std::fs::write(path, report.to_json())?;
    }
    result
}

fn run_command(command: &str, args: &Args) -> Result<String, CliError> {
    match command {
        "generate" => cmd_generate(args),
        "stats" => cmd_stats(args),
        "search" => cmd_search(args, false),
        "reverse-search" => cmd_search(args, true),
        "partial-search" => cmd_partial_search(args),
        "top-k" => cmd_top_k(args),
        "explain" => cmd_explain(args),
        "index" => cmd_index(args),
        "explore" => cmd_explore(args),
        "serve" => cmd_serve(args),
        "store" => cmd_store(args),
        "all-pairs" => cmd_all_pairs(args),
        "verify" => cmd_verify(args),
        "trace" => cmd_trace(args),
        "pipeline" => cmd_pipeline(args),
        "ingest" => cmd_ingest(args),
        "update" => cmd_update(args),
        "experiment" => cmd_experiment(args),
        "list-experiments" => Ok(list_experiments()),
        "help" | "--help" | "-h" => Ok(crate::USAGE.to_string()),
        other => Err(CliError::Unknown(format!("command '{other}'"))),
    }
}

fn load_dataset(args: &Args) -> Result<Arc<Dataset>, CliError> {
    let _phase = tind_obs::span("phase.load");
    let path: PathBuf = args.required::<String>("data")?.into();
    Ok(Arc::new(read_dataset_file(&path)?))
}

fn parse_params(args: &Args, dataset: &Dataset) -> Result<TindParams, CliError> {
    let eps = args.opt_or("eps", 3.0)?;
    let delta = args.opt_or("delta", 7u32)?;
    let weights = match args.opt::<f64>("decay")? {
        Some(a) => WeightFn::exponential(a, dataset.timeline()),
        None => WeightFn::constant_one(),
    };
    Ok(TindParams::weighted(eps, delta, weights))
}

fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let attributes = args.opt_or("attributes", 1000usize)?;
    let seed = args.opt_or("seed", 42u64)?;
    let preset = args.opt_or("preset", "paper".to_string())?;
    let out: PathBuf = args.required::<String>("out")?.into();
    let cfg = match preset.as_str() {
        "small" => GeneratorConfig::small(attributes, seed),
        "paper" => GeneratorConfig::paper_shaped(attributes, seed),
        other => return Err(CliError::Unknown(format!("preset '{other}'"))),
    };
    let generated = generate(&cfg);
    write_dataset_file(&generated.dataset, &out)?;
    let mut extra = String::new();
    if let Some(truth_path) = args.opt::<String>("truth-out")? {
        let mut csv = String::from("lhs,rhs,lhs_name,rhs_name\n");
        for &(lhs, rhs) in generated.truth.genuine_pairs() {
            csv.push_str(&format!(
                "{lhs},{rhs},{},{}\n",
                generated.dataset.attribute(lhs).name(),
                generated.dataset.attribute(rhs).name()
            ));
        }
        std::fs::write(&truth_path, csv)?;
        extra = format!("ground truth written to {truth_path}\n");
    }
    let stats = DatasetStats::compute(&generated.dataset);
    Ok(format!(
        "wrote {} attributes ({} genuine pairs planted) to {}\n{extra}{stats}\n",
        generated.dataset.len(),
        generated.truth.genuine_pairs().len(),
        out.display()
    ))
}

fn cmd_stats(args: &Args) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    Ok(format!("{}\n", DatasetStats::compute(&dataset)))
}

fn resolve_query(args: &Args, dataset: &Dataset) -> Result<AttrId, CliError> {
    let raw = args.required::<String>("query")?;
    if let Some((id, _)) = dataset.attribute_by_name(&raw) {
        return Ok(id);
    }
    if let Ok(id) = raw.parse::<AttrId>() {
        if (id as usize) < dataset.len() {
            return Ok(id);
        }
    }
    Err(CliError::Message(format!("query attribute '{raw}' not found (name or id)")))
}

/// Build options for ad-hoc index construction: `--build-threads 0`
/// (the default) uses every core — safe because parallel builds are
/// bit-identical to sequential ones.
fn build_options(args: &Args) -> Result<BuildOptions, CliError> {
    Ok(BuildOptions { threads: args.opt_or("build-threads", 0usize)?, ..BuildOptions::default() })
}

/// Maps a store failure onto the CLI's exit-code taxonomy: container
/// corruption is data (3), filesystem trouble is I/O (4), everything
/// else (quarantined shards, fingerprint drift) is a plain message (1).
fn store_error(e: StoreError) -> CliError {
    match e {
        StoreError::Bin(b) => CliError::Data(b),
        StoreError::Io(io) => CliError::Io(io),
        other => CliError::Message(format!("store error: {other}")),
    }
}

/// Builds the index for ad-hoc queries, or loads a persisted one when
/// `--index FILE` or `--store DIR` is given (the fingerprint must match
/// the data either way). A degraded store open succeeds with a warning:
/// searches over live attributes stay exact, masked ones are excluded.
fn obtain_index(
    args: &Args,
    dataset: &Arc<Dataset>,
    config: IndexConfig,
) -> Result<(TindIndex, std::time::Duration), CliError> {
    let _phase = tind_obs::span("phase.index_build");
    if args.opt::<String>("index")?.is_some() && args.opt::<String>("store")?.is_some() {
        return Err(CliError::Args(ArgError::Conflict { a: "index", b: "store" }));
    }
    let obtained = match (args.opt::<String>("index")?, args.opt::<String>("store")?) {
        (Some(path), _) => {
            let path: PathBuf = path.into();
            Ok(tind_eval::stats::time_it(|| {
                tind_core::persist::read_index_file(&path, dataset.clone())
            }))
            .and_then(|(res, d)| res.map(|i| (i, d)).map_err(CliError::Data))
        }
        (None, Some(dir)) => {
            let dir: PathBuf = dir.into();
            let (res, d) = tind_eval::stats::time_it(|| open_store(&dir, dataset.clone()));
            let (index, report) = res.map_err(store_error)?;
            if !report.is_clean() {
                eprintln!(
                    "warning: store at {} is degraded ({} of {} shards quarantined); \
                     masked attributes are excluded from results",
                    dir.display(),
                    report.quarantined.len(),
                    report.shards_total
                );
                for fault in &report.quarantined {
                    eprintln!("  {fault}");
                }
            }
            Ok((index, d))
        }
        (None, None) => {
            let options = build_options(args)?;
            Ok(tind_eval::stats::time_it(|| {
                TindIndex::build_with(dataset.clone(), config, &options)
            }))
        }
    }?;
    record_index_gauges(&obtained.0);
    Ok(obtained)
}

/// Sampled attributes per time slice when estimating pruning power.
const SLICE_SAMPLE_CAP: usize = 256;

/// Mirror the structural health of an index into the metrics registry:
/// Bloom saturation and the classic `load^k` false-positive estimate for
/// `M_T` and the slice matrices, total filter bytes, and the slices'
/// pruning power `p(I)` — the fraction of (sampled) attributes that are
/// live inside each slice's δ-expanded window, averaged over slices. A
/// slice only prunes pairs whose LHS is live in it, so a low live
/// fraction means stage 2 has little to work with.
fn record_index_gauges(index: &TindIndex) {
    let d = index.diagnostics();
    let k = index.config().k_hashes as i32;
    tind_obs::gauge("index.m").set(f64::from(d.m));
    tind_obs::gauge("index.bloom_bytes").set(d.bloom_bytes as f64);
    tind_obs::gauge("index.m_t.load").set(d.m_t_load);
    tind_obs::gauge("index.m_t.est_fpr").set(d.m_t_load.powi(k));
    tind_obs::gauge("index.slices.count").set(d.num_slices as f64);
    tind_obs::gauge("index.slices.mean_load").set(d.mean_slice_load);
    tind_obs::gauge("index.slices.est_fpr").set(d.mean_slice_load.powi(k));
    tind_obs::gauge("index.slices.coverage").set(d.slice_coverage);

    let dataset = index.dataset();
    let n = dataset.len();
    let slices = index.time_slices();
    if n == 0 || slices.is_empty() {
        return;
    }
    let step = (n / SLICE_SAMPLE_CAP.min(n)).max(1);
    let mut live_fraction_sum = 0.0;
    for slice in slices {
        let mut sampled = 0u32;
        let mut live = 0u32;
        for id in (0..n).step_by(step) {
            sampled += 1;
            if !dataset.attribute(id as AttrId).values_in(slice.expanded).is_empty() {
                live += 1;
            }
        }
        live_fraction_sum += f64::from(live) / f64::from(sampled.max(1));
    }
    tind_obs::gauge("index.slices.mean_live_fraction")
        .set(live_fraction_sum / slices.len() as f64);
}

/// A query over an attribute whose index columns live in a quarantined
/// store shard would silently come back empty; refuse it with a pointer
/// at `tind store repair` instead.
fn reject_masked_query(index: &TindIndex, dataset: &Dataset, id: AttrId) -> Result<(), CliError> {
    if index.is_masked(id) {
        return Err(CliError::Message(format!(
            "query attribute '{}' is covered by a quarantined store shard; \
             run `tind store repair` to restore it",
            dataset.attribute(id).name()
        )));
    }
    Ok(())
}

/// Parses the `--batch` value: comma-separated attribute names or ids.
fn parse_batch(spec: &str, dataset: &Dataset) -> Result<Vec<AttrId>, CliError> {
    let queries: Vec<AttrId> = spec
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| resolve_named(t, dataset))
        .collect::<Result<_, _>>()?;
    if queries.is_empty() {
        return Err(CliError::Args(ArgError::BadValue {
            option: "batch".into(),
            value: spec.into(),
            expected: "at least one comma-separated attribute name or id",
        }));
    }
    Ok(queries)
}

fn cmd_search(args: &Args, reverse: bool) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    let params = parse_params(args, &dataset)?;
    let limit = args.opt_or("limit", 20usize)?;
    // `--trace FILE` writes a TINDTF timeline of the run. Reverse search
    // has no batch kernel seam to trace, so the option is forward-only.
    let trace_out: Option<PathBuf> =
        if reverse { None } else { args.opt::<String>("trace")?.map(Into::into) };
    let batch = if reverse { None } else { args.opt::<String>("batch")? };
    if batch.is_some() && args.opt::<String>("query")?.is_some() {
        return Err(CliError::Args(ArgError::Conflict { a: "batch", b: "query" }));
    }
    let query = if batch.is_some() { None } else { Some(resolve_query(args, &dataset)?) };

    let config = if reverse {
        IndexConfig {
            slices: SliceConfig::reverse_default(params.eps, params.weights.clone(), params.delta),
            ..IndexConfig::reverse_default()
        }
    } else {
        IndexConfig {
            slices: SliceConfig::search_default(params.eps, params.weights.clone(), params.delta),
            ..IndexConfig::default()
        }
    };
    let (index, build) = obtain_index(args, &dataset, config)?;
    if let Some(id) = query {
        reject_masked_query(&index, &dataset, id)?;
    }

    if let Some(spec) = batch {
        let queries = parse_batch(&spec, &dataset)?;
        for &qid in &queries {
            reject_masked_query(&index, &dataset, qid)?;
        }
        let root = trace_out.as_ref().map(|_| tind_obs::trace::alloc_context());
        let options = BatchOptions {
            threads: args.opt_or("threads", 0usize)?,
            trace: root,
            ..BatchOptions::default()
        };
        let phase = tind_obs::span("phase.search");
        let start = std::time::Instant::now();
        let trace_start = tind_obs::trace::now_ns();
        let outcome = index.search_batch_with(&queries, &params, &options);
        let elapsed = start.elapsed();
        drop(phase);
        if let (Some(path), Some(root)) = (&trace_out, root) {
            tind_obs::trace::record_span(
                root,
                0,
                "cli.search",
                trace_start,
                elapsed.as_nanos() as u64,
            );
            write_trace_file(path, root)?;
        }

        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch of {} queries (ε={}, δ={}) took {} — {} on {} thread(s), index build {}",
            queries.len(),
            params.eps,
            params.delta,
            tind_obs::fmt_duration_ns(elapsed.as_nanos() as u64),
            tind_obs::fmt_rate(queries.len() as u64, elapsed.as_secs_f64(), "queries"),
            outcome.threads_used,
            tind_obs::fmt_duration_ns(build.as_nanos() as u64),
        );
        let (mut runs, mut ev, mut ei, mut nanos) = (0u64, 0u64, 0u64, 0u64);
        for per_query in outcome.outcomes.iter().flatten() {
            runs += per_query.stats.validations_run as u64;
            ev += per_query.stats.early_valid_exits as u64;
            ei += per_query.stats.early_invalid_exits as u64;
            nanos += per_query.stats.validate_nanos;
        }
        let _ = writeln!(out, "{}", tind_obs::fmt_validation_summary(runs, ev, ei, nanos));
        for (&qid, per_query) in queries.iter().zip(&outcome.outcomes) {
            let Some(per_query) = per_query.as_ref() else {
                return Err(CliError::Message(
                    "internal: batch search skipped a query although no \
                     cancellation was configured"
                        .into(),
                ));
            };
            let _ = writeln!(
                out,
                "  {}: {} results",
                dataset.attribute(qid).name(),
                per_query.results.len()
            );
            for &id in per_query.results.iter().take(limit) {
                let _ = writeln!(out, "    {}", dataset.attribute(id).name());
            }
            if per_query.results.len() > limit {
                let _ = writeln!(
                    out,
                    "    … and {} more (raise --limit)",
                    per_query.results.len() - limit
                );
            }
        }
        return Ok(out);
    }

    let Some(query) = query else {
        return Err(CliError::Message(
            "internal: single search did not resolve a query attribute".into(),
        ));
    };
    let phase = tind_obs::span("phase.search");
    let start = std::time::Instant::now();
    let trace_start = tind_obs::trace::now_ns();
    let root = trace_out.as_ref().map(|_| tind_obs::trace::alloc_context());
    let outcome = if reverse {
        index.reverse_search(query, &params)
    } else if let Some(root) = root {
        // Traced: route the single query through a size-1 batch — the
        // batch path carries the trace seam, and its results are pinned
        // byte-identical to per-query search by the core equivalence
        // tests.
        let mut batch = index.search_batch_with(
            &[query],
            &params,
            &BatchOptions { threads: 1, trace: Some(root), ..BatchOptions::default() },
        );
        batch.outcomes.pop().flatten().ok_or_else(|| {
            CliError::Message(
                "internal: traced search skipped its query although no \
                 cancellation was configured"
                    .into(),
            )
        })?
    } else {
        index.search(query, &params)
    };
    let elapsed = start.elapsed();
    drop(phase);
    if let (Some(path), Some(root)) = (&trace_out, root) {
        tind_obs::trace::record_span(root, 0, "cli.search", trace_start, elapsed.as_nanos() as u64);
        write_trace_file(path, root)?;
    }

    let mut out = String::new();
    let direction = if reverse { "⊇" } else { "⊆" };
    let _ = writeln!(
        out,
        "{} results for '{}' {direction} · (ε={}, δ={}), query took {} (index build {})",
        outcome.results.len(),
        dataset.attribute(query).name(),
        params.eps,
        params.delta,
        tind_obs::fmt_duration_ns(elapsed.as_nanos() as u64),
        tind_obs::fmt_duration_ns(build.as_nanos() as u64),
    );
    for &id in outcome.results.iter().take(limit) {
        let _ = writeln!(out, "  {}", dataset.attribute(id).name());
    }
    if outcome.results.len() > limit {
        let _ = writeln!(out, "  … and {} more (raise --limit)", outcome.results.len() - limit);
    }
    let s = &outcome.stats;
    let _ = writeln!(
        out,
        "pruning: {}",
        tind_obs::fmt_pipeline(&[
            ("initial", s.initial as u64),
            ("required", s.after_required as u64),
            ("slices", s.after_slices as u64),
            ("exact", s.after_exact as u64),
            ("valid", s.validated as u64),
        ])
    );
    let _ = writeln!(
        out,
        "{}",
        tind_obs::fmt_validation_summary(
            s.validations_run as u64,
            s.early_valid_exits as u64,
            s.early_invalid_exits as u64,
            s.validate_nanos,
        )
    );
    Ok(out)
}

fn cmd_partial_search(args: &Args) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    let base = parse_params(args, &dataset)?;
    let sigma = args.opt_or("sigma", 0.8f64)?;
    if !(sigma > 0.0 && sigma <= 1.0) {
        return Err(CliError::Message(format!("--sigma must be in (0, 1], got {sigma}")));
    }
    let limit = args.opt_or("limit", 20usize)?;
    let query = resolve_query(args, &dataset)?;
    let params = tind_core::partial::PartialParams::new(base, sigma);
    let index = TindIndex::build(dataset.clone(), IndexConfig::default());
    let start = std::time::Instant::now();
    let outcome = tind_core::partial::partial_search(&index, query, &params);
    let elapsed = start.elapsed();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} σ-partial results for '{}' (σ={}, ε={}, δ={}), query took {}",
        outcome.results.len(),
        dataset.attribute(query).name(),
        sigma,
        params.base.eps,
        params.base.delta,
        tind_eval::report::fmt_duration(elapsed),
    );
    for &id in outcome.results.iter().take(limit) {
        let _ = writeln!(out, "  {}", dataset.attribute(id).name());
    }
    if outcome.results.len() > limit {
        let _ = writeln!(out, "  … and {} more (raise --limit)", outcome.results.len() - limit);
    }
    Ok(out)
}

fn cmd_all_pairs(args: &Args) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    let params = parse_params(args, &dataset)?;
    let threads = args.opt_or("threads", 0usize)?;
    let checkpoint_path: Option<PathBuf> = args.opt::<String>("checkpoint")?.map(Into::into);
    let checkpoint_every = args.opt_or("checkpoint-every", 256usize)?;
    let deadline_secs = args.opt::<f64>("deadline")?;
    let memory_limit = args.opt::<usize>("memory-limit")?;

    // --resume picks up where an interrupted run's checkpoint left off; a
    // missing checkpoint file just means "first attempt", so restart
    // loops can pass --resume unconditionally.
    let resume_from = if args.switch("resume") {
        let path = checkpoint_path
            .as_ref()
            .ok_or_else(|| CliError::Message("--resume requires --checkpoint FILE".into()))?;
        if path.exists() {
            let cp = Checkpoint::read_file(path)?;
            cp.verify_matches(&dataset, &params)?;
            Some(cp)
        } else {
            None
        }
    } else {
        None
    };
    let resumed = resume_from.as_ref().map_or(0, |cp| cp.completed.len());

    let config = IndexConfig {
        slices: SliceConfig::search_default(params.eps, params.weights.clone(), params.delta),
        ..IndexConfig::default()
    };
    let build_opts = build_options(args)?;
    let build_phase = tind_obs::span("phase.index_build");
    let (index, build) =
        tind_eval::stats::time_it(|| TindIndex::build_with(dataset.clone(), config, &build_opts));
    record_index_gauges(&index);
    drop(build_phase);

    let reporter = tind_obs::Reporter::new(
        args.switch("quiet"),
        args.opt_or("progress", (dataset.len() / 10).max(1))?,
    );
    let trace_out: Option<PathBuf> = args.opt::<String>("trace")?.map(Into::into);
    let root = trace_out.as_ref().map(|_| tind_obs::trace::alloc_context());
    let options = AllPairsOptions {
        threads,
        checkpoint: checkpoint_path
            .clone()
            .map(|p| CheckpointPolicy::new(p).every(checkpoint_every)),
        resume_from,
        cancel: Some(CancelToken::install_ctrl_c()),
        deadline: deadline_secs.map(Duration::from_secs_f64),
        memory_budget: memory_limit.map(MemoryBudget::new),
        progress_every: reporter.every(),
        trace: root,
        fault_hook: None,
    };
    let discover_phase = tind_obs::span("phase.discover");
    let trace_start = tind_obs::trace::now_ns();
    let outcome = discover_all_pairs(&index, &params, &options)?;
    drop(discover_phase);
    if let (Some(path), Some(root)) = (&trace_out, root) {
        tind_obs::trace::record_span(
            root,
            0,
            "cli.all_pairs",
            trace_start,
            tind_obs::trace::now_ns().saturating_sub(trace_start),
        );
        write_trace_file(path, root)?;
    }

    if outcome.cancelled {
        let checkpoint_note = match (&checkpoint_path, outcome.checkpoint_written) {
            (Some(p), true) => format!("; progress checkpointed to {}", p.display()),
            _ => "; no checkpoint configured — progress lost (pass --checkpoint FILE)".into(),
        };
        return Err(CliError::Interrupted {
            summary: format!(
                "all-pairs stopped after {}/{} queries ({} pairs so far){checkpoint_note}",
                outcome.completed_queries,
                outcome.total_queries,
                outcome.pairs.len(),
            ),
        });
    }

    let mut out = format!(
        "{} tINDs among {} attributes (ε={}, δ={})\nindex build {}, discovery {} ({}), {} worker thread(s)\n",
        outcome.pairs.len(),
        dataset.len(),
        params.eps,
        params.delta,
        tind_obs::fmt_duration_ns(build.as_nanos() as u64),
        tind_obs::fmt_duration_ns(outcome.elapsed.as_nanos() as u64),
        tind_obs::fmt_rate(
            outcome.completed_queries as u64,
            outcome.elapsed.as_secs_f64(),
            "queries"
        ),
        outcome.threads_used,
    );
    let _ = writeln!(
        out,
        "{}",
        tind_obs::fmt_validation_summary(
            outcome.validations_run as u64,
            outcome.early_valid_exits as u64,
            outcome.early_invalid_exits as u64,
            outcome.validate_nanos,
        )
    );
    if resumed > 0 {
        let _ = writeln!(out, "resumed past {resumed} previously completed queries");
    }
    if !outcome.poisoned_queries.is_empty() {
        let _ = writeln!(
            out,
            "WARNING: {} query attribute(s) panicked and were quarantined: {:?}",
            outcome.poisoned_queries.len(),
            outcome.poisoned_queries,
        );
    }
    Ok(out)
}

/// Verifies the integrity (magic, format version, CRC-32 trailer, and
/// where possible full structure) of a persisted dataset, index, or
/// checkpoint file.
fn cmd_verify(args: &Args) -> Result<String, CliError> {
    let _phase = tind_obs::span("phase.verify");
    let path: PathBuf = match args.positional().first() {
        Some(p) => p.clone().into(),
        None => args.required::<String>("file")?.into(),
    };
    if path.is_dir() {
        return verify_store_dir(&path);
    }
    let raw = std::fs::read(&path)?;
    let size = raw.len();
    let bytes = bytes::Bytes::from(raw);
    if bytes.len() < 8 {
        return Err(CliError::Data(BinIoError::Corrupt(
            "file too short to hold a magic header".into(),
        )));
    }
    if bytes.starts_with(tind_obs::REPORT_PREFIX.as_bytes()) {
        return verify_run_report(args, &path, &bytes, size);
    }
    if bytes.starts_with(tind_obs::TRACE_PREFIX.as_bytes()) {
        return verify_trace_file(&path, &bytes, size);
    }
    let kind = &bytes[..7];
    let detail = if kind == &tind_model::binio::MAGIC[..7] {
        let dataset = tind_model::binio::decode_dataset(bytes)?;
        format!(
            "dataset: {} attributes over a {}-day timeline, {} dictionary entries",
            dataset.len(),
            dataset.timeline().len(),
            dataset.dictionary().len(),
        )
    } else if kind == &tind_core::persist::INDEX_MAGIC[..7] {
        let fingerprint = tind_core::persist::verify_index_container(&bytes)?;
        match args.opt::<String>("data")? {
            Some(data_path) => {
                let dataset = Arc::new(read_dataset_file(std::path::Path::new(&data_path))?);
                let index = tind_core::persist::decode_index(bytes, dataset)?;
                format!(
                    "index: bound to dataset {data_path} (fingerprint {fingerprint:#018x}), {} time slices",
                    index.time_slices().len(),
                )
            }
            None => format!(
                "index: container intact, dataset fingerprint {fingerprint:#018x} \
                 (pass --data FILE to verify the full structure)"
            ),
        }
    } else if kind == &tind_core::checkpoint::CHECKPOINT_MAGIC[..7] {
        let cp = Checkpoint::decode(bytes)?;
        format!(
            "checkpoint: {}/{} queries completed, {} pairs, {} poisoned, dataset fingerprint {:#018x}{}",
            cp.completed.len(),
            cp.total_queries,
            cp.pairs.len(),
            cp.poisoned.len(),
            cp.dataset_fingerprint,
            if cp.is_complete() { " (run complete)" } else { "" },
        )
    } else if kind == &tind_model::quarantine::QUARANTINE_MAGIC[..7] {
        let q = tind_model::QuarantineReport::decode(bytes)?;
        format!(
            "quarantine report: {}/{} pages quarantined ({} sampled), {} of {} revisions dropped, source fingerprint {:#018x}",
            q.pages_quarantined,
            q.pages_seen,
            q.entries.len(),
            q.revisions_dropped,
            q.revisions_dropped + q.revisions_kept,
            q.source_fingerprint,
        )
    } else if kind == &tind_core::store::MANIFEST_MAGIC[..7] {
        // A bare manifest: streaming CRC check pins the failing byte
        // offset; shard digests need the whole directory.
        let payload = tind_model::checksum::stream_verify_file(&path)?;
        format!(
            "store manifest: container intact ({payload} payload bytes); \
             run `tind store verify` on its directory to check shard digests"
        )
    } else if kind == &tind_core::store::SHARD_MAGIC[..7] {
        // v1 and v2 share the 7-byte prefix; the version byte picks the
        // layout. Either way the streaming CRC pins the failing byte
        // offset on mismatch (surfaced through BinIoError::Checksum).
        let layout = if bytes.get(7) == Some(&tind_core::store::SHARD_MAGIC_V2[7]) {
            "arena (zero-copy mmap)"
        } else {
            "legacy"
        };
        let payload = tind_model::checksum::stream_verify_file(&path)?;
        format!(
            "store shard: {layout} layout, container intact ({payload} payload bytes); \
             run `tind store verify` on its directory to check it against the manifest"
        )
    } else if kind == &tind_wiki::ingest::INGEST_CHECKPOINT_MAGIC[..7] {
        let cp = tind_wiki::IngestCheckpoint::decode(bytes)?;
        // The embedded dataset blob is opaque to checkpoint decoding;
        // verify digs all the way in.
        let partial = tind_model::binio::decode_dataset(cp.dataset_bytes.clone())?;
        format!(
            "ingest checkpoint: resume offset {}, {} pages seen ({} quarantined), \
             partial dataset {} attributes, source fingerprint {:#018x}",
            cp.resume_offset,
            cp.quarantine.pages_seen,
            cp.quarantine.pages_quarantined,
            partial.len(),
            cp.source_fingerprint,
        )
    } else if kind == &tind_wiki::delta::UPDATE_CHECKPOINT_MAGIC[..7] {
        let cp = tind_wiki::UpdateCheckpoint::decode(bytes)?;
        // Like the ingest arm: the embedded dataset blob is opaque to
        // checkpoint decoding, so verify digs all the way in.
        let partial = tind_model::binio::decode_dataset(cp.dataset_bytes.clone())?;
        format!(
            "update checkpoint: resume offset {}, {} delta pages seen ({} quarantined), \
             {} attribute(s) touched, partial dataset {} attributes, \
             base fingerprint {:#018x}, source fingerprint {:#018x}",
            cp.resume_offset,
            cp.quarantine.pages_seen,
            cp.quarantine.pages_quarantined,
            cp.touched.len(),
            partial.len(),
            cp.base_fingerprint,
            cp.source_fingerprint,
        )
    } else {
        return Err(CliError::Data(BinIoError::Corrupt(
            "unrecognized file type (not a tind dataset, index, checkpoint, \
             ingest checkpoint, update checkpoint, quarantine report, or store artifact)"
                .into(),
        )));
    };
    Ok(format!("OK {} ({size} bytes)\n{detail}\n", path.display()))
}

/// `tind verify DIR` / `tind store verify` on a sharded store: checks
/// the manifest CRC, every shard's size, digest and header bindings,
/// and reports each fault with the shard id and expected/actual CRC.
fn verify_store_dir(dir: &std::path::Path) -> Result<String, CliError> {
    let report = verify_store(dir).map_err(store_error)?;
    if report.faults.is_empty() {
        return Ok(format!(
            "OK {} (store)\nstore: generation {}, {} shard(s) verified, \
             dataset fingerprint {:#018x}\n",
            dir.display(),
            report.generation,
            report.shards_total,
            report.fingerprint,
        ));
    }
    let mut msg = format!(
        "store at {}: {} of {} shard(s) faulty (generation {})\n",
        dir.display(),
        report.faults.len(),
        report.shards_total,
        report.generation,
    );
    for fault in &report.faults {
        let _ = writeln!(msg, "  {fault}");
    }
    msg.push_str("run `tind store repair --store DIR --data FILE` to rebuild the lost shards");
    Err(CliError::Message(msg))
}

/// Looks up a gauge value in a report payload's `metrics.gauges` section.
fn report_gauge(payload: &tind_obs::Value, name: &str) -> Option<f64> {
    payload
        .get("metrics")?
        .get("gauges")?
        .as_arr()?
        .iter()
        .find(|g| g.get("name").and_then(tind_obs::Value::as_str) == Some(name))?
        .get("value")?
        .as_f64()
}

/// `tind verify` on a `TINDRR` run report: checks the CRC envelope, then
/// optionally validates the payload against a JSON schema (`--schema`)
/// and cross-checks the report's running `ingest.quarantined_total`
/// gauge against a quarantine artifact (`--quarantine`).
fn verify_run_report(
    args: &Args,
    path: &std::path::Path,
    bytes: &[u8],
    size: usize,
) -> Result<String, CliError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| CliError::Data(BinIoError::Corrupt(format!("run report is not UTF-8: {e}"))))?;
    let payload = tind_obs::verify_report(text)
        .map_err(|e| CliError::Data(BinIoError::Corrupt(format!("run report: {e}"))))?;
    let command = payload.get("command").and_then(tind_obs::Value::as_str).unwrap_or("?");
    let wall_ns = payload.get("wall_ns").and_then(tind_obs::Value::as_f64).unwrap_or(0.0) as u64;
    let coverage =
        payload.get("phase_coverage").and_then(tind_obs::Value::as_f64).unwrap_or(0.0);
    let phases = payload.get("phases").and_then(tind_obs::Value::as_arr).map_or(0, <[_]>::len);

    let mut detail = format!(
        "run report: `{command}` in {}, {phases} phase(s) covering {:.0}% of wall time",
        tind_obs::fmt_duration_ns(wall_ns),
        coverage * 100.0,
    );

    if let Some(schema_path) = args.opt::<String>("schema")? {
        let schema_text = std::fs::read_to_string(&schema_path)?;
        let schema = tind_obs::json::parse(&schema_text).map_err(|e| {
            CliError::Data(BinIoError::Corrupt(format!("schema {schema_path}: {e}")))
        })?;
        let errors = tind_obs::validate_schema(&payload, &schema);
        if !errors.is_empty() {
            return Err(CliError::Message(format!(
                "report does not match {schema_path} ({} error(s)):\n  {}",
                errors.len(),
                errors.join("\n  "),
            )));
        }
        let _ = write!(detail, "\nschema: conforms to {schema_path}");
    }

    if let Some(q_path) = args.opt::<String>("quarantine")? {
        let q_bytes = bytes::Bytes::from(std::fs::read(&q_path)?);
        let q = tind_model::QuarantineReport::decode(q_bytes)?;
        let gauge = report_gauge(&payload, "ingest.quarantined_total").ok_or_else(|| {
            CliError::Message(
                "report carries no ingest.quarantined_total gauge — was it produced by \
                 `tind ingest --report`?"
                    .into(),
            )
        })?;
        if gauge != q.pages_quarantined as f64 {
            return Err(CliError::Message(format!(
                "quarantine mismatch: report gauge ingest.quarantined_total = {gauge}, \
                 artifact {q_path} records {} quarantined page(s)",
                q.pages_quarantined,
            )));
        }
        if q.entries.len() as u64 > q.pages_quarantined {
            return Err(CliError::Message(format!(
                "quarantine artifact {q_path} is inconsistent: {} sampled entries exceed \
                 its own total of {} quarantined page(s)",
                q.entries.len(),
                q.pages_quarantined,
            )));
        }
        let _ = write!(
            detail,
            "\nquarantine: gauge matches {q_path} ({} quarantined, {} sampled)",
            q.pages_quarantined,
            q.entries.len(),
        );
    }

    Ok(format!("OK {} ({size} bytes)\n{detail}\n", path.display()))
}

/// `tind verify` on a `TINDTF` trace file (or one line of a multi-trace
/// export): checks the CRC envelope of every line and summarizes the
/// first trace. Corruption is refused with the failing byte offset.
fn verify_trace_file(
    path: &std::path::Path,
    bytes: &[u8],
    size: usize,
) -> Result<String, CliError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| CliError::Data(BinIoError::Corrupt(format!("trace file is not UTF-8: {e}"))))?;
    let mut first: Option<tind_obs::ParsedTrace> = None;
    let mut lines = 0usize;
    let mut offset = 0usize;
    for line in text.lines() {
        if !line.trim().is_empty() {
            let payload = tind_obs::verify_trace(line).map_err(|e| {
                CliError::Data(BinIoError::Corrupt(format!(
                    "trace (line starting at byte offset {offset}): {e}"
                )))
            })?;
            let parsed = tind_obs::ParsedTrace::from_payload(&payload)
                .map_err(|e| CliError::Data(BinIoError::Corrupt(format!("trace: {e}"))))?;
            lines += 1;
            first.get_or_insert(parsed);
        }
        offset += line.len() + 1;
    }
    let Some(trace) = first else {
        return Err(CliError::Data(BinIoError::Corrupt("trace file holds no traces".into())));
    };
    let spans = trace.events.iter().filter(|e| e.kind == "span").count();
    let links = trace.events.len() - spans;
    let mut detail = format!(
        "trace: {} — {spans} span(s), {links} link(s), {} dropped",
        trace.trace_id, trace.dropped,
    );
    if let Some(cov) = trace.coverage() {
        let _ = write!(detail, ", coverage {:.0}%", cov * 100.0);
    }
    if lines > 1 {
        let _ = write!(detail, " (+{} more trace(s) verified)", lines - 1);
    }
    Ok(format!("OK {} ({size} bytes)\n{detail}\n", path.display()))
}

/// Collect `root`'s trace from the rings and write it as a one-line
/// checksummed `TINDTF` file.
fn write_trace_file(path: &std::path::Path, root: tind_obs::TraceContext) -> Result<(), CliError> {
    let snapshot = tind_obs::collect_trace(root, &[]);
    std::fs::write(path, snapshot.to_json())?;
    Ok(())
}

/// Reads a `TINDTF` file (first trace of a multi-trace export).
fn read_trace_file(path: &std::path::Path) -> Result<tind_obs::ParsedTrace, CliError> {
    let text = std::fs::read_to_string(path)?;
    let line = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| CliError::Data(BinIoError::Corrupt("trace file holds no traces".into())))?;
    let payload = tind_obs::verify_trace(line)
        .map_err(|e| CliError::Data(BinIoError::Corrupt(format!("trace: {e}"))))?;
    tind_obs::ParsedTrace::from_payload(&payload)
        .map_err(|e| CliError::Data(BinIoError::Corrupt(format!("trace: {e}"))))
}

/// `tind trace FILE`: renders a `TINDTF` trace as a per-stage waterfall;
/// `--chrome OUT` additionally exports Chrome `trace_event` JSON, and
/// `--diff FILE2` compares per-stage totals between two traces.
fn cmd_trace(args: &Args) -> Result<String, CliError> {
    let _phase = tind_obs::span("phase.trace");
    let path: PathBuf = match args.positional().first() {
        Some(p) => p.clone().into(),
        None => args.required::<String>("file")?.into(),
    };
    let trace = read_trace_file(&path)?;
    let mut out = render_waterfall(&trace);

    if let Some(chrome_path) = args.opt::<String>("chrome")? {
        std::fs::write(&chrome_path, trace.to_chrome_json())?;
        let _ = writeln!(out, "chrome trace_event JSON written to {chrome_path}");
    }
    if let Some(other_path) = args.opt::<String>("diff")? {
        let other = read_trace_file(std::path::Path::new(&other_path))?;
        out.push('\n');
        out.push_str(&render_diff(&trace, &other, &path, std::path::Path::new(&other_path)));
    }
    Ok(out)
}

/// Per-stage waterfall of one trace: each span on its own line, indented
/// by parent depth, with a bar positioned against the root interval.
fn render_waterfall(trace: &tind_obs::ParsedTrace) -> String {
    use std::collections::HashMap;
    const BAR: usize = 40;

    let spans: Vec<&tind_obs::ParsedEvent> =
        trace.events.iter().filter(|e| e.kind == "span").collect();
    let links = trace.events.len() - spans.len();
    let mut out = format!(
        "trace {} — {} span(s), {links} link(s)",
        trace.trace_id,
        spans.len(),
    );
    if let Some(cov) = trace.coverage() {
        let _ = write!(out, ", coverage {:.0}% of root", cov * 100.0);
    }
    out.push('\n');
    if trace.dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: {} event(s) dropped to ring overflow — this trace may be incomplete",
            trace.dropped,
        );
    }
    let missing = trace.missing_parents();
    if missing > 0 {
        let _ = writeln!(
            out,
            "WARNING: {missing} event(s) reference spans recorded nowhere — \
             parent edges or link targets are missing",
        );
    }
    if spans.is_empty() {
        out.push_str("(no spans recorded — was the producer built with obs-off?)\n");
        return out;
    }

    // Scale bars to the full recorded interval (root included).
    let lo = spans.iter().map(|e| e.start_ns).min().unwrap_or(0);
    let hi = spans.iter().map(|e| e.start_ns + e.dur_ns).max().unwrap_or(lo + 1);
    let total = (hi - lo).max(1);

    // Depth via parent edges, memoized; unknown parents sit at depth 0.
    let by_id: HashMap<&str, &tind_obs::ParsedEvent> =
        spans.iter().map(|e| (e.span.as_str(), *e)).collect();
    fn depth_of(
        id: &str,
        by_id: &HashMap<&str, &tind_obs::ParsedEvent>,
        memo: &mut HashMap<String, usize>,
        hops: usize,
    ) -> usize {
        if hops > 64 {
            return 0; // cycle guard — corrupt parent edges must not hang
        }
        if let Some(d) = memo.get(id) {
            return *d;
        }
        let d = match by_id.get(id) {
            Some(e) if e.parent != "0x0" && by_id.contains_key(e.parent.as_str()) => {
                1 + depth_of(&e.parent, by_id, memo, hops + 1)
            }
            _ => 0,
        };
        memo.insert(id.to_string(), d);
        d
    }
    let mut memo = HashMap::new();

    let mut rows: Vec<(&tind_obs::ParsedEvent, usize)> = spans
        .iter()
        .map(|e| {
            let d = depth_of(&e.span, &by_id, &mut memo, 0);
            (*e, d)
        })
        .collect();
    rows.sort_by_key(|(e, _)| (e.start_ns, e.span.clone()));

    for (e, depth) in rows {
        let from = ((e.start_ns - lo) as u128 * BAR as u128 / total as u128) as usize;
        let width =
            ((e.dur_ns as u128 * BAR as u128).div_ceil(total as u128) as usize).clamp(1, BAR);
        let from = from.min(BAR - 1);
        let width = width.min(BAR - from);
        let mut bar = String::with_capacity(BAR);
        bar.extend(std::iter::repeat_n(' ', from));
        bar.extend(std::iter::repeat_n('#', width));
        bar.extend(std::iter::repeat_n(' ', BAR - from - width));
        let _ = writeln!(
            out,
            "  [{bar}] {:indent$}{} {} (tid {})",
            "",
            e.name,
            tind_obs::fmt_duration_ns(e.dur_ns),
            e.tid,
            indent = depth * 2,
        );
    }
    out
}

/// Aggregate per-stage comparison of two traces: for every span name in
/// either, total duration and count side by side with the delta.
fn render_diff(
    a: &tind_obs::ParsedTrace,
    b: &tind_obs::ParsedTrace,
    a_path: &std::path::Path,
    b_path: &std::path::Path,
) -> String {
    use std::collections::BTreeMap;
    fn totals(t: &tind_obs::ParsedTrace) -> BTreeMap<String, (u64, u64)> {
        let mut m: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for e in t.events.iter().filter(|e| e.kind == "span") {
            let entry = m.entry(e.name.clone()).or_insert((0, 0));
            entry.0 += e.dur_ns;
            entry.1 += 1;
        }
        m
    }
    let (ta, tb) = (totals(a), totals(b));
    let mut out = format!("diff {} → {}\n", a_path.display(), b_path.display());
    let names: std::collections::BTreeSet<&String> = ta.keys().chain(tb.keys()).collect();
    for name in names {
        let (da, ca) = ta.get(name).copied().unwrap_or((0, 0));
        let (db, cb) = tb.get(name).copied().unwrap_or((0, 0));
        let delta = db as i128 - da as i128;
        let sign = if delta >= 0 { "+" } else { "-" };
        let _ = writeln!(
            out,
            "  {name}: {} ({ca}×) → {} ({cb}×)  {sign}{}",
            tind_obs::fmt_duration_ns(da),
            tind_obs::fmt_duration_ns(db),
            tind_obs::fmt_duration_ns(delta.unsigned_abs() as u64),
        );
    }
    out
}

fn cmd_top_k(args: &Args) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    let k = args.opt_or("k", 5usize)?;
    let delta = args.opt_or("delta", 7u32)?;
    let weights = match args.opt::<f64>("decay")? {
        Some(a) => tind_model::WeightFn::exponential(a, dataset.timeline()),
        None => tind_model::WeightFn::constant_one(),
    };
    let query = resolve_query(args, &dataset)?;
    let config = IndexConfig {
        slices: SliceConfig::search_default(3.0, weights.clone(), delta),
        ..IndexConfig::default()
    };
    let (index, _) = obtain_index(args, &dataset, config)?;
    let start = std::time::Instant::now();
    let ranked = tind_core::topk::top_k_search(&index, query, k, delta, &weights);
    let elapsed = start.elapsed();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "top-{k} right-hand sides for '{}' by violation weight (δ={delta}), {} elapsed:",
        dataset.attribute(query).name(),
        tind_eval::report::fmt_duration(elapsed),
    );
    for r in &ranked {
        let _ = writeln!(
            out,
            "  {:<40} violation {:.3}",
            dataset.attribute(r.rhs).name(),
            r.violation
        );
    }
    Ok(out)
}

fn cmd_explain(args: &Args) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    let params = parse_params(args, &dataset)?;
    let lhs = {
        let raw = args.required::<String>("lhs")?;
        resolve_named(&raw, &dataset)?
    };
    let rhs = {
        let raw = args.required::<String>("rhs")?;
        resolve_named(&raw, &dataset)?
    };
    let explanation = tind_core::explain::explain(
        dataset.attribute(lhs),
        dataset.attribute(rhs),
        &params,
        dataset.timeline(),
    );
    Ok(format!(
        "{} ⊆ {} (ε={}, δ={}):\n{}",
        dataset.attribute(lhs).name(),
        dataset.attribute(rhs).name(),
        params.eps,
        params.delta,
        explanation.render(&dataset)
    ))
}

fn resolve_named(raw: &str, dataset: &Dataset) -> Result<AttrId, CliError> {
    if let Some((id, _)) = dataset.attribute_by_name(raw) {
        return Ok(id);
    }
    if let Ok(id) = raw.parse::<AttrId>() {
        if (id as usize) < dataset.len() {
            return Ok(id);
        }
    }
    Err(CliError::Message(format!("attribute '{raw}' not found (name or id)")))
}

fn cmd_index(args: &Args) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    let out: PathBuf = args.required::<String>("out")?.into();
    let m = args.opt_or("m", 4096u32)?;
    let eps = args.opt_or("eps", 3.0f64)?;
    let delta = args.opt_or("delta", 7u32)?;
    let reverse = args.opt_or("reverse", false)?;
    let config = if reverse {
        IndexConfig {
            m,
            slices: SliceConfig::reverse_default(eps, tind_model::WeightFn::constant_one(), delta),
            build_reverse: true,
            ..IndexConfig::reverse_default()
        }
    } else {
        IndexConfig {
            m,
            slices: SliceConfig::search_default(eps, tind_model::WeightFn::constant_one(), delta),
            ..IndexConfig::default()
        }
    };
    let options =
        BuildOptions { progress_every: 32, ..build_options(args)? };
    let build_phase = tind_obs::span("phase.index_build");
    let (index, build) =
        tind_eval::stats::time_it(|| TindIndex::build_with(dataset.clone(), config, &options));
    record_index_gauges(&index);
    drop(build_phase);
    {
        let _phase = tind_obs::span("phase.write_output");
        tind_core::persist::write_index_file(&index, &out)?;
    }
    Ok(format!(
        "indexed {} attributes in {} -> {}\n{}\n",
        dataset.len(),
        tind_eval::report::fmt_duration(build),
        out.display(),
        index.diagnostics(),
    ))
}

/// `tind store <pack|verify|repair>` — manage a crash-safe sharded
/// index store directory ([`tind_core::store`]).
fn cmd_store(args: &Args) -> Result<String, CliError> {
    let verb = args.positional().first().map(String::as_str).unwrap_or("");
    match verb {
        "pack" => cmd_store_pack(args),
        "verify" => verify_store_dir(&store_dir(args)?),
        "repair" => cmd_store_repair(args),
        "migrate" => cmd_store_migrate(args),
        "" => Err(CliError::Message(
            "store requires a verb: tind store <pack|verify|repair|migrate>".into(),
        )),
        other => Err(CliError::Message(format!(
            "unknown store verb '{other}' (expected pack, verify, repair, or migrate)"
        ))),
    }
}

/// Parses `--format legacy|arena` (default: the workspace default layout).
fn shard_format(args: &Args) -> Result<ShardFormat, CliError> {
    match args.get("format") {
        None => Ok(ShardFormat::default()),
        Some("legacy") => Ok(ShardFormat::Legacy),
        Some("arena") => Ok(ShardFormat::Arena),
        Some(other) => Err(ArgError::BadValue {
            option: "format".into(),
            value: other.into(),
            expected: "legacy|arena",
        }
        .into()),
    }
}

/// Parses `--store-backing auto|heap|mmap|windowed` (default auto).
fn store_backing(args: &Args) -> Result<StoreBacking, CliError> {
    match args.get("store-backing") {
        None => Ok(StoreBacking::Auto),
        Some("auto") => Ok(StoreBacking::Auto),
        Some("heap") => Ok(StoreBacking::Heap),
        Some("mmap") => Ok(StoreBacking::Mmap),
        Some("windowed") => Ok(StoreBacking::Windowed),
        Some(other) => Err(ArgError::BadValue {
            option: "store-backing".into(),
            value: other.into(),
            expected: "auto|heap|mmap|windowed",
        }
        .into()),
    }
}

/// The store directory: `--store DIR`, or the positional after the verb.
fn store_dir(args: &Args) -> Result<PathBuf, CliError> {
    if let Some(dir) = args.opt::<String>("store")? {
        return Ok(dir.into());
    }
    match args.positional().get(1) {
        Some(dir) => Ok(dir.clone().into()),
        None => Err(CliError::Message(
            "store directory required (--store DIR or a positional argument)".into(),
        )),
    }
}

/// `tind store pack`: build (or load via `--index`) an index and commit
/// it into `--out DIR` as an atomically-written sharded store.
fn cmd_store_pack(args: &Args) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    let out: PathBuf = match args.opt::<String>("out")? {
        Some(dir) => dir.into(),
        None => store_dir(args)?,
    };
    let m = args.opt_or("m", 4096u32)?;
    let eps = args.opt_or("eps", 3.0f64)?;
    let delta = args.opt_or("delta", 7u32)?;
    let reverse = args.opt_or("reverse", false)?;
    let config = if reverse {
        IndexConfig {
            m,
            slices: SliceConfig::reverse_default(eps, tind_model::WeightFn::constant_one(), delta),
            build_reverse: true,
            ..IndexConfig::reverse_default()
        }
    } else {
        IndexConfig {
            m,
            slices: SliceConfig::search_default(eps, tind_model::WeightFn::constant_one(), delta),
            ..IndexConfig::default()
        }
    };
    // `--store` names the pack *target* here, so bypass `obtain_index`
    // (which treats it as a load source): `--index FILE` loads a
    // monolithic index to re-shard, otherwise build fresh.
    let (index, build) = {
        let _phase = tind_obs::span("phase.index_build");
        match args.opt::<String>("index")? {
            Some(path) => {
                let path: PathBuf = path.into();
                let (res, d) = tind_eval::stats::time_it(|| {
                    tind_core::persist::read_index_file(&path, dataset.clone())
                });
                (res.map_err(CliError::Data)?, d)
            }
            None => {
                let options = build_options(args)?;
                tind_eval::stats::time_it(|| TindIndex::build_with(dataset.clone(), config, &options))
            }
        }
    };
    record_index_gauges(&index);
    let _phase = tind_obs::span("phase.store_pack");
    let shards = args.opt_or("shards", 0usize)?;
    let format = shard_format(args)?;
    let options = PackOptions { shards, format, ..PackOptions::default() };
    let (res, took) = tind_eval::stats::time_it(|| pack_store(&index, &out, &options));
    let report = res.map_err(store_error)?;
    Ok(format!(
        "packed generation {} ({format} layout) into {} — {} shard(s), {} bytes, in {} (index build {}){}\n",
        report.generation,
        out.display(),
        report.shards,
        report.bytes_written,
        tind_eval::report::fmt_duration(took),
        tind_eval::report::fmt_duration(build),
        if report.swept_temps + report.swept_stale > 0 {
            format!(
                "; swept {} orphan temp(s) and {} stale file(s)",
                report.swept_temps, report.swept_stale
            )
        } else {
            String::new()
        },
    ))
}

/// `tind store repair`: rebuild quarantined shards from the dataset,
/// byte-identical to the manifest's digests; the generation is kept.
fn cmd_store_repair(args: &Args) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    let dir = store_dir(args)?;
    let _phase = tind_obs::span("phase.store_repair");
    let (res, took) =
        tind_eval::stats::time_it(|| repair_store(&dir, &dataset, &RepairOptions::default()));
    let report = res.map_err(store_error)?;
    if report.rebuilt.is_empty() {
        return Ok(format!(
            "store at {} already intact — generation {}, {} shard(s), nothing to repair\n",
            dir.display(),
            report.generation,
            report.intact,
        ));
    }
    Ok(format!(
        "repaired store at {} — generation {}, rebuilt shard(s) {:?}, {} intact, in {}\n",
        dir.display(),
        report.generation,
        report.rebuilt,
        report.intact,
        tind_eval::report::fmt_duration(took),
    ))
}

/// `tind store migrate`: rewrite an intact store's shards in another
/// on-disk layout (arena by default) as a new generation, through the
/// same atomic manifest-rename commit point as `pack`.
fn cmd_store_migrate(args: &Args) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    let dir = store_dir(args)?;
    // Unlike pack, migrate exists to move *to* the zero-copy layout, so
    // an absent --format means arena rather than the workspace default.
    let format = match args.get("format") {
        None => ShardFormat::Arena,
        Some(_) => shard_format(args)?,
    };
    let shards = args.opt_or("shards", 0usize)?;
    let _phase = tind_obs::span("phase.store_migrate");
    let options = PackOptions { shards, format, ..PackOptions::default() };
    let (res, took) =
        tind_eval::stats::time_it(|| migrate_store(&dir, dataset, format, &options));
    let report = res.map_err(store_error)?;
    Ok(format!(
        "migrated store at {} to the {format} layout — generation {}, {} shard(s), {} bytes, in {}\n",
        dir.display(),
        report.generation,
        report.shards,
        report.bytes_written,
        tind_eval::report::fmt_duration(took),
    ))
}

/// Interactive exploration loop; reads commands from `input`, writes
/// responses to the returned transcript. Used by `tind explore` with
/// stdin and by the tests with canned input.
pub fn explore_session(
    dataset: Arc<Dataset>,
    index: &TindIndex,
    input: impl std::io::BufRead,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exploring {} attributes — commands: q <attr> [eps] [delta] | rq <attr> [eps] [delta] | top <attr> [k] | stats | quit",
        dataset.len()
    );
    for line in input.lines() {
        let Ok(line) = line else { break };
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            [] => continue,
            ["quit" | "exit" | "q!"] => break,
            ["stats"] => {
                let _ = writeln!(out, "{}", tind_model::stats::DatasetStats::compute(&dataset));
            }
            ["q" | "rq", rest @ ..] if !rest.is_empty() => {
                let name = rest[0];
                let eps: f64 = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(3.0);
                let delta: u32 = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);
                let Some((id, _)) = dataset.attribute_by_name(name) else {
                    let _ = writeln!(out, "unknown attribute '{name}'");
                    continue;
                };
                let params =
                    TindParams::weighted(eps, delta, tind_model::WeightFn::constant_one());
                let reverse = tokens[0] == "rq";
                let start = std::time::Instant::now();
                let outcome = if reverse {
                    index.reverse_search(id, &params)
                } else {
                    index.search(id, &params)
                };
                let _ = writeln!(
                    out,
                    "{} result(s) in {} (ε={eps}, δ={delta}):",
                    outcome.results.len(),
                    tind_eval::report::fmt_duration(start.elapsed())
                );
                for rid in outcome.results.iter().take(15) {
                    let _ = writeln!(out, "  {}", dataset.attribute(*rid).name());
                }
            }
            ["top", rest @ ..] if !rest.is_empty() => {
                let name = rest[0];
                let k: usize = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
                let Some((id, _)) = dataset.attribute_by_name(name) else {
                    let _ = writeln!(out, "unknown attribute '{name}'");
                    continue;
                };
                let ranked = tind_core::topk::top_k_search(
                    index,
                    id,
                    k,
                    7,
                    &tind_model::WeightFn::constant_one(),
                );
                for r in ranked {
                    let _ = writeln!(
                        out,
                        "  {:<40} violation {:.2}",
                        dataset.attribute(r.rhs).name(),
                        r.violation
                    );
                }
            }
            _ => {
                let _ = writeln!(out, "unrecognized command: {line}");
            }
        }
    }
    out
}

fn cmd_explore(args: &Args) -> Result<String, CliError> {
    let dataset = load_dataset(args)?;
    let (index, build) = obtain_index(&args.clone(), &dataset, IndexConfig::default())?;
    eprintln!("index ready in {}", tind_eval::report::fmt_duration(build));
    let stdin = std::io::stdin();
    Ok(explore_session(dataset, &index, stdin.lock()))
}

fn cmd_pipeline(args: &Args) -> Result<String, CliError> {
    // Real-input mode: parse a MediaWiki XML export.
    if let Some(dump_path) = args.opt::<String>("dump")? {
        let timeline = args.opt_or("timeline", 6148u32)?;
        let revisions = tind_wiki::dump::read_dump_file(
            std::path::Path::new(&dump_path),
            &tind_wiki::dump::DumpConfig::default(),
        )
        .map_err(|e| CliError::Message(format!("dump error: {e}")))?;
        let n_revs = revisions.len();
        let (dataset, report) = tind_wiki::extract_dataset(
            revisions,
            &tind_wiki::PipelineConfig::new(timeline).with_vandalism_filter(),
        );
        let stats_block = if dataset.is_empty() {
            "(no attributes survived the filters)".to_string()
        } else {
            DatasetStats::compute(&dataset).to_string()
        };
        let mut out = format!(
            "parsed {n_revs} revisions from {dump_path}\n\
             pipeline: {} pages, {} tables, {} columns tracked; {} vandalized revisions dropped; \
             {} attributes kept of {}\n{stats_block}\n",
            report.pages,
            report.tables_tracked,
            report.columns_tracked,
            report.vandalism_dropped,
            report.attributes_kept,
            report.attributes_before_filters,
        );
        if let Some(out_path) = args.opt::<String>("out")? {
            write_dataset_file(&dataset, std::path::Path::new(&out_path))?;
            out.push_str(&format!("dataset written to {out_path}\n"));
        }
        return Ok(out);
    }
    if !args.switch("demo") {
        return Err(CliError::Message(
            "pass --dump FILE for a MediaWiki XML export, or --demo for a synthetic \
             revision stream (real Wikipedia dumps are not shipped)"
                .to_string(),
        ));
    }
    let attributes = args.opt_or("attributes", 200usize)?;
    let seed = args.opt_or("seed", 42u64)?;
    let cfg = GeneratorConfig::small(attributes, seed);
    let generated = generate(&cfg);
    let revisions = tind_datagen::revisions::render_revisions(&generated.dataset);
    let n_revs = revisions.len();
    let (extracted, report) = tind_wiki::extract_dataset(
        revisions,
        &tind_wiki::PipelineConfig::new(cfg.timeline_days),
    );
    let stats = DatasetStats::compute(&extracted);
    Ok(format!(
        "rendered {n_revs} page revisions from {} attributes\n\
         pipeline: {} pages, {} tables, {} columns tracked; {} attributes kept of {}\n{stats}\n",
        generated.dataset.len(),
        report.pages,
        report.tables_tracked,
        report.columns_tracked,
        report.attributes_kept,
        report.attributes_before_filters,
    ))
}

/// Resilient dump ingestion: `tind ingest` is `tind pipeline --dump` with
/// the full failure model — streaming bounded-memory parsing, per-page
/// quarantine with an error budget, page-granular checkpoint/resume, and
/// graceful Ctrl-C/deadline handling (exit 130, like all-pairs).
fn cmd_ingest(args: &Args) -> Result<String, CliError> {
    use tind_wiki::ingest::{IngestCheckpointPolicy, IngestProgress, StopSignal};
    use tind_wiki::{ingest_stream, IngestConfig, IngestError, IngestOptions, IngestStatus};

    let dump_path: PathBuf = args.required::<String>("dump")?.into();
    let out: PathBuf = args.required::<String>("out")?.into();
    let timeline = args.opt_or("timeline", 6148u32)?;
    let mut config = IngestConfig::new(timeline);
    config.pipeline.drop_vandalism = true; // match `pipeline --dump`
    if let Some(epoch) = args.opt::<String>("epoch")? {
        let mut parts = epoch.splitn(3, '-');
        let parsed = (
            parts.next().and_then(|v| v.parse::<i64>().ok()),
            parts.next().and_then(|v| v.parse::<u32>().ok()),
            parts.next().and_then(|v| v.parse::<u32>().ok()),
        );
        match parsed {
            (Some(y), Some(m), Some(d)) if (1..=12).contains(&m) && (1..=31).contains(&d) => {
                config.dump.epoch = (y, m, d);
            }
            _ => {
                return Err(CliError::Message(format!(
                    "--epoch must be YYYY-MM-DD, got '{epoch}'"
                )))
            }
        }
    }
    config.max_page_bytes = args.opt_or("max-page-bytes", config.max_page_bytes)?;
    config.max_error_rate = args.opt_or("max-error-rate", config.max_error_rate)?;

    let checkpoint_path: Option<PathBuf> = args.opt::<String>("checkpoint")?.map(Into::into);
    let checkpoint_every = args.opt_or("checkpoint-every", 512u64)?;
    let resume = args.switch("resume");
    if resume && checkpoint_path.is_none() {
        return Err(CliError::Message("--resume requires --checkpoint FILE".into()));
    }
    // A missing checkpoint file just means "first attempt", so restart
    // loops can pass --resume unconditionally (same contract as all-pairs).
    let resume = resume && checkpoint_path.as_ref().is_some_and(|p| p.exists());

    let fingerprint = tind_wiki::fingerprint_source(&dump_path)?;
    let total_bytes = std::fs::metadata(&dump_path)?.len();
    let src = std::io::BufReader::new(std::fs::File::open(&dump_path)?);

    let deadline = args.opt::<f64>("deadline")?.map(Duration::from_secs_f64);
    let started = std::time::Instant::now();
    // One token carries both stop causes; its latched reason later tells
    // the user *why* the run stopped (Ctrl-C vs deadline), deterministically.
    let cancel = {
        let token = CancelToken::install_ctrl_c();
        match deadline {
            Some(d) => token.with_deadline(started + d),
            None => token,
        }
    };
    let stop: StopSignal = {
        let cancel = cancel.clone();
        Arc::new(move || cancel.is_cancelled())
    };
    let reporter =
        tind_obs::Reporter::new(args.switch("quiet"), args.opt_or("progress", 1000usize)?);
    let progress: Option<Box<dyn FnMut(&IngestProgress)>> = if reporter.every() == 0 {
        None
    } else {
        Some(Box::new(move |p: &IngestProgress| {
            if !reporter.tick(p.pages_seen as usize) {
                return;
            }
            let secs = started.elapsed().as_secs_f64().max(1e-6);
            let bytes_per_sec = p.offset as f64 / secs;
            let eta = if bytes_per_sec > 0.0 {
                total_bytes.saturating_sub(p.offset) as f64 / bytes_per_sec
            } else {
                f64::NAN
            };
            reporter.progress(format!(
                "ingest: {} pages, {} quarantined, {}, {}",
                p.pages_seen,
                p.pages_quarantined,
                tind_obs::fmt_rate(p.pages_seen, secs, "pages"),
                tind_obs::fmt_eta_secs(eta),
            ));
        }))
    };

    let options = IngestOptions {
        checkpoint: checkpoint_path
            .clone()
            .map(|path| IngestCheckpointPolicy { path, every_pages: checkpoint_every }),
        resume,
        memory_budget: match args.opt::<usize>("memory-limit")? {
            Some(limit) => MemoryBudget::new(limit),
            None => MemoryBudget::unlimited(),
        },
        should_stop: Some(stop),
        progress,
        fault_hook: None,
    };

    let ingest_phase = tind_obs::span("phase.ingest");
    let outcome = ingest_stream(src, fingerprint, &config, options).map_err(|e| match e {
        IngestError::Io(e) => CliError::Io(e),
        IngestError::Checkpoint(e) => CliError::Data(e),
        IngestError::ResumeMismatch(m) => CliError::Message(format!("cannot resume: {m}")),
    })?;
    drop(ingest_phase);

    let q = &outcome.quarantine;
    if let Some(report_path) = args.opt::<String>("quarantine-report")? {
        q.write_file(std::path::Path::new(&report_path))?;
    }
    let checkpoint_note = match &checkpoint_path {
        Some(p) => format!("; progress checkpointed to {}", p.display()),
        None => "; no checkpoint configured — progress lost (pass --checkpoint FILE)".into(),
    };
    match outcome.status {
        IngestStatus::Cancelled => {
            let why = cancel.reason().map_or("stopped", |r| r.label());
            Err(CliError::Interrupted {
                summary: format!(
                    "ingestion stopped ({why}) after {} pages ({} quarantined){checkpoint_note}",
                    q.pages_seen, q.pages_quarantined,
                ),
            })
        }
        IngestStatus::ErrorBudgetExceeded => {
            let mut msg = format!(
                "error budget exceeded: {} of {} pages quarantined ({:.1}% > {:.1}% allowed){checkpoint_note}",
                q.pages_quarantined,
                q.pages_seen,
                q.error_rate() * 100.0,
                config.max_error_rate * 100.0,
            );
            for entry in q.entries.iter().take(5) {
                let _ = write!(msg, "\n  @{} {}: {}", entry.byte_offset, entry.page, entry.error);
            }
            Err(CliError::Message(msg))
        }
        IngestStatus::Completed => {
            let Some(dataset) = outcome.dataset else {
                return Err(CliError::Message(
                    "internal: ingestion reported completion without a dataset".into(),
                ));
            };
            {
                let _phase = tind_obs::span("phase.write_output");
                write_dataset_file(&dataset, &out)?;
            }
            let report = &outcome.pipeline;
            let mut text = format!(
                "ingested {} pages ({} quarantined, {} of {} revisions dropped) from {}\n\
                 pipeline: {} tables, {} columns tracked; {} vandalized revisions dropped; \
                 {} attributes kept of {}\ndataset written to {}\n",
                q.pages_kept,
                q.pages_quarantined,
                q.revisions_dropped,
                q.revisions_dropped + q.revisions_kept,
                dump_path.display(),
                report.tables_tracked,
                report.columns_tracked,
                report.vandalism_dropped,
                report.attributes_kept,
                report.attributes_before_filters,
                out.display(),
            );
            if let Some(offset) = outcome.resumed_from {
                let _ = writeln!(text, "resumed from byte offset {offset}");
            }
            Ok(text)
        }
    }
}

/// `tind update`: incremental (delta) ingestion on top of an existing
/// dataset — and, with `--index`, semi-naive maintenance of its index via
/// `core::delta` instead of a cold rebuild. Shares the ingest failure
/// model: quarantine, error budget, page-granular `TINDUC` checkpoints,
/// Ctrl-C exits 130 with progress preserved.
fn cmd_update(args: &Args) -> Result<String, CliError> {
    use tind_wiki::ingest::{IngestCheckpointPolicy, IngestProgress, StopSignal};
    use tind_wiki::{update_stream, IngestConfig, IngestError, IngestOptions, IngestStatus};

    let dump_path: PathBuf = args.required::<String>("dump")?.into();
    let data_path: PathBuf = args.required::<String>("data")?.into();
    let out: PathBuf = args.required::<String>("out")?.into();
    let index_path: Option<PathBuf> = args.opt::<String>("index")?.map(Into::into);
    let index_out: Option<PathBuf> = args.opt::<String>("index-out")?.map(Into::into);
    if index_out.is_some() && index_path.is_none() {
        return Err(CliError::Message("--index-out requires --index FILE".into()));
    }
    // Updating in place is safe: the write is atomic only at the fs layer,
    // but the source index stays valid until the final rename-free write,
    // and a torn write is caught by the CRC on next load. Still, default
    // to requiring an explicit output so operators opt into overwriting.
    let index_out = match (&index_path, index_out) {
        (Some(p), None) => Some(p.clone()),
        (_, explicit) => explicit,
    };
    let compact = args.switch("compact");

    let base = {
        let _phase = tind_obs::span("phase.load");
        read_dataset_file(&data_path)?
    };
    // The delta rides the base's timeline: it may only add revisions
    // within the indexed window, so there is no --timeline knob here.
    let mut config = IngestConfig::new(base.timeline().len() as u32);
    config.pipeline.drop_vandalism = true; // match `tind ingest`
    if let Some(epoch) = args.opt::<String>("epoch")? {
        let mut parts = epoch.splitn(3, '-');
        let parsed = (
            parts.next().and_then(|v| v.parse::<i64>().ok()),
            parts.next().and_then(|v| v.parse::<u32>().ok()),
            parts.next().and_then(|v| v.parse::<u32>().ok()),
        );
        match parsed {
            (Some(y), Some(m), Some(d)) if (1..=12).contains(&m) && (1..=31).contains(&d) => {
                config.dump.epoch = (y, m, d);
            }
            _ => {
                return Err(CliError::Message(format!(
                    "--epoch must be YYYY-MM-DD, got '{epoch}'"
                )))
            }
        }
    }
    config.max_page_bytes = args.opt_or("max-page-bytes", config.max_page_bytes)?;
    config.max_error_rate = args.opt_or("max-error-rate", config.max_error_rate)?;

    let checkpoint_path: Option<PathBuf> = args.opt::<String>("checkpoint")?.map(Into::into);
    let checkpoint_every = args.opt_or("checkpoint-every", 512u64)?;
    let resume = args.switch("resume");
    if resume && checkpoint_path.is_none() {
        return Err(CliError::Message("--resume requires --checkpoint FILE".into()));
    }
    let resume = resume && checkpoint_path.as_ref().is_some_and(|p| p.exists());

    let fingerprint = tind_wiki::fingerprint_source(&dump_path)?;
    let total_bytes = std::fs::metadata(&dump_path)?.len();
    let src = std::io::BufReader::new(std::fs::File::open(&dump_path)?);

    let deadline = args.opt::<f64>("deadline")?.map(Duration::from_secs_f64);
    let started = std::time::Instant::now();
    let cancel = {
        let token = CancelToken::install_ctrl_c();
        match deadline {
            Some(d) => token.with_deadline(started + d),
            None => token,
        }
    };
    let stop: StopSignal = {
        let cancel = cancel.clone();
        Arc::new(move || cancel.is_cancelled())
    };
    let reporter =
        tind_obs::Reporter::new(args.switch("quiet"), args.opt_or("progress", 1000usize)?);
    let progress: Option<Box<dyn FnMut(&IngestProgress)>> = if reporter.every() == 0 {
        None
    } else {
        Some(Box::new(move |p: &IngestProgress| {
            if !reporter.tick(p.pages_seen as usize) {
                return;
            }
            let secs = started.elapsed().as_secs_f64().max(1e-6);
            let bytes_per_sec = p.offset as f64 / secs;
            let eta = if bytes_per_sec > 0.0 {
                total_bytes.saturating_sub(p.offset) as f64 / bytes_per_sec
            } else {
                f64::NAN
            };
            reporter.progress(format!(
                "update: {} pages, {} quarantined, {}, {}",
                p.pages_seen,
                p.pages_quarantined,
                tind_obs::fmt_rate(p.pages_seen, secs, "pages"),
                tind_obs::fmt_eta_secs(eta),
            ));
        }))
    };

    let options = IngestOptions {
        checkpoint: checkpoint_path
            .clone()
            .map(|path| IngestCheckpointPolicy { path, every_pages: checkpoint_every }),
        resume,
        memory_budget: match args.opt::<usize>("memory-limit")? {
            Some(limit) => MemoryBudget::new(limit),
            None => MemoryBudget::unlimited(),
        },
        should_stop: Some(stop),
        progress,
        fault_hook: None,
    };

    let update_phase = tind_obs::span("phase.update");
    let outcome =
        update_stream(src, fingerprint, base.clone(), &config, options).map_err(|e| match e {
            IngestError::Io(e) => CliError::Io(e),
            IngestError::Checkpoint(e) => CliError::Data(e),
            IngestError::ResumeMismatch(m) => CliError::Message(format!("cannot resume: {m}")),
        })?;
    drop(update_phase);

    let q = &outcome.quarantine;
    if let Some(report_path) = args.opt::<String>("quarantine-report")? {
        q.write_file(std::path::Path::new(&report_path))?;
    }
    let checkpoint_note = match &checkpoint_path {
        Some(p) => format!("; progress checkpointed to {}", p.display()),
        None => "; no checkpoint configured — progress lost (pass --checkpoint FILE)".into(),
    };
    match outcome.status {
        IngestStatus::Cancelled => {
            let why = cancel.reason().map_or("stopped", |r| r.label());
            Err(CliError::Interrupted {
                summary: format!(
                    "update stopped ({why}) after {} pages ({} quarantined){checkpoint_note}",
                    q.pages_seen, q.pages_quarantined,
                ),
            })
        }
        IngestStatus::ErrorBudgetExceeded => {
            let mut msg = format!(
                "error budget exceeded: {} of {} pages quarantined ({:.1}% > {:.1}% allowed){checkpoint_note}",
                q.pages_quarantined,
                q.pages_seen,
                q.error_rate() * 100.0,
                config.max_error_rate * 100.0,
            );
            for entry in q.entries.iter().take(5) {
                let _ = write!(msg, "\n  @{} {}: {}", entry.byte_offset, entry.page, entry.error);
            }
            Err(CliError::Message(msg))
        }
        IngestStatus::Completed => {
            let Some(merged) = outcome.dataset else {
                return Err(CliError::Message(
                    "internal: update reported completion without a dataset".into(),
                ));
            };
            let merged = Arc::new(merged);
            let mut text = format!(
                "updated: {} delta pages ({} quarantined), {} attribute(s) touched \
                 ({} filter downgrade(s)); dataset {} -> {} attributes\n",
                q.pages_kept,
                q.pages_quarantined,
                outcome.touched.len(),
                outcome.filter_downgrades,
                base.len(),
                merged.len(),
            );
            // Maintain the index incrementally before publishing anything,
            // so a refused delta leaves both artifacts untouched.
            let index_note = match &index_path {
                Some(idx_path) => {
                    let _phase = tind_obs::span("phase.apply_delta");
                    let mut index = tind_core::persist::read_index_file(
                        idx_path,
                        Arc::new(base.clone()),
                    )?;
                    let delta = tind_core::DatasetDelta::diff(&base, Arc::clone(&merged))
                        .map_err(|e| CliError::Message(format!("delta rejected: {e}")))?;
                    let report = index
                        .apply_delta(&delta)
                        .map_err(|e| CliError::Message(format!("delta rejected: {e}")))?;
                    if compact {
                        index = index.compact();
                    }
                    let index_out = index_out.as_ref().expect("derived from --index");
                    tind_core::persist::write_index_file(&index, index_out)?;
                    Some(format!(
                        "index: {} column(s) updated ({} new), {} block(s) rewritten across \
                         {} matrice(s){}{}; written to {}",
                        report.touched_attrs,
                        report.new_attrs,
                        report.blocks_rewritten,
                        report.matrices_updated,
                        if report.grew { ", index grown" } else { "" },
                        if compact { ", compacted (cold rebuild)" } else { "" },
                        index_out.display(),
                    ))
                }
                None => None,
            };
            {
                let _phase = tind_obs::span("phase.write_output");
                write_dataset_file(&merged, &out)?;
            }
            let _ = writeln!(text, "dataset written to {}", out.display());
            if let Some(note) = index_note {
                let _ = writeln!(text, "{note}");
            }
            if let Some(offset) = outcome.resumed_from {
                let _ = writeln!(text, "resumed from byte offset {offset}");
            }
            Ok(text)
        }
    }
}

fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let data: PathBuf = args.required::<String>("data")?.into();
    let host = args.opt_or("host", "127.0.0.1".to_string())?;
    let port = args.opt_or("port", 7171u16)?;
    let port_file: Option<PathBuf> = args.opt::<String>("port-file")?.map(Into::into);
    let quiet = args.switch("quiet");

    let mut config = ServeConfig::default();
    config.workers = args.opt_or("workers", 0usize)?;
    config.readers = args.opt_or("readers", 0usize)?;
    config.queue_capacity = args.opt_or("queue", config.queue_capacity)?;
    config.coalesce = args.opt_or("coalesce", config.coalesce)?;
    config.default_deadline =
        Duration::from_millis(args.opt_or("deadline-ms", config.default_deadline.as_millis() as u64)?);
    config.max_deadline =
        Duration::from_millis(args.opt_or("max-deadline-ms", config.max_deadline.as_millis() as u64)?);
    config.read_timeout =
        Duration::from_millis(args.opt_or("read-timeout-ms", config.read_timeout.as_millis() as u64)?);
    config.write_timeout = Duration::from_millis(
        args.opt_or("write-timeout-ms", config.write_timeout.as_millis() as u64)?,
    );
    config.max_body_bytes = args.opt_or("max-body-bytes", config.max_body_bytes)?;
    config.memory_budget = args.opt::<usize>("memory-limit")?.map(MemoryBudget::new);
    config.drain_grace =
        Duration::from_millis(args.opt_or("drain-grace-ms", config.drain_grace.as_millis() as u64)?);
    config.reverify_interval = Duration::from_millis(
        args.opt_or("reverify-ms", config.reverify_interval.as_millis() as u64)?,
    );
    config.cache = args.opt_or("cache", config.cache)?;
    config.plan_cache = args.opt_or("plan-cache", config.plan_cache)?;
    config.store_backing = store_backing(args)?;
    config.trace_last = args.opt_or("trace-last", config.trace_last)?;
    config.metrics_tick = Duration::from_millis(
        args.opt_or("metrics-tick-ms", config.metrics_tick.as_millis() as u64)?,
    );
    let store: Option<PathBuf> = args.opt::<String>("store")?.map(Into::into);
    // Windowed shard sections are charged to (and evicted under) the
    // same budget the admission controller uses, so `--memory-limit`
    // below the index size serves from disk instead of failing to load.
    let open = OpenOptions {
        backing: config.store_backing,
        memory_budget: config.memory_budget.clone(),
    };

    let eps = args.opt_or("eps", 3.0)?;
    let delta = args.opt_or("delta", 7u32)?;
    let decay = args.opt::<f64>("decay")?;
    let build_threads = args.opt_or("build-threads", 0usize)?;

    let server = Server::bind(&format!("{host}:{port}"), config)?;
    let addr = server.local_addr();
    // The port file exists before the index finishes loading; clients
    // poll /healthz for readiness (`"status":"serving"`).
    if let Some(path) = &port_file {
        std::fs::write(path, format!("{}\n", addr.port()))?;
    }
    if !quiet {
        eprintln!("tind serve listening on {addr} (loading index; poll /healthz for readiness)");
    }

    // SIGINT *and* SIGTERM both drain: a supervisor's stop and an
    // operator's Ctrl-C behave identically.
    let shutdown = CancelToken::install_terminate();
    let started = std::time::Instant::now();
    let outcome = server
        .run(
            || {
                let load = tind_obs::span("phase.load");
                let dataset =
                    Arc::new(read_dataset_file(&data).map_err(|e| format!("dataset error: {e}"))?);
                drop(load);
                let _build = tind_obs::span("phase.build");
                match &store {
                    // From a sharded store: a degraded open still serves
                    // (status `degraded`; re-verify promotes later).
                    Some(dir) => {
                        let (engine, report) = Engine::from_store_with(
                            dir,
                            dataset,
                            eps,
                            delta,
                            decay,
                            build_threads,
                            &open,
                        )?;
                        if !quiet && !report.is_clean() {
                            eprintln!(
                                "warning: store at {} is degraded ({} of {} shards \
                                 quarantined); serving partial results",
                                dir.display(),
                                report.quarantined.len(),
                                report.shards_total,
                            );
                        }
                        Ok(engine)
                    }
                    None => Ok(Engine::build(dataset, eps, delta, decay, build_threads)),
                }
            },
            shutdown.clone(),
        )
        .map_err(CliError::Message)?;

    let mut summary = format!(
        "served {} requests ({} ok, {} errors, {} shed, {} panics quarantined, \
         {} deadline timeouts; {} waves, {} coalesced) in {}; drain {}",
        outcome.requests,
        outcome.ok,
        outcome.errors,
        outcome.shed,
        outcome.panics,
        outcome.deadline_timeouts,
        outcome.waves,
        outcome.coalesced_requests,
        tind_obs::fmt_duration_ns(started.elapsed().as_nanos() as u64),
        if outcome.drained_clean { "clean" } else { "forced after grace period" },
    );
    // Per-endpoint latency attribution: where answered requests spent
    // their time (queue wait / wave formation / execution), as quantiles
    // over the whole run.
    for endpoint in ["search", "reverse_search", "explain"] {
        let stage = |which: &str| format!("serve.latency.{endpoint}.{which}_ns");
        let exec = tind_obs::histogram(&stage("exec"));
        if exec.count() == 0 {
            continue;
        }
        let _ = write!(summary, "\n  {endpoint}:");
        for which in ["queued", "coalesced", "exec"] {
            let h = tind_obs::histogram(&stage(which));
            let _ = write!(
                summary,
                " {which} p50/p90/p99 {}/{}/{}",
                tind_obs::fmt_duration_ns(h.quantile(0.50)),
                tind_obs::fmt_duration_ns(h.quantile(0.90)),
                tind_obs::fmt_duration_ns(h.quantile(0.99)),
            );
        }
    }
    // `run` only returns after the shutdown token tripped, so a serve
    // run always "ends interrupted" — exit 130, like every other
    // gracefully-stopped long-running command. `--report` still flushes
    // (dispatch honors it for Interrupted).
    Err(CliError::Interrupted { summary })
}

fn list_experiments() -> String {
    let mut out = String::from("available experiments:\n");
    for (id, description, _) in tind_eval::experiments::all() {
        let _ = writeln!(out, "  {id:<10} {description}");
    }
    out
}

fn cmd_experiment(args: &Args) -> Result<String, CliError> {
    let Some(id) = args.positional().first() else {
        return Err(CliError::Message("experiment id required (see `tind list-experiments`)".into()));
    };
    let scale_name = args.opt_or("scale", "quick".to_string())?;
    let scale = Scale::parse(&scale_name)
        .ok_or_else(|| CliError::Unknown(format!("scale '{scale_name}'")))?;
    let mut ctx = ExpContext::at_scale(scale);
    ctx.seed = args.opt_or("seed", ctx.seed)?;
    ctx.threads = args.opt_or("threads", 0usize)?;
    ctx.attributes_override = args.opt("attributes")?;
    ctx.queries_override = args.opt("queries")?;
    let csv_dir: Option<PathBuf> = args.opt::<String>("csv-dir")?.map(Into::into);

    let ids: Vec<&str> = if id == "all" {
        tind_eval::experiments::all().iter().map(|(i, _, _)| *i).collect()
    } else {
        vec![id.as_str()]
    };

    let mut out = String::new();
    for id in ids {
        let report = tind_eval::experiments::run_by_id(id, &ctx)
            .ok_or_else(|| CliError::Unknown(format!("experiment '{id}'")))?;
        let _ = writeln!(out, "{report}");
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("{id}.csv"));
            std::fs::write(&path, report.table.to_csv())?;
            let _ = writeln!(out, "  (csv written to {})", path.display());
            if let Some(figure) = &report.figure {
                let svg_path = dir.join(format!("{id}.svg"));
                std::fs::write(&svg_path, figure.render_svg())?;
                let _ = writeln!(out, "  (figure written to {})", svg_path.display());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tokens: &[&str]) -> Result<String, CliError> {
        let raw: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        dispatch(&raw)
    }

    fn temp_file(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tind-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&["help"]).expect("help").contains("USAGE"));
        assert!(run(&[]).expect("no args → usage").contains("USAGE"));
        assert!(matches!(run(&["frobnicate"]), Err(CliError::Unknown(_))));
    }

    #[test]
    fn batch_search_matches_single_queries() {
        let path = temp_file("cli-batch.tind");
        let path_str = path.to_str().expect("utf8 path");
        run(&[
            "generate", "--attributes", "80", "--seed", "7", "--preset", "small", "--out",
            path_str,
        ])
        .expect("generates");
        let single = run(&[
            "search", "--data", path_str, "--query", "source-0", "--eps", "10", "--delta", "14",
        ])
        .expect("single");
        let n_single: usize = single
            .split_whitespace()
            .next()
            .and_then(|t| t.parse().ok())
            .expect("single output starts with the result count");
        let batch = run(&[
            "search", "--data", path_str, "--batch", "source-0, source-1", "--threads", "2",
            "--eps", "10", "--delta", "14",
        ])
        .expect("batch");
        assert!(batch.contains("batch of 2 queries"), "{batch}");
        assert!(batch.contains("queries/s"), "{batch}");
        assert!(
            batch.contains(&format!("source-0: {n_single} results")),
            "batch must report the same count as the single query\n{batch}\n{single}"
        );
    }

    #[test]
    fn batch_flag_misuse_is_rejected() {
        let path = temp_file("cli-batch-misuse.tind");
        let path_str = path.to_str().expect("utf8 path");
        run(&[
            "generate", "--attributes", "40", "--seed", "3", "--preset", "small", "--out",
            path_str,
        ])
        .expect("generates");
        let conflict =
            run(&["search", "--data", path_str, "--batch", "source-0", "--query", "source-1"]);
        assert!(
            matches!(&conflict, Err(CliError::Args(ArgError::Conflict { .. }))),
            "--batch with --query must be rejected as bad usage"
        );
        assert_eq!(conflict.expect_err("conflict").exit_code(), 2);
        let empty = run(&["search", "--data", path_str, "--batch", " , "]);
        assert!(
            matches!(&empty, Err(CliError::Args(ArgError::BadValue { .. }))),
            "an empty --batch list must be rejected as bad usage"
        );
        assert_eq!(empty.expect_err("empty").exit_code(), 2);
        assert!(
            matches!(
                run(&[
                    "reverse-search", "--data", path_str, "--query", "source-0", "--batch",
                    "source-1"
                ]),
                Err(CliError::Args(_))
            ),
            "reverse-search must not accept --batch"
        );
    }

    #[test]
    fn index_build_threads_are_byte_identical() {
        let data = temp_file("cli-bt.tind");
        let data_str = data.to_str().expect("utf8 path");
        run(&[
            "generate", "--attributes", "70", "--seed", "11", "--preset", "small", "--out",
            data_str,
        ])
        .expect("generates");
        let out1 = temp_file("cli-bt-1.idx");
        let out3 = temp_file("cli-bt-3.idx");
        run(&[
            "index", "--data", data_str, "--out", out1.to_str().expect("utf8"), "--m", "256",
            "--build-threads", "1",
        ])
        .expect("sequential build");
        run(&[
            "index", "--data", data_str, "--out", out3.to_str().expect("utf8"), "--m", "256",
            "--build-threads", "3",
        ])
        .expect("parallel build");
        let b1 = std::fs::read(&out1).expect("read idx 1");
        let b3 = std::fs::read(&out3).expect("read idx 3");
        assert!(b1 == b3, "index files differ between --build-threads 1 and 3");
        std::fs::remove_file(&out1).ok();
        std::fs::remove_file(&out3).ok();
    }

    #[test]
    fn verify_names_the_failing_byte_offset() {
        let data = temp_file("cli-verify-offset.tind");
        let data_str = data.to_str().expect("utf8 path");
        run(&[
            "generate", "--attributes", "40", "--seed", "5", "--preset", "small", "--out",
            data_str,
        ])
        .expect("generates");
        let idx = temp_file("cli-verify-offset.idx");
        let idx_str = idx.to_str().expect("utf8");
        run(&["index", "--data", data_str, "--out", idx_str, "--m", "256"]).expect("indexes");
        run(&["verify", idx_str]).expect("pristine index verifies");

        let len = std::fs::metadata(&idx).expect("metadata").len() as usize;
        tind_core::fault::flip_file_byte(&idx, len / 2).expect("flip");
        let err = run(&["verify", idx_str]).expect_err("corrupt index must fail");
        assert_eq!(err.exit_code(), 3, "corruption is a data error");
        let msg = err.to_string();
        let trailer_offset = len - tind_model::checksum::TRAILER_LEN;
        assert!(
            msg.contains(&format!("byte offset {trailer_offset}")),
            "verify must name the failing byte offset; got: {msg}"
        );
        std::fs::remove_file(&idx).ok();
    }

    #[test]
    fn store_pack_verify_search_repair_roundtrip() {
        // ≥3 shards needs ≥3 column blocks of 64 attributes each.
        let data = temp_file("cli-store.tind");
        let data_str = data.to_str().expect("utf8 path");
        run(&[
            "generate", "--attributes", "200", "--seed", "9", "--preset", "small", "--out",
            data_str,
        ])
        .expect("generates");
        let dir = temp_file("cli-store.store");
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_str().expect("utf8");

        let packed = run(&[
            "store", "pack", "--data", data_str, "--out", dir_str, "--shards", "3", "--eps",
            "10", "--delta", "14",
        ])
        .expect("packs");
        assert!(packed.contains("packed generation 1"), "{packed}");
        assert!(packed.contains("3 shard(s)"), "{packed}");
        assert!(run(&["store", "verify", dir_str]).expect("verifies").contains("3 shard(s)"));
        assert!(run(&["verify", dir_str]).expect("verify accepts a store dir").contains("store"));

        // A store-backed search answers exactly like a fresh build.
        let built = run(&[
            "search", "--data", data_str, "--query", "source-0", "--eps", "10", "--delta", "14",
        ])
        .expect("built search");
        let stored = run(&[
            "search", "--data", data_str, "--store", dir_str, "--query", "source-0", "--eps",
            "10", "--delta", "14",
        ])
        .expect("stored search");
        assert_eq!(
            built.split_whitespace().next(),
            stored.split_whitespace().next(),
            "result counts must match\n{built}\n{stored}"
        );

        // Corrupt one shard: verify fails naming it, repair restores it.
        let shard = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "shard"))
            .expect("a shard file");
        let shard_len = std::fs::metadata(&shard).expect("metadata").len() as usize;
        tind_core::fault::flip_file_byte(&shard, shard_len / 2).expect("flip");
        let err = run(&["store", "verify", dir_str]).expect_err("corrupt shard must fail");
        assert!(err.to_string().contains("shard"), "{err}");
        let repaired =
            run(&["store", "repair", "--store", dir_str, "--data", data_str]).expect("repairs");
        assert!(repaired.contains("rebuilt shard(s)"), "{repaired}");
        run(&["store", "verify", dir_str]).expect("verifies after repair");

        // --index with --store is ambiguous and must be rejected.
        assert!(matches!(
            run(&[
                "search", "--data", data_str, "--index", "x.idx", "--store", dir_str, "--query",
                "source-0",
            ]),
            Err(CliError::Args(ArgError::Conflict { .. }))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_experiments_names_all() {
        let out = run(&["list-experiments"]).expect("lists");
        for id in ["fig7", "fig15", "table2", "allpairs", "latency"] {
            assert!(out.contains(id), "missing {id}");
        }
    }

    #[test]
    fn generate_stats_search_roundtrip() {
        let path = temp_file("cli-roundtrip.tind");
        let path_str = path.to_str().expect("utf8 path");
        let truth = temp_file("cli-roundtrip-truth.csv");
        let truth_str = truth.to_str().expect("utf8 path");
        let out = run(&[
            "generate", "--attributes", "120", "--seed", "5", "--preset", "small", "--out",
            path_str, "--truth-out", truth_str,
        ])
        .expect("generates");
        assert!(out.contains("wrote"));
        let truth_csv = std::fs::read_to_string(&truth).expect("truth file");
        assert!(truth_csv.starts_with("lhs,rhs,"));
        assert!(truth_csv.lines().count() > 10, "truth rows: {}", truth_csv.lines().count());
        std::fs::remove_file(&truth).ok();

        let stats = run(&["stats", "--data", path_str]).expect("stats");
        assert!(stats.contains("attributes:"));

        // Generous parameters: they must recover the planted source even
        // for a dirty derived attribute (delays up to 45 days).
        let search = run(&[
            "search", "--data", path_str, "--query", "derived-0-of-0", "--eps", "150", "--delta",
            "45",
        ])
        .expect("searches");
        assert!(search.contains("results for"), "{search}");
        assert!(search.contains("pruning:"));
        assert!(search.contains("validation:"), "stage-4 stats line missing: {search}");
        assert!(search.contains("early-valid"), "{search}");
        assert!(search.contains("source-0"), "planted source should be found: {search}");

        let reverse = run(&["reverse-search", "--data", path_str, "--query", "source-0", "--eps", "10", "--delta", "14"])
            .expect("reverse searches");
        assert!(reverse.contains("results for"));

        let pairs = run(&["all-pairs", "--data", path_str, "--threads", "2"]).expect("all pairs");
        assert!(pairs.contains("tINDs among"));
        assert!(pairs.contains("validation:"), "all-pairs stats line missing: {pairs}");

        let partial = run(&[
            "partial-search", "--data", path_str, "--query", "derived-0-of-0", "--sigma", "0.7",
            "--eps", "150", "--delta", "45",
        ])
        .expect("partial search");
        assert!(partial.contains("σ-partial results"), "{partial}");
        assert!(partial.contains("source-0"), "σ < 1 must still find the planted source");

        let bad_sigma = run(&[
            "partial-search", "--data", path_str, "--query", "derived-0-of-0", "--sigma", "1.5",
        ])
        .expect_err("rejects sigma > 1");
        assert!(bad_sigma.to_string().contains("sigma"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explain_command_reports_violations() {
        let path = temp_file("cli-explain.tind");
        let path_str = path.to_str().expect("utf8 path");
        run(&["generate", "--attributes", "60", "--preset", "small", "--seed", "21", "--out", path_str])
            .expect("generates");
        let out = run(&[
            "explain", "--data", path_str, "--lhs", "derived-0-of-0", "--rhs", "source-0",
            "--eps", "200", "--delta", "45",
        ])
        .expect("explains");
        assert!(out.contains("VALID") || out.contains("INVALID"), "{out}");
        assert!(out.contains("ε=200"), "{out}");
        // Unrelated pair is invalid with concrete evidence.
        let out = run(&["explain", "--data", path_str, "--lhs", "source-0", "--rhs", "noise-0-c0"])
            .expect("explains");
        assert!(out.contains("INVALID"), "{out}");
        assert!(out.contains("missing"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn search_rejects_unknown_query() {
        let path = temp_file("cli-unknown-query.tind");
        let path_str = path.to_str().expect("utf8 path");
        run(&["generate", "--attributes", "40", "--preset", "small", "--out", path_str])
            .expect("generates");
        let err = run(&["search", "--data", path_str, "--query", "no-such-attribute"])
            .expect_err("unknown query");
        assert!(err.to_string().contains("not found"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn index_persistence_and_top_k() {
        let data = temp_file("cli-index.tind");
        let data_str = data.to_str().expect("utf8 path");
        run(&["generate", "--attributes", "80", "--preset", "small", "--seed", "9", "--out", data_str])
            .expect("generates");

        let idx = temp_file("cli-index.tidx");
        let idx_str = idx.to_str().expect("utf8 path");
        let out = run(&["index", "--data", data_str, "--out", idx_str]).expect("indexes");
        assert!(out.contains("indexed 80 attributes"), "{out}");
        assert!(out.contains("M_T load"), "diagnostics missing: {out}");

        // Search through the persisted index.
        let search = run(&[
            "search", "--data", data_str, "--index", idx_str, "--query", "derived-0-of-0",
            "--eps", "150", "--delta", "7",
        ])
        .expect("searches via index file");
        assert!(search.contains("results for"), "{search}");

        // Top-k ranking.
        let topk = run(&[
            "top-k", "--data", data_str, "--index", idx_str, "--query", "derived-0-of-0", "--k",
            "3",
        ])
        .expect("ranks");
        assert!(topk.contains("top-3"), "{topk}");
        assert!(topk.contains("violation"), "{topk}");

        // A stale index (different dataset) is rejected.
        let other = temp_file("cli-index-other.tind");
        let other_str = other.to_str().expect("utf8 path");
        run(&["generate", "--attributes", "60", "--preset", "small", "--seed", "10", "--out", other_str])
            .expect("generates other");
        let err = run(&["search", "--data", other_str, "--index", idx_str, "--query", "0"])
            .expect_err("fingerprint mismatch");
        assert!(err.to_string().contains("fingerprint"), "{err}");

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&idx).ok();
        std::fs::remove_file(&other).ok();
    }

    #[test]
    fn explore_session_executes_commands() {
        use std::sync::Arc;
        let generated = tind_datagen::generate(&tind_datagen::GeneratorConfig::small(60, 4));
        let dataset = Arc::new(generated.dataset);
        let index = TindIndex::build(dataset.clone(), IndexConfig::default());
        let input = "q derived-0-of-0 150 45\nstats\ntop derived-0-of-0 2\nbogus cmd\nquit\nq never-reached\n";
        let transcript =
            super::explore_session(dataset, &index, std::io::Cursor::new(input.as_bytes()));
        assert!(transcript.contains("result(s) in"), "{transcript}");
        assert!(transcript.contains("attributes:"), "stats output missing: {transcript}");
        assert!(transcript.contains("violation"), "top output missing: {transcript}");
        assert!(transcript.contains("unrecognized command"), "{transcript}");
        assert!(!transcript.contains("never-reached"), "quit must stop the loop");
    }

    #[test]
    fn pipeline_demo_runs() {
        let out = run(&["pipeline", "--demo", "--attributes", "40", "--seed", "3"])
            .expect("pipeline demo");
        assert!(out.contains("pipeline:"), "{out}");
        assert!(out.contains("attributes kept"));
    }

    #[test]
    fn pipeline_without_demo_explains() {
        let err = run(&["pipeline"]).expect_err("needs --demo or --dump");
        assert!(err.to_string().contains("--demo"));
        assert!(err.to_string().contains("--dump"));
    }

    #[test]
    fn pipeline_ingests_xml_dump() {
        let dump = temp_file("cli-dump.xml");
        let mut xml = String::from("<mediawiki><page><title>T</title><id>1</id>");
        let games = ["Red", "Blue", "Gold", "Silver", "Crystal", "Ruby", "Sapphire", "Emerald", "Pearl", "Diamond"];
        for i in 0..6 {
            let mut table = String::from("{|\n! Game\n");
            for g in &games[..5 + i] {
                table.push_str(&format!("|-\n| {g}\n"));
            }
            table.push_str("|}");
            xml.push_str(&format!(
                "<revision><timestamp>2001-0{}-01T00:00:00Z</timestamp><text>{}</text></revision>",
                i + 2,
                table
            ));
        }
        xml.push_str("</page></mediawiki>");
        std::fs::write(&dump, xml).expect("write dump");
        let out = run(&["pipeline", "--dump", dump.to_str().expect("utf8")]).expect("ingests");
        assert!(out.contains("parsed 6 revisions"), "{out}");
        assert!(out.contains("1 attributes kept") || out.contains("attributes kept"), "{out}");
        std::fs::remove_file(&dump).ok();
    }

    #[test]
    fn experiment_with_tiny_overrides() {
        let out = run(&[
            "experiment",
            "latency",
            "--scale",
            "quick",
            "--attributes",
            "150",
            "--queries",
            "25",
            "--threads",
            "2",
        ])
        .expect("runs latency experiment");
        assert!(out.contains("== latency"), "{out}");
        assert!(out.contains("mean"));
    }

    #[test]
    fn experiment_rejects_unknown() {
        assert!(matches!(
            run(&["experiment", "fig99"]),
            Err(CliError::Unknown(_))
        ));
        assert!(matches!(
            run(&["experiment", "fig7", "--scale", "mega"]),
            Err(CliError::Unknown(_))
        ));
    }

    /// Writes a small dataset and returns its path as a string.
    fn small_dataset(name: &str) -> String {
        let path = temp_file(name);
        let path_str = path.to_str().expect("utf8 path").to_string();
        run(&["generate", "--attributes", "60", "--seed", "11", "--preset", "small", "--out",
            &path_str])
        .expect("generates");
        path_str
    }

    #[test]
    fn verify_accepts_dataset_and_checkpoint_rejects_corruption() {
        let data = small_dataset("cli-verify.tind");
        let out = run(&["verify", &data]).expect("clean dataset verifies");
        assert!(out.starts_with("OK "), "{out}");
        assert!(out.contains("dataset: 60 attributes"), "{out}");

        // Bit rot anywhere in the file must surface as a checksum error
        // (exit code 3), not a garbage decode.
        let mut rotten = std::fs::read(&data).expect("read");
        let middle_bit = rotten.len() * 4;
        tind_core::fault::flip_bit(&mut rotten, middle_bit);
        let rotten_path = temp_file("cli-verify-rotten.tind");
        std::fs::write(&rotten_path, &rotten).expect("write");
        let err = run(&["verify", rotten_path.to_str().expect("utf8")])
            .expect_err("corruption must be rejected");
        assert!(matches!(&err, CliError::Data(BinIoError::Checksum { .. })), "{err}");
        assert_eq!(err.exit_code(), 3);

        assert!(matches!(run(&["verify"]), Err(CliError::Args(_))));
    }

    #[test]
    fn all_pairs_deadline_interrupts_and_resume_completes() {
        let data = small_dataset("cli-resume.tind");
        let ckpt = temp_file("cli-resume.ckpt");
        let ckpt_str = ckpt.to_str().expect("utf8 path");
        let _ = std::fs::remove_file(&ckpt);

        // Deadline of zero: stops at the first query boundary.
        let err = run(&["all-pairs", "--data", &data, "--checkpoint", ckpt_str, "--deadline",
            "0", "--quiet"])
        .expect_err("zero deadline must interrupt");
        let CliError::Interrupted { summary } = &err else {
            panic!("expected Interrupted, got {err}");
        };
        assert!(summary.contains("progress checkpointed"), "{summary}");
        assert_eq!(err.exit_code(), 130);

        let out = run(&["verify", ckpt_str]).expect("checkpoint file verifies");
        assert!(out.contains("checkpoint:"), "{out}");

        // Resuming (twice, to also cover resume-of-complete) finishes the
        // run and reports the same pairs as an uninterrupted one.
        let resumed = run(&["all-pairs", "--data", &data, "--checkpoint", ckpt_str, "--resume",
            "--quiet"])
        .expect("resume completes");
        let fresh =
            run(&["all-pairs", "--data", &data, "--quiet"]).expect("fresh run completes");
        assert_eq!(
            resumed.lines().next().expect("first line"),
            fresh.lines().next().expect("first line"),
            "resumed pair count must match the uninterrupted run"
        );

        // --resume without --checkpoint is a usage error.
        assert!(matches!(
            run(&["all-pairs", "--data", &data, "--resume"]),
            Err(CliError::Message(_))
        ));
    }

    #[test]
    fn typoed_options_fail_before_the_command_runs() {
        // The canonical hazard: --chekpoint would otherwise run a long
        // discovery with no checkpointing at all.
        let err = run(&["all-pairs", "--data", "unused.tind", "--chekpoint", "x.tcp"])
            .expect_err("typo rejected");
        assert_eq!(err.exit_code(), 2, "unknown option is a usage error");
        assert!(
            err.to_string().contains("did you mean --checkpoint?"),
            "suggestion missing from: {err}"
        );
        // Rejection happens before any file i/o: the dataset path above
        // does not exist, yet the error is about the option, not the file.
        assert!(err.to_string().contains("--chekpoint"));

        // Options from *other* commands are not accepted cross-command.
        let err = run(&["stats", "--data", "unused.tind", "--checkpoint", "x.tcp"])
            .expect_err("foreign option rejected");
        assert_eq!(err.exit_code(), 2);
    }

    /// One well-formed page whose table grows monotonically — six
    /// revisions, plenty of versions and cardinality for the §5.1 filters.
    fn ingest_page_xml(title: &str, id: u32) -> String {
        let games = [
            "Red", "Blue", "Gold", "Silver", "Crystal", "Ruby", "Sapphire", "Emerald", "Pearl",
            "Diamond",
        ];
        let mut page = format!("<page><title>{title}</title><id>{id}</id>");
        for i in 0..6 {
            let mut table = String::from("{|\n! Game\n");
            for g in &games[..5 + i] {
                table.push_str(&format!("|-\n| {g}\n"));
            }
            table.push_str("|}");
            page.push_str(&format!(
                "<revision><timestamp>2001-0{}-01T00:00:00Z</timestamp><text>{table}</text></revision>",
                i + 2,
            ));
        }
        page.push_str("</page>");
        page
    }

    /// A page with no `<title>`: quarantined by ingestion.
    fn broken_page_xml(id: u32) -> String {
        format!(
            "<page><id>{id}</id><revision><timestamp>2001-02-01T00:00:00Z</timestamp>\
             <text>x</text></revision></page>"
        )
    }

    #[test]
    fn ingest_deadline_interrupts_and_resume_is_byte_identical() {
        let dump = temp_file("cli-ingest.xml");
        let mut xml = String::from("<mediawiki>\n");
        for (i, title) in ["Alpha", "Beta", "Gamma"].iter().enumerate() {
            xml.push_str(&ingest_page_xml(title, i as u32 + 1));
            xml.push('\n');
        }
        xml.push_str("</mediawiki>");
        std::fs::write(&dump, xml).expect("write dump");
        let dump_str = dump.to_str().expect("utf8");

        let fresh = temp_file("cli-ingest-fresh.tind");
        let fresh_str = fresh.to_str().expect("utf8");
        let out =
            run(&["ingest", "--dump", dump_str, "--out", fresh_str, "--quiet"]).expect("ingests");
        assert!(out.contains("ingested 3 pages (0 quarantined"), "{out}");
        assert!(out.contains("dataset written to"), "{out}");

        // Deadline of zero: stops before the first page, checkpointing.
        let ckpt = temp_file("cli-ingest.tic");
        let ckpt_str = ckpt.to_str().expect("utf8");
        let _ = std::fs::remove_file(&ckpt);
        let sink = temp_file("cli-ingest-sink.tind");
        let err = run(&["ingest", "--dump", dump_str, "--out", sink.to_str().expect("utf8"),
            "--checkpoint", ckpt_str, "--deadline", "0", "--quiet"])
        .expect_err("zero deadline must interrupt");
        let CliError::Interrupted { summary } = &err else {
            panic!("expected Interrupted, got {err}");
        };
        assert!(summary.contains("checkpointed"), "{summary}");
        assert_eq!(err.exit_code(), 130);
        let verified = run(&["verify", ckpt_str]).expect("ingest checkpoint verifies");
        assert!(verified.contains("ingest checkpoint:"), "{verified}");

        // Resume completes and produces a byte-identical dataset file.
        let resumed = temp_file("cli-ingest-resumed.tind");
        let resumed_str = resumed.to_str().expect("utf8");
        let out = run(&["ingest", "--dump", dump_str, "--out", resumed_str, "--checkpoint",
            ckpt_str, "--resume", "--quiet"])
        .expect("resume completes");
        assert!(out.contains("resumed from byte offset"), "{out}");
        assert_eq!(
            std::fs::read(&fresh).expect("fresh"),
            std::fs::read(&resumed).expect("resumed"),
            "resumed dataset must be byte-identical to the uninterrupted one"
        );

        // --resume without --checkpoint is a usage error.
        assert!(matches!(
            run(&["ingest", "--dump", dump_str, "--out", resumed_str, "--resume"]),
            Err(CliError::Message(_))
        ));
        for f in [&dump, &fresh, &ckpt, &resumed] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn ingest_error_budget_aborts_and_quarantine_report_verifies() {
        // A dump that is pure garbage trips the error budget (exit 1).
        let dump = temp_file("cli-ingest-broken.xml");
        let mut xml = String::from("<mediawiki>");
        for i in 0..25 {
            xml.push_str(&broken_page_xml(i));
        }
        xml.push_str("</mediawiki>");
        std::fs::write(&dump, &xml).expect("write dump");
        let out_path = temp_file("cli-ingest-broken.tind");
        let err = run(&["ingest", "--dump", dump.to_str().expect("utf8"), "--out",
            out_path.to_str().expect("utf8"), "--quiet"])
        .expect_err("error budget must abort");
        assert_eq!(err.exit_code(), 1, "{err}");
        assert!(err.to_string().contains("error budget exceeded"), "{err}");
        std::fs::remove_file(&dump).ok();

        // A few bad pages among good ones: the run completes and the
        // quarantine report round-trips through `verify`.
        let dump = temp_file("cli-ingest-mixed.xml");
        let mut xml = String::from("<mediawiki>");
        xml.push_str(&ingest_page_xml("Alpha", 1));
        xml.push_str(&broken_page_xml(99));
        xml.push_str(&ingest_page_xml("Beta", 2));
        xml.push_str("</mediawiki>");
        std::fs::write(&dump, &xml).expect("write dump");
        let report = temp_file("cli-ingest-mixed.tqr");
        let report_str = report.to_str().expect("utf8");
        let out2 = temp_file("cli-ingest-mixed.tind");
        let out = run(&["ingest", "--dump", dump.to_str().expect("utf8"), "--out",
            out2.to_str().expect("utf8"), "--quarantine-report", report_str, "--quiet"])
        .expect("mixed dump completes");
        assert!(out.contains("ingested 2 pages (1 quarantined"), "{out}");
        let verified = run(&["verify", report_str]).expect("quarantine report verifies");
        assert!(verified.contains("quarantine report: 1/3 pages quarantined"), "{verified}");
        for f in [&dump, &report, &out2, &out_path] {
            std::fs::remove_file(f).ok();
        }
    }

    /// A delta variant of [`ingest_page_xml`]: the page's full revision
    /// history, extended to `versions` revisions (months 2..9).
    fn update_page_xml(title: &str, id: u32, versions: usize) -> String {
        let games = [
            "Red", "Blue", "Gold", "Silver", "Crystal", "Ruby", "Sapphire", "Emerald", "Pearl",
            "Diamond", "Platinum", "Black",
        ];
        let mut page = format!("<page><title>{title}</title><id>{id}</id>");
        for i in 0..versions.min(8) {
            let mut table = String::from("{|\n! Game\n");
            for g in &games[..5 + i] {
                table.push_str(&format!("|-\n| {g}\n"));
            }
            table.push_str("|}");
            page.push_str(&format!(
                "<revision><timestamp>2001-0{}-01T00:00:00Z</timestamp><text>{table}</text></revision>",
                i + 2,
            ));
        }
        page.push_str("</page>");
        page
    }

    #[test]
    fn update_applies_delta_and_maintained_index_matches_cold_rebuild() {
        // Base: two pages, ingested and indexed.
        let dump = temp_file("cli-update-base.xml");
        let xml = format!(
            "<mediawiki>\n{}\n{}\n</mediawiki>",
            ingest_page_xml("Alpha", 1),
            ingest_page_xml("Beta", 2),
        );
        std::fs::write(&dump, xml).expect("write base dump");
        let base = temp_file("cli-update-base.tind");
        let base_str = base.to_str().expect("utf8");
        run(&["ingest", "--dump", dump.to_str().expect("utf8"), "--out", base_str, "--quiet"])
            .expect("base ingests");
        let idx = temp_file("cli-update-base.tix");
        let idx_str = idx.to_str().expect("utf8");
        run(&["index", "--data", base_str, "--out", idx_str, "--m", "256"]).expect("indexes");

        // Delta: Alpha revised (full history, now 8 revisions) + new Gamma.
        let delta = temp_file("cli-update-delta.xml");
        let delta_xml = format!(
            "<mediawiki>\n{}\n{}\n</mediawiki>",
            update_page_xml("Alpha", 1, 8),
            update_page_xml("Gamma", 3, 6),
        );
        std::fs::write(&delta, delta_xml).expect("write delta dump");
        let delta_str = delta.to_str().expect("utf8");

        let merged = temp_file("cli-update-merged.tind");
        let merged_str = merged.to_str().expect("utf8");
        let idx2 = temp_file("cli-update-incr.tix");
        let idx2_str = idx2.to_str().expect("utf8");
        let out = run(&["update", "--dump", delta_str, "--data", base_str, "--out", merged_str,
            "--index", idx_str, "--index-out", idx2_str, "--quiet"])
        .expect("update completes");
        assert!(out.contains("2 attribute(s) touched"), "{out}");
        assert!(out.contains("index:"), "{out}");
        assert!(out.contains("dataset written to"), "{out}");

        // The incrementally maintained index is byte-identical to a cold
        // rebuild over the merged dataset (the delta-oracle pin).
        let idx_cold = temp_file("cli-update-cold.tix");
        let idx_cold_str = idx_cold.to_str().expect("utf8");
        run(&["index", "--data", merged_str, "--out", idx_cold_str, "--m", "256"])
            .expect("cold index");
        assert_eq!(
            std::fs::read(&idx2).expect("incremental"),
            std::fs::read(&idx_cold).expect("cold"),
            "incrementally maintained index must be byte-identical to a cold rebuild"
        );

        // Kill/resume: a zero deadline checkpoints before the first page
        // (exit 130, TINDUC artifact), and the resumed run produces a
        // byte-identical merged dataset.
        let ckpt = temp_file("cli-update.tuc");
        let ckpt_str = ckpt.to_str().expect("utf8");
        let _ = std::fs::remove_file(&ckpt);
        let sink = temp_file("cli-update-sink.tind");
        let err = run(&["update", "--dump", delta_str, "--data", base_str, "--out",
            sink.to_str().expect("utf8"), "--checkpoint", ckpt_str, "--deadline", "0", "--quiet"])
        .expect_err("zero deadline must interrupt");
        let CliError::Interrupted { summary } = &err else {
            panic!("expected Interrupted, got {err}");
        };
        assert!(summary.contains("checkpointed"), "{summary}");
        assert_eq!(err.exit_code(), 130);
        let verified = run(&["verify", ckpt_str]).expect("update checkpoint verifies");
        assert!(verified.contains("update checkpoint:"), "{verified}");

        let resumed = temp_file("cli-update-resumed.tind");
        let resumed_str = resumed.to_str().expect("utf8");
        let out = run(&["update", "--dump", delta_str, "--data", base_str, "--out", resumed_str,
            "--checkpoint", ckpt_str, "--resume", "--quiet"])
        .expect("resume completes");
        assert!(out.contains("resumed from byte offset"), "{out}");
        assert_eq!(
            std::fs::read(&merged).expect("merged"),
            std::fs::read(&resumed).expect("resumed"),
            "resumed update must be byte-identical to the uninterrupted one"
        );

        // A corrupted update checkpoint is refused with a checksum error
        // (exit 3) that names the failing byte offset.
        let mut rotten = std::fs::read(&ckpt).expect("read checkpoint");
        let mid = rotten.len() / 2;
        rotten[mid] ^= 0xFF;
        std::fs::write(&ckpt, rotten).expect("write corrupted");
        let err = run(&["verify", ckpt_str]).expect_err("corrupt checkpoint refused");
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(err.to_string().contains("offset"), "offset missing from: {err}");

        // --index-out without --index is a usage error.
        assert!(matches!(
            run(&["update", "--dump", delta_str, "--data", base_str, "--out", resumed_str,
                "--index-out", idx2_str]),
            Err(CliError::Message(_))
        ));

        for f in [&dump, &base, &idx, &delta, &merged, &idx2, &idx_cold, &ckpt, &resumed, &sink] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Message("m".into()).exit_code(), 1);
        assert_eq!(CliError::Unknown("u".into()).exit_code(), 2);
        assert_eq!(CliError::Data(BinIoError::Corrupt("c".into())).exit_code(), 3);
        assert_eq!(CliError::Io(std::io::Error::other("io")).exit_code(), 4);
        assert_eq!(
            CliError::Discovery(AllPairsError::Internal("boom")).exit_code(),
            5
        );
        assert_eq!(CliError::Interrupted { summary: String::new() }.exit_code(), 130);
    }
}
