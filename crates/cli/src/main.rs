//! The `tind` binary: thin wrapper over [`tind_cli::dispatch`].

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match tind_cli::dispatch(&raw) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(err.exit_code());
        }
    }
}
