//! Minimal command-line argument parsing.
//!
//! `tind <command> [positional..] [--flag value] [--switch]`. Hand-rolled
//! to stay within the workspace's dependency policy; see DESIGN.md.

use std::collections::BTreeMap;

/// Parsed arguments: positionals in order plus `--key value` / `--switch`
/// options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Errors from argument parsing or typed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared at the end without its value while being
    /// accessed as a valued option.
    MissingValue(String),
    /// A required option was not supplied.
    MissingOption(String),
    /// An option's value failed to parse.
    BadValue {
        /// Option name.
        option: String,
        /// Raw value.
        value: String,
        /// Target type name.
        expected: &'static str,
    },
    /// Two options that cannot be combined were both given.
    Conflict {
        /// First option name.
        a: &'static str,
        /// Second option name.
        b: &'static str,
    },
    /// An option the command does not understand. Rejected up front so a
    /// typo'd `--chekpoint` fails at startup instead of silently running a
    /// long job without checkpointing.
    UnknownOption {
        /// The unrecognized option name.
        option: String,
        /// Closest known option, if any is plausibly what was meant.
        suggestion: Option<String>,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(o) => write!(f, "option --{o} is missing its value"),
            ArgError::MissingOption(o) => write!(f, "required option --{o} not given"),
            ArgError::BadValue { option, value, expected } => {
                write!(f, "option --{option}: cannot parse '{value}' as {expected}")
            }
            ArgError::Conflict { a, b } => {
                write!(f, "options --{a} and --{b} are mutually exclusive")
            }
            ArgError::UnknownOption { option, suggestion } => {
                write!(f, "unknown option --{option}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean --{s}?)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Option names that are boolean switches (take no value).
const SWITCHES: &[&str] = &["help", "demo", "verbose", "quiet", "resume"];

impl Args {
    /// Parses raw arguments (excluding the program and command names).
    pub fn parse<I, S>(raw: I) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    args.switches.push(name.to_string());
                } else {
                    let value =
                        iter.next().ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                    args.options.insert(name.to_string(), value);
                }
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Raw option value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Typed optional value.
    pub fn opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw.parse::<T>().map(Some).map_err(|_| ArgError::BadValue {
                option: name.to_string(),
                value: raw.to_string(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Typed value with a default.
    pub fn opt_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        Ok(self.opt(name)?.unwrap_or(default))
    }

    /// Typed required value.
    pub fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        self.opt(name)?.ok_or_else(|| ArgError::MissingOption(name.to_string()))
    }

    /// Rejects any option or switch not in `allowed`, suggesting the
    /// closest known name when the typo is near (edit distance ≤ 2).
    pub fn expect_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        let given = self.options.keys().map(String::as_str).chain(self.switches.iter().map(String::as_str));
        for name in given {
            if !allowed.contains(&name) {
                let suggestion = allowed
                    .iter()
                    .map(|a| (edit_distance(name, a), *a))
                    .filter(|&(d, _)| d <= 2)
                    .min()
                    .map(|(_, a)| a.to_string());
                return Err(ArgError::UnknownOption { option: name.to_string(), suggestion });
            }
        }
        Ok(())
    }
}

/// Levenshtein distance, for typo suggestions on unknown options.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positionals_options_switches() {
        let a = Args::parse(["fig7", "--seed", "42", "--demo", "--scale", "quick"]).expect("parses");
        assert_eq!(a.positional(), &["fig7".to_string()]);
        assert_eq!(a.get("seed"), Some("42"));
        assert_eq!(a.get("scale"), Some("quick"));
        assert!(a.switch("demo"));
        assert!(!a.switch("help"));
    }

    #[test]
    fn typed_access() {
        let a = Args::parse(["--eps", "3.5", "--delta", "7"]).expect("parses");
        assert_eq!(a.opt::<f64>("eps").expect("ok"), Some(3.5));
        assert_eq!(a.required::<u32>("delta").expect("ok"), 7);
        assert_eq!(a.opt_or::<u64>("seed", 9).expect("ok"), 9);
    }

    #[test]
    fn errors_are_descriptive() {
        let a = Args::parse(["--eps", "abc"]).expect("parses");
        let err = a.opt::<f64>("eps").expect_err("bad value");
        assert!(err.to_string().contains("cannot parse 'abc'"));
        let err = Args::parse(["--seed"]).expect_err("missing value");
        assert_eq!(err, ArgError::MissingValue("seed".to_string()));
        let a = Args::parse::<_, String>([]).expect("empty ok");
        let err = a.required::<u32>("delta").expect_err("missing option");
        assert!(err.to_string().contains("--delta"));
    }

    #[test]
    fn unknown_options_are_rejected_with_suggestions() {
        let a = Args::parse(["--chekpoint", "x.tcp", "--data", "d"]).expect("parses");
        let err = a.expect_known(&["data", "checkpoint", "resume"]).expect_err("unknown");
        assert_eq!(
            err.to_string(),
            "unknown option --chekpoint (did you mean --checkpoint?)"
        );
        a.expect_known(&["data", "chekpoint"]).expect("all known is ok");

        // A switch is checked too, and a wildly wrong name gets no guess.
        let a = Args::parse(["--resume", "--zzzzzz", "1"]).expect("parses");
        let err = a.expect_known(&["resume", "data"]).expect_err("unknown");
        assert_eq!(err.to_string(), "unknown option --zzzzzz");
    }
}
