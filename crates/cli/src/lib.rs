//! # tind-cli
//!
//! The `tind` command-line tool: dataset generation, interactive tIND
//! search, all-pairs discovery, the wiki extraction pipeline, and the full
//! experiment suite.
//!
//! ```text
//! tind generate --attributes 5000 --seed 1 --out data.tind
//! tind stats --data data.tind
//! tind search --data data.tind --query source-3 --eps 3 --delta 7
//! tind reverse-search --data data.tind --query source-3
//! tind all-pairs --data data.tind --threads 8
//! tind store pack --data data.tind --out data.store --shards 4
//! tind serve --data data.tind --port 0 --port-file port.txt
//! tind pipeline --demo --attributes 200
//! tind experiment fig7 --scale quick
//! tind experiment all --scale standard
//! tind list-experiments
//! ```

pub mod args;
pub mod commands;

pub use commands::{dispatch, CliError};

/// Usage text shown by `tind help`.
pub const USAGE: &str = "\
tind — temporal inclusion dependency discovery (EDBT 2024 reproduction)

USAGE:
  tind <command> [options]

COMMANDS:
  generate          generate a synthetic Wikipedia-shaped dataset
                      --attributes N  (default 1000)
                      --seed S        (default 42)
                      --preset small|paper (default paper)
                      --out FILE      (required)
                      [--truth-out FILE]  export genuine pairs as CSV
  stats             print dataset statistics
                      --data FILE
  search            tIND search for one query attribute
                      --data FILE --query NAME-OR-ID
                      [--eps DAYS=3] [--delta DAYS=7] [--decay A] [--limit K=20]
                      [--batch A,B,C]   search many queries in one batched
                                        index walk instead of --query
                      [--threads T=0]   batch worker threads (0 = all cores)
                      [--build-threads T=0]  index build workers (0 = all cores;
                                        output is identical at any count)
                      [--report FILE]   write a TINDRR run report (see below)
                      [--trace FILE]    write a TINDTF trace of the query's
                                        stage 1–4 timeline (render: tind trace)
  reverse-search    reverse tIND search (who is contained in the query)
                      same options as search
  partial-search    σ-partial tIND search (future-work extension: only a
                    fraction σ of the LHS must be δ-contained per timestamp)
                      same options as search, plus [--sigma S=0.8]
  explain           show where and why a candidate (in)validates
                      --data FILE --lhs NAME-OR-ID --rhs NAME-OR-ID
                      [--eps DAYS=3] [--delta DAYS=7] [--decay A]
  top-k             rank right-hand sides by violation weight
                      --data FILE --query NAME-OR-ID [--k K=5] [--delta D=7] [--decay A]
  all-pairs         discover all tINDs
                      --data FILE [--eps DAYS=3] [--delta DAYS=7] [--threads T]
                      [--checkpoint FILE]    periodically persist progress
                      [--checkpoint-every N=256]  queries between checkpoints
                      [--resume]             continue from --checkpoint FILE
                      [--deadline SECS]      stop gracefully after a wall-clock budget
                      [--memory-limit BYTES] degrade parallelism under a memory budget
                      [--quiet]              suppress periodic progress lines
                      [--progress N]         progress line every N queries
                      [--report FILE]        write a TINDRR run report
                      [--trace FILE]         write a TINDTF trace of the run
                    (Ctrl-C checkpoints and exits 130; resumed runs produce
                    byte-identical results)
  verify            check a persisted artifact's magic and checksum
                      <FILE> [--data FILE]   dataset, index, checkpoint,
                                             ingest-checkpoint, quarantine,
                                             store manifest/shard, or
                                             TINDRR run-report file
                      <DIR>                  a store directory: verifies the
                                             manifest and every shard digest
                                             (TINDTF trace files verify too)
                      [--schema FILE]        validate a run report against a
                                             JSON schema (devtools/report-schema.json)
                      [--quarantine FILE]    cross-check a run report's
                                             ingest.quarantined_total gauge
                                             against a quarantine artifact
  index             build and persist an index file
                      --data FILE --out FILE [--m M=4096] [--eps E=3] [--delta D=7]
                      [--reverse true] [--build-threads T=0] [--report FILE]
                    (search/reverse-search/top-k/explore accept --index FILE)
  store             crash-safe sharded index store (atomic commits, CRC-bound
                    shards, corrupt-shard quarantine and repair)
                      pack    --data FILE --out DIR [--shards N=auto] [--m M=4096]
                              [--eps E=3] [--delta D=7] [--reverse true]
                              [--format legacy|arena]  on-disk shard layout;
                              arena opens zero-copy via mmap (instant start)
                              [--index FILE]  re-shard a monolithic index file
                      verify  <DIR> (or --store DIR) — manifest + shard digests
                      repair  --store DIR --data FILE — rebuild quarantined
                              shards byte-identical to the manifest digests
                      migrate --store DIR --data FILE [--format arena]
                              rewrite an intact store in another layout as a
                              new generation (same atomic commit point)
                    (search/reverse-search/serve accept --store DIR; a store
                    with quarantined shards opens degraded: live attributes
                    stay exact, masked ones are excluded until repair)
  explore           interactive query loop on stdin
                      --data FILE [--index FILE]
  serve             fault-contained HTTP query daemon on a hot index
                      --data FILE [--host H=127.0.0.1] [--port P=7171]
                      [--store DIR]        load the index from a sharded store;
                                           quarantined shards serve degraded
                                           (typed shard_unavailable 503s) and a
                                           background re-verify promotes back
                      [--reverify-ms MS=500]  degraded re-verify poll interval
                      [--port-file FILE]   write the bound port (0 = ephemeral)
                      [--eps E=3] [--delta D=7] [--decay A]  index sizing defaults
                      [--workers N=0] [--readers N=0] [--queue N=64]
                      [--coalesce N=16]    max searches batched into one wave
                      [--deadline-ms MS=2000] [--max-deadline-ms MS=30000]
                      [--read-timeout-ms MS=2000] [--write-timeout-ms MS=2000]
                      [--max-body-bytes B=1048576] [--memory-limit BYTES]
                      [--drain-grace-ms MS=5000] [--build-threads T=0]
                      [--cache N=0]        result-cache capacity in entries (0 = off);
                                           Engine::apply_delta invalidates only the
                                           entries a delta affected
                      [--plan-cache N=0]   validation-plan LRU keyed by
                                           (attribute, eps, delta, weights); delta
                                           ingestion evicts touched entries
                      [--store-backing auto|heap|mmap|windowed]
                                           how --store shards back the index:
                                           mmap borrows zero-copy, windowed preads
                                           sections on demand under --memory-limit
                      [--trace-last N=4]   tail-sample N slowest + N most recent
                                           request traces for GET /debug/trace
                                           (0 = retain none)
                      [--metrics-tick-ms MS=1000]  metrics-history snapshot
                                           period (0 = off); GET /metrics/history
                      [--quiet] [--report FILE]
                    (POST /search /reverse-search /explain, GET /healthz /metrics
                    /metrics/history /debug/trace?last=N&format=json|tindtf;
                    request header `X-Tind-Trace: 1` force-samples a trace and
                    returns its id in X-Tind-Trace-Id; overload sheds with 429 +
                    retry_after_ms, deadlines return 504, panics are quarantined
                    as 500; SIGINT/SIGTERM drains, flushes --report, and exits 130)
  pipeline          run the wiki extraction pipeline
                      --demo [--attributes N=200] [--seed S]
                      --dump FILE [--timeline N=6148] [--out FILE]
                    (ingests a MediaWiki XML export with vandalism filtering)
  ingest            resilient streaming dump ingestion (quarantine + resume)
                      --dump FILE --out FILE [--timeline N=6148] [--epoch YYYY-MM-DD]
                      [--max-page-bytes B=8388608]  skip (quarantine) larger pages
                      [--max-error-rate F=0.05]     abort above this quarantine rate
                      [--memory-limit BYTES]        bound held page bytes
                      [--checkpoint FILE]           persist page-granular progress
                      [--checkpoint-every N=512]    pages between checkpoints
                      [--resume]                    continue from --checkpoint FILE
                      [--deadline SECS] [--quarantine-report FILE] [--quiet]
                      [--progress N=1000] [--report FILE]
                    (Ctrl-C checkpoints and exits 130; resumed runs produce
                    byte-identical datasets; bad pages are quarantined, not fatal)
  update            incremental delta ingestion on top of an existing dataset,
                    with semi-naive index maintenance (no cold rebuild)
                      --dump FILE --data BASE --out FILE
                      [--index FILE]      update this index in place via
                                          core::delta (refused when the delta
                                          touches a quarantined store shard)
                      [--index-out FILE]  write the updated index here instead
                      [--compact]         cold-rebuild the index after applying
                                          the delta (realigns drifted slices)
                      [--epoch YYYY-MM-DD] [--max-page-bytes B] [--max-error-rate F]
                      [--memory-limit BYTES] [--checkpoint FILE] [--checkpoint-every N=512]
                      [--resume] [--deadline SECS] [--quarantine-report FILE]
                      [--quiet] [--progress N=1000] [--report FILE]
                    (delta pages carry the FULL revision history of changed or
                    new pages; Ctrl-C checkpoints (TINDUC) and exits 130;
                    kill/resume is byte-identical)
  trace             render a TINDTF trace file as a span waterfall
                      <FILE> (or --file FILE)
                      [--chrome OUT]  export Chrome trace_event JSON
                                      (load in chrome://tracing or Perfetto)
                      [--diff FILE2]  per-span-name duration comparison
                    (produce traces with search/all-pairs --trace FILE, or from
                    a daemon via GET /debug/trace?format=tindtf)
  experiment        run a paper experiment (or 'all')
                      <id|all> [--scale quick|standard|full] [--seed S]
                      [--threads T] [--attributes N] [--queries Q] [--csv-dir DIR]
  list-experiments  list experiment ids and descriptions
  help              show this message

OBSERVABILITY:
  Commands accepting --report FILE write a one-line checksummed JSON run
  report (magic TINDRR1): phase timings, span aggregates, and the full
  metrics registry. `tind verify report.json --schema devtools/report-schema.json`
  checks it; DESIGN.md §Observability documents the span and metric names.
  Commands accepting --trace FILE write a checksummed TINDTF trace of the
  request timeline; `tind trace FILE` renders it, `tind verify FILE`
  checks it, and `tind trace FILE --chrome OUT` exports Chrome JSON.

EXIT CODES:
  0 ok · 1 error · 2 bad usage · 3 corrupt or mismatched data · 4 i/o
  5 discovery failure · 130 interrupted (progress checkpointed when enabled)
";
