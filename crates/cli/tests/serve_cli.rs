//! Subprocess tests for `tind serve`: the signal path (SIGINT/SIGTERM →
//! graceful drain → exit 130) and the `--report` flush can only be
//! observed against the real binary, so these tests spawn it.
//!
//! The binary is located via `CARGO_BIN_EXE_tind` (cargo) or the
//! `TIND_BIN` env var (the offline-check harness). When neither is
//! present the tests skip rather than fail.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tind_bin() -> Option<PathBuf> {
    if let Some(path) = option_env!("CARGO_BIN_EXE_tind") {
        return Some(path.into());
    }
    std::env::var_os("TIND_BIN").map(Into::into)
}

/// The report schema ships in-repo; its location depends on the test
/// runner's working directory (crate dir under cargo, repo root under
/// the offline harness).
fn schema_path() -> Option<PathBuf> {
    if let Some(path) = std::env::var_os("TIND_SCHEMA") {
        return Some(path.into());
    }
    ["devtools/report-schema.json", "../../devtools/report-schema.json"]
        .iter()
        .map(PathBuf::from)
        .find(|p| p.is_file())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tind-serve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Sends one raw HTTP request to the daemon, returns `(status, body)`.
fn request(port: u16, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    let head = format!("{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).expect("write");
    stream.write_all(body.as_bytes()).expect("write body");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status");
    (status, raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string())
}

/// Generates a small dataset file with the binary itself.
fn generate_dataset(bin: &PathBuf, dir: &PathBuf) -> PathBuf {
    let data = dir.join("world.tind");
    let status = Command::new(bin)
        .args(["generate", "--attributes", "80", "--seed", "7", "--preset", "small", "--out"])
        .arg(&data)
        .stdout(Stdio::null())
        .status()
        .expect("run generate");
    assert!(status.success(), "generate failed");
    data
}

/// Waits for the daemon to publish its ephemeral port and report
/// `"serving"` on /healthz.
fn wait_ready(port_file: &PathBuf, child: &mut Child) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(60);
    let port = loop {
        if let Some(code) = child.try_wait().expect("try_wait") {
            panic!("daemon exited early: {code:?}");
        }
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse::<u16>() {
                if port != 0 {
                    break port;
                }
            }
        }
        assert!(Instant::now() < deadline, "port file never appeared");
        std::thread::sleep(Duration::from_millis(25));
    };
    loop {
        if let Ok(mut stream) = TcpStream::connect(("127.0.0.1", port)) {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let mut raw = String::new();
            let _ = stream.read_to_string(&mut raw);
            if raw.contains("\"serving\"") {
                break;
            }
        }
        assert!(Instant::now() < deadline, "daemon never reached serving");
        std::thread::sleep(Duration::from_millis(25));
    }
    port
}

fn signal(child: &Child, sig: &str) {
    let status = Command::new("kill")
        .args([sig, &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill {sig} failed");
}

#[test]
fn sigint_drains_flushes_the_report_and_exits_130() {
    let Some(bin) = tind_bin() else {
        eprintln!("skipped: no tind binary (set TIND_BIN)");
        return;
    };
    let dir = scratch("sigint");
    let data = generate_dataset(&bin, &dir);
    let port_file = dir.join("port.txt");
    let report = dir.join("report.json");

    let mut child = Command::new(&bin)
        .args(["serve", "--port", "0", "--quiet", "--data"])
        .arg(&data)
        .arg("--port-file")
        .arg(&port_file)
        .arg("--report")
        .arg(&report)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let port = wait_ready(&port_file, &mut child);

    let (status, body) = request(port, "POST", "/search", "{\"query\":\"source-1\",\"limit\":5}");
    assert_eq!(status, 200, "search failed: {body}");
    assert!(body.contains("\"result_count\""), "unexpected body: {body}");

    signal(&child, "-INT");
    let exit = child.wait().expect("wait");
    assert_eq!(exit.code(), Some(130), "serve must exit 130 on SIGINT");

    let written = std::fs::metadata(&report).expect("report written").len();
    assert!(written > 0, "report is empty");
    if let Some(schema) = schema_path() {
        let verify = Command::new(&bin)
            .arg("verify")
            .arg(&report)
            .arg("--schema")
            .arg(schema)
            .output()
            .expect("run verify");
        assert!(
            verify.status.success(),
            "report failed schema verification: {}",
            String::from_utf8_lossy(&verify.stdout)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_is_honoured_like_sigint() {
    let Some(bin) = tind_bin() else {
        eprintln!("skipped: no tind binary (set TIND_BIN)");
        return;
    };
    let dir = scratch("sigterm");
    let data = generate_dataset(&bin, &dir);
    let port_file = dir.join("port.txt");

    let mut child = Command::new(&bin)
        .args(["serve", "--port", "0", "--quiet", "--data"])
        .arg(&data)
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let port = wait_ready(&port_file, &mut child);

    let (status, _) = request(port, "GET", "/metrics", "");
    assert_eq!(status, 200);

    signal(&child, "-TERM");
    let exit = child.wait().expect("wait");
    assert_eq!(exit.code(), Some(130), "serve must exit 130 on SIGTERM");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--trace` → `verify` → `trace` round-trip against the real binary:
/// each invocation is its own process, so the trace file must carry the
/// full story across process boundaries.
#[test]
fn search_trace_roundtrips_through_verify_and_render() {
    let Some(bin) = tind_bin() else {
        eprintln!("skipped: no tind binary (set TIND_BIN)");
        return;
    };
    let dir = scratch("trace");
    let data = generate_dataset(&bin, &dir);
    let trace = dir.join("query.tindtf");

    let run = |args: &[&std::ffi::OsStr]| -> (bool, String) {
        let out = Command::new(&bin).args(args).output().expect("run tind");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.success(), text)
    };
    let os = |s: &str| -> std::ffi::OsString { s.into() };

    // A traced search writes the TINDTF file and answers normally.
    let args: Vec<std::ffi::OsString> = vec![
        os("search"), os("--data"), data.clone().into(), os("--query"), os("source-1"),
        os("--trace"), trace.clone().into(),
    ];
    let (ok, out) = run(&args.iter().map(AsRef::as_ref).collect::<Vec<_>>());
    assert!(ok, "traced search failed: {out}");
    assert!(trace.is_file(), "trace file written");

    // `tind verify` sniffs the TINDTF envelope and summarizes it.
    let args: Vec<std::ffi::OsString> = vec![os("verify"), trace.clone().into()];
    let (ok, out) = run(&args.iter().map(AsRef::as_ref).collect::<Vec<_>>());
    assert!(ok, "verify failed: {out}");
    assert!(out.contains("trace:"), "{out}");
    assert!(out.contains("coverage"), "{out}");

    // `tind trace` renders a waterfall with the stage spans.
    let args: Vec<std::ffi::OsString> = vec![os("trace"), trace.clone().into()];
    let (ok, out) = run(&args.iter().map(AsRef::as_ref).collect::<Vec<_>>());
    assert!(ok, "render failed: {out}");
    assert!(out.contains("cli.search"), "root span rendered: {out}");
    assert!(out.contains("core.search"), "stage spans rendered: {out}");

    // Chrome export + self-diff exercise the remaining verbs.
    let chrome = dir.join("chrome.json");
    let args: Vec<std::ffi::OsString> = vec![
        os("trace"), trace.clone().into(), os("--chrome"), chrome.clone().into(),
        os("--diff"), trace.clone().into(),
    ];
    let (ok, out) = run(&args.iter().map(AsRef::as_ref).collect::<Vec<_>>());
    assert!(ok, "chrome/diff failed: {out}");
    let chrome_text = std::fs::read_to_string(&chrome).expect("chrome file");
    assert!(chrome_text.contains("\"ph\":\"X\""), "{chrome_text}");

    // A corrupted trace is refused with the failing byte offset named.
    let mut bytes = std::fs::read(&trace).expect("read trace");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&trace, &bytes).expect("corrupt trace");
    let args: Vec<std::ffi::OsString> = vec![os("verify"), trace.clone().into()];
    let (ok, out) = run(&args.iter().map(AsRef::as_ref).collect::<Vec<_>>());
    assert!(!ok, "corrupt trace must be refused");
    assert!(out.contains("byte offset"), "refusal names the offset: {out}");
    let _ = std::fs::remove_dir_all(&dir);
}
