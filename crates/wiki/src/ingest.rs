//! Resilient streaming ingestion: dump stream → dataset, survivably.
//!
//! Extraction over a full-history dump is the dominant cost of the whole
//! system (hours at paper scale, §5.1), so this module gives ingestion
//! the same failure model PR 1 gave discovery:
//!
//! * **Quarantine, don't abort.** Every per-page failure — a typed
//!   [`DumpError`], a wikitext-processing panic (caught by
//!   [`PipelineSession::push_page`], mirroring `core::allpairs` panic
//!   isolation), an oversized page, a memory-budget refusal — is counted
//!   and sampled into a [`QuarantineReport`], and the stream continues.
//!   A configurable error budget ([`IngestConfig::max_error_rate`])
//!   aborts the run only when the quarantine *rate* shows the input is
//!   garbage rather than merely imperfect.
//! * **Page-granular checkpoint/resume.** An [`IngestCheckpoint`]
//!   (`TINDIC` magic, CRC-32 trailer, source-fingerprint and
//!   config-digest guards — the `core::checkpoint` conventions) persists
//!   the byte offset after the last completed page plus the partial
//!   dataset, so a killed ingestion resumes exactly where it stopped and
//!   produces a **byte-identical** dataset: pages are processed
//!   independently in stream order and dictionary interning is
//!   deterministic.
//! * **Bounded memory.** The [`DumpReader`] holds at most one page
//!   (hard-capped) plus constant state, and charges held pages against a
//!   [`MemoryBudget`].
//!
//! Cancellation is cooperative via a plain closure
//! ([`IngestOptions::should_stop`]) rather than `tind_core`'s
//! `CancelToken` — this crate sits below `tind-core` in the dependency
//! graph, and the CLI adapts its token to the closure.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tind_model::binio::{
    check_magic, decode_dataset, encode_dataset, get_varint, put_varint, BinIoError,
};
use tind_model::checksum;
use tind_model::quarantine::DEFAULT_SAMPLE_CAP;
use tind_model::{Dataset, MemoryBudget, QuarantineReport};

use crate::dump::{DumpConfig, DumpItem, DumpReader, DEFAULT_MAX_PAGE_BYTES};
use crate::pipeline::{panic_message, PipelineConfig, PipelineReport, PipelineSession};

/// Magic bytes identifying a serialized ingestion checkpoint, including a
/// format version.
pub const INGEST_CHECKPOINT_MAGIC: &[u8; 8] = b"TINDIC\x00\x01";

fn corrupt(msg: impl Into<String>) -> BinIoError {
    BinIoError::Corrupt(msg.into())
}

/// Everything that determines *what* an ingestion run produces.
///
/// The [`IngestConfig::digest`] of these parameters guards checkpoint
/// resume: resuming under a different epoch, timeline, filter set, or
/// page cap would silently mix incompatible partial datasets.
/// `max_error_rate` and the sampling knobs are deliberately excluded —
/// they control when a run *aborts*, not what it *produces*.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Dump parsing configuration (epoch).
    pub dump: DumpConfig,
    /// Extraction pipeline configuration (timeline, filters, vandalism).
    pub pipeline: PipelineConfig,
    /// Hard cap on one `<page>` element, in bytes.
    pub max_page_bytes: usize,
    /// Abort once more than this fraction of seen pages is quarantined
    /// (checked only after [`IngestConfig::error_rate_min_pages`]).
    pub max_error_rate: f64,
    /// Minimum pages seen before the error budget is enforced, so one
    /// bad page at the start of a stream does not abort it.
    pub error_rate_min_pages: u64,
    /// Cap on sampled quarantine entries.
    pub sample_cap: usize,
}

impl IngestConfig {
    /// Default configuration over a timeline of `timeline_days`.
    pub fn new(timeline_days: u32) -> Self {
        IngestConfig {
            dump: DumpConfig::default(),
            pipeline: PipelineConfig::new(timeline_days),
            max_page_bytes: DEFAULT_MAX_PAGE_BYTES,
            max_error_rate: 0.05,
            error_rate_min_pages: 20,
            sample_cap: DEFAULT_SAMPLE_CAP,
        }
    }

    /// Digest of the result-determining parameters (see type docs).
    pub fn digest(&self) -> u64 {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.dump.epoch.0 as u64);
        put_varint(&mut buf, u64::from(self.dump.epoch.1));
        put_varint(&mut buf, u64::from(self.dump.epoch.2));
        put_varint(&mut buf, u64::from(self.pipeline.timeline_days));
        buf.put_u8(u8::from(self.pipeline.drop_vandalism));
        buf.put_f64(self.pipeline.filters.max_numeric_fraction);
        put_varint(&mut buf, self.pipeline.filters.min_versions as u64);
        put_varint(&mut buf, self.pipeline.filters.min_median_cardinality as u64);
        put_varint(&mut buf, self.max_page_bytes as u64);
        tind_model::hash::hash_bytes(&buf)
    }
}

/// Where and how often to persist ingestion checkpoints.
#[derive(Debug, Clone)]
pub struct IngestCheckpointPolicy {
    /// Checkpoint file path (written atomically: temp file + rename).
    pub path: PathBuf,
    /// Checkpoint after every N pages (0 = only on cancel/abort).
    pub every_pages: u64,
}

/// Cooperative stop signal, polled once per page.
pub type StopSignal = Arc<dyn Fn() -> bool + Send + Sync>;

/// Test-only fault injection: called with each page's ordinal before the
/// page is processed; a panic here is quarantined exactly like a
/// pipeline panic (mirrors `core::fault` hooks).
pub type PageFaultHook = Arc<dyn Fn(u64) + Send + Sync>;

/// Progress snapshot handed to [`IngestOptions::progress`] per page.
#[derive(Debug, Clone, Copy)]
pub struct IngestProgress {
    /// Pages encountered so far.
    pub pages_seen: u64,
    /// Pages quarantined so far.
    pub pages_quarantined: u64,
    /// Absolute stream offset consumed so far.
    pub offset: u64,
}

/// Runtime options of one ingestion run.
pub struct IngestOptions {
    /// Checkpoint persistence (None = never persist).
    pub checkpoint: Option<IngestCheckpointPolicy>,
    /// Resume from the checkpoint at `checkpoint.path` instead of
    /// starting fresh.
    pub resume: bool,
    /// Budget charged for each held page.
    pub memory_budget: MemoryBudget,
    /// Polled once per page; `true` checkpoints and stops.
    pub should_stop: Option<StopSignal>,
    /// Per-page progress callback.
    pub progress: Option<Box<dyn FnMut(&IngestProgress)>>,
    /// Fault injection for tests.
    pub fault_hook: Option<PageFaultHook>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            checkpoint: None,
            resume: false,
            memory_budget: MemoryBudget::unlimited(),
            should_stop: None,
            progress: None,
            fault_hook: None,
        }
    }
}

/// Errors that abort an ingestion run (everything page-local is
/// quarantined instead).
#[derive(Debug)]
pub enum IngestError {
    /// The source stream failed mid-read.
    Io(std::io::Error),
    /// A checkpoint could not be read, written, or does not belong to
    /// this source/configuration.
    Checkpoint(BinIoError),
    /// Resume was requested but cannot proceed (no checkpoint path, or
    /// the source is shorter than the checkpointed offset).
    ResumeMismatch(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingestion I/O error: {e}"),
            IngestError::Checkpoint(e) => write!(f, "ingestion checkpoint: {e}"),
            IngestError::ResumeMismatch(m) => write!(f, "cannot resume: {m}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// How an ingestion run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestStatus {
    /// The stream was fully consumed.
    Completed,
    /// [`IngestOptions::should_stop`] asked for an early exit; the
    /// checkpoint (if configured) holds the progress.
    Cancelled,
    /// The quarantine rate exceeded [`IngestConfig::max_error_rate`].
    ErrorBudgetExceeded,
}

/// Result of an ingestion run.
pub struct IngestOutcome {
    /// How the run ended.
    pub status: IngestStatus,
    /// The extracted dataset — `Some` only for completed runs.
    pub dataset: Option<Dataset>,
    /// Quarantine counters and samples.
    pub quarantine: QuarantineReport,
    /// Extraction pipeline counters.
    pub pipeline: PipelineReport,
    /// Offset this run resumed from, if it did.
    pub resumed_from: Option<u64>,
}

/// Persistent snapshot of an ingestion run after some prefix of pages.
///
/// Follows the workspace on-disk conventions: 8-byte magic+version,
/// varint fields, guard digests, CRC-32 trailer, atomic write. The
/// partial dataset and the quarantine report are embedded as
/// length-prefixed blobs in their own formats (each carrying its own
/// magic and checksum).
#[derive(Debug, Clone, PartialEq)]
pub struct IngestCheckpoint {
    /// Fingerprint of the source stream (see [`fingerprint_source`]).
    pub source_fingerprint: u64,
    /// [`IngestConfig::digest`] of the run's parameters.
    pub config_digest: u64,
    /// Absolute byte offset just past the last completed page.
    pub resume_offset: u64,
    /// Fallback-id counter state (pages without `<id>`), so resumed runs
    /// assign identical ids.
    pub next_fallback_page_id: u32,
    /// Quarantine state as of the checkpoint.
    pub quarantine: QuarantineReport,
    /// Pipeline counters as of the checkpoint.
    pub pipeline: PipelineReport,
    /// The partial dataset, encoded with [`encode_dataset`].
    pub dataset_bytes: Bytes,
}

fn put_report(buf: &mut BytesMut, r: &PipelineReport) {
    for v in [
        r.pages,
        r.revisions,
        r.vandalism_dropped,
        r.out_of_range_dropped,
        r.duplicate_dropped,
        r.tables_tracked,
        r.columns_tracked,
        r.attributes_before_filters,
        r.attributes_kept,
    ] {
        put_varint(buf, v as u64);
    }
}

fn get_report(buf: &mut Bytes) -> Result<PipelineReport, BinIoError> {
    let mut next = || -> Result<usize, BinIoError> { Ok(get_varint(buf)? as usize) };
    Ok(PipelineReport {
        pages: next()?,
        revisions: next()?,
        vandalism_dropped: next()?,
        out_of_range_dropped: next()?,
        duplicate_dropped: next()?,
        tables_tracked: next()?,
        columns_tracked: next()?,
        attributes_before_filters: next()?,
        attributes_kept: next()?,
    })
}

fn get_blob(buf: &mut Bytes, what: &str) -> Result<Bytes, BinIoError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(corrupt(format!("truncated {what} blob")));
    }
    Ok(buf.copy_to_bytes(len))
}

impl IngestCheckpoint {
    /// Verifies this checkpoint belongs to the given source and
    /// configuration; a mismatch means the operator pointed a resume at
    /// the wrong file, and blindly continuing would corrupt the dataset.
    pub fn verify_matches(
        &self,
        source_fingerprint: u64,
        config_digest: u64,
    ) -> Result<(), BinIoError> {
        if self.source_fingerprint != source_fingerprint {
            return Err(corrupt(
                "ingest checkpoint fingerprint does not match the dump (wrong or stale checkpoint)",
            ));
        }
        if self.config_digest != config_digest {
            return Err(corrupt(
                "ingest checkpoint was created under different parameters (epoch, timeline, filters, or page cap)",
            ));
        }
        Ok(())
    }

    /// Serializes the checkpoint.
    pub fn encode(&self) -> Bytes {
        let q = self.quarantine.encode();
        let mut buf = BytesMut::with_capacity(64 + q.len() + self.dataset_bytes.len());
        buf.put_slice(INGEST_CHECKPOINT_MAGIC);
        buf.put_u64_le(self.source_fingerprint);
        buf.put_u64_le(self.config_digest);
        put_varint(&mut buf, self.resume_offset);
        put_varint(&mut buf, u64::from(self.next_fallback_page_id));
        put_varint(&mut buf, q.len() as u64);
        buf.put_slice(&q);
        put_report(&mut buf, &self.pipeline);
        put_varint(&mut buf, self.dataset_bytes.len() as u64);
        buf.put_slice(&self.dataset_bytes);
        checksum::append_trailer(&mut buf);
        buf.freeze()
    }

    /// Deserializes a checkpoint written by [`IngestCheckpoint::encode`],
    /// verifying magic, version, and checksum trailer (the embedded
    /// quarantine report is fully validated; the dataset blob is decoded
    /// by the resume path).
    pub fn decode(bytes: Bytes) -> Result<IngestCheckpoint, BinIoError> {
        check_magic(&bytes, INGEST_CHECKPOINT_MAGIC, "ingest checkpoint")?;
        let mut buf = checksum::verify_and_strip(bytes)?;
        buf.advance(INGEST_CHECKPOINT_MAGIC.len());
        if buf.remaining() < 16 {
            return Err(corrupt("truncated ingest checkpoint header"));
        }
        let source_fingerprint = buf.get_u64_le();
        let config_digest = buf.get_u64_le();
        let resume_offset = get_varint(&mut buf)?;
        let next_fallback_page_id = u32::try_from(get_varint(&mut buf)?)
            .map_err(|_| corrupt("fallback page id overflows u32"))?;
        let quarantine = QuarantineReport::decode(get_blob(&mut buf, "quarantine")?)?;
        let pipeline = get_report(&mut buf)?;
        let dataset_bytes = get_blob(&mut buf, "dataset")?;
        if buf.has_remaining() {
            return Err(corrupt("trailing bytes after ingest checkpoint"));
        }
        Ok(IngestCheckpoint {
            source_fingerprint,
            config_digest,
            resume_offset,
            next_fallback_page_id,
            quarantine,
            pipeline,
            dataset_bytes,
        })
    }

    /// Atomically writes the checkpoint (temp file + rename).
    pub fn write_file(&self, path: &Path) -> Result<(), BinIoError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a checkpoint from `path`.
    pub fn read_file(path: &Path) -> Result<IngestCheckpoint, BinIoError> {
        let raw = std::fs::read(path)?;
        IngestCheckpoint::decode(Bytes::from(raw))
    }
}

/// Fingerprints a dump file cheaply: length plus a hash of the first
/// 64 KiB. Guards checkpoint resume against pointing at a different (or
/// regenerated) dump without re-reading hundreds of gigabytes.
pub fn fingerprint_source(path: &Path) -> std::io::Result<u64> {
    let mut file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    let mut head = vec![0u8; 64 * 1024];
    let mut filled = 0usize;
    loop {
        match file.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        if filled == head.len() {
            break;
        }
    }
    let mut buf = BytesMut::with_capacity(8 + filled);
    buf.put_u64_le(len);
    buf.put_slice(&head[..filled]);
    Ok(tind_model::hash::hash_bytes(&buf))
}

fn save_checkpoint(
    policy: &IngestCheckpointPolicy,
    source_fingerprint: u64,
    config_digest: u64,
    resume_offset: u64,
    next_fallback_page_id: u32,
    session: &PipelineSession,
    quarantine: &QuarantineReport,
) -> Result<(), IngestError> {
    let cp = IngestCheckpoint {
        source_fingerprint,
        config_digest,
        resume_offset,
        next_fallback_page_id,
        quarantine: quarantine.clone(),
        pipeline: session.report().clone(),
        dataset_bytes: encode_dataset(&session.snapshot()),
    };
    cp.write_file(&policy.path).map_err(IngestError::Checkpoint)
}

/// Runs resilient streaming ingestion over `src`.
///
/// `source_fingerprint` identifies the stream (use
/// [`fingerprint_source`] for files); it is stored in checkpoints and
/// the quarantine report and guards resume.
pub fn ingest_stream<R: Read>(
    mut src: R,
    source_fingerprint: u64,
    config: &IngestConfig,
    mut options: IngestOptions,
) -> Result<IngestOutcome, IngestError> {
    let _run_span = tind_obs::span("wiki.ingest.run");
    let pages_seen_c = tind_obs::counter("ingest.pages_seen");
    let pages_kept_c = tind_obs::counter("ingest.pages_kept");
    // Running mirror of `QuarantineReport::pages_quarantined`; `tind verify
    // --quarantine` cross-checks the reported value against the artifact.
    let quarantined_g = tind_obs::gauge("ingest.quarantined_total");
    let config_digest = config.digest();
    let mut resumed_from = None;
    let mut base_offset = 0u64;
    let mut fallback_page_id = 1_000_000u32;

    let (mut session, mut quarantine) = if options.resume {
        let policy = options.checkpoint.as_ref().ok_or_else(|| {
            IngestError::ResumeMismatch("resume requested without a checkpoint path".into())
        })?;
        let cp = IngestCheckpoint::read_file(&policy.path).map_err(IngestError::Checkpoint)?;
        cp.verify_matches(source_fingerprint, config_digest).map_err(IngestError::Checkpoint)?;
        let partial = decode_dataset(cp.dataset_bytes.clone()).map_err(IngestError::Checkpoint)?;
        base_offset = cp.resume_offset;
        fallback_page_id = cp.next_fallback_page_id;
        resumed_from = Some(base_offset);
        // Fast-forward the source to the checkpointed offset.
        let skipped = std::io::copy(&mut (&mut src).take(base_offset), &mut std::io::sink())?;
        if skipped != base_offset {
            return Err(IngestError::ResumeMismatch(format!(
                "source ends after {skipped} bytes, before the checkpoint offset {base_offset}"
            )));
        }
        (
            PipelineSession::resume(config.pipeline.clone(), partial, cp.pipeline),
            cp.quarantine,
        )
    } else {
        (
            PipelineSession::new(config.pipeline.clone()),
            QuarantineReport::new(source_fingerprint, config.sample_cap),
        )
    };

    quarantined_g.set(quarantine.pages_quarantined as f64);

    let mut reader = DumpReader::new(src, config.dump.clone())
        .with_max_page_bytes(config.max_page_bytes)
        .with_memory_budget(options.memory_budget.clone())
        .with_base_offset(base_offset)
        .with_fallback_page_id(fallback_page_id);

    let mut since_checkpoint = 0u64;
    loop {
        if options.should_stop.as_ref().is_some_and(|stop| stop()) {
            if let Some(policy) = &options.checkpoint {
                save_checkpoint(
                    policy,
                    source_fingerprint,
                    config_digest,
                    reader.offset(),
                    reader.fallback_page_id(),
                    &session,
                    &quarantine,
                )?;
            }
            let (_, pipeline) = session.finish();
            return Ok(IngestOutcome {
                status: IngestStatus::Cancelled,
                dataset: None,
                quarantine,
                pipeline,
                resumed_from,
            });
        }
        let Some(item) = reader.next() else {
            break;
        };
        let item = match item {
            Ok(item) => item,
            Err(e) => {
                // Best-effort checkpoint so the run can resume after the
                // I/O fault is fixed; the read error is the one reported.
                if let Some(policy) = &options.checkpoint {
                    let _ = save_checkpoint(
                        policy,
                        source_fingerprint,
                        config_digest,
                        reader.offset(),
                        reader.fallback_page_id(),
                        &session,
                        &quarantine,
                    );
                }
                return Err(IngestError::Io(e));
            }
        };
        let _page_span = tind_obs::span("wiki.ingest.page");
        let page_ordinal = quarantine.pages_seen;
        quarantine.pages_seen += 1;
        pages_seen_c.incr();
        match item {
            DumpItem::Quarantined(q) => {
                quarantine.record(q.byte_offset, q.page, q.error.to_string());
                quarantined_g.set(quarantine.pages_quarantined as f64);
            }
            DumpItem::Page(group) => {
                quarantine.revisions_dropped += group.revisions_dropped;
                let title = group
                    .revisions
                    .last()
                    .map(|r| r.title.clone())
                    .unwrap_or_else(|| "<empty page>".into());
                let revisions = group.revisions.len() as u64;
                let start_offset = group.start_offset;
                // The fault hook runs under the same isolation as the
                // pipeline: a panic quarantines this page only.
                let hook = options.fault_hook.clone();
                let hook_ok = match hook {
                    Some(h) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        h(page_ordinal)
                    }))
                    .map_err(panic_message),
                    None => Ok(()),
                };
                let pushed = hook_ok.and_then(|()| session.push_page(group.revisions));
                match pushed {
                    Ok(()) => {
                        quarantine.pages_kept += 1;
                        quarantine.revisions_kept += revisions;
                        pages_kept_c.incr();
                    }
                    Err(msg) => {
                        quarantine.record(
                            start_offset,
                            title,
                            format!("page processing panicked: {msg}"),
                        );
                        quarantined_g.set(quarantine.pages_quarantined as f64);
                    }
                }
            }
        }
        if quarantine.pages_seen >= config.error_rate_min_pages
            && quarantine.error_rate() > config.max_error_rate
        {
            if let Some(policy) = &options.checkpoint {
                save_checkpoint(
                    policy,
                    source_fingerprint,
                    config_digest,
                    reader.offset(),
                    reader.fallback_page_id(),
                    &session,
                    &quarantine,
                )?;
            }
            let (_, pipeline) = session.finish();
            return Ok(IngestOutcome {
                status: IngestStatus::ErrorBudgetExceeded,
                dataset: None,
                quarantine,
                pipeline,
                resumed_from,
            });
        }
        if let Some(progress) = options.progress.as_mut() {
            progress(&IngestProgress {
                pages_seen: quarantine.pages_seen,
                pages_quarantined: quarantine.pages_quarantined,
                offset: reader.offset(),
            });
        }
        since_checkpoint += 1;
        if let Some(policy) = &options.checkpoint {
            if policy.every_pages > 0 && since_checkpoint >= policy.every_pages {
                save_checkpoint(
                    policy,
                    source_fingerprint,
                    config_digest,
                    reader.offset(),
                    reader.fallback_page_id(),
                    &session,
                    &quarantine,
                )?;
                since_checkpoint = 0;
            }
        }
    }

    // Completed: persist a final checkpoint (a resume from it re-reads
    // nothing and rebuilds the identical dataset), then finalize.
    if let Some(policy) = &options.checkpoint {
        save_checkpoint(
            policy,
            source_fingerprint,
            config_digest,
            reader.offset(),
            reader.fallback_page_id(),
            &session,
            &quarantine,
        )?;
    }
    let (dataset, pipeline) = session.finish();
    Ok(IngestOutcome {
        status: IngestStatus::Completed,
        dataset: Some(dataset),
        quarantine,
        pipeline,
        resumed_from,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_xml(title: &str, id: u32, days: &[u32], games: &[&str]) -> String {
        let mut out = format!("<page><title>{title}</title><id>{id}</id>");
        for (i, day) in days.iter().enumerate() {
            let upto = (5 + i).min(games.len());
            let mut table = String::from("{|\n|+ Games\n! Game\n");
            for g in &games[..upto] {
                table.push_str(&format!("|-\n| {g}\n"));
            }
            table.push_str("|}");
            // Day N relative to the 2001-01-15 epoch, rolling into February.
            let d = 15 + day;
            let (m, d) = if d <= 31 { (1, d) } else { (2, d - 31) };
            out.push_str(&format!(
                "<revision><timestamp>2001-{m:02}-{d:02}T10:00:00Z</timestamp><text>{}</text></revision>",
                table.replace('<', "&lt;")
            ));
        }
        out.push_str("</page>");
        out
    }

    fn small_dump() -> String {
        let games = [
            "Red", "Blue", "Gold", "Silver", "Crystal", "Ruby", "Sapphire", "Emerald", "Pearl",
            "Diamond", "Platinum", "Black",
        ];
        let days = [0u32, 3, 6, 9, 12, 15, 18, 21];
        let mut xml = String::from("<mediawiki>\n");
        for (i, title) in ["Alpha", "Beta", "Gamma"].iter().enumerate() {
            xml.push_str(&page_xml(title, i as u32 + 1, &days, &games));
            xml.push('\n');
        }
        xml.push_str("</mediawiki>");
        xml
    }

    #[test]
    fn clean_stream_completes_with_reconciled_counts() {
        let xml = small_dump();
        let config = IngestConfig::new(40);
        let outcome = ingest_stream(
            std::io::Cursor::new(xml.as_bytes()),
            7,
            &config,
            IngestOptions::default(),
        )
        .expect("ingests");
        assert_eq!(outcome.status, IngestStatus::Completed);
        assert_eq!(outcome.quarantine.pages_seen, 3);
        assert_eq!(outcome.quarantine.pages_kept, 3);
        assert_eq!(outcome.quarantine.pages_quarantined, 0);
        assert_eq!(outcome.pipeline.pages, 3);
        let dataset = outcome.dataset.expect("completed");
        assert_eq!(dataset.len(), 3, "one Game column per page");
    }

    #[test]
    fn checkpoint_roundtrip_and_guards() {
        let xml = small_dump();
        let dir = std::env::temp_dir().join("tind-wiki-ingest-cp-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.tic");
        let config = IngestConfig::new(40);
        let options = IngestOptions {
            checkpoint: Some(IngestCheckpointPolicy { path: path.clone(), every_pages: 1 }),
            ..IngestOptions::default()
        };
        ingest_stream(std::io::Cursor::new(xml.as_bytes()), 7, &config, options)
            .expect("ingests");
        let cp = IngestCheckpoint::read_file(&path).expect("reads");
        assert_eq!(cp.source_fingerprint, 7);
        assert_eq!(cp.quarantine.pages_seen, 3);
        let decoded = IngestCheckpoint::decode(cp.encode()).expect("roundtrips");
        assert_eq!(decoded, cp);
        // Guards.
        assert!(cp.verify_matches(7, config.digest()).is_ok());
        assert!(cp.verify_matches(8, config.digest()).is_err(), "wrong source");
        assert!(cp.verify_matches(7, IngestConfig::new(41).digest()).is_err(), "wrong config");
        // Corruption.
        let bytes = cp.encode();
        for cut in [0usize, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(IngestCheckpoint::decode(bytes.slice(0..cut)).is_err(), "cut {cut}");
        }
        let clean = bytes.to_vec();
        for bit in (0..clean.len() * 8).step_by(97) {
            let mut bad = clean.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(IngestCheckpoint::decode(Bytes::from(bad)).is_err(), "bit {bit}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_digest_distinguishes_parameters() {
        let base = IngestConfig::new(40);
        let d0 = base.digest();
        assert_eq!(d0, IngestConfig::new(40).digest());
        let mut c = IngestConfig::new(40);
        c.dump.epoch = (2001, 1, 1);
        assert_ne!(d0, c.digest());
        let mut c = IngestConfig::new(40);
        c.pipeline.drop_vandalism = true;
        assert_ne!(d0, c.digest());
        let mut c = IngestConfig::new(40);
        c.max_page_bytes = 1234;
        assert_ne!(d0, c.digest());
        let mut c = IngestConfig::new(40);
        c.max_error_rate = 0.9; // abort knob: not part of the digest
        assert_eq!(d0, c.digest());
    }
}
