//! # tind-wiki
//!
//! The Wikipedia-table extraction substrate (§5.1 of the paper).
//!
//! The paper's dataset is produced by a pipeline over raw page revision
//! history: extract tables from wikitext, match tables across revisions,
//! match columns across table versions, aggregate to daily snapshots, and
//! apply cleaning filters. This crate implements that pipeline:
//!
//! | module | §5.1 step |
//! |---|---|
//! | [`revision`] | page revision stream model |
//! | [`wikitext`] | wikitext table parsing (`{| .. |}` blocks) |
//! | [`table_match`] | matching tables across revisions of a page |
//! | [`column_match`] | matching columns across versions of a table |
//! | [`aggregate`] | daily snapshots — the version valid longest in a day wins |
//! | [`preprocess`] | link resolution, null unification, numeric-attribute and version/cardinality filters |
//! | [`pipeline`] | end-to-end: revisions → [`tind_model::Dataset`] |
//! | [`dump`] | bounded-memory streaming reader for XML-style dump exports |
//! | [`ingest`] | resilient ingestion: quarantine, error budget, checkpoint/resume |
//! | [`delta`] | delta ingestion: page-granular updates of an existing dataset |
//!
//! Real Wikipedia dumps are not available in this environment; the
//! `tind-datagen` crate renders synthetic revision streams with the same
//! structure so the pipeline runs end-to-end (see DESIGN.md §2).

pub mod aggregate;
pub mod column_match;
pub mod delta;
pub mod dump;
pub mod ingest;
pub mod pipeline;
pub mod preprocess;
pub mod revision;
pub mod table_match;
pub mod tables;
pub mod vandalism;
pub mod wikitext;

pub use delta::{update_stream, DeltaExtractor, UpdateCheckpoint, UpdateOutcome};
pub use dump::{DumpConfig, DumpItem, DumpReader};
pub use ingest::{
    fingerprint_source, ingest_stream, IngestCheckpoint, IngestCheckpointPolicy, IngestConfig,
    IngestError, IngestOptions, IngestOutcome, IngestStatus,
};
pub use pipeline::{extract_dataset, PipelineConfig, PipelineReport, PipelineSession};
pub use revision::PageRevision;
pub use tables::extract_temporal_tables;
pub use wikitext::{parse_tables, RawTable};
