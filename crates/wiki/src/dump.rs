//! MediaWiki XML export reader.
//!
//! The paper's corpus is the Wikimedia full-history dump. This module
//! reads the relevant subset of the `<mediawiki>` export format —
//! `<page>` / `<title>` / `<id>` / `<revision>` / `<timestamp>` /
//! `<text>` — into [`PageRevision`]s, converting ISO-8601 timestamps into
//! day indexes on a configurable epoch (the paper observes early 2001
//! through late 2017). Hand-rolled scanning parser: the format is rigid
//! machine output, and the dependency policy forbids an XML crate.
//!
//! ## Streaming
//!
//! Real full-history dumps run to hundreds of gigabytes, so the primary
//! interface is [`DumpReader`]: a chunked, pull-based reader over any
//! [`std::io::Read`] that yields one *page group* at a time and never
//! materializes more than one page (bounded by a hard per-page byte cap)
//! plus constant state. Malformed pages are not fatal: each one comes out
//! as a [`DumpItem::Quarantined`] carrying the page title, byte offset,
//! and typed [`DumpError`], so callers can count, sample, and skip — the
//! per-page failure model of resilient ingestion ([`crate::ingest`]).
//!
//! Within an otherwise healthy page, revisions with missing or
//! unparsable timestamps (or timestamps before the epoch) are dropped
//! and counted in [`PageGroup::revisions_dropped`] rather than aborting
//! the page: a malformed timestamp in a multi-GB dump must not abort
//! hours of extraction.
//!
//! [`parse_dump`] / [`read_dump_file`] remain as eager conveniences for
//! small, trusted inputs; they fail fast on the first quarantined page.

use std::io::Read;

use tind_model::MemoryBudget;

use crate::revision::PageRevision;

/// Epoch and span configuration for dump ingestion.
#[derive(Debug, Clone)]
pub struct DumpConfig {
    /// Day 0 of the timeline as (year, month, day).
    pub epoch: (i64, u32, u32),
}

impl Default for DumpConfig {
    /// January 15, 2001 — Wikipedia's launch date, the natural epoch for
    /// the paper's observation period.
    fn default() -> Self {
        DumpConfig { epoch: (2001, 1, 15) }
    }
}

/// Default hard cap on one `<page>` element, in bytes. Pages larger than
/// this are quarantined unread; the streaming buffer never grows past it.
pub const DEFAULT_MAX_PAGE_BYTES: usize = 8 * 1024 * 1024;

/// Errors while reading a dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpError {
    /// A `<page>` is missing a required child element.
    MissingField {
        /// The element that is absent.
        field: &'static str,
        /// Page title if known.
        page: String,
    },
    /// A timestamp could not be parsed as ISO-8601.
    BadTimestamp(String),
    /// A revision predates the configured epoch.
    BeforeEpoch(String),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// A `<page>` element exceeded the per-page byte cap.
    Oversized {
        /// The configured cap that was exceeded.
        limit: usize,
    },
    /// A `<page>` element was not valid UTF-8.
    InvalidUtf8,
    /// The stream ended inside a `<page>` element.
    Truncated,
    /// The memory budget refused to hold the page.
    OverBudget,
}

impl std::fmt::Display for DumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumpError::MissingField { field, page } => {
                write!(f, "page '{page}': missing <{field}>")
            }
            DumpError::BadTimestamp(t) => write!(f, "unparsable timestamp '{t}'"),
            DumpError::BeforeEpoch(t) => write!(f, "revision timestamp '{t}' predates the epoch"),
            DumpError::BadNumber(s) => write!(f, "unparsable number '{s}'"),
            DumpError::Oversized { limit } => {
                write!(f, "page exceeds the {limit}-byte per-page cap")
            }
            DumpError::InvalidUtf8 => write!(f, "page is not valid UTF-8"),
            DumpError::Truncated => write!(f, "stream ended inside the page element"),
            DumpError::OverBudget => write!(f, "memory budget exhausted while holding the page"),
        }
    }
}

impl std::error::Error for DumpError {}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from((m + 9) % 12);
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Parses `YYYY-MM-DDThh:mm:ssZ` into `(days-since-epoch, seconds-in-day)`.
fn parse_timestamp(ts: &str, config: &DumpConfig) -> Result<(i64, u32), DumpError> {
    let bad = || DumpError::BadTimestamp(ts.to_string());
    let bytes = ts.trim();
    if bytes.len() < 19 || !bytes.is_ascii() {
        return Err(bad());
    }
    let year: i64 = bytes[0..4].parse().map_err(|_| bad())?;
    let month: u32 = bytes[5..7].parse().map_err(|_| bad())?;
    let day: u32 = bytes[8..10].parse().map_err(|_| bad())?;
    let hour: u32 = bytes[11..13].parse().map_err(|_| bad())?;
    let minute: u32 = bytes[14..16].parse().map_err(|_| bad())?;
    let second: u32 = bytes[17..19].parse().map_err(|_| bad())?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) || hour > 23 || minute > 59 || second > 60
    {
        return Err(bad());
    }
    let days = days_from_civil(year, month, day)
        - days_from_civil(config.epoch.0, config.epoch.1, config.epoch.2);
    Ok((days, hour * 3600 + minute * 60 + second))
}

/// Unescapes the XML entities MediaWiki exports use.
fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#039;", "'")
        .replace("&apos;", "'")
        .replace("&amp;", "&") // last: escaped ampersands unescape once
}

/// Extracts the inner text of the next `<tag>..</tag>` occurrence in
/// `hay[from..]`, returning (inner, end-position). Attributes on the open
/// tag are tolerated (`<text xml:space="preserve">`).
fn next_element<'a>(hay: &'a str, from: usize, tag: &str) -> Option<(&'a str, usize)> {
    let open_a = format!("<{tag}>");
    let open_b = format!("<{tag} ");
    let close = format!("</{tag}>");
    let rest = &hay[from..];
    let (open_pos, open_len) = match (rest.find(&open_a), rest.find(&open_b)) {
        (Some(a), Some(b)) if b < a => (b, rest[b..].find('>')? + 1),
        (Some(a), _) => (a, open_a.len()),
        (None, Some(b)) => (b, rest[b..].find('>')? + 1),
        (None, None) => return None,
    };
    let content_start = from + open_pos + open_len;
    let close_pos = hay[content_start..].find(&close)?;
    Some((&hay[content_start..content_start + close_pos], content_start + close_pos + close.len()))
}

/// All revisions of one page, in canonical (day, seq) order, plus where
/// the page sat in the source stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageGroup {
    /// Absolute byte offset of the page's `<page` open tag.
    pub start_offset: u64,
    /// Absolute byte offset just past the page's `</page>` close tag —
    /// the resume point after this page.
    pub end_offset: u64,
    /// Revisions kept, sorted by (day, seq_in_day).
    pub revisions: Vec<PageRevision>,
    /// Revisions dropped inside this page (missing/unparsable timestamp,
    /// pre-epoch edit).
    pub revisions_dropped: u64,
}

/// One page skipped by the reader, with enough context to report it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// Absolute byte offset of the page's `<page` open tag.
    pub byte_offset: u64,
    /// Best-effort page title (`<unknown>` when none survived).
    pub page: String,
    /// Why the page was skipped.
    pub error: DumpError,
}

/// One item pulled from a [`DumpReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpItem {
    /// A successfully parsed page.
    Page(PageGroup),
    /// A page that was counted and skipped.
    Quarantined(Quarantined),
}

/// Chunked, pull-based streaming reader over a MediaWiki XML export.
///
/// Yields `io::Result<DumpItem>`: real I/O errors end the stream, while
/// per-page problems come out as [`DumpItem::Quarantined`] and the reader
/// continues with the next page. The internal buffer holds at most one
/// page (capped by [`DumpReader::with_max_page_bytes`]) plus one read
/// chunk; oversized pages are discarded tag-to-tag without buffering.
#[derive(Debug)]
pub struct DumpReader<R: Read> {
    src: R,
    config: DumpConfig,
    max_page_bytes: usize,
    budget: MemoryBudget,
    /// Bytes read but not yet consumed; `buf[0]` is at stream offset
    /// `offset`.
    buf: Vec<u8>,
    offset: u64,
    eof: bool,
    finished: bool,
    fallback_page_id: u32,
}

const OPEN_TAG: &[u8] = b"<page";
const CLOSE_TAG: &[u8] = b"</page>";
const READ_CHUNK: usize = 8 * 1024;
/// Tail bytes retained when discarding scanned data, so a tag straddling
/// a chunk boundary is never lost.
const BOUNDARY_KEEP: usize = CLOSE_TAG.len() + 1;

/// Naive subsequence search (the needles here are a handful of bytes).
fn find(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    let region = hay.get(from..)?;
    if region.len() < needle.len() {
        return None;
    }
    region.windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

/// Finds a `<page` open tag whose follower byte (`>` or whitespace) is
/// already buffered. An occurrence right at the buffer end is *not*
/// reported — the caller refills and retries, so `<pagex` never matches.
fn find_page_open(buf: &[u8]) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = find(buf, OPEN_TAG, from) {
        match buf.get(pos + OPEN_TAG.len()) {
            Some(b'>') | Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') => return Some(pos),
            Some(_) => from = pos + 1,
            None => return None, // tag may continue past the buffer
        }
    }
    None
}

/// Best-effort title extraction from (possibly partial, possibly
/// non-UTF-8) page bytes, for quarantine reports.
fn sniff_title(page: &[u8]) -> String {
    let text = String::from_utf8_lossy(page);
    match next_element(&text, 0, "title") {
        Some((t, _)) => {
            let mut title = unescape(t.trim());
            if title.len() > 200 {
                title.truncate(200);
            }
            title
        }
        None => "<unknown>".to_string(),
    }
}

impl<R: Read> DumpReader<R> {
    /// Starts a reader at stream offset 0 with the default page cap and
    /// an unlimited memory budget.
    pub fn new(src: R, config: DumpConfig) -> Self {
        DumpReader {
            src,
            config,
            max_page_bytes: DEFAULT_MAX_PAGE_BYTES,
            budget: MemoryBudget::unlimited(),
            buf: Vec::new(),
            offset: 0,
            eof: false,
            finished: false,
            fallback_page_id: 1_000_000,
        }
    }

    /// Sets the hard per-page byte cap.
    pub fn with_max_page_bytes(mut self, n: usize) -> Self {
        self.max_page_bytes = n.max(CLOSE_TAG.len() + OPEN_TAG.len());
        self
    }

    /// Charges each held page against `budget`; pages that do not fit are
    /// quarantined as [`DumpError::OverBudget`].
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Declares that `src` is already positioned `base` bytes into the
    /// stream (checkpoint resume), so reported offsets stay absolute.
    pub fn with_base_offset(mut self, base: u64) -> Self {
        self.offset = base;
        self
    }

    /// Seeds the fallback id counter for pages without `<id>` (restored
    /// from a checkpoint so resumed runs assign identical ids).
    pub fn with_fallback_page_id(mut self, next: u32) -> Self {
        self.fallback_page_id = next;
        self
    }

    /// The next page without `<id>` will get this fallback id + 1.
    pub fn fallback_page_id(&self) -> u32 {
        self.fallback_page_id
    }

    /// Absolute stream offset consumed so far. Between items this is the
    /// resume point: just past the last emitted page.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn drain(&mut self, n: usize) {
        self.buf.drain(..n);
        self.offset += n as u64;
    }

    /// Reads one chunk, appending to the buffer; sets `eof` on end.
    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.src.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Discards an oversized page tag-to-tag without buffering it.
    fn skip_oversized(&mut self, page_offset: u64) -> std::io::Result<DumpItem> {
        let title = sniff_title(&self.buf);
        let error = DumpError::Oversized { limit: self.max_page_bytes };
        loop {
            if let Some(pos) = find(&self.buf, CLOSE_TAG, 0) {
                self.drain(pos + CLOSE_TAG.len());
                return Ok(DumpItem::Quarantined(Quarantined {
                    byte_offset: page_offset,
                    page: title,
                    error,
                }));
            }
            let keep = self.buf.len().min(BOUNDARY_KEEP);
            let n = self.buf.len() - keep;
            self.drain(n);
            if self.eof {
                self.finished = true;
                let rest = self.buf.len();
                self.drain(rest);
                return Ok(DumpItem::Quarantined(Quarantined {
                    byte_offset: page_offset,
                    page: title,
                    error,
                }));
            }
            self.fill()?;
        }
    }

    /// Parses a complete, buffered `<page>..</page>` element.
    fn parse_page_bytes(&mut self, page_offset: u64, end: usize) -> DumpItem {
        let bytes = &self.buf[..end];
        let quarantine = |error: DumpError, page: String| {
            DumpItem::Quarantined(Quarantined { byte_offset: page_offset, page, error })
        };
        // Hold a budget charge for the page while it is materialized; a
        // refusal means this page does not fit alongside the rest of the
        // process and is skipped rather than OOM-killing the run.
        let _charge = match self.budget.try_charge(bytes.len()) {
            Some(c) => c,
            None => return quarantine(DumpError::OverBudget, sniff_title(bytes)),
        };
        let text = match std::str::from_utf8(bytes) {
            Ok(t) => t,
            Err(_) => return quarantine(DumpError::InvalidUtf8, sniff_title(bytes)),
        };
        match parse_page_element(text, &self.config, &mut self.fallback_page_id) {
            Ok((revisions, revisions_dropped)) => DumpItem::Page(PageGroup {
                start_offset: page_offset,
                end_offset: page_offset + end as u64,
                revisions,
                revisions_dropped,
            }),
            Err(error) => {
                let page = sniff_title(bytes);
                quarantine(error, page)
            }
        }
    }
}

impl<R: Read> Iterator for DumpReader<R> {
    type Item = std::io::Result<DumpItem>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let _span = tind_obs::span("wiki.dump.read_page");
        // Phase 1: locate the next `<page` open tag, discarding preamble
        // (siteinfo, inter-page whitespace) as it is scanned.
        loop {
            if let Some(pos) = find_page_open(&self.buf) {
                self.drain(pos);
                break;
            }
            let keep = self.buf.len().min(BOUNDARY_KEEP);
            let n = self.buf.len() - keep;
            self.drain(n);
            if self.eof {
                self.finished = true;
                return None; // trailing non-page bytes are fine
            }
            if let Err(e) = self.fill() {
                self.finished = true;
                return Some(Err(e));
            }
        }
        let page_offset = self.offset;
        // Phase 2: buffer until `</page>`, enforcing the per-page cap.
        let mut search_from = 0usize;
        let end = loop {
            if let Some(pos) = find(&self.buf, CLOSE_TAG, search_from) {
                break pos + CLOSE_TAG.len();
            }
            search_from = self.buf.len().saturating_sub(CLOSE_TAG.len() - 1);
            if self.buf.len() > self.max_page_bytes {
                return Some(self.skip_oversized(page_offset));
            }
            if self.eof {
                self.finished = true;
                let title = sniff_title(&self.buf);
                let rest = self.buf.len();
                self.drain(rest);
                return Some(Ok(DumpItem::Quarantined(Quarantined {
                    byte_offset: page_offset,
                    page: title,
                    error: DumpError::Truncated,
                })));
            }
            if let Err(e) = self.fill() {
                self.finished = true;
                return Some(Err(e));
            }
        };
        // Phase 3: parse and consume.
        let item = self.parse_page_bytes(page_offset, end);
        self.drain(end);
        Some(Ok(item))
    }
}

/// Parses one complete `<page>..</page>` element.
///
/// Page-level problems (missing `<title>`, unparsable `<id>`) are errors;
/// revision-level problems (missing/bad/pre-epoch timestamps) drop the
/// revision and are returned as a count.
fn parse_page_element(
    page_xml: &str,
    config: &DumpConfig,
    fallback_page_id: &mut u32,
) -> Result<(Vec<PageRevision>, u64), DumpError> {
    let title = next_element(page_xml, 0, "title")
        .map(|(t, _)| unescape(t.trim()))
        .ok_or(DumpError::MissingField { field: "title", page: "<unknown>".into() })?;
    let page_id = match next_element(page_xml, 0, "id") {
        Some((raw, _)) => raw
            .trim()
            .parse::<u32>()
            .map_err(|_| DumpError::BadNumber(raw.trim().to_string()))?,
        None => {
            *fallback_page_id += 1;
            *fallback_page_id
        }
    };

    // Collect (day, within-day seconds, text) per revision.
    let mut revs: Vec<(i64, u32, String)> = Vec::new();
    let mut dropped = 0u64;
    let mut rc = 0usize;
    while let Some((rev_xml, rnext)) = next_element(page_xml, rc, "revision") {
        rc = rnext;
        let Some((ts_raw, _)) = next_element(rev_xml, 0, "timestamp") else {
            dropped += 1;
            continue;
        };
        // Bad, pre-epoch, or beyond-u32 timestamps drop the revision; a
        // single rotten edit must not discard the page, let alone the run.
        match parse_timestamp(ts_raw, config) {
            Ok((day, secs)) if (0..=i64::from(u32::MAX)).contains(&day) => {
                let text =
                    next_element(rev_xml, 0, "text").map(|(t, _)| unescape(t)).unwrap_or_default();
                revs.push((day, secs, text));
            }
            _ => dropped += 1,
        }
    }
    // Stable order by (day, seconds); assign seq_in_day.
    revs.sort_by_key(|&(day, secs, _)| (day, secs));
    let mut out = Vec::with_capacity(revs.len());
    let mut prev_day = i64::MIN;
    let mut seq = 0u32;
    for (day, _, text) in revs {
        seq = if day == prev_day { seq + 1 } else { 0 };
        prev_day = day;
        out.push(PageRevision {
            page_id,
            title: title.clone(),
            day: day as u32,
            seq_in_day: seq,
            wikitext: text,
        });
    }
    Ok((out, dropped))
}

/// Parses a MediaWiki XML export held in memory into a revision stream.
///
/// Revisions with the same page and day receive increasing `seq_in_day` in
/// timestamp order, matching the aggregation model of [`crate::aggregate`].
/// Revision-level timestamp problems drop the revision silently (use
/// [`DumpReader`] for the counted, quarantining interface); the first
/// *page-level* problem is returned as an error.
pub fn parse_dump(xml: &str, config: &DumpConfig) -> Result<Vec<PageRevision>, DumpError> {
    let mut revisions = Vec::new();
    for item in DumpReader::new(std::io::Cursor::new(xml.as_bytes()), config.clone()) {
        match item.map_err(|e| DumpError::BadNumber(e.to_string()))? {
            DumpItem::Page(group) => revisions.extend(group.revisions),
            DumpItem::Quarantined(q) => return Err(q.error),
        }
    }
    Ok(revisions)
}

/// Reads and parses a dump file eagerly (streaming I/O, strict on
/// page-level errors — see [`parse_dump`]).
pub fn read_dump_file(
    path: &std::path::Path,
    config: &DumpConfig,
) -> Result<Vec<PageRevision>, Box<dyn std::error::Error>> {
    let file = std::fs::File::open(path)?;
    let mut revisions = Vec::new();
    for item in DumpReader::new(file, config.clone()) {
        match item? {
            DumpItem::Page(group) => revisions.extend(group.revisions),
            DumpItem::Quarantined(q) => return Err(Box::new(q.error)),
        }
    }
    Ok(revisions)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUMP: &str = r#"<mediawiki>
  <siteinfo><sitename>Wikipedia</sitename></siteinfo>
  <page>
    <title>Pok&#039;mon games &amp; more</title>
    <id>42</id>
    <revision>
      <timestamp>2001-01-16T08:30:00Z</timestamp>
      <text xml:space="preserve">{|
! Game
|-
| Red
|}</text>
    </revision>
    <revision>
      <timestamp>2001-01-16T12:00:00Z</timestamp>
      <text>{|
! Game
|-
| Red
|-
| Blue
|}</text>
    </revision>
    <revision>
      <timestamp>2001-02-01T00:00:00Z</timestamp>
      <text>&lt;!-- cleared --&gt;</text>
    </revision>
  </page>
  <page>
    <title>Other</title>
    <id>7</id>
    <revision>
      <timestamp>2001-01-20T10:00:00Z</timestamp>
      <text>prose only</text>
    </revision>
  </page>
</mediawiki>"#;

    /// A reader that trickles out one byte per `read` call, to exercise
    /// every chunk-boundary code path.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() || out.is_empty() {
                return Ok(0);
            }
            out[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    fn stream_all(xml: &[u8]) -> Vec<DumpItem> {
        DumpReader::new(std::io::Cursor::new(xml), DumpConfig::default())
            .map(|r| r.expect("in-memory read"))
            .collect()
    }

    #[test]
    fn parses_pages_revisions_and_days() {
        let revs = parse_dump(DUMP, &DumpConfig::default()).expect("parses");
        assert_eq!(revs.len(), 4);
        // Epoch 2001-01-15 → Jan 16 is day 1, Feb 1 is day 17, Jan 20 is day 5.
        assert_eq!(revs[0].day, 1);
        assert_eq!(revs[0].seq_in_day, 0);
        assert_eq!(revs[1].day, 1);
        assert_eq!(revs[1].seq_in_day, 1, "same-day revisions sequence");
        assert_eq!(revs[2].day, 17);
        assert_eq!(revs[3].day, 5);
        assert_eq!(revs[0].page_id, 42);
        assert_eq!(revs[3].page_id, 7);
    }

    #[test]
    fn unescapes_entities() {
        let revs = parse_dump(DUMP, &DumpConfig::default()).expect("parses");
        assert_eq!(revs[0].title, "Pok'mon games & more");
        assert!(revs[2].wikitext.contains("<!-- cleared -->"));
    }

    #[test]
    fn parsed_dump_feeds_the_pipeline() {
        use crate::pipeline::{extract_dataset, PipelineConfig};
        let revs = parse_dump(DUMP, &DumpConfig::default()).expect("parses");
        // Not enough versions to survive filters, but the pipeline runs.
        let (dataset, report) = extract_dataset(revs, &PipelineConfig::new(100));
        assert_eq!(report.pages, 2);
        assert_eq!(report.revisions, 4);
        assert_eq!(dataset.len(), 0, "short histories are filtered");
    }

    #[test]
    fn days_from_civil_matches_known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(days_from_civil(2001, 1, 15), 11_337);
        // Leap-year handling.
        assert_eq!(days_from_civil(2004, 2, 29) + 1, days_from_civil(2004, 3, 1));
        assert_eq!(days_from_civil(2100, 2, 28) + 1, days_from_civil(2100, 3, 1), "2100 is not a leap year");
    }

    #[test]
    fn bad_and_pre_epoch_timestamps_drop_the_revision_only() {
        let cfg = DumpConfig::default();
        assert!(parse_timestamp("garbage", &cfg).is_err());
        assert!(parse_timestamp("2001-13-01T00:00:00Z", &cfg).is_err());
        // A pre-epoch revision is dropped and counted, not fatal.
        let pre = DUMP.replace("2001-01-16T08:30:00Z", "2000-06-01T00:00:00Z");
        let items = stream_all(pre.as_bytes());
        let DumpItem::Page(first) = &items[0] else { panic!("page expected") };
        assert_eq!(first.revisions.len(), 2);
        assert_eq!(first.revisions_dropped, 1);
        assert_eq!(parse_dump(&pre, &cfg).expect("lenient").len(), 3);
        // Same for an unparsable timestamp.
        let bad = DUMP.replace("2001-01-16T08:30:00Z", "not-a-date-at-all!!");
        assert_eq!(parse_dump(&bad, &cfg).expect("lenient").len(), 3);
    }

    #[test]
    fn missing_timestamp_drops_the_revision() {
        let broken = "<page><title>X</title><id>1</id><revision><text>t</text></revision>\
                      <revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>u</text></revision></page>";
        let revs = parse_dump(broken, &DumpConfig::default()).expect("page survives");
        assert_eq!(revs.len(), 1, "only the timestamped revision is kept");
        let items = stream_all(broken.as_bytes());
        let DumpItem::Page(g) = &items[0] else { panic!("page expected") };
        assert_eq!(g.revisions_dropped, 1);
    }

    #[test]
    fn epoch_boundary_timestamps() {
        // Exactly the epoch day is day 0 and kept; one second before
        // midnight of the prior day is dropped.
        let xml = "<page><title>E</title><id>1</id>\
                   <revision><timestamp>2001-01-15T00:00:00Z</timestamp><text>a</text></revision>\
                   <revision><timestamp>2001-01-14T23:59:59Z</timestamp><text>b</text></revision></page>";
        let items = stream_all(xml.as_bytes());
        let DumpItem::Page(g) = &items[0] else { panic!("page expected") };
        assert_eq!(g.revisions.len(), 1);
        assert_eq!(g.revisions[0].day, 0);
        assert_eq!(g.revisions_dropped, 1);
    }

    #[test]
    fn pages_without_ids_get_fallback_ids() {
        let no_id = "<page><title>A</title><revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>t</text></revision></page>\
                     <page><title>B</title><revision><timestamp>2001-02-02T00:00:00Z</timestamp><text>t</text></revision></page>";
        let revs = parse_dump(no_id, &DumpConfig::default()).expect("parses");
        assert_eq!(revs.len(), 2);
        assert_ne!(revs[0].page_id, revs[1].page_id);
    }

    #[test]
    fn custom_epoch_shifts_days() {
        let cfg = DumpConfig { epoch: (2001, 1, 1) };
        let revs = parse_dump(DUMP, &cfg).expect("parses");
        assert_eq!(revs[0].day, 15);
    }

    #[test]
    fn streaming_matches_eager_even_one_byte_at_a_time() {
        let eager = parse_dump(DUMP, &DumpConfig::default()).expect("parses");
        let mut streamed = Vec::new();
        let reader =
            DumpReader::new(Trickle { data: DUMP.as_bytes(), pos: 0 }, DumpConfig::default());
        for item in reader {
            match item.expect("no io error") {
                DumpItem::Page(g) => streamed.extend(g.revisions),
                DumpItem::Quarantined(q) => panic!("unexpected quarantine: {q:?}"),
            }
        }
        assert_eq!(streamed, eager);
    }

    #[test]
    fn page_offsets_are_absolute_and_resumable() {
        let bytes = DUMP.as_bytes();
        let items = stream_all(bytes);
        let groups: Vec<&PageGroup> = items
            .iter()
            .map(|i| match i {
                DumpItem::Page(g) => g,
                q => panic!("unexpected: {q:?}"),
            })
            .collect();
        assert_eq!(groups.len(), 2);
        for g in &groups {
            assert_eq!(&bytes[g.start_offset as usize..g.start_offset as usize + 5], b"<page");
            let end = g.end_offset as usize;
            assert_eq!(&bytes[end - 7..end], b"</page>");
        }
        // Restart a reader at the first page's end: it sees only page two.
        let g0_end = groups[0].end_offset;
        let reader = DumpReader::new(
            std::io::Cursor::new(&bytes[g0_end as usize..]),
            DumpConfig::default(),
        )
        .with_base_offset(g0_end);
        let rest: Vec<DumpItem> = reader.map(|r| r.expect("reads")).collect();
        assert_eq!(rest.len(), 1);
        match &rest[0] {
            DumpItem::Page(g) => assert_eq!((g.start_offset, g.end_offset), (groups[1].start_offset, groups[1].end_offset)),
            q => panic!("unexpected: {q:?}"),
        }
    }

    #[test]
    fn missing_title_quarantines_the_page_and_continues() {
        let xml = "<page><id>1</id><revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>t</text></revision></page>\
                   <page><title>Good</title><id>2</id><revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>t</text></revision></page>";
        let items = stream_all(xml.as_bytes());
        assert_eq!(items.len(), 2);
        match &items[0] {
            DumpItem::Quarantined(q) => {
                assert!(matches!(q.error, DumpError::MissingField { field: "title", .. }));
                assert_eq!(q.byte_offset, 0);
            }
            p => panic!("unexpected: {p:?}"),
        }
        assert!(matches!(&items[1], DumpItem::Page(g) if g.revisions[0].title == "Good"));
        // The eager wrapper stays strict on page-level problems.
        assert!(parse_dump(xml, &DumpConfig::default()).is_err());
    }

    #[test]
    fn oversized_pages_are_skipped_without_buffering() {
        let big_text = "x".repeat(64 * 1024);
        let xml = format!(
            "<page><title>Big</title><id>1</id><revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>{big_text}</text></revision></page>\
             <page><title>Small</title><id>2</id><revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>t</text></revision></page>"
        );
        let items: Vec<DumpItem> =
            DumpReader::new(std::io::Cursor::new(xml.as_bytes()), DumpConfig::default())
                .with_max_page_bytes(4096)
                .map(|r| r.expect("reads"))
                .collect();
        assert_eq!(items.len(), 2);
        match &items[0] {
            DumpItem::Quarantined(q) => {
                assert_eq!(q.error, DumpError::Oversized { limit: 4096 });
                assert_eq!(q.page, "Big", "title sniffed before the skip");
            }
            p => panic!("unexpected: {p:?}"),
        }
        assert!(matches!(&items[1], DumpItem::Page(g) if g.revisions[0].title == "Small"));
    }

    #[test]
    fn non_utf8_pages_are_quarantined() {
        let mut xml = Vec::new();
        xml.extend_from_slice(b"<page><title>Bin</title><id>1</id><revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>");
        xml.extend_from_slice(&[0xFF, 0xFE, 0x80]);
        xml.extend_from_slice(b"</text></revision></page>");
        xml.extend_from_slice(b"<page><title>Ok</title><id>2</id><revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>t</text></revision></page>");
        let items = stream_all(&xml);
        assert_eq!(items.len(), 2);
        assert!(
            matches!(&items[0], DumpItem::Quarantined(q) if q.error == DumpError::InvalidUtf8 && q.page == "Bin")
        );
        assert!(matches!(&items[1], DumpItem::Page(_)));
    }

    #[test]
    fn truncated_stream_is_reported_not_hung() {
        let xml = "<page><title>Cut</title><id>1</id><revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>never closed";
        let items = stream_all(xml.as_bytes());
        assert_eq!(items.len(), 1);
        assert!(
            matches!(&items[0], DumpItem::Quarantined(q) if q.error == DumpError::Truncated && q.page == "Cut")
        );
    }

    #[test]
    fn memory_budget_refusal_quarantines_the_page() {
        let budget = MemoryBudget::new(64);
        let items: Vec<DumpItem> =
            DumpReader::new(std::io::Cursor::new(DUMP.as_bytes()), DumpConfig::default())
                .with_memory_budget(budget.clone())
                .map(|r| r.expect("reads"))
                .collect();
        assert!(items
            .iter()
            .all(|i| matches!(i, DumpItem::Quarantined(q) if q.error == DumpError::OverBudget)));
        assert!(budget.peak_bytes() <= 64, "never charged past the limit");
        assert_eq!(budget.used_bytes(), 0, "charges released");
    }
}
