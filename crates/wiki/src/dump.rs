//! MediaWiki XML export reader.
//!
//! The paper's corpus is the Wikimedia full-history dump. This module
//! reads the relevant subset of the `<mediawiki>` export format —
//! `<page>` / `<title>` / `<id>` / `<revision>` / `<timestamp>` /
//! `<text>` — into [`PageRevision`]s, converting ISO-8601 timestamps into
//! day indexes on a configurable epoch (the paper observes early 2001
//! through late 2017). Hand-rolled scanning parser: the format is rigid
//! machine output, and the dependency policy forbids an XML crate.

use crate::revision::PageRevision;

/// Epoch and span configuration for dump ingestion.
#[derive(Debug, Clone)]
pub struct DumpConfig {
    /// Day 0 of the timeline as (year, month, day).
    pub epoch: (i64, u32, u32),
}

impl Default for DumpConfig {
    /// January 15, 2001 — Wikipedia's launch date, the natural epoch for
    /// the paper's observation period.
    fn default() -> Self {
        DumpConfig { epoch: (2001, 1, 15) }
    }
}

/// Errors while reading a dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpError {
    /// A `<page>` is missing a required child element.
    MissingField {
        /// The element that is absent.
        field: &'static str,
        /// Page title if known.
        page: String,
    },
    /// A timestamp could not be parsed as ISO-8601.
    BadTimestamp(String),
    /// A revision predates the configured epoch.
    BeforeEpoch(String),
    /// A numeric field failed to parse.
    BadNumber(String),
}

impl std::fmt::Display for DumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumpError::MissingField { field, page } => {
                write!(f, "page '{page}': missing <{field}>")
            }
            DumpError::BadTimestamp(t) => write!(f, "unparsable timestamp '{t}'"),
            DumpError::BeforeEpoch(t) => write!(f, "revision timestamp '{t}' predates the epoch"),
            DumpError::BadNumber(s) => write!(f, "unparsable number '{s}'"),
        }
    }
}

impl std::error::Error for DumpError {}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from((m + 9) % 12);
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Parses `YYYY-MM-DDThh:mm:ssZ` into `(days-since-epoch, seconds-in-day)`.
fn parse_timestamp(ts: &str, config: &DumpConfig) -> Result<(i64, u32), DumpError> {
    let bad = || DumpError::BadTimestamp(ts.to_string());
    let bytes = ts.trim();
    if bytes.len() < 19 || !bytes.is_ascii() {
        return Err(bad());
    }
    let year: i64 = bytes[0..4].parse().map_err(|_| bad())?;
    let month: u32 = bytes[5..7].parse().map_err(|_| bad())?;
    let day: u32 = bytes[8..10].parse().map_err(|_| bad())?;
    let hour: u32 = bytes[11..13].parse().map_err(|_| bad())?;
    let minute: u32 = bytes[14..16].parse().map_err(|_| bad())?;
    let second: u32 = bytes[17..19].parse().map_err(|_| bad())?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) || hour > 23 || minute > 59 || second > 60
    {
        return Err(bad());
    }
    let days = days_from_civil(year, month, day)
        - days_from_civil(config.epoch.0, config.epoch.1, config.epoch.2);
    Ok((days, hour * 3600 + minute * 60 + second))
}

/// Unescapes the XML entities MediaWiki exports use.
fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#039;", "'")
        .replace("&apos;", "'")
        .replace("&amp;", "&") // last: escaped ampersands unescape once
}

/// Extracts the inner text of the next `<tag>..</tag>` occurrence in
/// `hay[from..]`, returning (inner, end-position). Attributes on the open
/// tag are tolerated (`<text xml:space="preserve">`).
fn next_element<'a>(hay: &'a str, from: usize, tag: &str) -> Option<(&'a str, usize)> {
    let open_a = format!("<{tag}>");
    let open_b = format!("<{tag} ");
    let close = format!("</{tag}>");
    let rest = &hay[from..];
    let (open_pos, open_len) = match (rest.find(&open_a), rest.find(&open_b)) {
        (Some(a), Some(b)) if b < a => (b, rest[b..].find('>')? + 1),
        (Some(a), _) => (a, open_a.len()),
        (None, Some(b)) => (b, rest[b..].find('>')? + 1),
        (None, None) => return None,
    };
    let content_start = from + open_pos + open_len;
    let close_pos = hay[content_start..].find(&close)?;
    Some((&hay[content_start..content_start + close_pos], content_start + close_pos + close.len()))
}

/// Parses a MediaWiki XML export into a revision stream.
///
/// Revisions with the same page and day receive increasing `seq_in_day` in
/// timestamp order, matching the aggregation model of [`crate::aggregate`].
pub fn parse_dump(xml: &str, config: &DumpConfig) -> Result<Vec<PageRevision>, DumpError> {
    let mut revisions = Vec::new();
    let mut cursor = 0usize;
    let mut fallback_page_id = 1_000_000u32;
    while let Some((page_xml, next)) = next_element(xml, cursor, "page") {
        cursor = next;
        let title = next_element(page_xml, 0, "title")
            .map(|(t, _)| unescape(t.trim()))
            .ok_or(DumpError::MissingField { field: "title", page: "<unknown>".into() })?;
        let page_id = match next_element(page_xml, 0, "id") {
            Some((raw, _)) => raw
                .trim()
                .parse::<u32>()
                .map_err(|_| DumpError::BadNumber(raw.trim().to_string()))?,
            None => {
                fallback_page_id += 1;
                fallback_page_id
            }
        };

        // Collect (day, within-day seconds, text) per revision.
        let mut revs: Vec<(i64, u32, String)> = Vec::new();
        let mut rc = 0usize;
        while let Some((rev_xml, rnext)) = next_element(page_xml, rc, "revision") {
            rc = rnext;
            let (ts_raw, _) = next_element(rev_xml, 0, "timestamp").ok_or(
                DumpError::MissingField { field: "timestamp", page: title.clone() },
            )?;
            let (day, secs) = parse_timestamp(ts_raw, config)?;
            if day < 0 {
                return Err(DumpError::BeforeEpoch(ts_raw.trim().to_string()));
            }
            let text = next_element(rev_xml, 0, "text").map(|(t, _)| unescape(t)).unwrap_or_default();
            revs.push((day, secs, text));
        }
        // Stable order by (day, seconds); assign seq_in_day.
        revs.sort_by_key(|&(day, secs, _)| (day, secs));
        let mut prev_day = i64::MIN;
        let mut seq = 0u32;
        for (day, _, text) in revs {
            seq = if day == prev_day { seq + 1 } else { 0 };
            prev_day = day;
            revisions.push(PageRevision {
                page_id,
                title: title.clone(),
                day: day as u32,
                seq_in_day: seq,
                wikitext: text,
            });
        }
    }
    Ok(revisions)
}

/// Reads and parses a dump file.
pub fn read_dump_file(
    path: &std::path::Path,
    config: &DumpConfig,
) -> Result<Vec<PageRevision>, Box<dyn std::error::Error>> {
    let xml = std::fs::read_to_string(path)?;
    Ok(parse_dump(&xml, config)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUMP: &str = r#"<mediawiki>
  <siteinfo><sitename>Wikipedia</sitename></siteinfo>
  <page>
    <title>Pok&#039;mon games &amp; more</title>
    <id>42</id>
    <revision>
      <timestamp>2001-01-16T08:30:00Z</timestamp>
      <text xml:space="preserve">{|
! Game
|-
| Red
|}</text>
    </revision>
    <revision>
      <timestamp>2001-01-16T12:00:00Z</timestamp>
      <text>{|
! Game
|-
| Red
|-
| Blue
|}</text>
    </revision>
    <revision>
      <timestamp>2001-02-01T00:00:00Z</timestamp>
      <text>&lt;!-- cleared --&gt;</text>
    </revision>
  </page>
  <page>
    <title>Other</title>
    <id>7</id>
    <revision>
      <timestamp>2001-01-20T10:00:00Z</timestamp>
      <text>prose only</text>
    </revision>
  </page>
</mediawiki>"#;

    #[test]
    fn parses_pages_revisions_and_days() {
        let revs = parse_dump(DUMP, &DumpConfig::default()).expect("parses");
        assert_eq!(revs.len(), 4);
        // Epoch 2001-01-15 → Jan 16 is day 1, Feb 1 is day 17, Jan 20 is day 5.
        assert_eq!(revs[0].day, 1);
        assert_eq!(revs[0].seq_in_day, 0);
        assert_eq!(revs[1].day, 1);
        assert_eq!(revs[1].seq_in_day, 1, "same-day revisions sequence");
        assert_eq!(revs[2].day, 17);
        assert_eq!(revs[3].day, 5);
        assert_eq!(revs[0].page_id, 42);
        assert_eq!(revs[3].page_id, 7);
    }

    #[test]
    fn unescapes_entities() {
        let revs = parse_dump(DUMP, &DumpConfig::default()).expect("parses");
        assert_eq!(revs[0].title, "Pok'mon games & more");
        assert!(revs[2].wikitext.contains("<!-- cleared -->"));
    }

    #[test]
    fn parsed_dump_feeds_the_pipeline() {
        use crate::pipeline::{extract_dataset, PipelineConfig};
        let revs = parse_dump(DUMP, &DumpConfig::default()).expect("parses");
        // Not enough versions to survive filters, but the pipeline runs.
        let (dataset, report) = extract_dataset(revs, &PipelineConfig::new(100));
        assert_eq!(report.pages, 2);
        assert_eq!(report.revisions, 4);
        assert_eq!(dataset.len(), 0, "short histories are filtered");
    }

    #[test]
    fn days_from_civil_matches_known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(days_from_civil(2001, 1, 15), 11_337);
        // Leap-year handling.
        assert_eq!(days_from_civil(2004, 2, 29) + 1, days_from_civil(2004, 3, 1));
        assert_eq!(days_from_civil(2100, 2, 28) + 1, days_from_civil(2100, 3, 1), "2100 is not a leap year");
    }

    #[test]
    fn rejects_bad_timestamps_and_pre_epoch() {
        let cfg = DumpConfig::default();
        assert!(parse_timestamp("garbage", &cfg).is_err());
        assert!(parse_timestamp("2001-13-01T00:00:00Z", &cfg).is_err());
        let pre = DUMP.replace("2001-01-16T08:30:00Z", "2000-06-01T00:00:00Z");
        assert!(matches!(parse_dump(&pre, &cfg), Err(DumpError::BeforeEpoch(_))));
    }

    #[test]
    fn missing_timestamp_is_an_error() {
        let broken = "<page><title>X</title><id>1</id><revision><text>t</text></revision></page>";
        let err = parse_dump(broken, &DumpConfig::default()).expect_err("must fail");
        assert!(matches!(err, DumpError::MissingField { field: "timestamp", .. }));
        assert!(err.to_string().contains("timestamp"));
    }

    #[test]
    fn pages_without_ids_get_fallback_ids() {
        let no_id = "<page><title>A</title><revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>t</text></revision></page>\
                     <page><title>B</title><revision><timestamp>2001-02-02T00:00:00Z</timestamp><text>t</text></revision></page>";
        let revs = parse_dump(no_id, &DumpConfig::default()).expect("parses");
        assert_eq!(revs.len(), 2);
        assert_ne!(revs[0].page_id, revs[1].page_id);
    }

    #[test]
    fn custom_epoch_shifts_days() {
        let cfg = DumpConfig { epoch: (2001, 1, 1) };
        let revs = parse_dump(DUMP, &cfg).expect("parses");
        assert_eq!(revs[0].day, 15);
    }
}
