//! Page revision stream model.
//!
//! The unit of input: one saved edit of one page at one (day-granular)
//! timestamp. The Wikimedia dumps carry second-granular timestamps; the
//! paper aggregates to days (§5.1), and [`crate::aggregate`] implements
//! that step, so revisions here carry both the day and a within-day
//! sequence number to order same-day edits.

/// One revision of one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRevision {
    /// Stable page identifier.
    pub page_id: u32,
    /// Page title at this revision.
    pub title: String,
    /// Day index on the global timeline.
    pub day: u32,
    /// Order of this revision within its day (0 = first edit of the day).
    pub seq_in_day: u32,
    /// Raw wikitext of the page at this revision.
    pub wikitext: String,
}

impl PageRevision {
    /// Sort key: page, then day, then within-day order.
    pub fn sort_key(&self) -> (u32, u32, u32) {
        (self.page_id, self.day, self.seq_in_day)
    }
}

/// Sorts a revision stream into canonical processing order and verifies
/// there are no duplicate `(page, day, seq)` keys.
///
/// # Panics
/// Panics on duplicate keys — a corrupted stream.
pub fn canonicalize_stream(mut revisions: Vec<PageRevision>) -> Vec<PageRevision> {
    revisions.sort_by_key(PageRevision::sort_key);
    for w in revisions.windows(2) {
        assert!(
            w[0].sort_key() != w[1].sort_key(),
            "duplicate revision key {:?} for page '{}'",
            w[0].sort_key(),
            w[0].title
        );
    }
    revisions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rev(page: u32, day: u32, seq: u32) -> PageRevision {
        PageRevision {
            page_id: page,
            title: format!("Page {page}"),
            day,
            seq_in_day: seq,
            wikitext: String::new(),
        }
    }

    #[test]
    fn canonicalize_sorts_by_page_day_seq() {
        let out = canonicalize_stream(vec![rev(1, 5, 0), rev(0, 9, 1), rev(0, 9, 0), rev(0, 2, 0)]);
        let keys: Vec<_> = out.iter().map(PageRevision::sort_key).collect();
        assert_eq!(keys, vec![(0, 2, 0), (0, 9, 0), (0, 9, 1), (1, 5, 0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate revision key")]
    fn canonicalize_rejects_duplicates() {
        canonicalize_stream(vec![rev(0, 1, 0), rev(0, 1, 0)]);
    }
}
