//! Page revision stream model.
//!
//! The unit of input: one saved edit of one page at one (day-granular)
//! timestamp. The Wikimedia dumps carry second-granular timestamps; the
//! paper aggregates to days (§5.1), and [`crate::aggregate`] implements
//! that step, so revisions here carry both the day and a within-day
//! sequence number to order same-day edits.

/// One revision of one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRevision {
    /// Stable page identifier.
    pub page_id: u32,
    /// Page title at this revision.
    pub title: String,
    /// Day index on the global timeline.
    pub day: u32,
    /// Order of this revision within its day (0 = first edit of the day).
    pub seq_in_day: u32,
    /// Raw wikitext of the page at this revision.
    pub wikitext: String,
}

impl PageRevision {
    /// Sort key: page, then day, then within-day order.
    pub fn sort_key(&self) -> (u32, u32, u32) {
        (self.page_id, self.day, self.seq_in_day)
    }
}

/// Sorts a revision stream into canonical processing order, dropping
/// duplicate `(page, day, seq)` keys (last occurrence wins, matching the
/// last-edit-wins aggregation model). See [`canonicalize_stream_lossy`]
/// for the variant that reports how many duplicates were dropped —
/// duplicates indicate a corrupted stream, but a multi-GB extraction must
/// not abort over one.
pub fn canonicalize_stream(revisions: Vec<PageRevision>) -> Vec<PageRevision> {
    canonicalize_stream_lossy(revisions).0
}

/// [`canonicalize_stream`] plus the number of duplicate-key revisions
/// that were dropped.
pub fn canonicalize_stream_lossy(mut revisions: Vec<PageRevision>) -> (Vec<PageRevision>, usize) {
    // Stable sort: same-key revisions retain input order, so keeping the
    // last of each run keeps the latest-seen edit.
    revisions.sort_by_key(PageRevision::sort_key);
    let before = revisions.len();
    let mut deduped: Vec<PageRevision> = Vec::with_capacity(revisions.len());
    for rev in revisions {
        match deduped.last() {
            Some(prev) if prev.sort_key() == rev.sort_key() => {
                let slot = deduped.len() - 1;
                deduped[slot] = rev;
            }
            _ => deduped.push(rev),
        }
    }
    let dropped = before - deduped.len();
    (deduped, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rev(page: u32, day: u32, seq: u32) -> PageRevision {
        PageRevision {
            page_id: page,
            title: format!("Page {page}"),
            day,
            seq_in_day: seq,
            wikitext: String::new(),
        }
    }

    #[test]
    fn canonicalize_sorts_by_page_day_seq() {
        let out = canonicalize_stream(vec![rev(1, 5, 0), rev(0, 9, 1), rev(0, 9, 0), rev(0, 2, 0)]);
        let keys: Vec<_> = out.iter().map(PageRevision::sort_key).collect();
        assert_eq!(keys, vec![(0, 2, 0), (0, 9, 0), (0, 9, 1), (1, 5, 0)]);
    }

    #[test]
    fn canonicalize_drops_duplicates_keeping_the_last() {
        let mut a = rev(0, 1, 0);
        a.wikitext = "first".into();
        let mut b = rev(0, 1, 0);
        b.wikitext = "second".into();
        let (out, dropped) = canonicalize_stream_lossy(vec![a, b, rev(0, 2, 0)]);
        assert_eq!(dropped, 1);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].wikitext, "second", "last duplicate wins");
        // The panic-free wrapper agrees.
        assert_eq!(canonicalize_stream(vec![rev(0, 1, 0), rev(0, 1, 0)]).len(), 1);
    }
}
