//! Row-aligned table extraction: revision streams → [`TemporalTable`]s.
//!
//! The column-level pipeline ([`crate::pipeline`]) flattens each column
//! into a value-set history — all the paper's unary algorithms need. n-ary
//! discovery (`tind_core::nary`) additionally needs row alignment, so this
//! module extracts whole-table histories: tables matched across revisions,
//! columns matched across versions, rows kept as tuples, daily
//! last-revision-wins aggregation, and value cleaning.

use std::collections::BTreeMap;

use tind_model::{Dictionary, TableVersion, TemporalTable, Timestamp, ValueId};

use crate::column_match::ColumnMatcher;
use crate::pipeline::PipelineConfig;
use crate::preprocess::clean_value;
use crate::revision::{canonicalize_stream, PageRevision};
use crate::table_match::TableMatcher;
use crate::wikitext::parse_tables;

/// One observed table state: rows as (column id → cleaned cell) maps.
type RowsById = Vec<BTreeMap<u32, ValueId>>;

/// Daily last-revision-wins aggregation over arbitrary payloads.
fn aggregate_last_of_day<T>(mut observations: Vec<(Timestamp, u32, T)>) -> Vec<(Timestamp, T)> {
    observations.sort_by_key(|(day, seq, _)| (*day, *seq));
    let mut out: Vec<(Timestamp, T)> = Vec::new();
    for (day, _, payload) in observations {
        match out.last_mut() {
            Some((last_day, slot)) if *last_day == day => *slot = payload,
            _ => out.push((day, payload)),
        }
    }
    out
}

/// Extracts every tracked table as a row-aligned [`TemporalTable`].
/// Returns the tables together with the dictionary interning their cell
/// values. Tables whose history never carries a complete row are dropped.
pub fn extract_temporal_tables(
    revisions: Vec<PageRevision>,
    config: &PipelineConfig,
) -> (Vec<TemporalTable>, Dictionary) {
    let revisions = canonicalize_stream(revisions);
    let mut dictionary = Dictionary::new();
    let mut tables_out = Vec::new();

    let mut i = 0;
    while i < revisions.len() {
        let page_id = revisions[i].page_id;
        let mut j = i;
        while j < revisions.len() && revisions[j].page_id == page_id {
            j += 1;
        }
        extract_page(&revisions[i..j], config, &mut dictionary, &mut tables_out);
        i = j;
    }
    (tables_out, dictionary)
}

struct TrackedTableState {
    caption: Option<String>,
    col_matcher: ColumnMatcher,
    headers: BTreeMap<u32, String>,
    /// (day, seq, rows) — `None` rows mean the table was absent.
    observations: Vec<(Timestamp, u32, Option<RowsById>)>,
}

fn extract_page(
    page_revs: &[PageRevision],
    config: &PipelineConfig,
    dictionary: &mut Dictionary,
    out: &mut Vec<TemporalTable>,
) {
    let Some(last_rev) = page_revs.last() else {
        return; // empty page group: nothing to extract
    };
    let title = &last_rev.title;
    let mut matcher = TableMatcher::new();
    let mut tracked: BTreeMap<u32, TrackedTableState> = BTreeMap::new();

    for rev in page_revs {
        if rev.day >= config.timeline_days {
            continue; // out-of-range revision (malformed timestamp): skip, don't abort
        }
        let raw_tables = parse_tables(&rev.wikitext);
        let ids = matcher.match_revision(&raw_tables);
        let present: std::collections::HashSet<u32> = ids.iter().copied().collect();

        for (raw, &tid) in raw_tables.iter().zip(&ids) {
            let state = tracked.entry(tid).or_insert_with(|| TrackedTableState {
                caption: None,
                col_matcher: ColumnMatcher::new(),
                headers: BTreeMap::new(),
                observations: Vec::new(),
            });
            if raw.caption.is_some() {
                state.caption = raw.caption.clone();
            }
            let col_ids = state.col_matcher.match_table(raw);
            for (pos, &cid) in col_ids.iter().enumerate() {
                state.headers.insert(cid, raw.headers[pos].clone());
            }
            let rows: RowsById = raw
                .rows
                .iter()
                .map(|row| {
                    let mut mapped = BTreeMap::new();
                    for (pos, cell) in row.iter().enumerate() {
                        if let Some(&cid) = col_ids.get(pos) {
                            if let Some(clean) = clean_value(cell) {
                                mapped.insert(cid, dictionary.intern(&clean));
                            }
                        }
                    }
                    mapped
                })
                .collect();
            state.observations.push((rev.day, rev.seq_in_day, Some(rows)));
        }
        for (&tid, state) in tracked.iter_mut() {
            if !present.contains(&tid) {
                state.observations.push((rev.day, rev.seq_in_day, None));
            }
        }
    }

    for (tid, state) in tracked {
        let daily = aggregate_last_of_day(state.observations);
        let Some(table) = assemble_table(title, tid, state.caption, &state.headers, daily) else {
            continue;
        };
        out.push(table);
    }
}

fn assemble_table(
    title: &str,
    tid: u32,
    caption: Option<String>,
    headers: &BTreeMap<u32, String>,
    daily: Vec<(Timestamp, Option<RowsById>)>,
) -> Option<TemporalTable> {
    // Column order: ascending column id (first-seen order).
    let col_ids: Vec<u32> = headers.keys().copied().collect();
    let columns: Vec<String> = col_ids.iter().map(|cid| headers[cid].clone()).collect();

    let first = daily.iter().position(|(_, rows)| rows.is_some())?;
    let last = daily.iter().rposition(|(_, rows)| rows.is_some())?;
    let mut versions: Vec<TableVersion> = Vec::new();
    for (day, rows) in &daily[first..=last] {
        let mut materialized: Vec<Vec<Option<ValueId>>> = match rows {
            None => Vec::new(), // table absent for (most of) the day
            Some(rows) => rows
                .iter()
                .map(|mapped| col_ids.iter().map(|cid| mapped.get(cid).copied()).collect())
                .collect(),
        };
        // Canonical row order so version deduplication is by content.
        materialized.sort_unstable();
        materialized.dedup();
        if versions.last().is_some_and(|prev: &TableVersion| prev.rows == materialized) {
            continue;
        }
        versions.push(TableVersion { start: *day, rows: materialized });
    }
    if versions.iter().all(|v| v.rows.is_empty()) {
        return None;
    }
    let label = caption.unwrap_or_else(|| format!("table{}", tid + 1));
    Some(TemporalTable::new(
        format!("{title} ▸ {label}"),
        columns,
        versions,
        daily[last].0,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rev(page: u32, title: &str, day: u32, wikitext: &str) -> PageRevision {
        PageRevision {
            page_id: page,
            title: title.to_string(),
            day,
            seq_in_day: 0,
            wikitext: wikitext.to_string(),
        }
    }

    const GAMES_V1: &str = "\
{| class=\"wikitable\"
|+ Games
! Game !! Composer
|-
| Red || Masuda
|-
| Gold || Masuda
|}";

    const GAMES_V2: &str = "\
{| class=\"wikitable\"
|+ Games
! Game !! Composer
|-
| Red || Masuda
|-
| Gold || Masuda
|-
| Ruby || Ichinose
|}";

    #[test]
    fn extracts_row_aligned_versions() {
        let revs = vec![rev(1, "Page", 0, GAMES_V1), rev(1, "Page", 10, GAMES_V2)];
        let (tables, dict) = extract_temporal_tables(revs, &PipelineConfig::new(50));
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.name(), "Page ▸ Games");
        assert_eq!(t.columns(), &["Game".to_string(), "Composer".to_string()]);
        assert_eq!(t.versions().len(), 2);
        assert_eq!(t.versions()[0].rows.len(), 2);
        assert_eq!(t.versions()[1].rows.len(), 3);
        // Row alignment: (Ruby, Ichinose) is one tuple.
        let ruby = dict.get("Ruby").expect("interned");
        let ichinose = dict.get("Ichinose").expect("interned");
        assert!(t.versions()[1].rows.contains(&vec![Some(ruby), Some(ichinose)]));
    }

    #[test]
    fn identical_consecutive_states_dedupe() {
        let revs = vec![
            rev(1, "Page", 0, GAMES_V1),
            rev(1, "Page", 5, GAMES_V1),
            rev(1, "Page", 9, GAMES_V2),
        ];
        let (tables, _) = extract_temporal_tables(revs, &PipelineConfig::new(50));
        assert_eq!(tables[0].versions().len(), 2, "no-op revision must not add a version");
    }

    #[test]
    fn same_day_edits_keep_last_state() {
        let mut second = rev(1, "Page", 3, GAMES_V2);
        second.seq_in_day = 1;
        let revs = vec![rev(1, "Page", 3, GAMES_V1), second];
        let (tables, _) = extract_temporal_tables(revs, &PipelineConfig::new(50));
        assert_eq!(tables[0].versions().len(), 1);
        assert_eq!(tables[0].versions()[0].rows.len(), 3, "day aggregates to the final edit");
    }

    #[test]
    fn absent_table_becomes_empty_version() {
        let revs = vec![
            rev(1, "Page", 0, GAMES_V1),
            rev(1, "Page", 5, "Table removed."),
            rev(1, "Page", 9, GAMES_V1),
        ];
        let (tables, _) = extract_temporal_tables(revs, &PipelineConfig::new(50));
        let t = &tables[0];
        assert_eq!(t.versions().len(), 3);
        assert!(t.versions()[1].rows.is_empty());
        assert_eq!(t.last_observed(), 9);
    }

    #[test]
    fn null_cells_become_none() {
        let text = "\
{|
! Game !! Composer
|-
| Red || n/a
|}";
        let revs = vec![rev(1, "P", 0, text)];
        let (tables, dict) = extract_temporal_tables(revs, &PipelineConfig::new(10));
        let t = &tables[0];
        let red = dict.get("Red").expect("interned");
        assert_eq!(t.versions()[0].rows, vec![vec![Some(red), None]]);
    }

    #[test]
    fn feeds_nary_discovery_end_to_end() {
        use tind_core::nary::{discover_nary, NaryInd};
        use tind_core::TindParams;
        // One page with a catalog, another with a credits subset.
        let catalog = "\
{|
|+ Catalog
! Game !! Composer
|-
| Red || Masuda
|-
| Gold || Masuda
|-
| Ruby || Ichinose
|}";
        let credits = "\
{|
|+ Credits
! Game !! Composer
|-
| Red || Masuda
|-
| Ruby || Ichinose
|}";
        let revs = vec![
            rev(1, "Catalog page", 0, catalog),
            rev(1, "Catalog page", 30, catalog),
            rev(2, "Credits page", 0, credits),
            rev(2, "Credits page", 30, credits),
        ];
        let (tables, _) = extract_temporal_tables(revs, &PipelineConfig::new(40));
        assert_eq!(tables.len(), 2);
        let timeline = tind_model::Timeline::new(40);
        let results = discover_nary(&tables, timeline, &TindParams::strict(), 2);
        let credits_idx =
            tables.iter().position(|t| t.name().contains("Credits")).expect("credits table");
        let catalog_idx = 1 - credits_idx;
        let want = NaryInd { lhs: (credits_idx, vec![0, 1]), rhs: (catalog_idx, vec![0, 1]) };
        assert!(
            results.levels[1].contains(&want),
            "binary IND missing: {:?}",
            results.levels[1].iter().map(|i| i.describe(&tables)).collect::<Vec<_>>()
        );
    }
}
