//! Wikitext table parsing.
//!
//! Parses the MediaWiki pipe-table syntax used by the overwhelming
//! majority of Wikipedia tables:
//!
//! ```text
//! {| class="wikitable"
//! |+ Caption
//! ! Header A !! Header B
//! |-
//! | cell 1 || cell 2
//! |-
//! | cell 3 || cell 4
//! |}
//! ```
//!
//! The parser is deliberately tolerant: malformed rows are skipped rather
//! than failing the page (sixteen years of hand-edited wikitext contain
//! every imaginable mistake). Cell attribute prefixes
//! (`style="..." | value`) are stripped.

/// A parsed table: caption, headers, and row-major cells.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawTable {
    /// Table caption (`|+ ...`), if present.
    pub caption: Option<String>,
    /// Column headers in order.
    pub headers: Vec<String>,
    /// Data rows; each row has at most `headers.len()` retained cells.
    pub rows: Vec<Vec<String>>,
}

impl RawTable {
    /// The distinct non-empty values of column `c`, in first-seen order.
    pub fn column_values(&self, c: usize) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            if let Some(cell) = row.get(c) {
                if !cell.is_empty() && seen.insert(cell.as_str()) {
                    out.push(cell.as_str());
                }
            }
        }
        out
    }

    /// Number of columns (headers).
    pub fn width(&self) -> usize {
        self.headers.len()
    }
}

/// Strips a `style="..."` / `align=...` attribute prefix from a cell: the
/// part before a single `|` (not `||`) is attributes when it contains `=`.
fn strip_cell_attributes(cell: &str) -> &str {
    if let Some(pos) = cell.find('|') {
        // `||` separators were already split away; a lone `|` after an
        // attribute-looking prefix separates attributes from content.
        let (prefix, rest) = cell.split_at(pos);
        if prefix.contains('=') && !prefix.contains("[[") {
            return &rest[1..];
        }
    }
    cell
}

/// Extracts a numeric cell attribute like `colspan="2"` / `rowspan=3` from
/// the (pre-strip) cell text. Values are clamped to a sane range.
fn cell_span(cell: &str, attr: &str) -> u32 {
    let Some(pos) = cell.find(attr) else { return 1 };
    let rest = &cell[pos + attr.len()..];
    let rest = rest.trim_start().trim_start_matches('=').trim_start();
    let rest = rest.trim_start_matches('"').trim_start_matches('\'');
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse::<u32>().map_or(1, |v| v.clamp(1, 64))
}

/// A parsed data cell with its spans.
struct Cell {
    content: String,
    colspan: u32,
    rowspan: u32,
}

fn parse_data_cell(raw: &str) -> Cell {
    let raw = raw.trim();
    // Spans live in the attribute prefix (before the content separator);
    // scanning the whole cell is harmless because `colspan=`/`rowspan=`
    // cannot appear in rendered content.
    let colspan = cell_span(raw, "colspan");
    let rowspan = cell_span(raw, "rowspan");
    let content = strip_cell_attributes(raw).trim().to_string();
    Cell { content, colspan, rowspan }
}

/// Row assembly with rowspan carry-over: `pending[col]` holds a value that
/// earlier rows project into this column, with its remaining row count.
#[derive(Default)]
struct RowAssembler {
    pending: Vec<Option<(u32, String)>>,
}

impl RowAssembler {
    /// Fills contiguously carried columns at the current row position.
    fn fill_carries(&mut self, row: &mut Vec<String>) {
        loop {
            let col = row.len();
            match self.pending.get_mut(col).map(Option::take) {
                Some(Some((remaining, value))) => {
                    row.push(value.clone());
                    if remaining > 1 {
                        self.pending[col] = Some((remaining - 1, value));
                    }
                }
                _ => return,
            }
        }
    }

    /// Places one parsed cell, honoring colspan and registering rowspan
    /// carry-over.
    fn place(&mut self, row: &mut Vec<String>, cell: Cell) {
        self.fill_carries(row);
        for _ in 0..cell.colspan {
            let col = row.len();
            row.push(cell.content.clone());
            if cell.rowspan > 1 {
                if self.pending.len() <= col {
                    self.pending.resize(col + 1, None);
                }
                self.pending[col] = Some((cell.rowspan - 1, cell.content.clone()));
            }
        }
        self.fill_carries(row);
    }

    /// Completes a row: trailing carried columns are materialized.
    fn finish(&mut self, row: &mut Vec<String>) {
        self.fill_carries(row);
    }
}

/// Splits a header or data line on its multi-cell separator (`!!` / `||`).
fn split_cells<'a>(line: &'a str, sep: &str) -> Vec<&'a str> {
    line.split(sep).collect()
}

/// Parses all tables in a page's wikitext. Nested tables are not
/// descended into (matching the paper's extraction granularity); their
/// content is ignored.
///
/// # Examples
///
/// ```
/// let page = "\
/// {| class=\"wikitable\"
/// |+ Games
/// ! Game !! Year
/// |-
/// | [[Pokémon Red|Red]] || 1996
/// |}";
/// let tables = tind_wiki::parse_tables(page);
/// assert_eq!(tables.len(), 1);
/// assert_eq!(tables[0].headers, vec!["Game", "Year"]);
/// assert_eq!(tables[0].column_values(1), vec!["1996"]);
/// ```
pub fn parse_tables(wikitext: &str) -> Vec<RawTable> {
    let mut tables = Vec::new();
    let mut lines = wikitext.lines().peekable();
    while let Some(line) = lines.next() {
        if !line.trim_start().starts_with("{|") {
            continue;
        }
        let mut table = RawTable::default();
        let mut current_row: Option<Vec<String>> = None;
        let mut assembler = RowAssembler::default();
        let mut depth = 1;
        for line in lines.by_ref() {
            let t = line.trim();
            if t.starts_with("{|") {
                // Nested table: skip until it closes.
                depth += 1;
                continue;
            }
            if t.starts_with("|}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                continue;
            }
            if depth > 1 {
                continue;
            }
            if let Some(rest) = t.strip_prefix("|+") {
                let caption = rest.trim();
                if !caption.is_empty() {
                    table.caption = Some(caption.to_string());
                }
            } else if t.starts_with("|-") {
                if let Some(mut row) = current_row.take() {
                    assembler.finish(&mut row);
                    if !row.is_empty() {
                        table.rows.push(row);
                    }
                }
            } else if let Some(rest) = t.strip_prefix('!') {
                // Header line; may carry several cells via `!!`.
                for cell in split_cells(rest, "!!") {
                    let clean = strip_cell_attributes(cell.trim()).trim();
                    table.headers.push(clean.to_string());
                }
            } else if let Some(rest) = t.strip_prefix('|') {
                let row = current_row.get_or_insert_with(Vec::new);
                for cell in split_cells(rest, "||") {
                    assembler.place(row, parse_data_cell(cell));
                }
            }
            // Prose lines inside a table are ignored.
        }
        if let Some(mut row) = current_row.take() {
            assembler.finish(&mut row);
            if !row.is_empty() {
                table.rows.push(row);
            }
        }
        // Keep only tables that are actually tables.
        if !table.headers.is_empty() && !table.rows.is_empty() {
            // Clip ragged rows to the header width.
            for row in &mut table.rows {
                row.truncate(table.headers.len());
            }
            tables.push(table);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = "\
Intro prose.
{| class=\"wikitable\"
|+ Pokémon games
! Game !! Year
|-
| [[Pokémon Red|Red]] || 1996
|-
| Gold || 1999
|}
Outro prose.";

    #[test]
    fn parses_a_simple_table() {
        let tables = parse_tables(SIMPLE);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.caption.as_deref(), Some("Pokémon games"));
        assert_eq!(t.headers, vec!["Game", "Year"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0], vec!["[[Pokémon Red|Red]]", "1996"]);
        assert_eq!(t.column_values(1), vec!["1996", "1999"]);
    }

    #[test]
    fn parses_multiple_tables_per_page() {
        let text = format!("{SIMPLE}\n\n{SIMPLE}");
        assert_eq!(parse_tables(&text).len(), 2);
    }

    #[test]
    fn one_cell_per_line_syntax() {
        let text = "\
{|
! A
! B
|-
| 1
| 2
|-
| 3
| 4
|}";
        let t = &parse_tables(text)[0];
        assert_eq!(t.headers, vec!["A", "B"]);
        assert_eq!(t.rows, vec![vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn strips_cell_attributes() {
        let text = "\
{|
! Name
|-
| style=\"background:red\" | Apple
|-
| align=center | Pear
|}";
        let t = &parse_tables(text)[0];
        assert_eq!(t.rows, vec![vec!["Apple"], vec!["Pear"]]);
    }

    #[test]
    fn keeps_piped_links_intact() {
        let text = "\
{|
! Name
|-
| [[Some Page|displayed]]
|}";
        let t = &parse_tables(text)[0];
        assert_eq!(t.rows[0][0], "[[Some Page|displayed]]");
    }

    #[test]
    fn skips_headerless_and_empty_tables() {
        assert!(parse_tables("{|\n|-\n| lonely cell\n|}").is_empty());
        assert!(parse_tables("{|\n! Header only\n|}").is_empty());
        assert!(parse_tables("no table here").is_empty());
    }

    #[test]
    fn tolerates_unclosed_table() {
        let text = "{|\n! H\n|-\n| v";
        let t = parse_tables(text);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].rows, vec![vec!["v"]]);
    }

    #[test]
    fn ignores_nested_tables() {
        let text = "\
{|
! Outer
|-
| before
{|
! Inner
|-
| hidden
|}
|-
| after
|}";
        let tables = parse_tables(text);
        assert_eq!(tables.len(), 1);
        let values = tables[0].column_values(0);
        assert!(values.contains(&"before") && values.contains(&"after"));
        assert!(!values.contains(&"hidden"));
    }

    #[test]
    fn ragged_rows_are_clipped() {
        let text = "\
{|
! A !! B
|-
| 1 || 2 || 3 || 4
|}";
        let t = &parse_tables(text)[0];
        assert_eq!(t.rows[0], vec!["1", "2"]);
    }

    #[test]
    fn colspan_duplicates_the_value_across_columns() {
        let text = "\
{|
! A !! B !! C
|-
| colspan=\"2\" | wide || solo
|-
| 1 || 2 || 3
|}";
        let t = &parse_tables(text)[0];
        assert_eq!(t.rows[0], vec!["wide", "wide", "solo"]);
        assert_eq!(t.rows[1], vec!["1", "2", "3"]);
    }

    #[test]
    fn rowspan_carries_the_value_down() {
        let text = "\
{|
! Country !! City
|-
| rowspan=2 | Japan || Tokyo
|-
| Osaka
|-
| France || Paris
|}";
        let t = &parse_tables(text)[0];
        assert_eq!(t.rows[0], vec!["Japan", "Tokyo"]);
        assert_eq!(t.rows[1], vec!["Japan", "Osaka"]);
        assert_eq!(t.rows[2], vec!["France", "Paris"]);
        assert_eq!(t.column_values(0), vec!["Japan", "France"]);
    }

    #[test]
    fn rowspan_in_middle_column() {
        let text = "\
{|
! A !! B !! C
|-
| a1 || rowspan=\"2\" | shared || c1
|-
| a2 || c2
|}";
        let t = &parse_tables(text)[0];
        assert_eq!(t.rows[0], vec!["a1", "shared", "c1"]);
        assert_eq!(t.rows[1], vec!["a2", "shared", "c2"]);
    }

    #[test]
    fn combined_col_and_rowspan() {
        let text = "\
{|
! A !! B !! C
|-
| colspan=2 rowspan=2 | block || c1
|-
| c2
|-
| x || y || z
|}";
        let t = &parse_tables(text)[0];
        assert_eq!(t.rows[0], vec!["block", "block", "c1"]);
        assert_eq!(t.rows[1], vec!["block", "block", "c2"]);
        assert_eq!(t.rows[2], vec!["x", "y", "z"]);
    }

    #[test]
    fn cell_span_parsing_is_robust() {
        assert_eq!(cell_span("colspan=\"3\" | v", "colspan"), 3);
        assert_eq!(cell_span("rowspan = 2 | v", "rowspan"), 2);
        assert_eq!(cell_span("plain cell", "colspan"), 1);
        assert_eq!(cell_span("colspan=abc | v", "colspan"), 1);
        assert_eq!(cell_span("colspan=9999 | v", "colspan"), 64, "clamped");
    }

    #[test]
    fn column_values_dedup_preserving_order() {
        let text = "\
{|
! X
|-
| b
|-
| a
|-
| b
|}";
        let t = &parse_tables(text)[0];
        assert_eq!(t.column_values(0), vec!["b", "a"]);
        assert!(t.column_values(5).is_empty());
    }
}
