//! Matching columns across versions of one (tracked) table.
//!
//! Within a matched table history, columns must be linked across revisions
//! to form *attribute histories*. Matching is by exact (case-insensitive)
//! header name first; renamed columns fall back to value-set similarity.

use crate::table_match::jaccard;
use crate::wikitext::RawTable;

#[derive(Debug)]
struct TrackedColumn {
    id: u32,
    header_lower: String,
    last_values: Vec<String>,
}

/// Stateful column matcher for one tracked table.
#[derive(Debug, Default)]
pub struct ColumnMatcher {
    next_id: u32,
    tracked: Vec<TrackedColumn>,
}

/// Minimum value-set similarity for a renamed column to keep its identity.
const VALUE_MATCH_THRESHOLD: f64 = 0.4;

impl ColumnMatcher {
    /// Creates a matcher with no known columns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a stable column id to every column of the table version.
    pub fn match_table(&mut self, table: &RawTable) -> Vec<u32> {
        let mut assignment: Vec<Option<u32>> = vec![None; table.headers.len()];
        let mut taken = vec![false; self.tracked.len()];

        // Pass 1: exact header-name matches.
        for (ci, header) in table.headers.iter().enumerate() {
            let lower = header.to_lowercase();
            let found = self
                .tracked
                .iter()
                .enumerate()
                .find(|(ti, t)| !taken[*ti] && t.header_lower == lower)
                .map(|(ti, _)| ti);
            if let Some(ti) = found {
                taken[ti] = true;
                assignment[ci] = Some(self.tracked[ti].id);
                self.refresh(ti, header, table, ci);
            }
        }

        // Pass 2: value-overlap matches for renamed columns.
        for (ci, header) in table.headers.iter().enumerate() {
            if assignment[ci].is_some() {
                continue;
            }
            let values = table.column_values(ci);
            let mut best: Option<(f64, usize)> = None;
            for (ti, tracked) in self.tracked.iter().enumerate() {
                if taken[ti] {
                    continue;
                }
                let sim = jaccard(
                    tracked.last_values.iter().map(String::as_str),
                    values.iter().copied(),
                );
                if sim >= VALUE_MATCH_THRESHOLD && best.is_none_or(|(b, _)| sim > b) {
                    best = Some((sim, ti));
                }
            }
            if let Some((_, ti)) = best {
                taken[ti] = true;
                assignment[ci] = Some(self.tracked[ti].id);
                self.refresh(ti, header, table, ci);
            }
        }

        // Pass 3: new columns.
        assignment
            .into_iter()
            .enumerate()
            .map(|(ci, assigned)| {
                assigned.unwrap_or_else(|| {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.tracked.push(TrackedColumn {
                        id,
                        header_lower: table.headers[ci].to_lowercase(),
                        last_values: table
                            .column_values(ci)
                            .into_iter()
                            .map(str::to_string)
                            .collect(),
                    });
                    id
                })
            })
            .collect()
    }

    fn refresh(&mut self, ti: usize, header: &str, table: &RawTable, ci: usize) {
        self.tracked[ti].header_lower = header.to_lowercase();
        self.tracked[ti].last_values =
            table.column_values(ci).into_iter().map(str::to_string).collect();
    }

    /// Number of distinct columns seen so far.
    pub fn columns_seen(&self) -> usize {
        self.next_id as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(headers: &[&str], columns: &[&[&str]]) -> RawTable {
        assert_eq!(headers.len(), columns.len());
        let height = columns.iter().map(|c| c.len()).max().unwrap_or(0);
        let rows = (0..height)
            .map(|r| {
                columns
                    .iter()
                    .map(|c| c.get(r).copied().unwrap_or("").to_string())
                    .collect()
            })
            .collect();
        RawTable {
            caption: None,
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    #[test]
    fn exact_header_match_is_stable() {
        let mut m = ColumnMatcher::new();
        let t = table(&["Game", "Year"], &[&["red", "blue"], &["1996", "1996"]]);
        let ids1 = m.match_table(&t);
        let ids2 = m.match_table(&t);
        assert_eq!(ids1, vec![0, 1]);
        assert_eq!(ids1, ids2);
    }

    #[test]
    fn case_insensitive_header_match() {
        let mut m = ColumnMatcher::new();
        let ids1 = m.match_table(&table(&["Game"], &[&["red"]]));
        let ids2 = m.match_table(&table(&["GAME"], &[&["red", "blue"]]));
        assert_eq!(ids1, ids2);
    }

    #[test]
    fn column_reorder_keeps_identity() {
        let mut m = ColumnMatcher::new();
        let ids1 = m.match_table(&table(&["Game", "Year"], &[&["red"], &["1996"]]));
        let ids2 = m.match_table(&table(&["Year", "Game"], &[&["1996"], &["red"]]));
        assert_eq!(ids2, vec![ids1[1], ids1[0]]);
    }

    #[test]
    fn rename_with_value_overlap_keeps_identity() {
        let mut m = ColumnMatcher::new();
        let ids1 = m.match_table(&table(&["Game"], &[&["red", "blue", "gold"]]));
        let ids2 = m.match_table(&table(&["Title"], &[&["red", "blue", "gold", "ruby"]]));
        assert_eq!(ids1, ids2, "renamed column with 3/4 value overlap keeps id");
    }

    #[test]
    fn rename_without_overlap_is_a_new_column() {
        let mut m = ColumnMatcher::new();
        let ids1 = m.match_table(&table(&["Game"], &[&["red", "blue"]]));
        let ids2 = m.match_table(&table(&["Publisher"], &[&["nintendo"]]));
        assert_ne!(ids1[0], ids2[0]);
        assert_eq!(m.columns_seen(), 2);
    }

    #[test]
    fn added_column_gets_fresh_id() {
        let mut m = ColumnMatcher::new();
        let ids1 = m.match_table(&table(&["Game"], &[&["red"]]));
        let ids2 =
            m.match_table(&table(&["Game", "Composer"], &[&["red"], &["masuda"]]));
        assert_eq!(ids2[0], ids1[0]);
        assert_eq!(ids2[1], 1);
    }
}
