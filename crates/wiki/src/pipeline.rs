//! End-to-end extraction: page revisions → attribute-history dataset.
//!
//! Orchestrates the §5.1 steps: parse each revision's tables, match tables
//! across revisions, match columns across table versions, record
//! per-column observations (including absences, so deleted tables close
//! their histories), aggregate to daily granularity, clean values, and
//! apply the attribute filters.
//!
//! Two interfaces:
//!
//! * [`extract_dataset`] — eager, over an in-memory revision stream.
//! * [`PipelineSession`] — incremental, one page group at a time, for
//!   streaming ingestion ([`crate::ingest`]). Pages are independent, so a
//!   session can be snapshotted after any page and resumed from a partial
//!   dataset with byte-identical results. Each page is processed in two
//!   stages: a pure, panic-isolated stage (parsing, matching,
//!   aggregation) followed by a commit stage that touches the builder —
//!   so a panic on a pathological page leaves the session untouched and
//!   the page can be quarantined.

use std::collections::BTreeMap;

use tind_model::{Dataset, DatasetBuilder, Timeline, Timestamp};

use crate::aggregate::{aggregate_daily, build_history, Observation};
use crate::column_match::ColumnMatcher;
use crate::preprocess::{clean_value, AttributeFilters};
use crate::revision::{canonicalize_stream_lossy, PageRevision};
use crate::table_match::TableMatcher;
use crate::wikitext::parse_tables;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Global timeline length; every revision day must be below it.
    pub timeline_days: u32,
    /// Attribute-level filters (§5.1).
    pub filters: AttributeFilters,
    /// Drop revisions classified as vandalism *before* aggregation
    /// (explicit cleaning on top of the daily last-wins rule; see
    /// [`crate::vandalism`]).
    pub drop_vandalism: bool,
}

impl PipelineConfig {
    /// Standard configuration over a timeline of `timeline_days`.
    pub fn new(timeline_days: u32) -> Self {
        PipelineConfig {
            timeline_days,
            filters: AttributeFilters::default(),
            drop_vandalism: false,
        }
    }

    /// Enables explicit vandalism filtering.
    pub fn with_vandalism_filter(mut self) -> Self {
        self.drop_vandalism = true;
        self
    }
}

/// What the pipeline did, for logging and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Distinct pages processed (with at least one surviving revision).
    pub pages: usize,
    /// Revisions processed.
    pub revisions: usize,
    /// Revisions dropped by the explicit vandalism filter (0 when the
    /// filter is off).
    pub vandalism_dropped: usize,
    /// Revisions dropped because their day falls outside the configured
    /// timeline. A malformed timestamp in a multi-GB dump must not abort
    /// hours of extraction, so these are counted instead of panicking.
    pub out_of_range_dropped: usize,
    /// Revisions dropped because another revision carried the same
    /// `(page, day, seq)` key (corrupted stream; last occurrence wins).
    pub duplicate_dropped: usize,
    /// Distinct tables tracked across all pages.
    pub tables_tracked: usize,
    /// Distinct columns tracked across all tables.
    pub columns_tracked: usize,
    /// Column histories assembled before filtering.
    pub attributes_before_filters: usize,
    /// Attributes surviving the §5.1 filters (the dataset size).
    pub attributes_kept: usize,
}

#[derive(Default)]
struct ColumnState {
    header: String,
    observations: Vec<Observation>,
}

#[derive(Default)]
struct TableState {
    caption: Option<String>,
    col_matcher: ColumnMatcher,
    columns: BTreeMap<u32, ColumnState>,
}

/// Result of the pure, panic-isolated stage of one page: everything the
/// commit stage needs, with no references into the builder.
pub(crate) struct StagedPage {
    pub(crate) vandalism_dropped: usize,
    pub(crate) duplicate_dropped: usize,
    pub(crate) revisions: usize,
    pub(crate) out_of_range_dropped: usize,
    pub(crate) tables_tracked: usize,
    pub(crate) columns_tracked: usize,
    pub(crate) columns: Vec<StagedColumn>,
}

/// One column's aggregated daily states, with values still as strings
/// (interning happens at commit so a panic never leaves the dictionary
/// half-updated).
pub(crate) struct StagedColumn {
    pub(crate) name: String,
    pub(crate) daily: Vec<(Timestamp, Option<Vec<String>>)>,
}

/// Stage A: canonicalize, filter, parse, match, and aggregate one page.
/// Pure except for allocation — safe to run under `catch_unwind`.
pub(crate) fn stage_page(page_revs: Vec<PageRevision>, config: &PipelineConfig) -> StagedPage {
    let (revs, duplicate_dropped) = canonicalize_stream_lossy(page_revs);
    let total = revs.len();
    let revs = if config.drop_vandalism {
        let (kept, _) = crate::vandalism::filter_vandalism(revs);
        kept
    } else {
        revs
    };
    let vandalism_dropped = total - revs.len();
    let mut staged = StagedPage {
        vandalism_dropped,
        duplicate_dropped,
        revisions: revs.len(),
        out_of_range_dropped: 0,
        tables_tracked: 0,
        columns_tracked: 0,
        columns: Vec::new(),
    };
    let Some(last_rev) = revs.last() else {
        return staged;
    };
    let title = last_rev.title.clone();
    let mut table_matcher = TableMatcher::new();
    let mut tables: BTreeMap<u32, TableState> = BTreeMap::new();

    for rev in &revs {
        if rev.day >= config.timeline_days {
            staged.out_of_range_dropped += 1;
            continue;
        }
        let raw_tables = parse_tables(&rev.wikitext);
        let table_ids = table_matcher.match_revision(&raw_tables);
        let present: std::collections::HashSet<u32> = table_ids.iter().copied().collect();

        for (raw, &tid) in raw_tables.iter().zip(&table_ids) {
            let state = tables.entry(tid).or_default();
            if raw.caption.is_some() {
                state.caption = raw.caption.clone();
            }
            let col_ids = state.col_matcher.match_table(raw);
            let seen: std::collections::HashSet<u32> = col_ids.iter().copied().collect();
            for (ci, &cid) in col_ids.iter().enumerate() {
                let values: Vec<String> =
                    raw.column_values(ci).into_iter().filter_map(clean_value).collect();
                let col = state.columns.entry(cid).or_default();
                col.header = raw.headers[ci].clone();
                col.observations.push(Observation {
                    day: rev.day,
                    seq_in_day: rev.seq_in_day,
                    values: Some(values),
                });
            }
            // Columns of this table that vanished in this revision.
            for (&cid, col) in state.columns.iter_mut() {
                if !seen.contains(&cid) {
                    col.observations.push(Observation {
                        day: rev.day,
                        seq_in_day: rev.seq_in_day,
                        values: None,
                    });
                }
            }
        }
        // Whole tables absent from this revision.
        for (&tid, state) in tables.iter_mut() {
            if !present.contains(&tid) {
                for col in state.columns.values_mut() {
                    col.observations.push(Observation {
                        day: rev.day,
                        seq_in_day: rev.seq_in_day,
                        values: None,
                    });
                }
            }
        }
    }

    staged.tables_tracked = tables.len();
    for (tid, state) in tables {
        let table_label = state.caption.clone().unwrap_or_else(|| format!("table{}", tid + 1));
        staged.columns_tracked += state.columns.len();
        for (_cid, col) in state.columns {
            let daily = aggregate_daily(col.observations);
            let name = format!("{title} ▸ {table_label} ▸ {}", col.header);
            staged.columns.push(StagedColumn { name, daily });
        }
    }
    staged
}

/// Stage B: intern, filter, and add the staged columns to the builder.
fn commit_staged(
    config: &PipelineConfig,
    builder: &mut DatasetBuilder,
    report: &mut PipelineReport,
    staged: StagedPage,
) {
    report.vandalism_dropped += staged.vandalism_dropped;
    report.duplicate_dropped += staged.duplicate_dropped;
    if staged.revisions == 0 {
        return;
    }
    report.pages += 1;
    report.revisions += staged.revisions;
    report.out_of_range_dropped += staged.out_of_range_dropped;
    report.tables_tracked += staged.tables_tracked;
    report.columns_tracked += staged.columns_tracked;
    for col in staged.columns {
        let dict = builder.dictionary_mut();
        let Some(history) = build_history(&col.name, &col.daily, |s| dict.intern(s)) else {
            continue;
        };
        report.attributes_before_filters += 1;
        let keep = {
            let dict = builder.dictionary();
            config.filters.keep(&history, |v| dict.resolve(v).to_string())
        };
        if keep {
            builder.add_history(history);
            report.attributes_kept += 1;
        }
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Incremental extraction session: feed one page group at a time.
///
/// Pages are processed independently and interned in arrival order, so a
/// given sequence of `push_page` calls always yields a byte-identical
/// dataset — including across [`PipelineSession::snapshot`] /
/// [`PipelineSession::resume`] boundaries, which is what makes
/// checkpointed ingestion deterministic.
pub struct PipelineSession {
    config: PipelineConfig,
    builder: DatasetBuilder,
    report: PipelineReport,
}

impl PipelineSession {
    /// Starts an empty session.
    pub fn new(config: PipelineConfig) -> Self {
        let builder = DatasetBuilder::new(Timeline::new(config.timeline_days));
        PipelineSession { config, builder, report: PipelineReport::default() }
    }

    /// Resumes from a snapshot: the partial dataset and report of an
    /// earlier session (e.g. decoded from an ingestion checkpoint).
    pub fn resume(config: PipelineConfig, partial: Dataset, report: PipelineReport) -> Self {
        PipelineSession { config, builder: partial.into_builder(), report }
    }

    /// The session's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Progress so far.
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }

    /// Processes all revisions of one page. A panic anywhere in parsing,
    /// matching, or aggregation is caught *before* any session state is
    /// touched and returned as `Err(message)` so the caller can
    /// quarantine the page and continue.
    pub fn push_page(&mut self, page_revs: Vec<PageRevision>) -> Result<(), String> {
        let _span = tind_obs::span("wiki.pipeline.page");
        let config = self.config.clone();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stage_page(page_revs, &config)
        })) {
            Ok(staged) => {
                commit_staged(&self.config, &mut self.builder, &mut self.report, staged);
                Ok(())
            }
            Err(payload) => Err(panic_message(payload)),
        }
    }

    /// [`Self::push_page`] without panic isolation, for eager callers
    /// that want panics to propagate.
    fn push_page_uncaught(&mut self, page_revs: Vec<PageRevision>) {
        let staged = stage_page(page_revs, &self.config);
        commit_staged(&self.config, &mut self.builder, &mut self.report, staged);
    }

    /// The dataset as of the pages pushed so far (the session continues).
    pub fn snapshot(&self) -> Dataset {
        self.builder.clone().build()
    }

    /// Finalizes the session.
    pub fn finish(self) -> (Dataset, PipelineReport) {
        (self.builder.build(), self.report)
    }
}

/// Runs the full extraction pipeline eagerly over an in-memory stream.
pub fn extract_dataset(
    mut revisions: Vec<PageRevision>,
    config: &PipelineConfig,
) -> (Dataset, PipelineReport) {
    // Group pages contiguously; per-page dedup/filtering happens inside
    // the session.
    revisions.sort_by_key(PageRevision::sort_key);
    let mut session = PipelineSession::new(config.clone());
    let mut i = 0;
    while i < revisions.len() {
        let page_id = revisions[i].page_id;
        let mut j = i;
        while j < revisions.len() && revisions[j].page_id == page_id {
            j += 1;
        }
        session.push_page_uncaught(revisions[i..j].to_vec());
        i = j;
    }
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders a one-table page with the given column of games.
    fn games_page(day: u32, seq: u32, games: &[&str], year_col: bool) -> PageRevision {
        let mut text = String::from("{| class=\"wikitable\"\n|+ Games\n! Game");
        if year_col {
            text.push_str(" !! Year");
        }
        text.push('\n');
        for (i, g) in games.iter().enumerate() {
            text.push_str("|-\n");
            if year_col {
                text.push_str(&format!("| [[{g}]] || {}\n", 1996 + i));
            } else {
                text.push_str(&format!("| [[{g}]]\n"));
            }
        }
        text.push_str("|}\n");
        PageRevision {
            page_id: 1,
            title: "Pokémon video games".to_string(),
            day,
            seq_in_day: seq,
            wikitext: text,
        }
    }

    #[test]
    fn extracts_growing_column_history() {
        // Six revisions so the Game column passes the ≥5-version filter.
        let revs = vec![
            games_page(0, 0, &["Red", "Blue", "Green", "Yellow", "Gold"], true),
            games_page(10, 0, &["Red", "Blue", "Green", "Yellow", "Gold", "Silver"], true),
            games_page(20, 0, &["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal"], true),
            games_page(30, 0, &["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal", "Ruby"], true),
            games_page(40, 0, &["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal", "Ruby", "Sapphire"], true),
            games_page(50, 0, &["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal", "Ruby", "Sapphire", "Emerald"], true),
        ];
        let (dataset, report) = extract_dataset(revs, &PipelineConfig::new(100));
        assert_eq!(report.pages, 1);
        assert_eq!(report.revisions, 6);
        assert_eq!(report.tables_tracked, 1);
        assert_eq!(report.columns_tracked, 2, "Game and Year");
        // Year is numeric → filtered; Game survives.
        assert_eq!(report.attributes_kept, 1);
        assert_eq!(dataset.len(), 1);
        let (_, h) = dataset
            .attribute_by_name("Pokémon video games ▸ Games ▸ Game")
            .expect("named attribute");
        assert_eq!(h.versions().len(), 6);
        assert_eq!(h.first_observed(), 0);
        assert_eq!(h.last_observed(), 50);
        assert_eq!(h.values_at(15).len(), 6);
        // Links resolved: value is the page title.
        let dict = dataset.dictionary();
        assert!(dict.get("Red").is_some());
    }

    #[test]
    fn same_day_vandalism_is_aggregated_away() {
        let clean = &["Red", "Blue", "Green", "Yellow", "Gold"];
        let mut revs = vec![
            games_page(0, 0, clean, false),
            games_page(10, 0, &["Red", "Blue", "Green", "Yellow", "Gold", "Silver"], false),
            games_page(20, 0, &["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal"], false),
            games_page(30, 0, &["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal", "Ruby"], false),
            games_page(40, 0, &["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal", "Ruby", "Sapphire"], false),
        ];
        // Day 25: vandal blanks the list, revert restores it.
        revs.push(games_page(25, 0, &["VANDALISM_JUNK", "MORE_JUNK", "X", "Y", "Z"], false));
        revs.push(games_page(
            25,
            1,
            &["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal"],
            false,
        ));
        let (dataset, _) = extract_dataset(revs, &PipelineConfig::new(100));
        let (_, h) = dataset
            .attribute_by_name("Pokémon video games ▸ Games ▸ Game")
            .expect("attribute");
        let dict = dataset.dictionary();
        // The junk never makes it into the daily history.
        assert!(dict.get("VANDALISM_JUNK").is_none() || {
            let junk = dict.get("VANDALISM_JUNK").unwrap();
            !h.value_universe().contains(&junk)
        });
    }

    #[test]
    fn deleted_table_closes_the_history() {
        let with_table: Vec<PageRevision> = (0..5)
            .map(|i| {
                games_page(
                    i * 5,
                    0,
                    &["Red", "Blue", "Green", "Yellow", "Gold", "Silver"][..5 + (i as usize % 2)],
                    false,
                )
            })
            .collect();
        let mut revs = with_table;
        revs.push(PageRevision {
            page_id: 1,
            title: "Pokémon video games".to_string(),
            day: 30,
            seq_in_day: 0,
            wikitext: "The table is gone.".to_string(),
        });
        let (dataset, _) = extract_dataset(revs, &PipelineConfig::new(100));
        if let Some((_, h)) = dataset.attribute_by_name("Pokémon video games ▸ Games ▸ Game") {
            // History must not extend past the deletion day.
            assert!(h.last_observed() <= 30);
        }
    }

    #[test]
    fn multiple_pages_are_independent() {
        let all = ["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal", "Ruby", "Sapphire"];
        let mut revs = Vec::new();
        for (pid, title) in [(1u32, "Page A"), (2, "Page B")] {
            for i in 0..5u32 {
                let mut r = games_page(i * 7, 0, &all[..5 + i as usize], false);
                r.page_id = pid;
                r.title = title.to_string();
                // Vary page B's values so columns differ.
                if pid == 2 {
                    r.wikitext = r.wikitext.replace("Red", "Mario");
                }
                revs.push(r);
            }
        }
        let (dataset, report) = extract_dataset(revs, &PipelineConfig::new(100));
        assert_eq!(report.pages, 2);
        assert_eq!(dataset.len(), 2);
        assert!(dataset.attribute_by_name("Page A ▸ Games ▸ Game").is_some());
        assert!(dataset.attribute_by_name("Page B ▸ Games ▸ Game").is_some());
    }

    #[test]
    fn vandalism_filter_option_drops_reverted_revisions() {
        let all = ["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal", "Ruby", "Sapphire", "Emerald"];
        let mut revs = Vec::new();
        for i in 0..6u32 {
            revs.push(games_page(i * 10, 0, &all[..5 + i as usize], false));
            // vandalize and revert on the same day (distinct junk each
            // time — identical repeated vandalism would itself look like a
            // revert to the fingerprint heuristic)
            let junk: Vec<String> = (0..5).map(|j| format!("JUNK{i}-{j}")).collect();
            let junk_refs: Vec<&str> = junk.iter().map(String::as_str).collect();
            let mut vandal = games_page(i * 10 + 1, 0, &junk_refs, false);
            vandal.seq_in_day = 0;
            let mut revert = games_page(i * 10 + 1, 1, &all[..5 + i as usize], false);
            revert.seq_in_day = 1;
            revs.push(vandal);
            revs.push(revert);
        }
        let config = PipelineConfig::new(100).with_vandalism_filter();
        let (dataset, report) = extract_dataset(revs, &config);
        assert_eq!(report.vandalism_dropped, 6);
        let dict = dataset.dictionary();
        assert!(dict.get("JUNK0-0").is_none(), "filtered content must not be interned");
    }

    #[test]
    fn out_of_range_revisions_are_dropped_not_fatal() {
        let all =
            ["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal", "Ruby", "Sapphire"];
        let mut revs: Vec<PageRevision> =
            (0..6u32).map(|i| games_page(i * 10, 0, &all[..4 + i as usize], false)).collect();
        // A revision with a day beyond the timeline (malformed timestamp).
        revs.insert(3, games_page(5000, 0, &all, false));
        let (dataset, report) = extract_dataset(revs, &PipelineConfig::new(100));
        assert_eq!(report.out_of_range_dropped, 1);
        assert_eq!(report.pages, 1);
        assert!(dataset.attribute_by_name("Pokémon video games ▸ Games ▸ Game").is_some());
    }

    #[test]
    fn report_counts_are_consistent() {
        let revs = vec![games_page(0, 0, &["Red", "Blue", "Green", "Yellow", "Gold"], true)];
        let (dataset, report) = extract_dataset(revs, &PipelineConfig::new(10));
        assert_eq!(report.attributes_kept, dataset.len());
        assert!(report.attributes_before_filters >= report.attributes_kept);
        assert_eq!(dataset.len(), 0, "single-revision columns are filtered out");
    }

    #[test]
    fn duplicate_revisions_are_dropped_and_counted() {
        let all = ["Red", "Blue", "Green", "Yellow", "Gold", "Silver"];
        let mut revs: Vec<PageRevision> =
            (0..6u32).map(|i| games_page(i * 10, 0, &all[..5], false)).collect();
        // A corrupted stream repeats one (page, day, seq) key.
        revs.push(games_page(20, 0, &all[..5], false));
        let (_, report) = extract_dataset(revs, &PipelineConfig::new(100));
        assert_eq!(report.duplicate_dropped, 1);
        assert_eq!(report.revisions, 6);
    }

    #[test]
    fn session_matches_eager_extraction_byte_for_byte() {
        let all = ["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal", "Ruby", "Sapphire"];
        let mut revs = Vec::new();
        for (pid, title) in [(1u32, "Page A"), (2, "Page B")] {
            for i in 0..6u32 {
                let mut r = games_page(i * 9, 0, &all[..5 + i as usize % 4], false);
                r.page_id = pid;
                r.title = title.to_string();
                revs.push(r);
            }
        }
        let config = PipelineConfig::new(100);
        let (eager, eager_report) = extract_dataset(revs.clone(), &config);

        let mut session = PipelineSession::new(config);
        session.push_page(revs[..6].to_vec()).expect("page A");
        session.push_page(revs[6..].to_vec()).expect("page B");
        let (incremental, report) = session.finish();
        assert_eq!(report, eager_report);
        assert_eq!(
            tind_model::binio::encode_dataset(&incremental),
            tind_model::binio::encode_dataset(&eager),
            "incremental and eager runs must encode identically"
        );
    }

    #[test]
    fn snapshot_resume_is_byte_identical() {
        let all = ["Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal"];
        let page = |pid: u32, title: &str| -> Vec<PageRevision> {
            (0..6u32)
                .map(|i| {
                    let mut r = games_page(i * 9, 0, &all[..5 + i as usize % 3], false);
                    r.page_id = pid;
                    r.title = title.to_string();
                    r
                })
                .collect()
        };
        let config = PipelineConfig::new(100);
        // Uninterrupted reference run.
        let mut full = PipelineSession::new(config.clone());
        full.push_page(page(1, "A")).expect("a");
        full.push_page(page(2, "B")).expect("b");
        full.push_page(page(3, "C")).expect("c");
        let (reference, ref_report) = full.finish();

        // Interrupted after two pages, resumed from the snapshot.
        let mut first = PipelineSession::new(config.clone());
        first.push_page(page(1, "A")).expect("a");
        first.push_page(page(2, "B")).expect("b");
        let snap = first.snapshot();
        let snap_report = first.report().clone();
        drop(first);
        let mut resumed = PipelineSession::resume(config, snap, snap_report);
        resumed.push_page(page(3, "C")).expect("c");
        let (rebuilt, report) = resumed.finish();
        assert_eq!(report, ref_report);
        assert_eq!(
            tind_model::binio::encode_dataset(&rebuilt),
            tind_model::binio::encode_dataset(&reference)
        );
    }
}
