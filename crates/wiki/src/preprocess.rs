//! Value cleaning and attribute filtering (§5.1).
//!
//! Four steps, mirroring the paper (which in turn follows MANY [22]):
//!
//! 1. **Link resolution** — `[[Target|shown text]]` → `Target`: linked
//!    entities get one canonical representation across all tables, which
//!    largely defuses the differing-entity-name problem of §3.3.
//! 2. **Null unification** — common null markers (`-`, `n/a`, `unknown`,
//!    `?`, …) are dropped from value sets.
//! 3. **Numeric-attribute filter** — attributes whose values are mostly
//!    numeric are discarded (numbers produce meaningless INDs).
//! 4. **History filters** — at least 5 versions (4 changes) and a median
//!    version cardinality of at least 5.

use tind_model::AttributeHistory;

/// Resolves wiki links in a single cell value:
/// `[[Page|text]]` → `Page`, `[[Page]]` → `Page`; other text is untouched.
pub fn resolve_links(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut rest = value;
    while let Some(start) = rest.find("[[") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        match after.find("]]") {
            Some(end) => {
                let inner = &after[..end];
                let target = inner.split('|').next().unwrap_or(inner).trim();
                out.push_str(target);
                rest = &after[end + 2..];
            }
            None => {
                // Unclosed link: keep the raw text.
                out.push_str(&rest[start..]);
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out.trim().to_string()
}

/// Null markers unified away by the paper's preprocessing.
const NULL_MARKERS: &[&str] =
    &["", "-", "—", "–", "n/a", "na", "none", "null", "unknown", "?", "tba", "tbd", "..."];

/// Whether a cleaned value represents a null.
pub fn is_null_marker(value: &str) -> bool {
    let lower = value.trim().to_lowercase();
    NULL_MARKERS.contains(&lower.as_str())
}

/// Whether a value is (mostly) numeric: integers, decimals, years, and
/// simple formatted numbers like `1,234` or `85%`.
pub fn is_numeric_value(value: &str) -> bool {
    let trimmed = value.trim().trim_start_matches(['+', '-', '$', '€', '~']);
    let trimmed = trimmed.trim_end_matches('%');
    if trimmed.is_empty() {
        return false;
    }
    let mut digits = 0usize;
    for c in trimmed.chars() {
        if c.is_ascii_digit() {
            digits += 1;
        } else if !matches!(c, '.' | ',' | ' ') {
            return false;
        }
    }
    digits > 0
}

/// Cleans one raw cell: resolve links, then drop if null.
pub fn clean_value(raw: &str) -> Option<String> {
    let resolved = resolve_links(raw);
    if is_null_marker(&resolved) {
        None
    } else {
        Some(resolved)
    }
}

/// Fraction of an attribute's distinct values that are numeric.
pub fn numeric_fraction(history: &AttributeHistory, resolve: impl Fn(u32) -> String) -> f64 {
    let universe = history.value_universe();
    if universe.is_empty() {
        return 0.0;
    }
    let numeric = universe.iter().filter(|&&v| is_numeric_value(&resolve(v))).count();
    numeric as f64 / universe.len() as f64
}

/// The paper's attribute-level filters.
#[derive(Debug, Clone)]
pub struct AttributeFilters {
    /// Maximum tolerated numeric fraction (paper: "mostly numeric" is
    /// dropped; we use 0.5).
    pub max_numeric_fraction: f64,
    /// Minimum number of versions (paper: 5).
    pub min_versions: usize,
    /// Minimum median version cardinality (paper: 5).
    pub min_median_cardinality: usize,
}

impl Default for AttributeFilters {
    fn default() -> Self {
        AttributeFilters {
            max_numeric_fraction: 0.5,
            min_versions: 5,
            min_median_cardinality: 5,
        }
    }
}

impl AttributeFilters {
    /// Whether `history` survives all filters.
    pub fn keep(&self, history: &AttributeHistory, resolve: impl Fn(u32) -> String) -> bool {
        history.versions().len() >= self.min_versions
            && history.median_cardinality() >= self.min_median_cardinality
            && numeric_fraction(history, resolve) <= self.max_numeric_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_model::HistoryBuilder;

    #[test]
    fn resolves_piped_and_plain_links() {
        assert_eq!(resolve_links("[[Pokémon Red|Red]]"), "Pokémon Red");
        assert_eq!(resolve_links("[[Tokyo]]"), "Tokyo");
        assert_eq!(resolve_links("plain text"), "plain text");
        assert_eq!(resolve_links("mix [[A|a]] and [[B]]"), "mix A and B");
        assert_eq!(resolve_links("broken [[link"), "broken [[link");
    }

    #[test]
    fn null_markers_detected() {
        for m in ["", "-", "N/A", "n/a", "Unknown", "?", "TBA", " none "] {
            assert!(is_null_marker(m), "{m:?} should be null");
        }
        for m in ["0", "USA", "-1"] {
            assert!(!is_null_marker(m), "{m:?} should not be null");
        }
    }

    #[test]
    fn numeric_detection() {
        for v in ["1996", "3.14", "-7", "1,234,567", "85%", "$100", "12 345"] {
            assert!(is_numeric_value(v), "{v:?} should be numeric");
        }
        for v in ["USA", "Route 66", "1996 (remake)", "", "-"] {
            assert!(!is_numeric_value(v), "{v:?} should not be numeric");
        }
    }

    #[test]
    fn clean_value_combines_steps() {
        assert_eq!(clean_value("[[USA|United States]]"), Some("USA".to_string()));
        assert_eq!(clean_value(" - "), None);
        assert_eq!(clean_value("[[Unknown]]"), None, "link resolving to null is null");
        assert_eq!(clean_value("Tokyo"), Some("Tokyo".to_string()));
    }

    #[test]
    fn filters_enforce_paper_rules() {
        let mut dict = tind_model::Dictionary::new();
        let names: Vec<u32> = (0..6).map(|i| dict.intern(&format!("city{i}"))).collect();
        let years: Vec<u32> = (0..6).map(|i| dict.intern(&format!("{}", 1990 + i))).collect();

        let mut good = HistoryBuilder::new("good");
        for v in 0..5 {
            good.push(v * 2, names.iter().copied().take(5 + (v as usize % 2)).collect());
        }
        let good = good.finish(20);

        let mut numeric = HistoryBuilder::new("numeric");
        for v in 0..5 {
            numeric.push(v * 2, years.iter().copied().take(5).collect());
        }
        let numeric = numeric.finish(20);

        let mut short = HistoryBuilder::new("short");
        short.push(0, names.iter().copied().take(5).collect());
        let short = short.finish(20);

        let f = AttributeFilters::default();
        let resolve = |v: u32| dict.resolve(v).to_string();
        assert!(f.keep(&good, resolve));
        assert!(!f.keep(&numeric, resolve), "mostly-numeric attribute dropped");
        assert!(!f.keep(&short, resolve), "single-version attribute dropped");
    }

    #[test]
    fn small_cardinality_filtered() {
        let mut dict = tind_model::Dictionary::new();
        let ids: Vec<u32> = (0..3).map(|i| dict.intern(&format!("v{i}"))).collect();
        let mut tiny = HistoryBuilder::new("tiny");
        for v in 0..6 {
            tiny.push(v * 2, ids.iter().copied().take(1 + (v as usize % 3)).collect());
        }
        let tiny = tiny.finish(20);
        let f = AttributeFilters::default();
        assert!(!f.keep(&tiny, |v| dict.resolve(v).to_string()));
    }
}
