//! Matching tables across revisions of a page.
//!
//! Wikipedia tables carry no identifiers; to build *table histories* the
//! extractor must decide which table in revision `r+1` is "the same" as a
//! table in revision `r` (the paper relies on prior work [5] for this; we
//! implement the standard similarity matching). Tables are matched
//! greedily by header-set similarity with a caption-equality bonus; tables
//! that vanish are remembered so they can re-appear (vandalism reverts
//! routinely delete and restore whole tables).

use crate::wikitext::RawTable;

/// Jaccard similarity of two string sets (case-insensitive).
pub fn jaccard<'a>(
    a: impl IntoIterator<Item = &'a str>,
    b: impl IntoIterator<Item = &'a str>,
) -> f64 {
    let sa: std::collections::HashSet<String> =
        a.into_iter().map(|s| s.to_lowercase()).collect();
    let sb: std::collections::HashSet<String> =
        b.into_iter().map(|s| s.to_lowercase()).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

#[derive(Debug)]
struct TrackedTable {
    id: u32,
    headers: Vec<String>,
    caption: Option<String>,
}

/// Stateful matcher for one page's revision sequence.
#[derive(Debug, Default)]
pub struct TableMatcher {
    next_id: u32,
    tracked: Vec<TrackedTable>,
}

/// Minimum similarity for two tables to be considered the same.
const MATCH_THRESHOLD: f64 = 0.5;

impl TableMatcher {
    /// Creates a matcher with no known tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a stable table id to every table of the next revision.
    pub fn match_revision(&mut self, tables: &[RawTable]) -> Vec<u32> {
        // Score every (tracked, raw) combination.
        let mut scored: Vec<(f64, usize, usize)> = Vec::new();
        for (ti, tracked) in self.tracked.iter().enumerate() {
            for (ri, raw) in tables.iter().enumerate() {
                let mut score = jaccard(
                    tracked.headers.iter().map(String::as_str),
                    raw.headers.iter().map(String::as_str),
                );
                if tracked.caption.is_some() && tracked.caption == raw.caption {
                    score += 0.5;
                }
                if score >= MATCH_THRESHOLD {
                    scored.push((score, ti, ri));
                }
            }
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));

        let mut raw_assignment: Vec<Option<u32>> = vec![None; tables.len()];
        let mut tracked_taken = vec![false; self.tracked.len()];
        for (_, ti, ri) in scored {
            if tracked_taken[ti] || raw_assignment[ri].is_some() {
                continue;
            }
            tracked_taken[ti] = true;
            raw_assignment[ri] = Some(self.tracked[ti].id);
            // Refresh the tracked shape to the latest observation.
            self.tracked[ti].headers = tables[ri].headers.clone();
            self.tracked[ti].caption = tables[ri].caption.clone();
        }
        raw_assignment
            .into_iter()
            .enumerate()
            .map(|(ri, assigned)| {
                assigned.unwrap_or_else(|| {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.tracked.push(TrackedTable {
                        id,
                        headers: tables[ri].headers.clone(),
                        caption: tables[ri].caption.clone(),
                    });
                    id
                })
            })
            .collect()
    }

    /// Number of distinct tables seen so far.
    pub fn tables_seen(&self) -> usize {
        self.next_id as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(caption: Option<&str>, headers: &[&str]) -> RawTable {
        RawTable {
            caption: caption.map(str::to_string),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: vec![vec!["x".to_string(); headers.len()]],
        }
    }

    #[test]
    fn stable_ids_across_identical_revisions() {
        let mut m = TableMatcher::new();
        let tables = vec![table(Some("Games"), &["Game", "Year"]), table(None, &["City"])];
        let ids1 = m.match_revision(&tables);
        let ids2 = m.match_revision(&tables);
        assert_eq!(ids1, vec![0, 1]);
        assert_eq!(ids1, ids2);
        assert_eq!(m.tables_seen(), 2);
    }

    #[test]
    fn survives_reordering() {
        let mut m = TableMatcher::new();
        let a = table(Some("A"), &["Game", "Year"]);
        let b = table(Some("B"), &["City", "Country"]);
        let ids1 = m.match_revision(&[a.clone(), b.clone()]);
        let ids2 = m.match_revision(&[b, a]);
        assert_eq!(ids1, vec![0, 1]);
        assert_eq!(ids2, vec![1, 0]);
    }

    #[test]
    fn header_drift_keeps_identity() {
        let mut m = TableMatcher::new();
        let ids1 = m.match_revision(&[table(None, &["Game", "Year", "Developer"])]);
        // One header renamed: Jaccard 2/4 = 0.5, still matched.
        let ids2 = m.match_revision(&[table(None, &["Game", "Year", "Studio"])]);
        assert_eq!(ids1, ids2);
    }

    #[test]
    fn dissimilar_table_gets_new_id() {
        let mut m = TableMatcher::new();
        let ids1 = m.match_revision(&[table(None, &["Game", "Year"])]);
        let ids2 = m.match_revision(&[table(None, &["Population", "Area"])]);
        assert_ne!(ids1[0], ids2[0]);
        assert_eq!(m.tables_seen(), 2);
    }

    #[test]
    fn vanished_table_can_reappear() {
        let mut m = TableMatcher::new();
        let t = table(Some("Games"), &["Game", "Year"]);
        let ids1 = m.match_revision(std::slice::from_ref(&t));
        let _ = m.match_revision(&[]); // vandalized: table removed
        let ids3 = m.match_revision(&[t]); // reverted
        assert_eq!(ids1, ids3, "reverted table keeps its id");
    }

    #[test]
    fn caption_bonus_disambiguates_similar_headers() {
        let mut m = TableMatcher::new();
        let a = table(Some("EU countries"), &["Name", "Capital"]);
        let b = table(Some("UN countries"), &["Name", "Capital"]);
        let ids1 = m.match_revision(&[a.clone(), b.clone()]);
        let ids2 = m.match_revision(&[b, a]);
        assert_eq!(ids2, vec![ids1[1], ids1[0]], "caption keeps twins apart");
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(["a", "b"], ["A", "B"]), 1.0);
        assert_eq!(jaccard(["a"], ["b"]), 0.0);
        assert!((jaccard(["a", "b", "c"], ["b", "c", "d"]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(std::iter::empty::<&str>(), std::iter::empty::<&str>()), 1.0);
    }
}
