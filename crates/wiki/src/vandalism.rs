//! Vandalism heuristics over revision streams.
//!
//! The paper aggregates to daily snapshots specifically "to reduce the
//! impact of vandalism, which frequently appears in Wikipedia" (§5.1,
//! citing [2]). Daily aggregation removes sub-day vandalism implicitly;
//! this module makes the phenomenon *observable*: it detects reverts and
//! page blankings in a revision stream, so pipelines can report how much
//! vandalism the aggregation absorbed and analyses can exclude known-bad
//! revisions explicitly (the paper's §3.3 also suggests zero-weighting
//! known bad periods via `w`).

use crate::revision::{canonicalize_stream, PageRevision};
use tind_model::hash::FastMap;

/// Classification of one revision relative to its page history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevisionClass {
    /// Ordinary content change.
    Normal,
    /// Content identical to an earlier revision of the page — an undo of
    /// everything in between.
    Revert {
        /// How many intermediate revisions were undone.
        undone: usize,
    },
    /// The page lost (nearly) all content relative to its predecessor.
    Blanking,
    /// A revision later undone by a revert — presumed vandalism.
    Vandalized,
}

/// Per-page vandalism statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VandalismReport {
    /// Revisions examined.
    pub revisions: usize,
    /// Detected reverts.
    pub reverts: usize,
    /// Detected blankings.
    pub blankings: usize,
    /// Revisions undone by a revert.
    pub vandalized: usize,
    /// Vandalized revisions living less than one day (the ones daily
    /// aggregation removes for free).
    pub vandalized_subday: usize,
}

/// Classifies every revision of a canonicalized stream. Returns one class
/// per input revision (in canonical order) plus aggregate statistics.
pub fn classify_stream(revisions: Vec<PageRevision>) -> (Vec<(PageRevision, RevisionClass)>, VandalismReport) {
    let revisions = canonicalize_stream(revisions);
    let mut report = VandalismReport { revisions: revisions.len(), ..VandalismReport::default() };
    let mut classified: Vec<(PageRevision, RevisionClass)> = Vec::with_capacity(revisions.len());

    let mut i = 0;
    while i < revisions.len() {
        let page_id = revisions[i].page_id;
        let mut j = i;
        while j < revisions.len() && revisions[j].page_id == page_id {
            j += 1;
        }
        classify_page(&revisions[i..j], &mut classified, &mut report);
        i = j;
    }
    (classified, report)
}

fn content_fingerprint(text: &str) -> u64 {
    tind_model::hash::hash_bytes(text.trim().as_bytes())
}

fn classify_page(
    page: &[PageRevision],
    out: &mut Vec<(PageRevision, RevisionClass)>,
    report: &mut VandalismReport,
) {
    let offset = out.len();
    // fingerprint → index of the most recent revision with that content.
    let mut seen: FastMap<u64, usize> = FastMap::default();
    let mut prev_len = 0usize;
    for (idx, rev) in page.iter().enumerate() {
        let fp = content_fingerprint(&rev.wikitext);
        let len = rev.wikitext.trim().len();
        let class = if let Some(&earlier) = seen.get(&fp) {
            if earlier + 1 < idx {
                // Everything between `earlier` and `idx` was undone.
                let undone = idx - earlier - 1;
                report.reverts += 1;
                for (k, slot) in out[offset + earlier + 1..offset + idx].iter_mut().enumerate() {
                    if slot.1 == RevisionClass::Normal || slot.1 == RevisionClass::Blanking {
                        if slot.1 == RevisionClass::Blanking {
                            // keep the more specific class but count it
                            // as vandalized too
                            report.vandalized += 1;
                        } else {
                            slot.1 = RevisionClass::Vandalized;
                            report.vandalized += 1;
                        }
                        let vandal_rev = &page[earlier + 1 + k];
                        if vandal_rev.day == rev.day {
                            report.vandalized_subday += 1;
                        }
                    }
                }
                RevisionClass::Revert { undone }
            } else {
                RevisionClass::Normal // identical to the direct predecessor
            }
        } else if idx > 0 && prev_len >= 40 && len * 10 < prev_len {
            report.blankings += 1;
            RevisionClass::Blanking
        } else {
            RevisionClass::Normal
        };
        seen.insert(fp, idx);
        prev_len = len;
        out.push((rev.clone(), class));
    }
}

/// Drops revisions classified as vandalized or blanking — an *explicit*
/// cleaning alternative to relying on daily aggregation alone.
pub fn filter_vandalism(revisions: Vec<PageRevision>) -> (Vec<PageRevision>, VandalismReport) {
    let (classified, report) = classify_stream(revisions);
    let kept = classified
        .into_iter()
        .filter(|(_, class)| {
            !matches!(class, RevisionClass::Vandalized | RevisionClass::Blanking)
        })
        .map(|(rev, _)| rev)
        .collect();
    (kept, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rev(day: u32, seq: u32, text: &str) -> PageRevision {
        PageRevision {
            page_id: 1,
            title: "Page".into(),
            day,
            seq_in_day: seq,
            wikitext: text.into(),
        }
    }

    const GOOD: &str = "{|\n! Game\n|-\n| Red\n|-\n| Blue\n|-\n| Gold\n|-\n| Silver\n|}";
    const VANDAL: &str = "{|\n! Game\n|-\n| HAHAHA PWNED\n|}";

    #[test]
    fn detects_revert_and_marks_vandalism() {
        let stream = vec![rev(0, 0, GOOD), rev(5, 0, VANDAL), rev(5, 1, GOOD)];
        let (classified, report) = classify_stream(stream);
        assert_eq!(classified[0].1, RevisionClass::Normal);
        assert_eq!(classified[1].1, RevisionClass::Vandalized);
        assert_eq!(classified[2].1, RevisionClass::Revert { undone: 1 });
        assert_eq!(report.reverts, 1);
        assert_eq!(report.vandalized, 1);
        assert_eq!(report.vandalized_subday, 1, "same-day vandalism");
    }

    #[test]
    fn detects_blanking() {
        let stream = vec![rev(0, 0, GOOD), rev(3, 0, "x")];
        let (classified, report) = classify_stream(stream);
        assert_eq!(classified[1].1, RevisionClass::Blanking);
        assert_eq!(report.blankings, 1);
    }

    #[test]
    fn multi_day_vandalism_counts_as_not_subday() {
        let stream = vec![rev(0, 0, GOOD), rev(5, 0, VANDAL), rev(8, 0, GOOD)];
        let (_, report) = classify_stream(stream);
        assert_eq!(report.vandalized, 1);
        assert_eq!(report.vandalized_subday, 0);
    }

    #[test]
    fn normal_growth_is_not_flagged() {
        let grown = format!("{GOOD}\nMore prose about the games.");
        let stream = vec![rev(0, 0, GOOD), rev(2, 0, &grown), rev(9, 0, GOOD)];
        // Day 9 returns to the old content — that IS a revert of day 2.
        let (classified, report) = classify_stream(stream);
        assert_eq!(classified[1].1, RevisionClass::Vandalized);
        assert_eq!(classified[2].1, RevisionClass::Revert { undone: 1 });
        assert_eq!(report.blankings, 0);
    }

    #[test]
    fn filter_removes_vandalized_revisions() {
        let stream =
            vec![rev(0, 0, GOOD), rev(5, 0, VANDAL), rev(5, 1, GOOD), rev(9, 0, VANDAL)];
        let (kept, report) = filter_vandalism(stream);
        // The trailing vandalism was never reverted → kept (no oracle).
        assert_eq!(kept.len(), 3);
        assert!(kept.iter().all(|r| r.day != 5 || r.seq_in_day != 0));
        assert_eq!(report.vandalized, 1);
    }

    #[test]
    fn pages_are_classified_independently() {
        let mut a = rev(0, 0, GOOD);
        a.page_id = 1;
        let mut b = rev(1, 0, GOOD);
        b.page_id = 2;
        // Identical content on different pages is NOT a revert.
        let (classified, report) = classify_stream(vec![a, b]);
        assert!(classified.iter().all(|(_, c)| *c == RevisionClass::Normal));
        assert_eq!(report.reverts, 0);
    }

    #[test]
    fn filtered_stream_improves_extraction() {
        use crate::pipeline::{extract_dataset, PipelineConfig};
        // 6 clean growing revisions + vandal/revert pairs sprinkled in.
        let games = ["Red", "Blue", "Gold", "Silver", "Crystal", "Ruby", "Sapphire", "Emerald", "Pearl", "Diamond"];
        let render = |upto: usize| {
            let mut t = String::from("{|\n|+ Games\n! Game\n");
            for g in &games[..upto] {
                t.push_str(&format!("|-\n| {g}\n"));
            }
            t.push_str("|}");
            t
        };
        let mut stream = Vec::new();
        for i in 0..6 {
            stream.push(rev(i as u32 * 10, 0, &render(5 + i)));
            // Same-day vandalism + revert.
            stream.push(rev(i as u32 * 10 + 1, 0, VANDAL));
            stream.push(rev(i as u32 * 10 + 1, 1, &render(5 + i)));
        }
        let (kept, report) = filter_vandalism(stream);
        assert_eq!(report.vandalized, 6);
        let (dataset, _) = extract_dataset(kept, &PipelineConfig::new(100));
        assert_eq!(dataset.len(), 1);
        let (_, h) = dataset.attribute_by_name("Page ▸ Games ▸ Game").expect("attribute");
        let dict = dataset.dictionary();
        assert!(dict.get("HAHAHA PWNED").is_none(), "vandal content filtered out");
        assert_eq!(h.versions().len(), 6);
    }
}
