//! Daily snapshot aggregation (§5.1).
//!
//! Wikipedia pages can receive many edits per day; vandalism in particular
//! tends to live for minutes. The paper aggregates to daily granularity by
//! keeping, for each day, the version that was **valid for the longest
//! time on that day**. We model within-day validity by revision order: a
//! day with revisions at sequence positions `s_0 < s_1 < ..` is split into
//! equal-length segments per revision, with the last revision's state also
//! covering the remainder of the day (so a vandalized-then-reverted page
//! keeps its clean state).

use tind_model::Timestamp;

/// One observation of a column's value set: a day, the within-day sequence
/// number, and the observed values (unsorted, raw strings).
#[derive(Debug, Clone)]
pub struct Observation {
    /// Day index.
    pub day: Timestamp,
    /// Within-day revision order.
    pub seq_in_day: u32,
    /// The column's values at this revision (`None` when the column was
    /// absent from the revision, e.g. its table was deleted).
    pub values: Option<Vec<String>>,
}

/// The aggregated daily state of a column: for each day with at least one
/// revision, the state valid longest during that day.
///
/// Returns `(day, values)` pairs, strictly increasing in day. `None`
/// values mean the column was absent for most of that day.
pub fn aggregate_daily(mut observations: Vec<Observation>) -> Vec<(Timestamp, Option<Vec<String>>)> {
    observations.sort_by_key(|o| (o.day, o.seq_in_day));
    let mut out: Vec<(Timestamp, Option<Vec<String>>)> = Vec::new();
    let mut i = 0;
    while i < observations.len() {
        let day = observations[i].day;
        let mut j = i;
        while j < observations.len() && observations[j].day == day {
            j += 1;
        }
        let day_obs = &observations[i..j];
        // Under the equal-segment validity model (k revisions split the day
        // into k+1 segments; the final state also covers the trailing
        // segment), the day's final revision always holds the longest —
        // which is exactly what makes sub-day vandalism disappear.
        out.push((day, day_obs[day_obs.len() - 1].values.clone()));
        i = j;
    }
    out
}

/// Builds an attribute history from aggregated daily states, interning
/// values through `intern`. Days between observations inherit the previous
/// state (standard run-length semantics); the history ends at the last day
/// the column was present, or is `None` if it never carried a non-empty
/// value set.
pub fn build_history<F>(
    name: &str,
    daily: &[(Timestamp, Option<Vec<String>>)],
    mut intern: F,
) -> Option<tind_model::AttributeHistory>
where
    F: FnMut(&str) -> tind_model::ValueId,
{
    // Trim leading absence and find the last day of presence.
    let first_present = daily.iter().position(|(_, v)| v.is_some())?;
    let last_present = daily.iter().rposition(|(_, v)| v.is_some())?;
    let mut b = tind_model::HistoryBuilder::new(name);
    for (day, values) in &daily[first_present..=last_present] {
        match values {
            Some(vals) => {
                let ids: Vec<tind_model::ValueId> = vals.iter().map(|s| intern(s)).collect();
                b.push(*day, ids);
            }
            // Mid-history absence: an empty version (the table was gone for
            // at least a day).
            None => {
                b.push(*day, Vec::new());
            }
        }
    }
    Some(b.finish(daily[last_present].0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(day: u32, seq: u32, values: Option<&[&str]>) -> Observation {
        Observation {
            day,
            seq_in_day: seq,
            values: values.map(|v| v.iter().map(|s| s.to_string()).collect()),
        }
    }

    #[test]
    fn single_revision_days_pass_through() {
        let daily = aggregate_daily(vec![obs(3, 0, Some(&["a"])), obs(7, 0, Some(&["a", "b"]))]);
        assert_eq!(daily.len(), 2);
        assert_eq!(daily[0].0, 3);
        assert_eq!(daily[1].0, 7);
        assert_eq!(daily[1].1.as_deref().map(<[String]>::len), Some(2));
    }

    #[test]
    fn vandalized_then_reverted_day_keeps_clean_state() {
        // Day 5: clean edit, vandalism, revert — the final (reverted) state
        // is valid longest.
        let daily = aggregate_daily(vec![
            obs(5, 0, Some(&["clean"])),
            obs(5, 1, Some(&["VANDAL"])),
            obs(5, 2, Some(&["clean"])),
        ]);
        assert_eq!(daily.len(), 1);
        assert_eq!(daily[0].1.as_deref().map(|v| v[0].as_str()), Some("clean"));
    }

    #[test]
    fn unsorted_observations_are_handled() {
        let daily = aggregate_daily(vec![obs(9, 1, Some(&["later"])), obs(9, 0, Some(&["earlier"]))]);
        assert_eq!(daily[0].1.as_deref().map(|v| v[0].as_str()), Some("later"));
    }

    #[test]
    fn build_history_runs_and_absences() {
        let daily = vec![
            (2u32, Some(vec!["a".to_string()])),
            (5, Some(vec!["a".to_string(), "b".to_string()])),
            (8, None),
            (10, Some(vec!["a".to_string()])),
        ];
        let mut dict = tind_model::Dictionary::new();
        let h = build_history("col", &daily, |s| dict.intern(s)).expect("has presence");
        assert_eq!(h.first_observed(), 2);
        assert_eq!(h.last_observed(), 10);
        assert_eq!(h.values_at(3).len(), 1);
        assert_eq!(h.values_at(6).len(), 2);
        assert!(h.values_at(8).is_empty(), "absent day yields empty set");
        assert!(h.values_at(9).is_empty());
        assert_eq!(h.values_at(10).len(), 1);
    }

    #[test]
    fn build_history_trims_leading_and_trailing_absence() {
        let daily = vec![
            (0u32, None),
            (4, Some(vec!["x".to_string()])),
            (9, None),
        ];
        let mut dict = tind_model::Dictionary::new();
        let h = build_history("col", &daily, |s| dict.intern(s)).expect("present at 4");
        assert_eq!(h.first_observed(), 4);
        assert_eq!(h.last_observed(), 4);
    }

    #[test]
    fn build_history_none_when_never_present() {
        let daily = vec![(0u32, None), (3, None)];
        let mut dict = tind_model::Dictionary::new();
        assert!(build_history("col", &daily, |s| dict.intern(s)).is_none());
    }
}
