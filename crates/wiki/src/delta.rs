//! Delta extraction: a base dataset plus a stream of page revisions →
//! the merged dataset and the set of touched attribute names.
//!
//! This is the wiki-layer half of live updates (`tind update`): the
//! core-layer half (`core::delta`) diffs the merged dataset against the
//! base and folds the difference into an existing index. The split keeps
//! the dependency graph clean — this crate sits below `tind-core`, so it
//! speaks only model-level types.
//!
//! # Model
//!
//! A delta stream carries page-granular batches, exactly like a dump:
//! for each page either its **full** revision history (a page revised
//! since the base was ingested — re-staged from scratch, because
//! [`crate::pipeline::stage_page`] is a pure function of the complete
//! revision list) or a page the base never saw. Committing upserts by
//! attribute name ([`tind_model::DatasetBuilder::upsert_history`]), so
//! ids stay stable — the contract `core::delta::DatasetDelta::diff`
//! enforces.
//!
//! Two deliberate deviations from a cold re-ingest, both surfaced in the
//! [`UpdateOutcome`]:
//!
//! * **Dictionary order.** New values are interned at delta time, after
//!   every base value; a cold re-ingest of the combined stream would
//!   interleave them. Value *ids* of base values are unchanged (append-
//!   only dictionary), so search results are identical; only the raw
//!   dataset encodings differ.
//! * **Filter downgrades.** A re-staged column that no longer passes the
//!   §5.1 attribute filters cannot be deleted without renumbering ids, so
//!   its updated history is kept and counted in
//!   [`UpdateOutcome::filter_downgrades`]; a cold re-ingest
//!   (`tind ingest` over the full stream) resolves them.
//!
//! The update checkpoint (`TINDUC` magic) follows the workspace on-disk
//! conventions: 8-byte magic+version, guard digests (source fingerprint,
//! config digest, **base-dataset fingerprint**), varint fields, CRC-32
//! trailer, atomic write. Corruption anywhere is refused with the failing
//! byte offset via the checksum trailer.

use std::collections::BTreeSet;
use std::io::Read;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tind_model::binio::{
    check_magic, dataset_fingerprint, decode_dataset, encode_dataset, get_varint, put_varint,
    BinIoError,
};
use tind_model::checksum;
use tind_model::hash::FastMap;
use tind_model::{Dataset, DatasetBuilder, QuarantineReport, Timeline};

use crate::aggregate::build_history;
use crate::dump::{DumpItem, DumpReader};
use crate::ingest::{
    fingerprint_source, IngestCheckpointPolicy, IngestConfig, IngestError, IngestOptions,
    IngestProgress, IngestStatus,
};
use crate::pipeline::{panic_message, stage_page, PipelineConfig, PipelineReport, StagedPage};
use crate::revision::PageRevision;

/// Magic bytes identifying a serialized update (delta-ingestion)
/// checkpoint, including a format version.
pub const UPDATE_CHECKPOINT_MAGIC: &[u8; 8] = b"TINDUC\x00\x01";

fn corrupt(msg: impl Into<String>) -> BinIoError {
    BinIoError::Corrupt(msg.into())
}

/// Incremental delta session: a [`crate::pipeline::PipelineSession`]
/// variant seeded from a base dataset, committing by upsert instead of
/// append, and tracking which attribute names it touched.
pub struct DeltaExtractor {
    config: PipelineConfig,
    builder: DatasetBuilder,
    report: PipelineReport,
    /// Names present in the builder (base + upserts so far); saves a
    /// linear scan per staged column.
    names: FastMap<String, ()>,
    touched: BTreeSet<String>,
    filter_downgrades: usize,
}

impl DeltaExtractor {
    /// Starts a delta session on top of `base`.
    ///
    /// # Panics
    /// Panics if the base timeline does not match `config.timeline_days`
    /// (a delta may only add revisions within the indexed timeline).
    pub fn new(config: PipelineConfig, base: Dataset) -> Self {
        assert_eq!(
            base.timeline(),
            Timeline::new(config.timeline_days),
            "delta timeline must match the base dataset's"
        );
        let names = base.attributes().iter().map(|h| (h.name().to_owned(), ())).collect();
        DeltaExtractor {
            config,
            builder: base.into_builder(),
            report: PipelineReport::default(),
            names,
            touched: BTreeSet::new(),
            filter_downgrades: 0,
        }
    }

    /// Resumes a delta session from checkpointed state: the partial
    /// merged dataset plus the delta-run counters.
    pub fn resume(
        config: PipelineConfig,
        partial: Dataset,
        report: PipelineReport,
        touched: BTreeSet<String>,
        filter_downgrades: usize,
    ) -> Self {
        let names = partial.attributes().iter().map(|h| (h.name().to_owned(), ())).collect();
        DeltaExtractor {
            config,
            builder: partial.into_builder(),
            report,
            names,
            touched,
            filter_downgrades,
        }
    }

    /// Delta-run counters so far (pages/revisions of the delta stream
    /// only, not the base).
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }

    /// Attribute names upserted so far, sorted.
    pub fn touched(&self) -> &BTreeSet<String> {
        &self.touched
    }

    /// Re-staged columns kept despite no longer passing the attribute
    /// filters (see module docs).
    pub fn filter_downgrades(&self) -> usize {
        self.filter_downgrades
    }

    /// Processes all revisions of one delta page under the same panic
    /// isolation as [`crate::pipeline::PipelineSession::push_page`]: a
    /// panic is returned as `Err(message)` before any session state is
    /// touched, so the caller can quarantine the page and continue.
    pub fn push_page(&mut self, page_revs: Vec<PageRevision>) -> Result<(), String> {
        let _span = tind_obs::span("wiki.delta.page");
        let config = self.config.clone();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stage_page(page_revs, &config)
        })) {
            Ok(staged) => {
                self.commit(staged);
                Ok(())
            }
            Err(payload) => Err(panic_message(payload)),
        }
    }

    /// Stage B of the delta path: intern, filter, and upsert. Mirrors
    /// `pipeline::commit_staged` except that existing columns replace
    /// their history in place (keeping their id) and are exempt from the
    /// keep-filters (they cannot be deleted without renumbering).
    fn commit(&mut self, staged: StagedPage) {
        self.report.vandalism_dropped += staged.vandalism_dropped;
        self.report.duplicate_dropped += staged.duplicate_dropped;
        if staged.revisions == 0 {
            return;
        }
        self.report.pages += 1;
        self.report.revisions += staged.revisions;
        self.report.out_of_range_dropped += staged.out_of_range_dropped;
        self.report.tables_tracked += staged.tables_tracked;
        self.report.columns_tracked += staged.columns_tracked;
        for col in staged.columns {
            let dict = self.builder.dictionary_mut();
            let Some(history) = build_history(&col.name, &col.daily, |s| dict.intern(s)) else {
                continue;
            };
            self.report.attributes_before_filters += 1;
            let keep = {
                let dict = self.builder.dictionary();
                self.config.filters.keep(&history, |v| dict.resolve(v).to_string())
            };
            let exists = self.names.contains_key(history.name());
            if !keep && !exists {
                continue;
            }
            if !keep {
                self.filter_downgrades += 1;
            }
            let name = history.name().to_owned();
            self.builder.upsert_history(history);
            self.report.attributes_kept += usize::from(!exists);
            self.names.insert(name.clone(), ());
            self.touched.insert(name);
        }
    }

    /// Snapshot of the merged dataset so far (the session continues).
    pub fn snapshot(&self) -> Dataset {
        self.builder.clone().build()
    }

    /// Finalizes: the merged dataset plus the touched names.
    pub fn finish(self) -> (Dataset, PipelineReport, BTreeSet<String>) {
        (self.builder.build(), self.report, self.touched)
    }
}

/// Persistent snapshot of an update run after some prefix of delta pages
/// (`TINDUC` magic). Mirrors [`crate::ingest::IngestCheckpoint`] with two
/// additions: the **base-dataset fingerprint** (resuming against a
/// different base would splice incompatible histories) and the
/// touched-name set (needed to diff only what the delta changed).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateCheckpoint {
    /// Fingerprint of the delta source stream.
    pub source_fingerprint: u64,
    /// [`IngestConfig::digest`] of the run's parameters.
    pub config_digest: u64,
    /// [`dataset_fingerprint`] of the base dataset the run started from.
    pub base_fingerprint: u64,
    /// Absolute byte offset just past the last completed delta page.
    pub resume_offset: u64,
    /// Fallback-id counter state, as in the ingest checkpoint.
    pub next_fallback_page_id: u32,
    /// Re-staged columns kept despite failing the filters, so far.
    pub filter_downgrades: u64,
    /// Quarantine state as of the checkpoint.
    pub quarantine: QuarantineReport,
    /// Delta-run pipeline counters as of the checkpoint.
    pub pipeline: PipelineReport,
    /// Attribute names touched so far, sorted.
    pub touched: BTreeSet<String>,
    /// The partial merged dataset, encoded with [`encode_dataset`].
    pub dataset_bytes: Bytes,
}

fn put_report(buf: &mut BytesMut, r: &PipelineReport) {
    for v in [
        r.pages,
        r.revisions,
        r.vandalism_dropped,
        r.out_of_range_dropped,
        r.duplicate_dropped,
        r.tables_tracked,
        r.columns_tracked,
        r.attributes_before_filters,
        r.attributes_kept,
    ] {
        put_varint(buf, v as u64);
    }
}

fn get_report(buf: &mut Bytes) -> Result<PipelineReport, BinIoError> {
    let mut next = || -> Result<usize, BinIoError> { Ok(get_varint(buf)? as usize) };
    Ok(PipelineReport {
        pages: next()?,
        revisions: next()?,
        vandalism_dropped: next()?,
        out_of_range_dropped: next()?,
        duplicate_dropped: next()?,
        tables_tracked: next()?,
        columns_tracked: next()?,
        attributes_before_filters: next()?,
        attributes_kept: next()?,
    })
}

fn get_blob(buf: &mut Bytes, what: &str) -> Result<Bytes, BinIoError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(corrupt(format!("truncated {what} blob")));
    }
    Ok(buf.copy_to_bytes(len))
}

impl UpdateCheckpoint {
    /// Verifies this checkpoint belongs to the given delta source, run
    /// configuration, and base dataset.
    pub fn verify_matches(
        &self,
        source_fingerprint: u64,
        config_digest: u64,
        base_fingerprint: u64,
    ) -> Result<(), BinIoError> {
        if self.source_fingerprint != source_fingerprint {
            return Err(corrupt(
                "update checkpoint fingerprint does not match the delta stream (wrong or stale \
                 checkpoint)",
            ));
        }
        if self.config_digest != config_digest {
            return Err(corrupt(
                "update checkpoint was created under different parameters (epoch, timeline, \
                 filters, or page cap)",
            ));
        }
        if self.base_fingerprint != base_fingerprint {
            return Err(corrupt(
                "update checkpoint was created against a different base dataset",
            ));
        }
        Ok(())
    }

    /// Serializes the checkpoint.
    pub fn encode(&self) -> Bytes {
        let q = self.quarantine.encode();
        let mut buf = BytesMut::with_capacity(96 + q.len() + self.dataset_bytes.len());
        buf.put_slice(UPDATE_CHECKPOINT_MAGIC);
        buf.put_u64_le(self.source_fingerprint);
        buf.put_u64_le(self.config_digest);
        buf.put_u64_le(self.base_fingerprint);
        put_varint(&mut buf, self.resume_offset);
        put_varint(&mut buf, u64::from(self.next_fallback_page_id));
        put_varint(&mut buf, self.filter_downgrades);
        put_varint(&mut buf, q.len() as u64);
        buf.put_slice(&q);
        put_report(&mut buf, &self.pipeline);
        put_varint(&mut buf, self.touched.len() as u64);
        for name in &self.touched {
            put_varint(&mut buf, name.len() as u64);
            buf.put_slice(name.as_bytes());
        }
        put_varint(&mut buf, self.dataset_bytes.len() as u64);
        buf.put_slice(&self.dataset_bytes);
        checksum::append_trailer(&mut buf);
        buf.freeze()
    }

    /// Deserializes a checkpoint written by [`UpdateCheckpoint::encode`],
    /// verifying magic, version, and checksum trailer.
    pub fn decode(bytes: Bytes) -> Result<UpdateCheckpoint, BinIoError> {
        check_magic(&bytes, UPDATE_CHECKPOINT_MAGIC, "update checkpoint")?;
        let mut buf = checksum::verify_and_strip(bytes)?;
        buf.advance(UPDATE_CHECKPOINT_MAGIC.len());
        if buf.remaining() < 24 {
            return Err(corrupt("truncated update checkpoint header"));
        }
        let source_fingerprint = buf.get_u64_le();
        let config_digest = buf.get_u64_le();
        let base_fingerprint = buf.get_u64_le();
        let resume_offset = get_varint(&mut buf)?;
        let next_fallback_page_id = u32::try_from(get_varint(&mut buf)?)
            .map_err(|_| corrupt("fallback page id overflows u32"))?;
        let filter_downgrades = get_varint(&mut buf)?;
        let quarantine = QuarantineReport::decode(get_blob(&mut buf, "quarantine")?)?;
        let pipeline = get_report(&mut buf)?;
        let touched_len = get_varint(&mut buf)? as usize;
        let mut touched = BTreeSet::new();
        for _ in 0..touched_len {
            let name = get_blob(&mut buf, "touched name")?;
            let name = std::str::from_utf8(&name)
                .map_err(|_| corrupt("touched name is not UTF-8"))?
                .to_owned();
            touched.insert(name);
        }
        let dataset_bytes = get_blob(&mut buf, "dataset")?;
        if buf.has_remaining() {
            return Err(corrupt("trailing bytes after update checkpoint"));
        }
        Ok(UpdateCheckpoint {
            source_fingerprint,
            config_digest,
            base_fingerprint,
            resume_offset,
            next_fallback_page_id,
            filter_downgrades,
            quarantine,
            pipeline,
            touched,
            dataset_bytes,
        })
    }

    /// Atomically writes the checkpoint (temp file + rename).
    pub fn write_file(&self, path: &Path) -> Result<(), BinIoError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a checkpoint from `path`.
    pub fn read_file(path: &Path) -> Result<UpdateCheckpoint, BinIoError> {
        let raw = std::fs::read(path)?;
        UpdateCheckpoint::decode(Bytes::from(raw))
    }
}

/// Result of an update (delta-ingestion) run.
#[derive(Debug)]
pub struct UpdateOutcome {
    /// How the run ended (same state machine as ingestion).
    pub status: IngestStatus,
    /// The merged dataset — `Some` only for completed runs.
    pub dataset: Option<Dataset>,
    /// Attribute names the delta touched (updated or appended), sorted.
    /// Populated only for completed runs.
    pub touched: BTreeSet<String>,
    /// Re-staged columns kept despite failing the attribute filters.
    pub filter_downgrades: u64,
    /// Quarantine counters and samples (delta stream only).
    pub quarantine: QuarantineReport,
    /// Delta-run pipeline counters.
    pub pipeline: PipelineReport,
    /// Offset this run resumed from, if it did.
    pub resumed_from: Option<u64>,
}

#[allow(clippy::too_many_arguments)]
fn save_checkpoint(
    policy: &IngestCheckpointPolicy,
    source_fingerprint: u64,
    config_digest: u64,
    base_fingerprint: u64,
    resume_offset: u64,
    next_fallback_page_id: u32,
    extractor: &DeltaExtractor,
    quarantine: &QuarantineReport,
) -> Result<(), IngestError> {
    let cp = UpdateCheckpoint {
        source_fingerprint,
        config_digest,
        base_fingerprint,
        resume_offset,
        next_fallback_page_id,
        filter_downgrades: extractor.filter_downgrades() as u64,
        quarantine: quarantine.clone(),
        pipeline: extractor.report().clone(),
        touched: extractor.touched().clone(),
        dataset_bytes: encode_dataset(&extractor.snapshot()),
    };
    cp.write_file(&policy.path).map_err(IngestError::Checkpoint)
}

/// Runs resilient delta ingestion over `src` on top of `base`: the
/// update-path sibling of [`crate::ingest::ingest_stream`], sharing its
/// configuration, options, failure model (per-page quarantine, error
/// budget, page-granular checkpoint/resume, cooperative cancellation),
/// and determinism contract — any interrupted run resumed from its
/// checkpoint produces a byte-identical merged dataset.
pub fn update_stream<R: Read>(
    mut src: R,
    source_fingerprint: u64,
    base: Dataset,
    config: &IngestConfig,
    mut options: IngestOptions,
) -> Result<UpdateOutcome, IngestError> {
    let _run_span = tind_obs::span("wiki.update.run");
    let pages_seen_c = tind_obs::counter("update.pages_seen");
    let pages_kept_c = tind_obs::counter("update.pages_kept");
    let config_digest = config.digest();
    let base_fingerprint = dataset_fingerprint(&base);
    let mut resumed_from = None;
    let mut base_offset = 0u64;
    let mut fallback_page_id = 1_000_000u32;

    let (mut extractor, mut quarantine) = if options.resume {
        let policy = options.checkpoint.as_ref().ok_or_else(|| {
            IngestError::ResumeMismatch("resume requested without a checkpoint path".into())
        })?;
        let cp = UpdateCheckpoint::read_file(&policy.path).map_err(IngestError::Checkpoint)?;
        cp.verify_matches(source_fingerprint, config_digest, base_fingerprint)
            .map_err(IngestError::Checkpoint)?;
        let partial = decode_dataset(cp.dataset_bytes.clone()).map_err(IngestError::Checkpoint)?;
        base_offset = cp.resume_offset;
        fallback_page_id = cp.next_fallback_page_id;
        resumed_from = Some(base_offset);
        let skipped = std::io::copy(&mut (&mut src).take(base_offset), &mut std::io::sink())?;
        if skipped != base_offset {
            return Err(IngestError::ResumeMismatch(format!(
                "delta source ends after {skipped} bytes, before the checkpoint offset \
                 {base_offset}"
            )));
        }
        (
            DeltaExtractor::resume(
                config.pipeline.clone(),
                partial,
                cp.pipeline,
                cp.touched,
                cp.filter_downgrades as usize,
            ),
            cp.quarantine,
        )
    } else {
        (
            DeltaExtractor::new(config.pipeline.clone(), base),
            QuarantineReport::new(source_fingerprint, config.sample_cap),
        )
    };

    let mut reader = DumpReader::new(src, config.dump.clone())
        .with_max_page_bytes(config.max_page_bytes)
        .with_memory_budget(options.memory_budget.clone())
        .with_base_offset(base_offset)
        .with_fallback_page_id(fallback_page_id);

    let mut since_checkpoint = 0u64;
    loop {
        if options.should_stop.as_ref().is_some_and(|stop| stop()) {
            if let Some(policy) = &options.checkpoint {
                save_checkpoint(
                    policy,
                    source_fingerprint,
                    config_digest,
                    base_fingerprint,
                    reader.offset(),
                    reader.fallback_page_id(),
                    &extractor,
                    &quarantine,
                )?;
            }
            return Ok(UpdateOutcome {
                status: IngestStatus::Cancelled,
                dataset: None,
                touched: BTreeSet::new(),
                filter_downgrades: extractor.filter_downgrades() as u64,
                quarantine,
                pipeline: extractor.report().clone(),
                resumed_from,
            });
        }
        let Some(item) = reader.next() else {
            break;
        };
        let item = match item {
            Ok(item) => item,
            Err(e) => {
                // Best-effort checkpoint so the run can resume after the
                // I/O fault is fixed; the read error is the one reported.
                if let Some(policy) = &options.checkpoint {
                    let _ = save_checkpoint(
                        policy,
                        source_fingerprint,
                        config_digest,
                        base_fingerprint,
                        reader.offset(),
                        reader.fallback_page_id(),
                        &extractor,
                        &quarantine,
                    );
                }
                return Err(IngestError::Io(e));
            }
        };
        let _page_span = tind_obs::span("wiki.update.page");
        let page_ordinal = quarantine.pages_seen;
        quarantine.pages_seen += 1;
        pages_seen_c.incr();
        match item {
            DumpItem::Quarantined(q) => {
                quarantine.record(q.byte_offset, q.page, q.error.to_string());
            }
            DumpItem::Page(group) => {
                quarantine.revisions_dropped += group.revisions_dropped;
                let title = group
                    .revisions
                    .last()
                    .map(|r| r.title.clone())
                    .unwrap_or_else(|| "<empty page>".into());
                let revisions = group.revisions.len() as u64;
                let start_offset = group.start_offset;
                let hook = options.fault_hook.clone();
                let hook_ok = match hook {
                    Some(h) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        h(page_ordinal)
                    }))
                    .map_err(panic_message),
                    None => Ok(()),
                };
                let pushed = hook_ok.and_then(|()| extractor.push_page(group.revisions));
                match pushed {
                    Ok(()) => {
                        quarantine.pages_kept += 1;
                        quarantine.revisions_kept += revisions;
                        pages_kept_c.incr();
                    }
                    Err(msg) => {
                        quarantine.record(
                            start_offset,
                            title,
                            format!("page processing panicked: {msg}"),
                        );
                    }
                }
            }
        }
        if quarantine.pages_seen >= config.error_rate_min_pages
            && quarantine.error_rate() > config.max_error_rate
        {
            if let Some(policy) = &options.checkpoint {
                save_checkpoint(
                    policy,
                    source_fingerprint,
                    config_digest,
                    base_fingerprint,
                    reader.offset(),
                    reader.fallback_page_id(),
                    &extractor,
                    &quarantine,
                )?;
            }
            return Ok(UpdateOutcome {
                status: IngestStatus::ErrorBudgetExceeded,
                dataset: None,
                touched: BTreeSet::new(),
                filter_downgrades: extractor.filter_downgrades() as u64,
                quarantine,
                pipeline: extractor.report().clone(),
                resumed_from,
            });
        }
        if let Some(progress) = options.progress.as_mut() {
            progress(&IngestProgress {
                pages_seen: quarantine.pages_seen,
                pages_quarantined: quarantine.pages_quarantined,
                offset: reader.offset(),
            });
        }
        since_checkpoint += 1;
        if let Some(policy) = &options.checkpoint {
            if policy.every_pages > 0 && since_checkpoint >= policy.every_pages {
                save_checkpoint(
                    policy,
                    source_fingerprint,
                    config_digest,
                    base_fingerprint,
                    reader.offset(),
                    reader.fallback_page_id(),
                    &extractor,
                    &quarantine,
                )?;
                since_checkpoint = 0;
            }
        }
    }

    // Completed: persist a final checkpoint (a resume from it re-reads
    // nothing and rebuilds the identical dataset), then finalize.
    if let Some(policy) = &options.checkpoint {
        save_checkpoint(
            policy,
            source_fingerprint,
            config_digest,
            base_fingerprint,
            reader.offset(),
            reader.fallback_page_id(),
            &extractor,
            &quarantine,
        )?;
    }
    let filter_downgrades = extractor.filter_downgrades() as u64;
    let (dataset, pipeline, touched) = extractor.finish();
    Ok(UpdateOutcome {
        status: IngestStatus::Completed,
        dataset: Some(dataset),
        touched,
        filter_downgrades,
        quarantine,
        pipeline,
        resumed_from,
    })
}

/// Fingerprints a delta stream file; identical to
/// [`fingerprint_source`], re-exported here so update callers need only
/// this module.
pub fn fingerprint_delta(path: &Path) -> std::io::Result<u64> {
    fingerprint_source(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{extract_dataset, PipelineSession};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Renders a one-table page revision.
    fn games_page(pid: u32, title: &str, day: u32, games: &[&str]) -> PageRevision {
        let mut text = String::from("{| class=\"wikitable\"\n|+ Games\n! Game\n");
        for g in games {
            text.push_str(&format!("|-\n| [[{g}]]\n"));
        }
        text.push_str("|}\n");
        PageRevision { page_id: pid, title: title.to_string(), day, seq_in_day: 0, wikitext: text }
    }

    const ALL: [&str; 10] = [
        "Red", "Blue", "Green", "Yellow", "Gold", "Silver", "Crystal", "Ruby", "Sapphire",
        "Emerald",
    ];

    fn page(pid: u32, title: &str, versions: usize) -> Vec<PageRevision> {
        (0..versions as u32).map(|i| games_page(pid, title, i * 7, &ALL[..5 + i as usize % 5])).collect()
    }

    fn page_xml(title: &str, id: u32, versions: usize) -> String {
        let mut out = format!("<page><title>{title}</title><id>{id}</id>");
        for i in 0..versions as u32 {
            let upto = 5 + i as usize % 5;
            let mut table = String::from("{|\n|+ Games\n! Game\n");
            for g in &ALL[..upto] {
                table.push_str(&format!("|-\n| {g}\n"));
            }
            table.push_str("|}");
            let d = 15 + i * 5;
            let (m, d) = if d <= 31 { (1, d) } else { (2, d - 31) };
            out.push_str(&format!(
                "<revision><timestamp>2001-{m:02}-{d:02}T10:00:00Z</timestamp><text>{}</text></revision>",
                table.replace('<', "&lt;")
            ));
        }
        out.push_str("</page>");
        out
    }

    #[test]
    fn appended_pages_match_one_session_cold_run() {
        let config = PipelineConfig::new(100);
        // Cold: all three pages through one session.
        let mut cold = PipelineSession::new(config.clone());
        cold.push_page(page(1, "A", 6)).expect("a");
        cold.push_page(page(2, "B", 6)).expect("b");
        cold.push_page(page(3, "C", 6)).expect("c");
        let (cold_dataset, _) = cold.finish();

        // Incremental: base of two pages, delta appends the third.
        let (base, _) = extract_dataset(
            page(1, "A", 6).into_iter().chain(page(2, "B", 6)).collect(),
            &config,
        );
        let mut delta = DeltaExtractor::new(config, base);
        delta.push_page(page(3, "C", 6)).expect("c");
        let (merged, report, touched) = delta.finish();
        assert_eq!(report.pages, 1, "delta counters cover the delta only");
        assert_eq!(touched.iter().collect::<Vec<_>>(), vec!["C ▸ Games ▸ Game"]);
        assert_eq!(encode_dataset(&merged), encode_dataset(&cold_dataset));
    }

    #[test]
    fn restaged_page_upserts_in_place() {
        let config = PipelineConfig::new(100);
        let (base, _) = extract_dataset(
            page(1, "A", 6).into_iter().chain(page(2, "B", 6)).collect(),
            &config,
        );
        let (a_id, a_before) = base.attribute_by_name("A ▸ Games ▸ Game").expect("exists");
        let a_before_versions = a_before.versions().len();

        let mut delta = DeltaExtractor::new(config, base.clone());
        delta.push_page(page(1, "A", 9)).expect("restaged A");
        let (merged, _, touched) = delta.finish();
        assert_eq!(merged.len(), base.len(), "no new attributes");
        let (id, after) = merged.attribute_by_name("A ▸ Games ▸ Game").expect("kept");
        assert_eq!(id, a_id, "id stays stable across the upsert");
        assert!(after.versions().len() > a_before_versions, "history extended");
        assert_eq!(touched.len(), 1);
        // Untouched attribute is bit-identical.
        let (b_id, b) = merged.attribute_by_name("B ▸ Games ▸ Game").expect("kept");
        assert_eq!(b, base.attribute(b_id));
    }

    #[test]
    fn checkpoint_roundtrip_guards_and_corruption_offsets() {
        let cp = UpdateCheckpoint {
            source_fingerprint: 11,
            config_digest: 22,
            base_fingerprint: 33,
            resume_offset: 4096,
            next_fallback_page_id: 1_000_007,
            filter_downgrades: 2,
            quarantine: QuarantineReport::new(11, 8),
            pipeline: PipelineReport { pages: 3, revisions: 17, ..PipelineReport::default() },
            touched: ["A ▸ Games ▸ Game".to_string(), "C ▸ Games ▸ Game".to_string()]
                .into_iter()
                .collect(),
            dataset_bytes: encode_dataset(
                &extract_dataset(page(1, "A", 6), &PipelineConfig::new(100)).0,
            ),
        };
        let bytes = cp.encode();
        assert_eq!(&bytes[..8], UPDATE_CHECKPOINT_MAGIC);
        let decoded = UpdateCheckpoint::decode(bytes.clone()).expect("roundtrips");
        assert_eq!(decoded, cp);

        // Guards.
        assert!(cp.verify_matches(11, 22, 33).is_ok());
        assert!(cp.verify_matches(12, 22, 33).is_err(), "wrong source");
        assert!(cp.verify_matches(11, 23, 33).is_err(), "wrong config");
        let err = cp.verify_matches(11, 22, 34).unwrap_err();
        assert!(err.to_string().contains("different base dataset"), "{err}");

        // Truncation at every prefix is refused.
        for cut in [0usize, 4, 8, 24, bytes.len() / 2, bytes.len() - 1] {
            assert!(UpdateCheckpoint::decode(bytes.slice(0..cut)).is_err(), "cut {cut}");
        }
        // Any body byte flipped → refused, and checksum failures carry
        // the failing byte offset (the trailer boundary).
        let clean = bytes.to_vec();
        for byte in (8..clean.len()).step_by(13) {
            let mut bad = clean.clone();
            bad[byte] ^= 0xFF;
            let err = UpdateCheckpoint::decode(Bytes::from(bad)).expect_err("refused");
            if let BinIoError::Checksum { offset, .. } = err {
                assert_eq!(offset, (clean.len() - 4) as u64, "byte {byte}");
            }
        }
    }

    #[test]
    fn update_stream_completes_and_checkpoints_resume_identically() {
        let config = IngestConfig::new(100);
        let base_xml = format!(
            "<mediawiki>\n{}\n{}\n</mediawiki>",
            page_xml("Alpha", 1, 6),
            page_xml("Beta", 2, 6)
        );
        let delta_xml = format!(
            "<mediawiki>\n{}\n{}\n</mediawiki>",
            page_xml("Alpha", 1, 8), // revised page: full history
            page_xml("Gamma", 3, 6)  // new page
        );
        let base = crate::ingest::ingest_stream(
            std::io::Cursor::new(base_xml.as_bytes()),
            1,
            &config,
            IngestOptions::default(),
        )
        .expect("base ingests")
        .dataset
        .expect("completed");

        // Uninterrupted run.
        let outcome = update_stream(
            std::io::Cursor::new(delta_xml.as_bytes()),
            2,
            base.clone(),
            &config,
            IngestOptions::default(),
        )
        .expect("updates");
        assert_eq!(outcome.status, IngestStatus::Completed);
        let reference = outcome.dataset.expect("completed");
        assert_eq!(outcome.touched.len(), 2, "Alpha updated, Gamma appended");
        assert!(reference.len() >= base.len());

        // Cancelled after the first page, then resumed: byte-identical.
        let dir = std::env::temp_dir().join("tind-wiki-update-cp-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.tuc");
        let pages = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&pages);
        let stop: crate::ingest::StopSignal = Arc::new(move || seen.load(Ordering::SeqCst) >= 1);
        let progress_pages = Arc::clone(&pages);
        let options = IngestOptions {
            checkpoint: Some(crate::ingest::IngestCheckpointPolicy {
                path: path.clone(),
                every_pages: 1,
            }),
            should_stop: Some(stop),
            progress: Some(Box::new(move |p| {
                progress_pages.store(p.pages_seen, Ordering::SeqCst);
            })),
            ..IngestOptions::default()
        };
        let halted = update_stream(
            std::io::Cursor::new(delta_xml.as_bytes()),
            2,
            base.clone(),
            &config,
            options,
        )
        .expect("halts cleanly");
        assert_eq!(halted.status, IngestStatus::Cancelled);

        let cp = UpdateCheckpoint::read_file(&path).expect("checkpoint exists");
        assert!(cp.resume_offset > 0);
        let resumed = update_stream(
            std::io::Cursor::new(delta_xml.as_bytes()),
            2,
            base.clone(),
            &config,
            IngestOptions {
                checkpoint: Some(crate::ingest::IngestCheckpointPolicy {
                    path: path.clone(),
                    every_pages: 0,
                }),
                resume: true,
                ..IngestOptions::default()
            },
        )
        .expect("resumes");
        assert_eq!(resumed.status, IngestStatus::Completed);
        assert_eq!(resumed.resumed_from, Some(cp.resume_offset));
        assert_eq!(
            encode_dataset(&resumed.dataset.expect("completed")),
            encode_dataset(&reference),
            "kill/resume must be byte-identical to the uninterrupted run"
        );
        assert_eq!(resumed.touched, outcome.touched);

        // Resuming against the wrong base is refused.
        let err = update_stream(
            std::io::Cursor::new(delta_xml.as_bytes()),
            2,
            reference,
            &config,
            IngestOptions {
                checkpoint: Some(crate::ingest::IngestCheckpointPolicy {
                    path: path.clone(),
                    every_pages: 0,
                }),
                resume: true,
                ..IngestOptions::default()
            },
        )
        .expect_err("wrong base refused");
        assert!(err.to_string().contains("different base dataset"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
