//! Adversarial-dump tests for the resilient ingestion subsystem: hostile
//! inputs must be quarantined (never panic the process, never hang), the
//! quarantine counters must reconcile exactly, and kill-at-every-page
//! resume must reproduce the uninterrupted dataset byte for byte —
//! mirroring `tests/fault_tolerance.rs` for the discovery side.

use std::io::Cursor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use tind_model::binio::encode_dataset;
use tind_model::MemoryBudget;
use tind_wiki::ingest::IngestCheckpointPolicy;
use tind_wiki::{
    ingest_stream, IngestCheckpoint, IngestConfig, IngestError, IngestOptions, IngestStatus,
};

/// A well-formed page whose single table grows monotonically over six
/// revisions — enough versions and cardinality to clear the §5.1 filters.
fn good_page(title: &str, id: u32) -> String {
    let games = [
        "Red", "Blue", "Gold", "Silver", "Crystal", "Ruby", "Sapphire", "Emerald", "Pearl",
        "Diamond",
    ];
    let mut page = format!("<page><title>{title}</title><id>{id}</id>");
    for i in 0..6 {
        let mut table = String::from("{|\n! Game\n");
        for g in &games[..5 + i] {
            table.push_str(&format!("|-\n| {g}\n"));
        }
        table.push_str("|}");
        page.push_str(&format!(
            "<revision><timestamp>2001-0{}-01T00:00:00Z</timestamp><text>{table}</text></revision>",
            i + 2,
        ));
    }
    page.push_str("</page>");
    page
}

/// A page with no `<title>` element: a hard per-page parse error.
fn missing_title_page(id: u32) -> String {
    format!(
        "<page><id>{id}</id><revision><timestamp>2001-02-01T00:00:00Z</timestamp>\
         <text>x</text></revision></page>"
    )
}

fn wrap(pages: &[String]) -> Vec<u8> {
    let mut xml = String::from("<mediawiki>\n");
    for p in pages {
        xml.push_str(p);
        xml.push('\n');
    }
    xml.push_str("</mediawiki>\n");
    xml.into_bytes()
}

fn permissive(timeline: u32) -> IngestConfig {
    let mut config = IngestConfig::new(timeline);
    config.max_error_rate = 1.0; // reconcile-only tests: never abort
    config
}

fn reconciles(outcome: &tind_wiki::IngestOutcome) {
    let q = &outcome.quarantine;
    assert_eq!(
        q.pages_seen,
        q.pages_kept + q.pages_quarantined,
        "every page is either kept or quarantined"
    );
    assert!(q.entries.len() as u64 <= q.pages_quarantined);
    assert!(q.entries.len() <= q.sample_cap);
}

/// Hand-built corpus of hostile dumps. Each case must be survived:
/// quarantine what is broken, keep what is not, and account for both.
#[test]
fn adversarial_corpus_never_panics_and_counts_reconcile() {
    let oversized_body = "x".repeat(64 * 1024);
    let cases: Vec<(&str, Vec<u8>, u64 /* kept */, u64 /* quarantined */)> = vec![
        ("empty stream", Vec::new(), 0, 0),
        ("no pages at all", b"<mediawiki>prose only</mediawiki>".to_vec(), 0, 0),
        (
            "truncated mid-page",
            {
                let mut x = wrap(&[good_page("Alpha", 1)]);
                x.extend_from_slice(b"<page><title>Cut</title><id>2</id><revision>");
                x
            },
            1,
            1,
        ),
        ("missing title", wrap(&[missing_title_page(7)]), 0, 1),
        (
            "bad page id",
            wrap(&["<page><title>T</title><id>NaN</id></page>".to_string()]),
            0,
            1,
        ),
        (
            "oversized page among good ones",
            wrap(&[
                good_page("Alpha", 1),
                format!("<page><title>Huge</title><id>2</id><revision><text>{oversized_body}</text></revision></page>"),
                good_page("Beta", 3),
            ]),
            2,
            1,
        ),
        (
            "non-utf8 page body",
            {
                let mut x = b"<mediawiki><page><title>Bin</title>".to_vec();
                x.extend_from_slice(&[0xFF, 0xFE, 0x80, 0x00]);
                x.extend_from_slice(b"</page>");
                x.extend_from_slice(wrap(&[good_page("Alpha", 1)]).as_slice());
                x
            },
            1,
            1,
        ),
        (
            "epoch-boundary and pre-epoch timestamps drop revisions, not pages",
            wrap(&[format!(
                "<page><title>Edge</title><id>1</id>\
                 <revision><timestamp>1970-01-01T00:00:00Z</timestamp><text>a</text></revision>\
                 <revision><timestamp>2001-01-15T00:00:00Z</timestamp><text>b</text></revision>\
                 <revision><timestamp>9999-12-31T23:59:59Z</timestamp><text>c</text></revision>\
                 <revision><timestamp>not-a-date</timestamp><text>d</text></revision>\
                 </page>"
            )]),
            1,
            0,
        ),
        (
            "unbalanced markup inside text",
            wrap(&[
                "<page><title>Nest</title><id>1</id><revision>\
                 <timestamp>2001-02-01T00:00:00Z</timestamp>\
                 <text>{| ! a |- | b</text></revision></page>"
                    .to_string(),
            ]),
            1,
            0,
        ),
    ];

    for (name, bytes, kept, quarantined) in cases {
        let mut config = permissive(6148);
        config.max_page_bytes = 16 * 1024;
        let outcome = ingest_stream(Cursor::new(bytes), 1, &config, IngestOptions::default())
            .unwrap_or_else(|e| panic!("case '{name}' must not abort: {e}"));
        assert_eq!(outcome.status, IngestStatus::Completed, "case '{name}'");
        reconciles(&outcome);
        let q = &outcome.quarantine;
        assert_eq!(q.pages_kept, kept, "case '{name}' kept: {:?}", q.entries);
        assert_eq!(q.pages_quarantined, quarantined, "case '{name}' quarantined: {:?}", q.entries);
    }
}

/// The pre-epoch/garbage timestamps in the corpus above must show up in
/// the revision counters, not vanish silently.
#[test]
fn dropped_revisions_are_counted() {
    let xml = wrap(&[format!(
        "<page><title>Edge</title><id>1</id>\
         <revision><timestamp>1999-01-01T00:00:00Z</timestamp><text>a</text></revision>\
         <revision><timestamp>garbage</timestamp><text>b</text></revision>\
         <revision><timestamp>2001-02-01T00:00:00Z</timestamp><text>c</text></revision>\
         </page>"
    )]);
    let outcome =
        ingest_stream(Cursor::new(xml), 1, &permissive(6148), IngestOptions::default())
            .expect("ingests");
    assert_eq!(outcome.quarantine.revisions_dropped, 2, "pre-epoch + unparseable");
    assert_eq!(outcome.quarantine.revisions_kept, 1);
}

/// Discovery's central fault-tolerance property, replayed for ingestion:
/// kill the run after every possible page prefix, resume it, and the
/// final dataset must be byte-identical to the uninterrupted run.
#[test]
fn kill_at_every_page_resume_matches_uninterrupted() {
    let pages = vec![
        good_page("Alpha", 1),
        missing_title_page(99), // a quarantined page mid-stream
        good_page("Beta", 2),
        good_page("Gamma", 3),
    ];
    let xml = wrap(&pages);
    let config = permissive(6148);
    let fingerprint = 42u64;

    let uninterrupted =
        ingest_stream(Cursor::new(xml.clone()), fingerprint, &config, IngestOptions::default())
            .expect("uninterrupted run");
    assert_eq!(uninterrupted.status, IngestStatus::Completed);
    let reference = encode_dataset(uninterrupted.dataset.as_ref().expect("dataset"));

    let dir = std::env::temp_dir().join("tind-wiki-ingest-killtest");
    std::fs::create_dir_all(&dir).expect("mkdir");

    for kill_after in 0..=pages.len() as u64 {
        let path = dir.join(format!("kill-{kill_after}.tic"));
        let _ = std::fs::remove_file(&path);
        let polls = Arc::new(AtomicU64::new(0));
        let stop: tind_wiki::ingest::StopSignal = {
            let polls = polls.clone();
            Arc::new(move || polls.fetch_add(1, Ordering::SeqCst) >= kill_after)
        };
        let killed = ingest_stream(
            Cursor::new(xml.clone()),
            fingerprint,
            &config,
            IngestOptions {
                checkpoint: Some(IngestCheckpointPolicy { path: path.clone(), every_pages: 1 }),
                should_stop: Some(stop),
                ..IngestOptions::default()
            },
        )
        .expect("killed run still exits cleanly");
        assert_eq!(
            killed.status,
            IngestStatus::Cancelled,
            "stop after {kill_after} pages must cancel"
        );
        assert_eq!(killed.quarantine.pages_seen, kill_after, "pages before the kill point");

        let resumed = ingest_stream(
            Cursor::new(xml.clone()),
            fingerprint,
            &config,
            IngestOptions {
                checkpoint: Some(IngestCheckpointPolicy { path: path.clone(), every_pages: 1 }),
                resume: true,
                ..IngestOptions::default()
            },
        )
        .expect("resumed run completes");
        assert_eq!(resumed.status, IngestStatus::Completed);
        assert!(resumed.resumed_from.is_some());
        reconciles(&resumed);
        assert_eq!(
            resumed.quarantine.pages_seen, pages.len() as u64,
            "kill at {kill_after}: resumed run sees the remaining pages exactly once"
        );
        assert_eq!(resumed.quarantine.pages_quarantined, 1, "kill at {kill_after}");
        assert_eq!(
            encode_dataset(resumed.dataset.as_ref().expect("dataset")),
            reference,
            "kill at {kill_after}: resumed dataset must be byte-identical"
        );
        assert_eq!(
            &resumed.pipeline,
            &uninterrupted.pipeline,
            "kill at {kill_after}: pipeline counters must match"
        );
        std::fs::remove_file(&path).ok();
    }
}

/// The error budget separates "imperfect dump" from "garbage input":
/// sparse errors are tolerated, systematic ones abort early.
#[test]
fn error_budget_aborts_garbage_but_tolerates_sparse_errors() {
    let config = IngestConfig::new(6148); // default 5% budget, 20-page grace

    let garbage: Vec<String> = (0..30).map(missing_title_page).collect();
    let outcome =
        ingest_stream(Cursor::new(wrap(&garbage)), 1, &config, IngestOptions::default())
            .expect("abort is a status, not an error");
    assert_eq!(outcome.status, IngestStatus::ErrorBudgetExceeded);
    assert!(outcome.dataset.is_none());
    assert_eq!(
        outcome.quarantine.pages_seen, config.error_rate_min_pages,
        "aborts at the earliest page the budget allows"
    );

    let mut sparse: Vec<String> =
        (0..39).map(|i| good_page(&format!("Page{i}"), i + 1)).collect();
    sparse.push(missing_title_page(999)); // 1/40 = 2.5% < 5%
    let outcome =
        ingest_stream(Cursor::new(wrap(&sparse)), 1, &config, IngestOptions::default())
            .expect("sparse errors tolerated");
    assert_eq!(outcome.status, IngestStatus::Completed);
    assert_eq!(outcome.quarantine.pages_quarantined, 1);
    reconciles(&outcome);
}

/// A tiny memory budget quarantines pages instead of buffering them; a
/// generous one is charged and fully released.
#[test]
fn memory_budget_quarantines_instead_of_buffering() {
    let pages = vec![good_page("Alpha", 1), good_page("Beta", 2), good_page("Gamma", 3)];
    let xml = wrap(&pages);

    let tiny = MemoryBudget::new(128);
    let outcome = ingest_stream(
        Cursor::new(xml.clone()),
        1,
        &permissive(6148),
        IngestOptions { memory_budget: tiny.clone(), ..IngestOptions::default() },
    )
    .expect("refusals are quarantined, not fatal");
    assert_eq!(outcome.status, IngestStatus::Completed);
    assert_eq!(outcome.quarantine.pages_quarantined, 3, "every page is over a 128-byte budget");
    assert!(tiny.peak_bytes() <= 128, "the budget is a hard bound");

    let generous = MemoryBudget::new(64 * 1024 * 1024);
    let outcome = ingest_stream(
        Cursor::new(xml),
        1,
        &permissive(6148),
        IngestOptions { memory_budget: generous.clone(), ..IngestOptions::default() },
    )
    .expect("ingests");
    assert_eq!(outcome.quarantine.pages_kept, 3);
    assert!(outcome.quarantine.pages_quarantined == 0);
    assert!(generous.peak_bytes() > 0, "held pages are charged");
    assert_eq!(generous.used_bytes(), 0, "all charges released");
}

/// A panic while processing one page (injected via the fault hook, the
/// same mechanism `core::allpairs` uses) quarantines that page only.
#[test]
fn processing_panic_quarantines_the_page_only() {
    let pages = vec![good_page("Alpha", 1), good_page("Beta", 2), good_page("Gamma", 3)];
    let outcome = ingest_stream(
        Cursor::new(wrap(&pages)),
        1,
        &permissive(6148),
        IngestOptions {
            fault_hook: Some(Arc::new(|ordinal| {
                if ordinal == 1 {
                    panic!("injected fault on page {ordinal}");
                }
            })),
            ..IngestOptions::default()
        },
    )
    .expect("panic is contained");
    assert_eq!(outcome.status, IngestStatus::Completed);
    assert_eq!(outcome.quarantine.pages_kept, 2);
    assert_eq!(outcome.quarantine.pages_quarantined, 1);
    let entry = &outcome.quarantine.entries[0];
    assert!(entry.error.contains("panicked"), "{}", entry.error);
    assert!(entry.error.contains("injected fault"), "{}", entry.error);
    assert_eq!(entry.page, "Beta", "the quarantined page is identified by title");
    assert_eq!(outcome.dataset.expect("dataset").len(), 2, "surviving pages yield attributes");
}

/// Corrupted or mismatched checkpoints are rejected up front — resuming
/// from them would silently corrupt the dataset.
#[test]
fn corrupt_or_mismatched_checkpoints_are_rejected() {
    let pages = vec![good_page("Alpha", 1), good_page("Beta", 2)];
    let xml = wrap(&pages);
    let config = permissive(6148);
    let dir = std::env::temp_dir().join("tind-wiki-ingest-corrupt");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("run.tic");

    let stop_now: tind_wiki::ingest::StopSignal = Arc::new(|| true);
    let outcome = ingest_stream(
        Cursor::new(xml.clone()),
        7,
        &config,
        IngestOptions {
            checkpoint: Some(IngestCheckpointPolicy { path: path.clone(), every_pages: 1 }),
            should_stop: Some(stop_now),
            ..IngestOptions::default()
        },
    )
    .expect("cancelled cleanly");
    assert_eq!(outcome.status, IngestStatus::Cancelled);

    let resume_with = |path: std::path::PathBuf, fingerprint: u64, config: &IngestConfig| {
        ingest_stream(
            Cursor::new(xml.clone()),
            fingerprint,
            config,
            IngestOptions {
                checkpoint: Some(IngestCheckpointPolicy { path, every_pages: 1 }),
                resume: true,
                ..IngestOptions::default()
            },
        )
    };

    // Clean resume works.
    assert!(resume_with(path.clone(), 7, &config).is_ok());

    // Wrong source fingerprint.
    assert!(matches!(
        resume_with(path.clone(), 8, &config),
        Err(IngestError::Checkpoint(_))
    ));

    // Different run parameters.
    let mut other = config.clone();
    other.max_page_bytes = 4096;
    assert!(matches!(
        resume_with(path.clone(), 7, &other),
        Err(IngestError::Checkpoint(_))
    ));

    // Bit rot and truncation anywhere in the file.
    let clean = std::fs::read(&path).expect("checkpoint bytes");
    for bit in (0..clean.len() * 8).step_by(101) {
        let mut bad = clean.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        let bad_path = dir.join("rotten.tic");
        std::fs::write(&bad_path, &bad).expect("write");
        assert!(
            matches!(resume_with(bad_path, 7, &config), Err(IngestError::Checkpoint(_))),
            "flipped bit {bit} must be detected"
        );
    }
    let truncated_path = dir.join("truncated.tic");
    std::fs::write(&truncated_path, &clean[..clean.len() / 2]).expect("write");
    assert!(matches!(
        resume_with(truncated_path, 7, &config),
        Err(IngestError::Checkpoint(_))
    ));
    assert!(IngestCheckpoint::read_file(&dir.join("missing.tic")).is_err());

    // Resume without a checkpoint path is refused outright.
    let err = ingest_stream(
        Cursor::new(xml.clone()),
        7,
        &config,
        IngestOptions { resume: true, ..IngestOptions::default() },
    );
    assert!(matches!(err, Err(IngestError::ResumeMismatch(_))));

    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary bytes fed to the full ingestion stack: whatever they
    /// contain, ingestion neither panics nor loses count of a page.
    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let config = permissive(6148);
        let outcome = ingest_stream(Cursor::new(data), 1, &config, IngestOptions::default())
            .expect("in-memory streams cannot abort");
        prop_assert_eq!(
            outcome.quarantine.pages_seen,
            outcome.quarantine.pages_kept + outcome.quarantine.pages_quarantined
        );
    }

    /// Valid pages survive arbitrary garbage interleaved between them.
    #[test]
    fn good_pages_survive_interleaved_garbage(
        garbage in proptest::collection::vec(
            proptest::string::string_regex("[a-zA-Z0-9 <>/&;\n]{0,64}").expect("valid regex"),
            0..4,
        ),
    ) {
        // Keep the garbage out of page boundaries so it stays preamble.
        let garbage: Vec<String> =
            garbage.into_iter().map(|g| g.replace("<page", "(page").replace("</page>", "(/page)")).collect();
        let mut xml = String::from("<mediawiki>");
        for (i, g) in garbage.iter().enumerate() {
            xml.push_str(g);
            xml.push_str(&good_page(&format!("Page{i}"), i as u32 + 1));
        }
        xml.push_str("</mediawiki>");
        let n = garbage.len() as u64;
        let outcome = ingest_stream(
            Cursor::new(xml.into_bytes()),
            1,
            &permissive(6148),
            IngestOptions::default(),
        )
        .expect("ingests");
        prop_assert_eq!(outcome.quarantine.pages_seen, n);
        prop_assert_eq!(outcome.quarantine.pages_kept, n);
    }
}
