//! Property tests for the wikitext table parser: rendering an arbitrary
//! table and parsing it back must round-trip.

use proptest::prelude::*;
use tind_wiki::{parse_tables, RawTable};

/// A safe cell string: non-empty after trimming, no wikitext control
/// characters.
fn cell_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9][a-zA-Z0-9 _.-]{0,14}")
        .expect("valid regex")
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty after trim", |s| !s.is_empty())
}

fn table_strategy() -> impl Strategy<Value = (Vec<String>, Vec<Vec<String>>)> {
    (1usize..5, 1usize..8).prop_flat_map(|(width, height)| {
        (
            proptest::collection::vec(cell_strategy(), width..=width),
            proptest::collection::vec(
                proptest::collection::vec(cell_strategy(), width..=width),
                height..=height,
            ),
        )
    })
}

fn render(headers: &[String], rows: &[Vec<String>], multi_cell_lines: bool) -> String {
    let mut text = String::from("{| class=\"wikitable\"\n");
    if multi_cell_lines {
        text.push_str(&format!("! {}\n", headers.join(" !! ")));
    } else {
        for h in headers {
            text.push_str(&format!("! {h}\n"));
        }
    }
    for row in rows {
        text.push_str("|-\n");
        if multi_cell_lines {
            text.push_str(&format!("| {}\n", row.join(" || ")));
        } else {
            for cell in row {
                text.push_str(&format!("| {cell}\n"));
            }
        }
    }
    text.push_str("|}\n");
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn render_parse_roundtrip((headers, rows) in table_strategy(), multi in any::<bool>()) {
        let text = render(&headers, &rows, multi);
        let parsed = parse_tables(&text);
        prop_assert_eq!(parsed.len(), 1, "exactly one table in:\n{}", text);
        let t: &RawTable = &parsed[0];
        prop_assert_eq!(&t.headers, &headers);
        prop_assert_eq!(&t.rows, &rows);
    }

    #[test]
    fn surrounding_prose_is_ignored(
        (headers, rows) in table_strategy(),
        prose in proptest::string::string_regex("[a-zA-Z0-9 .,\n]{0,80}").expect("valid regex"),
    ) {
        // Prose must not contain table markers to stay out of the grammar.
        let prose = prose.replace("{|", "(|").replace("|}", "|)");
        let text = format!("{prose}\n{}\n{prose}", render(&headers, &rows, true));
        let parsed = parse_tables(&text);
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0].headers, &headers);
    }

    #[test]
    fn concatenated_tables_parse_independently(
        (h1, r1) in table_strategy(),
        (h2, r2) in table_strategy(),
    ) {
        let text = format!("{}\n{}", render(&h1, &r1, true), render(&h2, &r2, false));
        let parsed = parse_tables(&text);
        prop_assert_eq!(parsed.len(), 2);
        prop_assert_eq!(&parsed[0].headers, &h1);
        prop_assert_eq!(&parsed[1].headers, &h2);
        prop_assert_eq!(&parsed[1].rows, &r2);
    }
}
