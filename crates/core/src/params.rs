//! The (ε, δ, w) parameter triple of relaxed temporal INDs (Section 3.3).
//!
//! Each paper variant is a specialization of the most general form
//! (Definition 3.6); the constructors here encode exactly the
//! specialization chain spelled out at the end of Section 3.3:
//!
//! * strict tIND        = ε = 0, δ = 0, any weights
//! * ε-relaxed tIND     = δ = 0, `w(t) = 1/|T|` (relative ε)
//! * ε,δ-relaxed tIND   = `w(t) = 1/|T|`
//! * wεδ-tIND           = free choice of all three

use tind_model::{Timeline, WeightFn};

/// Tolerance used when comparing accumulated violation weight against ε.
///
/// Constant weights sum exactly in f64; decay weights accumulate rounding in
/// the last bits. The tolerance makes "violation == ε" robustly count as
/// *valid* ("at most ε", Definition 3.6).
pub const EPS_TOLERANCE: f64 = 1e-9;

/// Parameters of a w-weighted ε,δ-relaxed temporal inclusion dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct TindParams {
    /// Violation budget: the summed weight of violated timestamps may be at
    /// most ε.
    pub eps: f64,
    /// Temporal slack: `Q[t]` need only be contained in
    /// `A[[t-δ, t+δ]]` (Definition 3.4).
    pub delta: u32,
    /// Timestamp weight function.
    pub weights: WeightFn,
}

impl TindParams {
    /// Strict tIND (Definition 3.2): no violation allowed, no temporal
    /// slack.
    pub fn strict() -> Self {
        TindParams { eps: 0.0, delta: 0, weights: WeightFn::constant_one() }
    }

    /// ε-relaxed tIND (Definition 3.3): `eps_fraction` is the maximum
    /// *share* of violated timestamps.
    ///
    /// # Panics
    /// Panics unless `0 ≤ eps_fraction ≤ 1`.
    pub fn eps_relaxed(eps_fraction: f64, timeline: Timeline) -> Self {
        assert!(
            (0.0..=1.0).contains(&eps_fraction),
            "ε must be a fraction in [0, 1], got {eps_fraction}"
        );
        TindParams {
            eps: eps_fraction,
            delta: 0,
            weights: WeightFn::uniform_normalized(timeline),
        }
    }

    /// ε,δ-relaxed tIND (Definition 3.5) with relative ε.
    pub fn eps_delta_relaxed(eps_fraction: f64, delta: u32, timeline: Timeline) -> Self {
        let mut p = Self::eps_relaxed(eps_fraction, timeline);
        p.delta = delta;
        p
    }

    /// The paper's default experimental setting (§5.1): `ε = 3` days,
    /// `δ = 7` days, constant weights `w(t) = 1` (ε counted in days).
    pub fn paper_default() -> Self {
        TindParams { eps: 3.0, delta: 7, weights: WeightFn::constant_one() }
    }

    /// Fully general wεδ-tIND (Definition 3.6) with an absolute ε budget.
    pub fn weighted(eps: f64, delta: u32, weights: WeightFn) -> Self {
        assert!(eps >= 0.0 && eps.is_finite(), "ε must be finite and non-negative, got {eps}");
        TindParams { eps, delta, weights }
    }

    /// Whether an accumulated violation weight still satisfies the budget.
    #[inline]
    pub fn within_budget(&self, violation: f64) -> bool {
        violation <= self.eps + EPS_TOLERANCE
    }

    /// Whether an accumulated violation weight definitely exceeds the
    /// budget (the index's pruning condition — strict inequality so a
    /// candidate sitting exactly at ε is never falsely pruned).
    #[inline]
    pub fn exceeds_budget(&self, violation: f64) -> bool {
        violation > self.eps + EPS_TOLERANCE
    }

    /// Whether a pair is *provably* valid before the timeline is exhausted:
    /// even if every not-yet-examined timestamp violated, the total
    /// violation could not leave the budget. `max_remaining` must be an
    /// upper bound on the weight of everything still unexamined (the
    /// timeline-suffix weight from [`tind_model::WeightTable`]). This is
    /// the prove-valid half of the validation kernel's two-sided early
    /// exit; the prove-invalid half is [`TindParams::exceeds_budget`].
    #[inline]
    pub fn provably_within(&self, violation: f64, max_remaining: f64) -> bool {
        self.within_budget(violation + max_remaining)
    }

    /// Whether an index whose time slices were expanded for
    /// `index_max_delta` can soundly use slice evidence for this query
    /// (§4.4): a violation detected against `A[I^δ]` is only genuine when
    /// the query's δ does not exceed the index's. Shared by the forward,
    /// reverse, and batched search paths.
    #[inline]
    pub fn slices_usable(&self, index_max_delta: u32) -> bool {
        self.delta <= index_max_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_has_zero_budget() {
        let p = TindParams::strict();
        assert_eq!(p.eps, 0.0);
        assert_eq!(p.delta, 0);
        assert!(p.within_budget(0.0));
        assert!(!p.within_budget(0.5));
    }

    #[test]
    fn eps_relaxed_uses_normalized_weights() {
        let tl = Timeline::new(100);
        let p = TindParams::eps_relaxed(0.1, tl);
        assert!((p.weights.total(tl) - 1.0).abs() < 1e-12);
        assert_eq!(p.delta, 0);
    }

    #[test]
    #[should_panic(expected = "fraction in [0, 1]")]
    fn eps_relaxed_rejects_out_of_range() {
        TindParams::eps_relaxed(1.5, Timeline::new(10));
    }

    #[test]
    fn budget_boundary_counts_as_valid() {
        let p = TindParams::weighted(3.0, 7, WeightFn::constant_one());
        assert!(p.within_budget(3.0));
        assert!(p.within_budget(3.0 + 1e-12));
        assert!(!p.within_budget(3.1));
        assert!(!p.exceeds_budget(3.0));
        assert!(p.exceeds_budget(3.000001));
    }

    #[test]
    fn provably_within_mirrors_the_budget_check() {
        let p = TindParams::weighted(3.0, 0, WeightFn::constant_one());
        assert!(p.provably_within(1.0, 2.0), "1 + 2 ≤ ε");
        assert!(p.provably_within(3.0, 0.0), "boundary counts as valid");
        assert!(!p.provably_within(1.0, 2.5), "worst case would exceed ε");
        assert!(!p.provably_within(3.5, 0.0));
    }

    #[test]
    fn paper_default_matches_section_5_1() {
        let p = TindParams::paper_default();
        assert_eq!(p.eps, 3.0);
        assert_eq!(p.delta, 7);
        assert_eq!(p.weights, WeightFn::constant_one());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn weighted_rejects_negative_eps() {
        TindParams::weighted(-1.0, 0, WeightFn::constant_one());
    }
}
