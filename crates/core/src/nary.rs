//! n-ary temporal inclusion dependencies — the paper's §6 future-work item
//! ("the discovery of n-ary tINDs could be studied").
//!
//! An n-ary tIND `T1[A1..An] ⊆_{w,ε,δ} T2[B1..Bn]` demands that at (almost)
//! every timestamp the *tuple* set projected from columns `A1..An` is
//! δ-contained in the tuple set projected from `B1..Bn`. Two observations
//! make the unary machinery reusable:
//!
//! * projecting a [`TemporalTable`] on a column list and interning each
//!   tuple ([`TupleInterner`]) yields an ordinary unary attribute history,
//!   so Algorithm 2 validates n-ary candidates unchanged;
//! * validity is anti-monotone in the column list (dropping a position
//!   from both sides can only make containment easier), so candidates can
//!   be generated level-wise MIND-style: an n-ary candidate is tried only
//!   if all its (n−1)-ary projections validated.
//!
//! Left-hand column lists are kept in canonical ascending order (the
//! permutation property of n-ary INDs makes reorderings equivalent).

use tind_model::hash::FastMap;
use tind_model::{AttributeHistory, TemporalTable, Timeline, TupleInterner};

use crate::params::TindParams;
use crate::validate::{QueryPlan, ValidationScratch};

/// One side of an n-ary IND: a table and an ordered column list.
pub type Side = (usize, Vec<usize>);

/// A discovered n-ary temporal IND.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NaryInd {
    /// Left-hand side (included); columns ascending.
    pub lhs: Side,
    /// Right-hand side (including); columns aligned positionally with
    /// `lhs`.
    pub rhs: Side,
}

impl NaryInd {
    /// Human-readable rendering against the table list.
    pub fn describe(&self, tables: &[TemporalTable]) -> String {
        let side = |s: &Side| {
            let t = &tables[s.0];
            let cols: Vec<&str> = s.1.iter().map(|&c| t.columns()[c].as_str()).collect();
            format!("{}[{}]", t.name(), cols.join(", "))
        };
        format!("{} ⊆ {}", side(&self.lhs), side(&self.rhs))
    }

    /// Arity of the dependency.
    pub fn arity(&self) -> usize {
        self.lhs.1.len()
    }
}

/// Results of level-wise discovery: `levels[i]` holds the (i+1)-ary tINDs.
#[derive(Debug, Clone)]
pub struct NaryResults {
    /// Valid INDs per arity level.
    pub levels: Vec<Vec<NaryInd>>,
    /// Candidates validated per level (pruning diagnostics).
    pub candidates_checked: Vec<usize>,
}

impl NaryResults {
    /// All INDs of every arity, flattened.
    pub fn all(&self) -> impl Iterator<Item = &NaryInd> {
        self.levels.iter().flatten()
    }
}

/// Cache of projected unary histories, keyed by (table, column list).
struct ProjectionCache<'a> {
    tables: &'a [TemporalTable],
    interner: TupleInterner,
    cache: FastMap<u64, AttributeHistory>,
    keys: FastMap<u64, Side>,
}

impl<'a> ProjectionCache<'a> {
    fn new(tables: &'a [TemporalTable]) -> Self {
        ProjectionCache {
            tables,
            interner: TupleInterner::new(),
            cache: FastMap::default(),
            keys: FastMap::default(),
        }
    }

    fn key(side: &Side) -> u64 {
        let mut h = tind_model::hash::splitmix64(side.0 as u64 ^ 0x51ab);
        for &c in &side.1 {
            h = tind_model::hash::splitmix64(h ^ (c as u64).wrapping_add(0x9e37));
        }
        h
    }

    fn get(&mut self, side: &Side) -> &AttributeHistory {
        let key = Self::key(side);
        if let Some(existing) = self.keys.get(&key) {
            debug_assert_eq!(existing, side, "projection key collision");
        } else {
            let history = self.tables[side.0].project_history(&side.1, &mut self.interner);
            self.cache.insert(key, history);
            self.keys.insert(key, side.clone());
        }
        &self.cache[&key]
    }
}

/// Discovers all n-ary tINDs among `tables` up to `max_arity`.
///
/// Trivial dependencies are excluded: the two sides must not be the
/// identical (table, column) list, and within one table a column may not
/// map to itself at the same position.
///
/// # Examples
///
/// ```
/// use tind_core::nary::{discover_nary, NaryInd};
/// use tind_core::TindParams;
/// use tind_model::{TableVersion, TemporalTable, Timeline};
///
/// let catalog = TemporalTable::new(
///     "catalog",
///     vec!["Game".into(), "Composer".into()],
///     vec![TableVersion { start: 0, rows: vec![
///         vec![Some(1), Some(10)],
///         vec![Some(2), Some(11)],
///     ]}],
///     9,
/// );
/// let credits = TemporalTable::new(
///     "credits",
///     vec!["Game".into(), "Composer".into()],
///     vec![TableVersion { start: 0, rows: vec![vec![Some(1), Some(10)]] }],
///     9,
/// );
/// let tables = vec![catalog, credits];
/// let results = discover_nary(&tables, Timeline::new(10), &TindParams::strict(), 2);
/// let want = NaryInd { lhs: (1, vec![0, 1]), rhs: (0, vec![0, 1]) };
/// assert!(results.levels[1].contains(&want));
/// ```
pub fn discover_nary(
    tables: &[TemporalTable],
    timeline: Timeline,
    params: &TindParams,
    max_arity: usize,
) -> NaryResults {
    let mut cache = ProjectionCache::new(tables);
    // One validation scratch (and cached weight table) for the whole
    // level-wise enumeration.
    let mut scratch = ValidationScratch::new();
    let mut levels: Vec<Vec<NaryInd>> = Vec::new();
    let mut candidates_checked: Vec<usize> = Vec::new();

    // Level 1: all unary column pairs.
    let mut unary: Vec<NaryInd> = Vec::new();
    let mut checked = 0usize;
    for (ti, t) in tables.iter().enumerate() {
        for ci in 0..t.columns().len() {
            for (tj, u) in tables.iter().enumerate() {
                for cj in 0..u.columns().len() {
                    if ti == tj && ci == cj {
                        continue;
                    }
                    let cand = NaryInd { lhs: (ti, vec![ci]), rhs: (tj, vec![cj]) };
                    checked += 1;
                    if validates(&cand, &mut cache, params, timeline, &mut scratch) {
                        unary.push(cand);
                    }
                }
            }
        }
    }
    unary.sort_unstable();
    candidates_checked.push(checked);
    levels.push(unary);

    // Levels 2..=max_arity: MIND-style generation.
    for arity in 2..=max_arity {
        let prev = &levels[arity - 2];
        if prev.is_empty() {
            break;
        }
        let prev_set: std::collections::BTreeSet<&NaryInd> = prev.iter().collect();
        let mut next: Vec<NaryInd> = Vec::new();
        let mut checked = 0usize;
        for (i, a) in prev.iter().enumerate() {
            for b in &prev[i + 1..] {
                let Some(cand) = join(a, b) else { continue };
                if !projections_valid(&cand, &prev_set) {
                    continue;
                }
                checked += 1;
                if validates(&cand, &mut cache, params, timeline, &mut scratch) {
                    next.push(cand);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        candidates_checked.push(checked);
        let stop = next.is_empty();
        levels.push(next);
        if stop {
            break;
        }
    }
    NaryResults { levels, candidates_checked }
}

/// Joins two (n−1)-ary INDs sharing tables and all but the last position
/// into an n-ary candidate (lhs columns kept strictly ascending).
fn join(a: &NaryInd, b: &NaryInd) -> Option<NaryInd> {
    if a.lhs.0 != b.lhs.0 || a.rhs.0 != b.rhs.0 {
        return None;
    }
    let n = a.lhs.1.len();
    if a.lhs.1[..n - 1] != b.lhs.1[..n - 1] || a.rhs.1[..n - 1] != b.rhs.1[..n - 1] {
        return None;
    }
    let (la, lb) = (a.lhs.1[n - 1], b.lhs.1[n - 1]);
    let (ra, rb) = (a.rhs.1[n - 1], b.rhs.1[n - 1]);
    if la >= lb || ra == rb {
        return None; // keep lhs ascending; rhs columns must be distinct
    }
    // Same-table self-mapping at one position is trivial, skip.
    let mut lhs_cols = a.lhs.1.clone();
    lhs_cols.push(lb);
    let mut rhs_cols = a.rhs.1.clone();
    rhs_cols.push(rb);
    if a.lhs.0 == a.rhs.0 && lhs_cols == rhs_cols {
        return None;
    }
    Some(NaryInd { lhs: (a.lhs.0, lhs_cols), rhs: (a.rhs.0, rhs_cols) })
}

/// Anti-monotonicity check: every (n−1)-ary projection must be in the
/// previous level.
fn projections_valid(cand: &NaryInd, prev: &std::collections::BTreeSet<&NaryInd>) -> bool {
    let n = cand.lhs.1.len();
    for skip in 0..n {
        let lhs_cols: Vec<usize> = cand
            .lhs
            .1
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, &c)| c)
            .collect();
        let rhs_cols: Vec<usize> = cand
            .rhs
            .1
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, &c)| c)
            .collect();
        let projection = NaryInd {
            lhs: (cand.lhs.0, lhs_cols),
            rhs: (cand.rhs.0, rhs_cols),
        };
        // The trivial self-projection cannot be in prev but is vacuously
        // valid.
        if projection.lhs == projection.rhs {
            continue;
        }
        if !prev.contains(&projection) {
            return false;
        }
    }
    true
}

fn validates(
    cand: &NaryInd,
    cache: &mut ProjectionCache<'_>,
    params: &TindParams,
    timeline: Timeline,
    scratch: &mut ValidationScratch,
) -> bool {
    // Clone the LHS history handle out of the cache to sidestep double
    // mutable borrows; histories are small relative to validation cost.
    let lhs = cache.get(&cand.lhs).clone();
    let rhs = cache.get(&cand.rhs);
    let table = scratch.weight_table(&params.weights, timeline);
    QueryPlan::with_table(&lhs, params, timeline, table).validate(rhs, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tind_model::{TableVersion, Timeline};

    fn v(id: u32) -> Option<u32> {
        Some(id)
    }

    /// Two tables where (Game, Composer) of `credits` ⊆ (Game, Composer)
    /// of `catalog`, but the unary parts also hold individually.
    fn tables() -> Vec<TemporalTable> {
        let catalog = TemporalTable::new(
            "catalog",
            vec!["Game".into(), "Composer".into(), "Year".into()],
            vec![TableVersion {
                start: 0,
                rows: vec![
                    vec![v(1), v(20), v(90)],
                    vec![v(2), v(21), v(91)],
                    vec![v(3), v(20), v(92)],
                ],
            }],
            19,
        );
        let credits = TemporalTable::new(
            "credits",
            vec!["Game".into(), "Composer".into()],
            vec![TableVersion {
                start: 0,
                rows: vec![vec![v(1), v(20)], vec![v(2), v(21)]],
            }],
            19,
        );
        // A decoy where the unary INDs hold but the *pairing* differs:
        // games and composers both appear in the catalog, but mismatched.
        let decoy = TemporalTable::new(
            "decoy",
            vec!["Game".into(), "Composer".into()],
            vec![TableVersion {
                start: 0,
                rows: vec![vec![v(1), v(21)], vec![v(2), v(20)]],
            }],
            19,
        );
        vec![catalog, credits, decoy]
    }

    fn timeline() -> Timeline {
        Timeline::new(20)
    }

    #[test]
    fn unary_level_finds_column_containments() {
        let t = tables();
        let r = discover_nary(&t, timeline(), &TindParams::strict(), 1);
        assert_eq!(r.levels.len(), 1);
        // credits.Game ⊆ catalog.Game must be found.
        let want = NaryInd { lhs: (1, vec![0]), rhs: (0, vec![0]) };
        assert!(r.levels[0].contains(&want), "{:?}", r.levels[0]);
        assert!(r.candidates_checked[0] > 0);
    }

    #[test]
    fn binary_level_distinguishes_true_pairings_from_decoys() {
        let t = tables();
        let r = discover_nary(&t, timeline(), &TindParams::strict(), 2);
        assert!(r.levels.len() >= 2);
        let good = NaryInd { lhs: (1, vec![0, 1]), rhs: (0, vec![0, 1]) };
        assert!(
            r.levels[1].contains(&good),
            "credits[Game, Composer] ⊆ catalog[Game, Composer] missing: {:?}",
            r.levels[1].iter().map(|i| i.describe(&t)).collect::<Vec<_>>()
        );
        // The decoy's unary columns are each contained, but the tuple
        // pairing is wrong → no binary IND into the catalog.
        let bad = NaryInd { lhs: (2, vec![0, 1]), rhs: (0, vec![0, 1]) };
        assert!(!r.levels[1].contains(&bad), "decoy pairing wrongly validated");
    }

    #[test]
    fn describe_renders_readably() {
        let t = tables();
        let ind = NaryInd { lhs: (1, vec![0, 1]), rhs: (0, vec![0, 1]) };
        assert_eq!(ind.describe(&t), "credits[Game, Composer] ⊆ catalog[Game, Composer]");
        assert_eq!(ind.arity(), 2);
    }

    #[test]
    fn anti_monotone_generation_stops_when_level_empties() {
        let t = tables();
        let r = discover_nary(&t, timeline(), &TindParams::strict(), 5);
        // With 2-column LHS tables, level 3 cannot have candidates.
        assert!(r.levels.len() <= 3);
        for level in &r.levels {
            for ind in level {
                assert!(ind.lhs.1.windows(2).all(|w| w[0] < w[1]), "lhs not ascending: {ind:?}");
            }
        }
    }

    #[test]
    fn temporal_relaxation_applies_to_nary() {
        // The pairing breaks for 3 days mid-history, then recovers.
        let lhs = TemporalTable::new(
            "lhs",
            vec!["A".into(), "B".into()],
            vec![
                TableVersion { start: 0, rows: vec![vec![v(1), v(2)]] },
                TableVersion { start: 8, rows: vec![vec![v(1), v(99)]] },
                TableVersion { start: 11, rows: vec![vec![v(1), v(2)]] },
            ],
            19,
        );
        let rhs = TemporalTable::new(
            "rhs",
            vec!["A".into(), "B".into()],
            vec![TableVersion { start: 0, rows: vec![vec![v(1), v(2)], vec![v(3), v(4)]] }],
            19,
        );
        let t = vec![lhs, rhs];
        let strict = discover_nary(&t, timeline(), &TindParams::strict(), 2);
        let want = NaryInd { lhs: (0, vec![0, 1]), rhs: (1, vec![0, 1]) };
        assert!(!strict.levels.get(1).is_some_and(|l| l.contains(&want)));
        let relaxed = discover_nary(
            &t,
            timeline(),
            &TindParams::weighted(3.0, 0, tind_model::WeightFn::constant_one()),
            2,
        );
        assert!(
            relaxed.levels[1].contains(&want),
            "ε = 3 must absorb the 3-day pairing error: {:?}",
            relaxed.levels[1]
        );
    }
}
