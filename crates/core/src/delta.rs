//! Semi-naive incremental maintenance of a [`TindIndex`] (live updates).
//!
//! The matrices of [`crate::index`] are built batch-style: every new batch
//! of revisions used to mean a cold rebuild. This module updates an
//! existing index **in place** from a page-granular delta and re-derives
//! only the dependency pairs the delta can have changed — the semi-naive
//! pattern of Datalog evaluation applied to tIND discovery.
//!
//! It differs from [`crate::incremental`] (the earlier main+delta
//! side-buffer, which answers queries by consulting a base index plus a
//! brute-forced overlay): here the delta is folded *into* the matrices, so
//! post-update searches run the full four-stage pipeline at full speed and
//! the updated index can be re-persisted.
//!
//! # Why replace, not OR
//!
//! Bloom inserts are monotone, which suggests OR-ing new values into the
//! touched columns. That is sound for `M_T` (value universes only grow)
//! but **unsound** for the slice matrices and `M_R`: appending a version
//! truncates the validity of its predecessor, so `A[I^δ]` can *shrink* for
//! a touched attribute, and `R_{ε,w}(A)` can change arbitrarily. A stale
//! extra bit in a slice column hides a genuine violation only until stage
//! 3/4 re-checks it (slow, not wrong) — but a stale bit in `M_R` wrongly
//! *keeps* reverse candidates, and a missing recompute wrongly *prunes*
//! forward ones. So [`TindIndex::apply_delta`] recomputes every touched
//! 64-column block **exactly** from the new histories and swaps it in with
//! [`tind_bloom::BloomMatrix::replace_strip`]; untouched blocks are never
//! read or written.
//!
//! Because strip contents are a pure function of `(config, history)` and
//! the forward-default slice selection consumes only the timeline and the
//! seeded RNG (never the data), the incrementally maintained index is
//! **byte-identical** (`persist::encode_index`) to a cold build over the
//! merged dataset. The weighted-random reverse strategy sizes slices from
//! the data, so its intervals may drift from what a cold build would pick;
//! results stay correct for the intervals actually held (every pruning
//! stage reads interval and matrix together), and [`TindIndex::compact`]
//! realigns byte-identity when wanted.
//!
//! # Semi-naive pair maintenance
//!
//! Validation of a pair `(Q, A)` depends only on the two histories, the
//! timeline, and `(ε, δ, w)`. A delta therefore partitions the all-pairs
//! result: pairs with **neither** side touched are still valid verbatim;
//! pairs with a touched side are recomputed — touched queries by a full
//! search, untouched queries by a search whose candidate set is restricted
//! to the touched attributes ([`refresh_pairs`]). Both reuse the standard
//! pipeline, so the refreshed set equals a cold all-pairs run (the
//! CALM-style argument is spelled out in DESIGN.md).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use tind_bloom::{BitVec, BloomColumnStrip};
use tind_model::{AttrId, Dataset, ValueSet};

use crate::index::TindIndex;
use crate::params::TindParams;
use crate::required::required_values;
use crate::search::{finish_search, initial_candidates, record_search_metrics, SearchOptions};
use crate::validate::ValidationScratch;

/// Errors from computing or applying a dataset delta.
#[derive(Debug)]
pub enum DeltaError {
    /// The new dataset is not a valid successor of the old one (timeline
    /// change, renamed or dropped attribute id, re-interned dictionary).
    Incompatible(String),
    /// The delta touches an attribute whose index columns were lost with a
    /// quarantined store shard. Applying it would silently diverge the
    /// in-memory index from the store manifest digest; repair first.
    Masked {
        /// The touched attribute.
        attr: AttrId,
        /// Its name (for the operator-facing message).
        name: String,
        /// The quarantined shard holding its columns.
        shard: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Incompatible(msg) => write!(f, "incompatible delta: {msg}"),
            DeltaError::Masked { attr, name, shard } => write!(
                f,
                "delta touches attribute '{name}' (id {attr}) whose index columns live in \
                 quarantined store shard {shard}; run `tind store repair` before applying updates"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

fn incompatible(msg: impl Into<String>) -> DeltaError {
    DeltaError::Incompatible(msg.into())
}

/// A validated transition `old → new` between two dataset snapshots: the
/// merged dataset plus the set of attribute ids whose histories changed
/// (including every appended attribute).
///
/// Construction via [`DatasetDelta::diff`] enforces the successor
/// contract that makes in-place maintenance sound: same timeline, old ids
/// keep their names, and the dictionary only ever extends (Bloom hashes
/// are id-stable, so re-interning would scramble every column).
#[derive(Debug, Clone)]
pub struct DatasetDelta {
    new_dataset: Arc<Dataset>,
    touched: Vec<AttrId>,
    old_len: usize,
}

impl DatasetDelta {
    /// Diffs `new` against `old`, returning the touched-attribute set.
    ///
    /// # Errors
    /// [`DeltaError::Incompatible`] if `new` is not a successor of `old`.
    pub fn diff(old: &Dataset, new: Arc<Dataset>) -> Result<Self, DeltaError> {
        if old.timeline() != new.timeline() {
            return Err(incompatible(format!(
                "timeline changed from {} to {} timestamps; deltas may only add revisions \
                 within the indexed timeline",
                old.timeline().len(),
                new.timeline().len()
            )));
        }
        if new.len() < old.len() {
            return Err(incompatible(format!(
                "dataset shrank from {} to {} attributes; attribute ids must stay stable",
                old.len(),
                new.len()
            )));
        }
        let (od, nd) = (old.dictionary(), new.dictionary());
        if nd.len() < od.len() {
            return Err(incompatible(format!(
                "dictionary shrank from {} to {} values; value ids must stay stable",
                od.len(),
                nd.len()
            )));
        }
        for (id, s) in od.iter() {
            if nd.resolve(id) != s {
                return Err(incompatible(format!(
                    "value id {id} changed from '{s}' to '{}'; the dictionary may only be \
                     extended, never re-interned",
                    nd.resolve(id)
                )));
            }
        }
        let mut touched = Vec::new();
        for (id, hist) in old.iter() {
            let new_hist = new.attribute(id);
            if new_hist.name() != hist.name() {
                return Err(incompatible(format!(
                    "attribute id {id} renamed from '{}' to '{}'; ids must keep their names",
                    hist.name(),
                    new_hist.name()
                )));
            }
            if new_hist != hist {
                touched.push(id);
            }
        }
        touched.extend(old.len() as AttrId..new.len() as AttrId);
        Ok(DatasetDelta { old_len: old.len(), new_dataset: new, touched })
    }

    /// The merged dataset the delta transitions to.
    pub fn new_dataset(&self) -> &Arc<Dataset> {
        &self.new_dataset
    }

    /// Ids of attributes whose histories changed, ascending; appended
    /// attributes are always included.
    pub fn touched(&self) -> &[AttrId] {
        &self.touched
    }

    /// `|D|` of the old snapshot the delta was diffed against.
    pub fn old_len(&self) -> usize {
        self.old_len
    }

    /// Number of appended attributes.
    pub fn new_attrs(&self) -> usize {
        self.new_dataset.len() - self.old_len
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }
}

/// What [`TindIndex::apply_delta`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Attributes whose histories changed (including appended ones).
    pub touched_attrs: usize,
    /// Attributes appended by the delta.
    pub new_attrs: usize,
    /// 64-column blocks recomputed and replaced, per matrix.
    pub blocks_rewritten: usize,
    /// Matrices updated per rewritten block (`M_T` + slices + `M_R`).
    pub matrices_updated: usize,
    /// Whether the matrices grew new columns.
    pub grew: bool,
}

impl TindIndex {
    /// Folds `delta` into the index in place: touched 64-column blocks of
    /// `M_T`, every slice matrix, and `M_R` (when present) are recomputed
    /// exactly from the new histories and swapped in; value universes are
    /// replaced; matrices grow columns for appended attributes. Untouched
    /// blocks are not read or written.
    ///
    /// Slice intervals are **kept** — see the module docs for when that
    /// preserves byte-identity with a cold rebuild and when
    /// [`TindIndex::compact`] is needed.
    ///
    /// # Errors
    /// * [`DeltaError::Masked`] if a touched attribute's columns belong to
    ///   a quarantined store shard (repair first; updating around the hole
    ///   would diverge from the manifest digest).
    /// * [`DeltaError::Incompatible`] if the delta was diffed against a
    ///   different snapshot than this index holds, or if it would grow a
    ///   degraded index.
    pub fn apply_delta(&mut self, delta: &DatasetDelta) -> Result<DeltaReport, DeltaError> {
        let _span = tind_obs::span("core.delta.apply");
        let old_len = delta.old_len();
        if self.dataset.len() != old_len {
            return Err(incompatible(format!(
                "delta was diffed against a {old_len}-attribute snapshot but the index holds \
                 {} attributes",
                self.dataset.len()
            )));
        }
        if self.dataset.timeline() != delta.new_dataset.timeline() {
            return Err(incompatible("delta timeline differs from the indexed timeline"));
        }
        for &id in delta.touched() {
            if (id as usize) < old_len
                && self.dataset.attribute(id).name() != delta.new_dataset.attribute(id).name()
            {
                return Err(incompatible(format!(
                    "attribute id {id} is '{}' in the index but '{}' in the delta; the delta \
                     was diffed against a different snapshot",
                    self.dataset.attribute(id).name(),
                    delta.new_dataset.attribute(id).name()
                )));
            }
        }
        if let Some(mask) = self.masked.clone() {
            for &id in delta.touched() {
                if (id as usize) < old_len && mask.is_masked(id) {
                    let shard = mask
                        .quarantined()
                        .iter()
                        .find(|s| (s.attr_start..s.attr_end).contains(&id))
                        .map_or(usize::MAX, |s| s.shard);
                    return Err(DeltaError::Masked {
                        attr: id,
                        name: self.dataset.attribute(id).name().to_owned(),
                        shard,
                    });
                }
            }
            if delta.new_attrs() > 0 {
                return Err(incompatible(format!(
                    "refusing to grow a degraded index ({} quarantined shards) by {} \
                     attributes; run `tind store repair` first",
                    mask.quarantined().len(),
                    delta.new_attrs()
                )));
            }
        }

        let new = Arc::clone(delta.new_dataset());
        let new_len = new.len();
        let timeline = new.timeline();
        let grew = new_len > old_len;
        if grew {
            self.m_t.grow_cols(new_len);
            for slice in &mut self.time_slices {
                slice.matrix.grow_cols(new_len);
            }
            if let Some(mr) = self.m_r.as_mut() {
                mr.grow_cols(new_len);
            }
            self.universes.resize(new_len, ValueSet::new());
        }

        let mut touched_bits = BitVec::zeros(new_len);
        for &id in delta.touched() {
            touched_bits.set(id as usize);
        }
        let blocks: BTreeSet<usize> = delta.touched().iter().map(|&id| id as usize / 64).collect();
        let sizing = self.m_r.is_some().then(|| {
            TindParams::weighted(
                self.config.slices.sizing_eps,
                0,
                self.config.slices.sizing_weights.clone(),
            )
        });

        // One strip buffer reused across every (matrix, block) pair — the
        // same work unit as the parallel builder, replayed sequentially
        // (delta batches touch few blocks; rendering is the cheap part).
        let mut strip = BloomColumnStrip::new(self.config.m, self.config.k_hashes);
        for &block in &blocks {
            let lo = block * 64;
            let hi = (lo + 64).min(new_len);

            strip.clear();
            for id in lo..hi {
                // Untouched lanes reuse the cached exact universe (equal
                // by construction); touched lanes recompute it.
                let universe = if touched_bits.get(id) {
                    new.attribute(id as AttrId).value_universe()
                } else {
                    std::mem::take(&mut self.universes[id])
                };
                strip.insert_lane(id - lo, &universe);
                self.universes[id] = universe;
            }
            self.m_t.replace_strip(block, &strip);

            for slice in &mut self.time_slices {
                strip.clear();
                for id in lo..hi {
                    let values = new.attribute(id as AttrId).values_in(slice.expanded);
                    if !values.is_empty() {
                        strip.insert_lane(id - lo, &values);
                    }
                }
                slice.matrix.replace_strip(block, &strip);
            }

            if let Some(mr) = self.m_r.as_mut() {
                let sizing = sizing.as_ref().expect("M_R implies sizing params");
                strip.clear();
                for id in lo..hi {
                    let req = required_values(new.attribute(id as AttrId), sizing, timeline);
                    if !req.is_empty() {
                        strip.insert_lane(id - lo, &req);
                    }
                }
                mr.replace_strip(block, &strip);
            }
        }
        self.dataset = new;

        let matrices_updated = 1 + self.time_slices.len() + usize::from(self.m_r.is_some());
        tind_obs::counter("delta.applied").incr();
        tind_obs::counter("delta.touched_attrs").add(delta.touched().len() as u64);
        tind_obs::counter("delta.blocks_rewritten").add(blocks.len() as u64);
        Ok(DeltaReport {
            touched_attrs: delta.touched().len(),
            new_attrs: delta.new_attrs(),
            blocks_rewritten: blocks.len(),
            matrices_updated,
            grew,
        })
    }

    /// Cold-rebuilds the index from its current dataset and configuration
    /// — the compaction step after a run of [`TindIndex::apply_delta`]
    /// calls. Realigns slice intervals with what a from-scratch build
    /// would select (relevant for data-dependent slice strategies) and
    /// drops any shard mask; the result is byte-identical
    /// (`persist::encode_index`) to an independent cold build.
    pub fn compact(&self) -> TindIndex {
        let _span = tind_obs::span("core.delta.compact");
        tind_obs::counter("delta.compactions").incr();
        TindIndex::build(Arc::clone(&self.dataset), self.config.clone())
    }
}

/// What [`refresh_pairs`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefreshReport {
    /// Pairs removed because a side was touched (they are re-derived).
    pub pairs_dropped: usize,
    /// Pairs inserted by the re-derivation.
    pub pairs_added: usize,
    /// Touched queries re-searched against the full candidate set.
    pub full_queries: usize,
    /// Untouched queries searched with candidates restricted to the
    /// touched attributes.
    pub restricted_queries: usize,
    /// Worker threads used.
    pub threads_used: usize,
}

/// One search with an optional candidate restriction — the standard
/// four-stage pipeline, seeded with `initial ∧ restrict`.
fn run_restricted(
    index: &TindIndex,
    q: AttrId,
    restrict: Option<&BitVec>,
    params: &TindParams,
    scratch: &mut ValidationScratch,
) -> Vec<AttrId> {
    let hist = index.dataset().attribute(q);
    let mut candidates = initial_candidates(index, Some(q));
    if let Some(r) = restrict {
        candidates.and_assign(r);
        if candidates.is_zero() {
            return Vec::new();
        }
    }
    let required = required_values(hist, params, index.dataset().timeline());
    if !required.is_empty() {
        let qf = index.m_t().query_filter(&required);
        index.m_t().narrow_to_supersets(&qf, &mut candidates);
    }
    let outcome = finish_search(
        index,
        hist,
        Some(q),
        params,
        &SearchOptions::default(),
        &required,
        candidates,
        scratch,
        None,
        None,
    );
    record_search_metrics(&outcome.stats);
    outcome.results
}

/// Semi-naive maintenance of an all-pairs result set across a delta.
///
/// `pairs` must hold the valid `(query, candidate)` pairs of the
/// **pre-delta** dataset under the same `params`; `index` must already
/// have the delta applied; `touched` is [`DatasetDelta::touched`]. On
/// return, `pairs` equals what a cold all-pairs discovery over the merged
/// dataset would produce:
///
/// * pairs with neither side touched are kept verbatim (validation is a
///   pure function of the two unchanged histories);
/// * pairs with a touched side are dropped and re-derived — touched
///   queries by a full search, untouched queries by a search restricted to
///   touched candidates (pruning stages only ever *remove* candidates, so
///   restricting the seed set cannot create false positives, and
///   validation is authoritative for everything that survives).
///
/// The result is independent of `threads` (pair-set union is
/// order-insensitive).
pub fn refresh_pairs(
    index: &TindIndex,
    pairs: &mut BTreeSet<(AttrId, AttrId)>,
    touched: &[AttrId],
    params: &TindParams,
    threads: usize,
) -> RefreshReport {
    let _span = tind_obs::span("core.delta.refresh");
    let num_attrs = index.dataset().len();
    let mut touched_bits = BitVec::zeros(num_attrs);
    for &id in touched {
        touched_bits.set(id as usize);
    }

    let before = pairs.len();
    pairs.retain(|&(q, a)| !touched_bits.get(q as usize) && !touched_bits.get(a as usize));
    let pairs_dropped = before - pairs.len();

    let queries: Vec<AttrId> = (0..num_attrs as AttrId).filter(|&q| !index.is_masked(q)).collect();
    let full_queries = queries.iter().filter(|&&q| touched_bits.get(q as usize)).count();
    let restricted_queries = queries.len() - full_queries;
    let threads_used = threads.max(1).min(queries.len().max(1));

    let cursor = AtomicUsize::new(0);
    let found: Mutex<Vec<(AttrId, Vec<AttrId>)>> = Mutex::new(Vec::new());
    let run_worker = || {
        let mut scratch = ValidationScratch::new();
        let mut local: Vec<(AttrId, Vec<AttrId>)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= queries.len() {
                break;
            }
            let q = queries[i];
            let restrict = (!touched_bits.get(q as usize)).then_some(&touched_bits);
            let results = run_restricted(index, q, restrict, params, &mut scratch);
            if !results.is_empty() {
                local.push((q, results));
            }
        }
        found.lock().extend(local);
    };
    if threads_used <= 1 {
        run_worker();
    } else {
        crossbeam::scope(|scope| {
            for _ in 0..threads_used {
                scope.spawn(|_| run_worker());
            }
        })
        .expect("delta refresh worker panicked");
    }

    let mut pairs_added = 0usize;
    for (q, results) in found.into_inner() {
        for a in results {
            if pairs.insert((q, a)) {
                pairs_added += 1;
            }
        }
    }
    tind_obs::counter("delta.pairs_dropped").add(pairs_dropped as u64);
    tind_obs::counter("delta.pairs_added").add(pairs_added as u64);
    RefreshReport { pairs_dropped, pairs_added, full_queries, restricted_queries, threads_used }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allpairs::{discover_all_pairs, AllPairsOptions};
    use crate::index::{IndexConfig, MaskedShard, ShardMask};
    use crate::persist::encode_index;
    use tind_model::{DatasetBuilder, Timeline};

    /// Base dataset: 70 attributes (crosses a 64-column block boundary)
    /// over interned ids with overlapping value sets.
    fn base_dataset() -> Dataset {
        let mut b = DatasetBuilder::new(Timeline::new(40));
        for i in 0..70u32 {
            let vals: Vec<String> = (0..=(i % 5)).map(|v| format!("v{}", (i + v) % 9)).collect();
            let later: Vec<String> = vals.iter().take(1 + (i as usize) % 3).cloned().collect();
            b.add_attribute(
                &format!("attr-{i}"),
                &[(0, vals.clone()), (10 + (i % 7), later)],
                39,
            );
        }
        b.build()
    }

    /// Applies an update to `base`: rewrite some existing histories and
    /// append `appended` new attributes.
    fn updated_dataset(base: &Dataset, rewrite: &[u32], appended: usize) -> Dataset {
        let mut b = base.clone().into_builder();
        let names: Vec<String> =
            rewrite.iter().map(|&id| base.attribute(id).name().to_owned()).collect();
        for name in &names {
            let mut h = tind_model::HistoryBuilder::new(name);
            let v0 = b.dictionary_mut().intern("v1");
            let fresh = b.dictionary_mut().intern("fresh-value");
            h.push(0, vec![v0]);
            h.push(20, vec![v0, fresh]);
            b.upsert_history(h.finish(39));
        }
        for n in 0..appended {
            let mut h = tind_model::HistoryBuilder::new(format!("appended-{n}"));
            let v = b.dictionary_mut().intern("v2");
            h.push(5, vec![v]);
            b.upsert_history(h.finish(39));
        }
        b.build()
    }

    fn config() -> IndexConfig {
        IndexConfig { m: 256, ..IndexConfig::default() }
    }

    #[test]
    fn diff_finds_touched_and_appended_attributes() {
        let base = base_dataset();
        let new = Arc::new(updated_dataset(&base, &[3, 65], 2));
        let delta = DatasetDelta::diff(&base, Arc::clone(&new)).expect("valid successor");
        assert_eq!(delta.touched(), &[3, 65, 70, 71]);
        assert_eq!(delta.new_attrs(), 2);
        assert!(!delta.is_empty());

        let noop = DatasetDelta::diff(&base, Arc::new(base.clone())).expect("identity");
        assert!(noop.is_empty());
    }

    #[test]
    fn diff_rejects_non_successors() {
        let base = base_dataset();
        let other_timeline = DatasetBuilder::new(Timeline::new(10)).build();
        let err = DatasetDelta::diff(&base, Arc::new(other_timeline)).unwrap_err();
        assert!(err.to_string().contains("timeline"), "{err}");

        let mut shrunk = base.clone();
        shrunk.retain(|h| h.name() != "attr-0");
        let err = DatasetDelta::diff(&base, Arc::new(shrunk)).unwrap_err();
        assert!(err.to_string().contains("ids must stay stable"), "{err}");
    }

    #[test]
    fn apply_delta_is_byte_identical_to_cold_rebuild() {
        let base = Arc::new(base_dataset());
        // Touch both blocks, grow into the ragged block, and cross it.
        for (rewrite, appended) in
            [(vec![0u32, 5], 0usize), (vec![69], 3), (vec![7, 64], 60), (vec![], 1)]
        {
            let new = Arc::new(updated_dataset(&base, &rewrite, appended));
            let delta = DatasetDelta::diff(&base, Arc::clone(&new)).expect("valid successor");
            for cfg in [config(), IndexConfig { build_reverse: true, ..config() }] {
                let mut index = TindIndex::build(Arc::clone(&base), cfg.clone());
                let report = index.apply_delta(&delta).expect("delta applies");
                assert_eq!(report.touched_attrs, delta.touched().len());
                assert_eq!(report.grew, appended > 0);
                let cold = TindIndex::build(Arc::clone(&new), cfg);
                assert_eq!(
                    encode_index(&index),
                    encode_index(&cold),
                    "incremental index must equal cold rebuild (rewrite={rewrite:?}, \
                     appended={appended})"
                );
                // compact() of the incrementally maintained index equals
                // the cold build too.
                assert_eq!(encode_index(&index.compact()), encode_index(&cold));
            }
        }
    }

    #[test]
    fn apply_delta_rejects_wrong_snapshot() {
        let base = Arc::new(base_dataset());
        let step1 = Arc::new(updated_dataset(&base, &[1], 1));
        let delta1 = DatasetDelta::diff(&base, Arc::clone(&step1)).expect("diff");
        let mut index = TindIndex::build(Arc::clone(&base), config());
        index.apply_delta(&delta1).expect("first delta applies");
        // Re-applying the same delta: the index now holds 71 attributes.
        let err = index.apply_delta(&delta1).unwrap_err();
        assert!(err.to_string().contains("snapshot"), "{err}");
    }

    #[test]
    fn apply_delta_refuses_quarantined_attributes() {
        let base = Arc::new(base_dataset());
        let new = Arc::new(updated_dataset(&base, &[65], 0));
        let delta = DatasetDelta::diff(&base, Arc::clone(&new)).expect("diff");
        let mut index = TindIndex::build(Arc::clone(&base), config());
        index.masked = Some(Arc::new(ShardMask::new(
            base.len(),
            2,
            vec![MaskedShard { shard: 1, attr_start: 64, attr_end: 70 }],
        )));
        let err = index.apply_delta(&delta).unwrap_err();
        match &err {
            DeltaError::Masked { attr, shard, .. } => {
                assert_eq!((*attr, *shard), (65, 1));
            }
            other => panic!("expected Masked, got {other:?}"),
        }
        assert!(err.to_string().contains("tind store repair"), "{err}");

        // Growth while degraded is refused even when no masked attribute
        // is touched.
        let grown = Arc::new(updated_dataset(&base, &[], 2));
        let delta = DatasetDelta::diff(&base, grown).expect("diff");
        let err = index.apply_delta(&delta).unwrap_err();
        assert!(err.to_string().contains("degraded"), "{err}");

        // Deltas touching only live attributes still apply.
        let live = Arc::new(updated_dataset(&base, &[2], 0));
        let delta = DatasetDelta::diff(&base, live).expect("diff");
        index.apply_delta(&delta).expect("live-shard delta applies");
    }

    #[test]
    fn refresh_pairs_matches_cold_all_pairs_at_any_thread_count() {
        let params = TindParams::paper_default();
        let base = Arc::new(base_dataset());
        let base_index = TindIndex::build(Arc::clone(&base), config());
        let cold_pairs = |index: &TindIndex| -> BTreeSet<(AttrId, AttrId)> {
            discover_all_pairs(index, &params, &AllPairsOptions::default())
                .expect("all-pairs discovery")
                .pairs
                .into_iter()
                .collect()
        };
        let mut pairs = cold_pairs(&base_index);

        let new = Arc::new(updated_dataset(&base, &[3, 65, 69], 2));
        let delta = DatasetDelta::diff(&base, Arc::clone(&new)).expect("diff");
        let mut index = base_index.clone();
        index.apply_delta(&delta).expect("applies");
        let expected = cold_pairs(&index);

        for threads in [1usize, 4] {
            let mut incremental = pairs.clone();
            let report =
                refresh_pairs(&index, &mut incremental, delta.touched(), &params, threads);
            assert_eq!(incremental, expected, "threads={threads}");
            assert_eq!(report.full_queries, delta.touched().len());
        }
        pairs = expected;
        assert!(!pairs.is_empty(), "oracle should not be vacuous");
    }
}
