//! Cooperative cancellation for long-running discovery.
//!
//! A multi-hour all-pairs run (§5.2 reports ~3 h for 1.3 M attributes)
//! must be stoppable without losing work. [`CancelToken`] is a cheap,
//! clonable flag that workers poll at *query* boundaries — the unit of
//! work after which a checkpoint can represent progress exactly — so a
//! cancelled run always stops in a resumable state.
//!
//! The token latches a [`CancelReason`] the first time any stop cause is
//! observed: an explicit [`CancelToken::cancel`], an expired deadline
//! attached via [`CancelToken::with_deadline`], or a process signal. The
//! latch is a single compare-and-swap cell, so "why we stopped" has
//! exactly one answer even when a deadline expires in the same instant an
//! operator hits Ctrl-C — callers that must account 504-vs-interrupt
//! exactly (checkpointing, the serve daemon) read [`CancelToken::reason`]
//! and get a deterministic verdict.
//!
//! [`CancelToken::install_ctrl_c`] wires the process SIGINT handler to a
//! token (hand-rolled `signal(2)` binding; the workspace adds no external
//! dependencies). The first Ctrl-C requests a graceful, checkpointing
//! stop; a second Ctrl-C falls back to the default disposition and kills
//! the process for operators who really mean it.
//! [`CancelToken::install_terminate`] additionally listens for SIGTERM —
//! the shape a supervised daemon (`tind serve`) is told to shut down in.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a [`CancelToken`] tripped. The first observed cause wins and is
/// latched for the lifetime of the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Explicit cancellation: `cancel()`, Ctrl-C / SIGTERM.
    Interrupt = 1,
    /// The deadline attached with [`CancelToken::with_deadline`] passed.
    Deadline = 2,
    /// A graceful drain asked in-flight work to stop (serve shutdown).
    Drain = 3,
}

const LIVE: u8 = 0;

impl CancelReason {
    fn from_u8(raw: u8) -> Option<CancelReason> {
        match raw {
            1 => Some(CancelReason::Interrupt),
            2 => Some(CancelReason::Deadline),
            3 => Some(CancelReason::Drain),
            _ => None,
        }
    }

    /// Stable lower-case label for logs and JSON payloads.
    pub fn label(self) -> &'static str {
        match self {
            CancelReason::Interrupt => "interrupt",
            CancelReason::Deadline => "deadline",
            CancelReason::Drain => "drain",
        }
    }
}

/// A clonable cancellation flag shared between a controller (signal
/// handler, deadline watcher, test harness) and discovery workers.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    /// `LIVE` (0) until the first cause latches its `CancelReason`.
    reason: Arc<AtomicU8>,
    /// Deadline this handle checks on `is_cancelled`. Per-handle (not
    /// shared through clones made *before* `with_deadline`), but expiry
    /// latches into the shared `reason` cell so every clone agrees.
    deadline: Option<Instant>,
    /// Additional static flag this token mirrors; set only for the
    /// process signal token, whose handler can touch nothing but a
    /// `static AtomicBool`.
    signal_flag: Option<&'static AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (an operator-style interrupt). Idempotent;
    /// safe from any thread. An earlier latched reason is preserved.
    pub fn cancel(&self) {
        self.cancel_with(CancelReason::Interrupt);
    }

    /// Requests cancellation with an explicit reason. The first reason to
    /// latch wins; later calls (and later deadline expiry) are no-ops.
    pub fn cancel_with(&self, reason: CancelReason) {
        let _ = self.reason.compare_exchange(
            LIVE,
            reason as u8,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Whether cancellation has been requested (programmatically, by an
    /// expired deadline, or — for signal tokens — by SIGINT/SIGTERM).
    ///
    /// Polling is what latches passive causes: a pending signal or an
    /// expired deadline is converted into the shared reason here, so the
    /// first poll to observe a cause fixes the verdict for all clones.
    pub fn is_cancelled(&self) -> bool {
        if self.reason.load(Ordering::Relaxed) != LIVE {
            return true;
        }
        if self.signal_flag.is_some_and(|f| f.load(Ordering::Relaxed)) {
            self.cancel_with(CancelReason::Interrupt);
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.cancel_with(CancelReason::Deadline);
            return true;
        }
        false
    }

    /// The latched reason, if the token has tripped. `None` while live.
    ///
    /// Passive causes (signal, deadline) latch on [`is_cancelled`] polls;
    /// callers that stopped because `is_cancelled()` returned true can
    /// rely on `reason()` being `Some` afterwards.
    ///
    /// [`is_cancelled`]: CancelToken::is_cancelled
    pub fn reason(&self) -> Option<CancelReason> {
        CancelReason::from_u8(self.reason.load(Ordering::Relaxed))
    }

    /// Returns this token with a deadline attached: `is_cancelled`
    /// reports true (latching [`CancelReason::Deadline`]) once `deadline`
    /// passes. The latch cell stays shared with the original token and
    /// all clones, so an explicit `cancel()` racing the expiry still
    /// yields a single deterministic reason.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(match self.deadline {
            Some(existing) => existing.min(deadline),
            None => deadline,
        });
        self
    }

    /// The deadline attached to this handle, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Returns a token tripped by Ctrl-C (SIGINT), installing the process
    /// signal handler on first use. Subsequent calls return tokens that
    /// observe the same signal flag.
    ///
    /// On non-Unix platforms the returned token is never tripped by a
    /// signal but can still be cancelled programmatically.
    pub fn install_ctrl_c() -> CancelToken {
        CancelToken {
            reason: Arc::new(AtomicU8::new(LIVE)),
            deadline: None,
            signal_flag: Some(signal_flag(false)),
        }
    }

    /// Like [`install_ctrl_c`], but the token also trips on SIGTERM —
    /// the conventional "please drain" signal for a supervised daemon.
    /// Both signals restore their default disposition after the first
    /// delivery, so a repeat signal terminates a stuck process.
    ///
    /// [`install_ctrl_c`]: CancelToken::install_ctrl_c
    pub fn install_terminate() -> CancelToken {
        CancelToken {
            reason: Arc::new(AtomicU8::new(LIVE)),
            deadline: None,
            signal_flag: Some(signal_flag(true)),
        }
    }
}

/// The static flag set by the signal handler; installing is idempotent.
/// `with_sigterm` widens the installation to SIGTERM as well (once
/// widened it stays widened — both dispositions reset after first use).
#[cfg(unix)]
fn signal_flag(with_sigterm: bool) -> &'static AtomicBool {
    use std::sync::OnceLock;

    static FLAG: AtomicBool = AtomicBool::new(false);
    static INT_INSTALLED: OnceLock<()> = OnceLock::new();
    static TERM_INSTALLED: OnceLock<()> = OnceLock::new();

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        // POSIX signal(2); libc is always linked on unix targets.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(sig: i32) {
        // Only async-signal-safe operations: an atomic store, and
        // restoring the default disposition so a second signal terminates
        // the process even if the graceful path is stuck.
        FLAG.store(true, Ordering::Relaxed);
        unsafe {
            signal(sig, SIG_DFL);
        }
    }

    INT_INSTALLED.get_or_init(|| unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
    });
    if with_sigterm {
        TERM_INSTALLED.get_or_init(|| unsafe {
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        });
    }
    &FLAG
}

#[cfg(not(unix))]
fn signal_flag(_with_sigterm: bool) -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    &FLAG
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled(), "idempotent");
        assert_eq!(t.reason(), Some(CancelReason::Interrupt));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Interrupt));
    }

    #[test]
    fn first_reason_wins() {
        let t = CancelToken::new();
        t.cancel_with(CancelReason::Drain);
        t.cancel();
        t.cancel_with(CancelReason::Deadline);
        assert_eq!(t.reason(), Some(CancelReason::Drain));
    }

    #[test]
    fn deadline_latches_deterministically() {
        let t = CancelToken::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        // An explicit cancel after the deadline latched does not rewrite
        // history.
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn explicit_cancel_beats_an_expired_but_unpolled_deadline() {
        // The deadline has passed in wall-clock terms, but nothing polled
        // the token yet; an explicit cancel that latches first is the
        // single source of truth.
        let t = CancelToken::new().with_deadline(Instant::now() - Duration::from_millis(1));
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Interrupt));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::new().with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn with_deadline_keeps_the_earlier_deadline() {
        let near = Instant::now() - Duration::from_millis(1);
        let far = Instant::now() + Duration::from_secs(3600);
        let t = CancelToken::new().with_deadline(near).with_deadline(far);
        assert!(t.is_cancelled(), "earlier deadline governs");
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn deadline_clone_shares_the_latch_with_its_parent() {
        let parent = CancelToken::new();
        let child = parent.clone().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(child.is_cancelled());
        // The parent handle has no deadline of its own but sees the
        // latched verdict.
        assert!(parent.is_cancelled());
        assert_eq!(parent.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn ctrl_c_tokens_observe_the_shared_signal_flag() {
        let a = CancelToken::install_ctrl_c();
        let b = CancelToken::install_ctrl_c();
        assert!(!a.is_cancelled());
        // Simulate what the handler does.
        signal_flag(false).store(true, Ordering::Relaxed);
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        assert_eq!(a.reason(), Some(CancelReason::Interrupt));
        signal_flag(false).store(false, Ordering::Relaxed);
        // `a` polled while the flag was up, so its verdict is latched…
        assert!(a.is_cancelled(), "signal observation is sticky");
        // …but a token that never saw the flag stays live.
        let c = CancelToken::install_ctrl_c();
        assert!(!c.is_cancelled());
    }
}
