//! Cooperative cancellation for long-running discovery.
//!
//! A multi-hour all-pairs run (§5.2 reports ~3 h for 1.3 M attributes)
//! must be stoppable without losing work. [`CancelToken`] is a cheap,
//! clonable flag that workers poll at *query* boundaries — the unit of
//! work after which a checkpoint can represent progress exactly — so a
//! cancelled run always stops in a resumable state.
//!
//! [`CancelToken::install_ctrl_c`] wires the process SIGINT handler to a
//! token (hand-rolled `signal(2)` binding; the workspace adds no external
//! dependencies). The first Ctrl-C requests a graceful, checkpointing
//! stop; a second Ctrl-C falls back to the default disposition and kills
//! the process for operators who really mean it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A clonable cancellation flag shared between a controller (signal
/// handler, deadline watcher, test harness) and discovery workers.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Additional static flag this token mirrors; set only for the
    /// process Ctrl-C token, whose signal handler can touch nothing but a
    /// `static AtomicBool`.
    signal_flag: Option<&'static AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (programmatically or, for
    /// the Ctrl-C token, by SIGINT).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || self.signal_flag.is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Returns a token tripped by Ctrl-C (SIGINT), installing the process
    /// signal handler on first use. Subsequent calls return tokens that
    /// observe the same signal flag.
    ///
    /// On non-Unix platforms the returned token is never tripped by a
    /// signal but can still be cancelled programmatically.
    pub fn install_ctrl_c() -> CancelToken {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), signal_flag: Some(sigint_flag()) }
    }
}

/// The static flag set by the SIGINT handler; installing is idempotent.
#[cfg(unix)]
fn sigint_flag() -> &'static AtomicBool {
    use std::sync::OnceLock;

    static FLAG: AtomicBool = AtomicBool::new(false);
    static INSTALLED: OnceLock<()> = OnceLock::new();

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        // POSIX signal(2); libc is always linked on unix targets.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // Only async-signal-safe operations: an atomic store, and
        // restoring the default disposition so a second Ctrl-C terminates
        // the process even if the graceful path is stuck.
        FLAG.store(true, Ordering::Relaxed);
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    INSTALLED.get_or_init(|| unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    });
    &FLAG
}

#[cfg(not(unix))]
fn sigint_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    &FLAG
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled(), "idempotent");
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn ctrl_c_tokens_observe_the_shared_signal_flag() {
        let a = CancelToken::install_ctrl_c();
        let b = CancelToken::install_ctrl_c();
        assert!(!a.is_cancelled());
        // Simulate what the handler does.
        sigint_flag().store(true, Ordering::Relaxed);
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
        sigint_flag().store(false, Ordering::Relaxed);
        assert!(!a.is_cancelled(), "programmatic flag stays independent");
    }
}
