//! Crash-safe sharded index store (`TINDIS` manifest + `TINDSH` shards).
//!
//! The monolithic index file of [`crate::persist`] is all-or-nothing: one
//! torn write or flipped bit loses the whole artifact. This module stores
//! the same index as a **directory** of independently checksummed shards —
//! each shard a contiguous range of the parallel builder's 64-column
//! blocks — bound together by a manifest that carries the dataset
//! fingerprint, the build configuration, per-shard digests, and a
//! generation number.
//!
//! Durability discipline (the `.tcp` checkpoint rules applied to the index
//! itself):
//!
//! * every file is published via temp-file → fsync → atomic rename, so a
//!   killed writer can never leave a half-written shard under its final
//!   name;
//! * the manifest rename is the *single commit point* of a pack: until it
//!   lands, the previous generation is untouched and fully servable;
//! * opening a store sweeps orphan `*.tmp` files and shards of stale
//!   generations, so a crashed pack leaves no debris behind.
//!
//! On the read side the store degrades instead of dying: a missing or
//! corrupt shard is **quarantined** (typed [`StoreError::ShardCorrupt`]
//! with the expected/actual CRC), its attribute range is recorded in a
//! [`crate::index::ShardMask`] on the returned [`TindIndex`], and every
//! other shard keeps serving. [`repair_store`] rebuilds quarantined shards
//! from the dataset and proves byte-identity against the manifest digest
//! before publishing them.
//!
//! With zero quarantined shards the loaded index is byte-identical
//! (`persist::encode_index`) to the index that was packed, at any shard
//! count — the differential contract pinned by `tests/store_roundtrip.rs`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tind_bloom::{BloomColumnStrip, BloomMatrix, BloomMatrixBuilder};
use tind_model::binio::{check_magic, dataset_fingerprint, get_varint, put_varint, BinIoError};
use tind_model::checksum::{self, crc32};
use tind_model::{AttrId, Dataset, Interval, ValueSet};

use crate::fault::OpBudget;
use crate::index::{MaskedShard, ShardMask, TimeSlice, TindIndex};
use crate::params::TindParams;
use crate::persist::{
    corrupt, get_config, get_interval, get_value_set, put_config, put_interval, put_value_set,
};
use crate::required::required_values;

/// Magic bytes of the store manifest, including a format version.
pub const MANIFEST_MAGIC: &[u8; 8] = b"TINDIS\x00\x01";

/// Magic bytes of one store shard, including a format version.
pub const SHARD_MAGIC: &[u8; 8] = b"TINDSH\x00\x01";

/// File name of the manifest inside a store directory.
pub const MANIFEST_NAME: &str = "index.manifest";

/// Errors arising from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (including a missing shard file).
    Io(std::io::Error),
    /// A store file does not conform to its format or fails its own
    /// checksum trailer.
    Bin(BinIoError),
    /// A shard's bytes do not hash to the digest the manifest committed —
    /// bit rot, a torn write, or a file swapped in from another store.
    ShardCorrupt {
        /// Shard id within the store generation.
        shard: usize,
        /// CRC-32 the manifest recorded at pack time.
        expected: u32,
        /// CRC-32 the shard file actually hashes to.
        actual: u32,
    },
    /// The store and the caller disagree on identity: wrong dataset
    /// fingerprint, wrong attribute count, inconsistent shard geometry, or
    /// an operation that is not meaningful in the current state.
    Mismatch(String),
    /// Injected kill: the operation stopped after the configured number of
    /// write/fsync/rename steps, leaving the directory exactly as a
    /// SIGKILL at that boundary would.
    Killed {
        /// Steps performed before the kill.
        ops: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Bin(e) => write!(f, "{e}"),
            StoreError::ShardCorrupt { shard, expected, actual } => write!(
                f,
                "shard {shard} corrupt: manifest digest {expected:#010x} but file hashes to \
                 {actual:#010x}"
            ),
            StoreError::Mismatch(msg) => write!(f, "store mismatch: {msg}"),
            StoreError::Killed { ops } => {
                write!(f, "injected kill after {ops} store write operations")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Bin(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<BinIoError> for StoreError {
    fn from(e: BinIoError) -> Self {
        StoreError::Bin(e)
    }
}

fn mismatch(msg: impl Into<String>) -> StoreError {
    StoreError::Mismatch(msg.into())
}

/// One quarantined (or otherwise unloadable) shard, with the attribute
/// range its loss masks and the typed error that condemned it.
#[derive(Debug)]
pub struct ShardFault {
    /// Shard id within the store generation.
    pub shard: usize,
    /// First attribute the shard covered.
    pub attr_start: u32,
    /// One past the last attribute the shard covered.
    pub attr_end: u32,
    /// Why the shard was rejected.
    pub error: StoreError,
}

impl std::fmt::Display for ShardFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} (attributes {}..{}): {}",
            self.shard, self.attr_start, self.attr_end, self.error
        )
    }
}

/// Options for [`pack_store`].
#[derive(Debug, Clone, Default)]
pub struct PackOptions {
    /// Desired shard count; clamped to `[1, column blocks]`. `0` picks
    /// `min(8, blocks)`.
    pub shards: usize,
    /// Fault injection: stop (with [`StoreError::Killed`]) after this many
    /// write/fsync/rename steps, leaving the directory as a SIGKILL at
    /// that boundary would. `None` disables.
    pub kill_after_ops: Option<u64>,
}

/// Options for [`repair_store`].
#[derive(Debug, Clone, Default)]
pub struct RepairOptions {
    /// Fault injection, as in [`PackOptions::kill_after_ops`].
    pub kill_after_ops: Option<u64>,
}

/// Outcome of a successful [`pack_store`].
#[derive(Debug)]
pub struct PackReport {
    /// Generation number the pack committed.
    pub generation: u64,
    /// Number of shards written.
    pub shards: usize,
    /// Total bytes across shards and manifest.
    pub bytes_written: u64,
    /// Orphan temp files swept after commit.
    pub swept_temps: usize,
    /// Stale-generation shard files swept after commit.
    pub swept_stale: usize,
}

/// Outcome of a successful [`open_store`] — including a degraded one.
#[derive(Debug)]
pub struct LoadReport {
    /// Generation that was opened.
    pub generation: u64,
    /// Shards the manifest committed.
    pub shards_total: usize,
    /// Shards that failed to load and were quarantined (empty for a clean
    /// load).
    pub quarantined: Vec<ShardFault>,
    /// Orphan temp files swept during recovery.
    pub swept_temps: usize,
    /// Stale-generation shard files swept during recovery.
    pub swept_stale: usize,
}

impl LoadReport {
    /// Whether every shard loaded cleanly.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Outcome of [`verify_store`].
#[derive(Debug)]
pub struct VerifyReport {
    /// Generation the manifest commits.
    pub generation: u64,
    /// Dataset fingerprint the store was packed against.
    pub fingerprint: u64,
    /// Shards the manifest commits.
    pub shards_total: usize,
    /// Shards that fail verification.
    pub faults: Vec<ShardFault>,
}

/// Outcome of a successful [`repair_store`].
#[derive(Debug)]
pub struct RepairReport {
    /// Generation that was repaired (repair never changes it).
    pub generation: u64,
    /// Ids of the shards that were rebuilt and republished.
    pub rebuilt: Vec<usize>,
    /// Shards that were already intact.
    pub intact: usize,
}

/// Decoded manifest, internal to the module.
struct Manifest {
    generation: u64,
    fingerprint: u64,
    config: crate::index::IndexConfig,
    num_attrs: usize,
    /// Per slice: `(interval, expanded)` — expansion is persisted so
    /// repair never re-runs the seeded slice selection.
    slices: Vec<(Interval, Interval)>,
    has_m_r: bool,
    shards: Vec<ShardEntry>,
}

struct ShardEntry {
    id: usize,
    block_start: usize,
    block_count: usize,
    byte_len: u64,
    digest: u32,
}

impl ShardEntry {
    fn attr_range(&self, num_attrs: usize) -> (u32, u32) {
        let start = (self.block_start * 64).min(num_attrs) as u32;
        let end = ((self.block_start + self.block_count) * 64).min(num_attrs) as u32;
        (start, end)
    }
}

impl Manifest {
    fn num_targets(&self) -> usize {
        1 + self.slices.len() + usize::from(self.has_m_r)
    }

    fn blocks(&self) -> usize {
        self.num_attrs.div_ceil(64)
    }
}

fn shard_name(generation: u64, id: usize) -> String {
    format!("g{generation}-s{id}.shard")
}

/// Parses `g{gen}-s{id}.shard`, returning the generation.
fn parse_shard_gen(name: &str) -> Option<u64> {
    let rest = name.strip_prefix('g')?;
    let dash = rest.find('-')?;
    let gen: u64 = rest[..dash].parse().ok()?;
    let id = rest[dash + 1..].strip_prefix('s')?.strip_suffix(".shard")?;
    let _: u64 = id.parse().ok()?;
    Some(gen)
}

/// Counted write/fsync/rename steps for kill injection; the counting
/// lives in [`crate::fault::OpBudget`] so other crash-safe writers (the
/// delta-update checkpoint path) share the same sweep semantics. This
/// wrapper only translates the kill into a [`StoreError::Killed`].
fn step(budget: &mut OpBudget) -> Result<(), StoreError> {
    budget.step().map_err(|ops| StoreError::Killed { ops })
}

/// Publishes `bytes` at `final_path` via temp-file → fsync → atomic
/// rename; each primitive is one killable step.
fn write_atomic(
    final_path: &Path,
    bytes: &[u8],
    budget: &mut OpBudget,
) -> Result<(), StoreError> {
    use std::io::Write;
    let mut tmp = final_path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    step(budget)?;
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    step(budget)?;
    file.sync_all()?;
    drop(file);
    step(budget)?;
    std::fs::rename(&tmp, final_path)?;
    Ok(())
}

/// Removes orphan `*.tmp` files and shards of generations other than
/// `live_gen`; returns `(temps, stale)` counts.
fn sweep(dir: &Path, live_gen: u64) -> Result<(usize, usize), StoreError> {
    let (mut temps, mut stale) = (0, 0);
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            std::fs::remove_file(entry.path())?;
            temps += 1;
        } else if let Some(gen) = parse_shard_gen(&name) {
            if gen != live_gen {
                std::fs::remove_file(entry.path())?;
                stale += 1;
            }
        }
    }
    Ok((temps, stale))
}

fn encode_manifest(m: &Manifest) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 12);
    buf.put_slice(MANIFEST_MAGIC);
    put_varint(&mut buf, m.generation);
    buf.put_u64_le(m.fingerprint);
    put_config(&mut buf, &m.config);
    put_varint(&mut buf, m.num_attrs as u64);
    put_varint(&mut buf, m.slices.len() as u64);
    for &(interval, expanded) in &m.slices {
        put_interval(&mut buf, interval);
        put_interval(&mut buf, expanded);
    }
    buf.put_u8(u8::from(m.has_m_r));
    put_varint(&mut buf, m.shards.len() as u64);
    for s in &m.shards {
        put_varint(&mut buf, s.id as u64);
        put_varint(&mut buf, s.block_start as u64);
        put_varint(&mut buf, s.block_count as u64);
        put_varint(&mut buf, s.byte_len);
        buf.put_u32_le(s.digest);
    }
    checksum::append_trailer(&mut buf);
    buf.freeze()
}

fn decode_manifest(bytes: Bytes) -> Result<Manifest, StoreError> {
    check_magic(&bytes, MANIFEST_MAGIC, "store manifest")?;
    let mut buf = checksum::verify_and_strip(bytes)?;
    buf.advance(MANIFEST_MAGIC.len());
    let generation = get_varint(&mut buf)?;
    if buf.remaining() < 8 {
        return Err(corrupt("truncated manifest fingerprint").into());
    }
    let fingerprint = buf.get_u64_le();
    let config = get_config(&mut buf)?;
    let num_attrs = get_varint(&mut buf)? as usize;
    if num_attrs == 0 {
        return Err(corrupt("manifest over zero attributes").into());
    }
    let num_slices = get_varint(&mut buf)? as usize;
    let mut slices = Vec::with_capacity(num_slices);
    for _ in 0..num_slices {
        let interval = get_interval(&mut buf)?;
        let expanded = get_interval(&mut buf)?;
        slices.push((interval, expanded));
    }
    if !buf.has_remaining() {
        return Err(corrupt("truncated m_r flag").into());
    }
    let has_m_r = match buf.get_u8() {
        0 => false,
        1 => true,
        other => return Err(corrupt(format!("bad m_r flag {other}")).into()),
    };
    let shard_count = get_varint(&mut buf)? as usize;
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let id = get_varint(&mut buf)? as usize;
        let block_start = get_varint(&mut buf)? as usize;
        let block_count = get_varint(&mut buf)? as usize;
        let byte_len = get_varint(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(corrupt("truncated shard digest").into());
        }
        let digest = buf.get_u32_le();
        shards.push(ShardEntry { id, block_start, block_count, byte_len, digest });
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after manifest").into());
    }
    let manifest =
        Manifest { generation, fingerprint, config, num_attrs, slices, has_m_r, shards };
    // Shards must partition the column blocks: ids 0..n in order, each
    // range starting where the previous ended, covering every block.
    let mut next_block = 0usize;
    for (i, s) in manifest.shards.iter().enumerate() {
        if s.id != i || s.block_start != next_block || s.block_count == 0 {
            return Err(mismatch(format!(
                "shard table is not a partition of the column blocks at shard {i}"
            )));
        }
        next_block += s.block_count;
    }
    if next_block != manifest.blocks() {
        return Err(mismatch(format!(
            "shard table covers {next_block} blocks but the index has {}",
            manifest.blocks()
        )));
    }
    Ok(manifest)
}

fn read_manifest(dir: &Path) -> Result<Manifest, StoreError> {
    let raw = std::fs::read(dir.join(MANIFEST_NAME))?;
    decode_manifest(Bytes::from(raw))
}

/// Encodes one shard's payload. `strip_words` is called once per
/// `(target, block)` in ascending target-major order and must yield the
/// strip's `m` row words; `universe` once per attribute in the shard's
/// range. Shared by pack (strips extracted from built matrices) and repair
/// (strips re-rendered from the dataset) so the two paths are byte-equal
/// by construction.
fn encode_shard_with<FS, FU>(
    manifest: &Manifest,
    entry_id: usize,
    block_start: usize,
    block_count: usize,
    mut strip_words: FS,
    mut universe: FU,
) -> Bytes
where
    FS: FnMut(usize, usize) -> Vec<u64>,
    FU: FnMut(usize, &mut BytesMut),
{
    let m = manifest.config.m as usize;
    let estimated =
        manifest.num_targets() * block_count * m * 8 + block_count * 64 * 16 + (1 << 10);
    let mut buf = BytesMut::with_capacity(estimated);
    buf.put_slice(SHARD_MAGIC);
    put_varint(&mut buf, manifest.generation);
    put_varint(&mut buf, entry_id as u64);
    put_varint(&mut buf, block_start as u64);
    put_varint(&mut buf, block_count as u64);
    buf.put_u64_le(manifest.fingerprint);
    for target in 0..manifest.num_targets() {
        for block in block_start..block_start + block_count {
            let words = strip_words(target, block);
            debug_assert_eq!(words.len(), m, "one lane word per matrix row");
            for &w in &words {
                buf.put_u64_le(w);
            }
        }
    }
    let attr_lo = block_start * 64;
    let attr_hi = ((block_start + block_count) * 64).min(manifest.num_attrs);
    for attr in attr_lo..attr_hi {
        universe(attr, &mut buf);
    }
    checksum::append_trailer(&mut buf);
    buf.freeze()
}

/// Content digest of an encoded shard: CRC-32 over the payload *excluding*
/// its own integrity trailer. The trailer must stay outside the hash — the
/// CRC of any message with its own CRC appended is the fixed residue
/// `0x2144df1c`, so hashing the whole file would give every valid shard the
/// same "digest" and bind nothing beyond what the trailer already checks.
fn shard_digest(payload: &[u8]) -> u32 {
    crc32(&payload[..payload.len().saturating_sub(checksum::TRAILER_LEN)])
}

/// Decoded shard contents: `strips[target][i]` holds the row words of
/// block `block_start + i`, plus the exact universes of the shard's
/// attribute range.
struct ShardPayload {
    strips: Vec<Vec<Vec<u64>>>,
    universes: Vec<ValueSet>,
}

/// Reads and fully validates one shard file against its manifest entry.
fn load_shard(dir: &Path, manifest: &Manifest, entry: &ShardEntry) -> Result<ShardPayload, StoreError> {
    let path = dir.join(shard_name(manifest.generation, entry.id));
    let raw = std::fs::read(&path)?;
    if raw.len() as u64 != entry.byte_len {
        return Err(mismatch(format!(
            "shard {} is {} bytes but the manifest committed {}",
            entry.id,
            raw.len(),
            entry.byte_len
        )));
    }
    // The manifest digest is a true content hash (payload minus trailer):
    // it catches a structurally-valid shard copied in from another store
    // as well as plain corruption, independently of the file's own trailer.
    let actual = shard_digest(&raw);
    if actual != entry.digest {
        return Err(StoreError::ShardCorrupt { shard: entry.id, expected: entry.digest, actual });
    }
    check_magic(&raw, SHARD_MAGIC, "store shard")?;
    let mut buf = checksum::verify_and_strip(Bytes::from(raw)).map_err(|e| match e {
        BinIoError::Checksum { stored, computed, .. } => {
            StoreError::ShardCorrupt { shard: entry.id, expected: stored, actual: computed }
        }
        other => StoreError::Bin(other),
    })?;
    buf.advance(SHARD_MAGIC.len());
    let generation = get_varint(&mut buf)?;
    let id = get_varint(&mut buf)? as usize;
    let block_start = get_varint(&mut buf)? as usize;
    let block_count = get_varint(&mut buf)? as usize;
    if buf.remaining() < 8 {
        return Err(corrupt("truncated shard fingerprint").into());
    }
    let fingerprint = buf.get_u64_le();
    if generation != manifest.generation
        || id != entry.id
        || block_start != entry.block_start
        || block_count != entry.block_count
        || fingerprint != manifest.fingerprint
    {
        return Err(mismatch(format!(
            "shard {} header disagrees with the manifest entry",
            entry.id
        )));
    }
    let m = manifest.config.m as usize;
    let mut strips = Vec::with_capacity(manifest.num_targets());
    for _ in 0..manifest.num_targets() {
        let mut blocks = Vec::with_capacity(block_count);
        for _ in 0..block_count {
            if buf.remaining() < m * 8 {
                return Err(corrupt("truncated shard strip words").into());
            }
            let mut words = Vec::with_capacity(m);
            for _ in 0..m {
                words.push(buf.get_u64_le());
            }
            blocks.push(words);
        }
        strips.push(blocks);
    }
    let (attr_lo, attr_hi) = entry.attr_range(manifest.num_attrs);
    let mut universes = Vec::with_capacity((attr_hi - attr_lo) as usize);
    for _ in attr_lo..attr_hi {
        universes.push(get_value_set(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes after shard").into());
    }
    Ok(ShardPayload { strips, universes })
}

/// Splits `blocks` column blocks into `shards` near-equal contiguous
/// ranges.
fn partition_blocks(blocks: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, blocks);
    let base = blocks / shards;
    let extra = blocks % shards;
    let mut parts = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let count = base + usize::from(i < extra);
        parts.push((start, count));
        start += count;
    }
    parts
}

/// Highest generation any artifact in `dir` claims — used to pick the next
/// generation even when the manifest itself is unreadable.
fn scan_max_generation(dir: &Path) -> u64 {
    let from_manifest = read_manifest(dir).map(|m| m.generation).unwrap_or(0);
    let from_shards = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| parse_shard_gen(&e.file_name().to_string_lossy()))
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0);
    from_manifest.max(from_shards)
}

/// Packs `index` into the store directory `dir` as a new generation.
///
/// Every shard and the manifest are published atomically; the manifest
/// rename is the commit point. A crash (or injected kill) at any step
/// leaves either the previous generation fully intact or the new one
/// fully committed — never a mix — and [`open_store`] sweeps whatever
/// temps or stale shards the crash stranded.
pub fn pack_store(
    index: &TindIndex,
    dir: &Path,
    options: &PackOptions,
) -> Result<PackReport, StoreError> {
    let _span = tind_obs::span("core.store.pack");
    if index.shard_mask().is_some() {
        return Err(mismatch(
            "refusing to pack a degraded index (quarantined shards would be persisted as zeros); \
             repair its store first",
        ));
    }
    let num_attrs = index.dataset().len();
    if num_attrs == 0 {
        return Err(mismatch("cannot pack an index over an empty dataset"));
    }
    std::fs::create_dir_all(dir)?;
    let generation = scan_max_generation(dir) + 1;
    let blocks = num_attrs.div_ceil(64);
    let shards = if options.shards == 0 { blocks.min(8) } else { options.shards };
    let parts = partition_blocks(blocks, shards);
    let fingerprint = dataset_fingerprint(index.dataset());

    let mut manifest = Manifest {
        generation,
        fingerprint,
        config: index.config().clone(),
        num_attrs,
        slices: index.time_slices().iter().map(|s| (s.interval, s.expanded)).collect(),
        has_m_r: index.m_r().is_some(),
        shards: Vec::with_capacity(parts.len()),
    };

    let matrices: Vec<&BloomMatrix> = std::iter::once(index.m_t())
        .chain(index.time_slices().iter().map(|s| &s.matrix))
        .chain(index.m_r())
        .collect();

    let mut budget = OpBudget::new(options.kill_after_ops);
    let mut bytes_written = 0u64;
    for (id, &(block_start, block_count)) in parts.iter().enumerate() {
        let payload = encode_shard_with(
            &manifest,
            id,
            block_start,
            block_count,
            |target, block| matrices[target].extract_strip(block).words().to_vec(),
            |attr, buf| put_value_set(buf, index.universe(attr as AttrId)),
        );
        let digest = shard_digest(&payload);
        write_atomic(&dir.join(shard_name(generation, id)), &payload, &mut budget)?;
        bytes_written += payload.len() as u64;
        manifest.shards.push(ShardEntry {
            id,
            block_start,
            block_count,
            byte_len: payload.len() as u64,
            digest,
        });
    }

    let manifest_bytes = encode_manifest(&manifest);
    bytes_written += manifest_bytes.len() as u64;
    write_atomic(&dir.join(MANIFEST_NAME), &manifest_bytes, &mut budget)?;
    // Make the renames themselves durable before declaring success.
    step(&mut budget)?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    let (swept_temps, swept_stale) = sweep(dir, generation)?;
    Ok(PackReport {
        generation,
        shards: parts.len(),
        bytes_written,
        swept_temps,
        swept_stale,
    })
}

/// Opens the store at `dir`, binding it to `dataset`.
///
/// Recovery runs first: orphan temps and stale-generation shards are
/// swept. Each manifest-committed shard is then loaded and verified
/// independently; a shard that is missing, truncated, bit-rotted, or
/// inconsistent with the manifest is **quarantined** — its attribute range
/// is masked on the returned index (see [`crate::index::ShardMask`]) and
/// reported in the [`LoadReport`] — while every other shard loads
/// normally. With zero quarantined shards the result is byte-identical to
/// the packed index.
pub fn open_store(
    dir: &Path,
    dataset: Arc<Dataset>,
) -> Result<(TindIndex, LoadReport), StoreError> {
    let _span = tind_obs::span("core.store.open");
    let manifest = read_manifest(dir)?;
    if manifest.fingerprint != dataset_fingerprint(&dataset) {
        return Err(mismatch(
            "store fingerprint does not match the dataset (stale or mismatched files)",
        ));
    }
    if manifest.num_attrs != dataset.len() {
        return Err(mismatch("store attribute count does not match the dataset"));
    }
    let (swept_temps, swept_stale) = sweep(dir, manifest.generation)?;

    let num_attrs = manifest.num_attrs;
    let (m, k_hashes) = (manifest.config.m, manifest.config.k_hashes);
    let mut mt = BloomMatrixBuilder::new(m, num_attrs, k_hashes);
    let mut slice_builders: Vec<BloomMatrixBuilder> = (0..manifest.slices.len())
        .map(|_| BloomMatrixBuilder::new(m, num_attrs, k_hashes))
        .collect();
    let mut mr = manifest.has_m_r.then(|| BloomMatrixBuilder::new(m, num_attrs, k_hashes));
    let mut universes = vec![ValueSet::new(); num_attrs];
    let mut quarantined = Vec::new();

    for entry in &manifest.shards {
        let started = Instant::now();
        match load_shard(dir, &manifest, entry) {
            Ok(payload) => {
                for (target, blocks) in payload.strips.into_iter().enumerate() {
                    let builder = if target == 0 {
                        &mut mt
                    } else if target <= slice_builders.len() {
                        &mut slice_builders[target - 1]
                    } else {
                        mr.as_mut().expect("m_r strip implies builder")
                    };
                    for (i, words) in blocks.into_iter().enumerate() {
                        let strip = BloomColumnStrip::from_words(m, k_hashes, words);
                        builder.merge_strip(entry.block_start + i, &strip);
                    }
                }
                let (attr_lo, _) = entry.attr_range(num_attrs);
                for (offset, u) in payload.universes.into_iter().enumerate() {
                    universes[attr_lo as usize + offset] = u;
                }
            }
            Err(error) => {
                let (attr_start, attr_end) = entry.attr_range(num_attrs);
                quarantined.push(ShardFault { shard: entry.id, attr_start, attr_end, error });
            }
        }
        tind_obs::histogram("store.shard.load_ns")
            .record(started.elapsed().as_nanos() as u64);
    }

    tind_obs::gauge("store.shards.total").set(manifest.shards.len() as f64);
    tind_obs::gauge("store.shards.quarantined").set(quarantined.len() as f64);

    let masked = (!quarantined.is_empty()).then(|| {
        Arc::new(ShardMask::new(
            num_attrs,
            manifest.shards.len(),
            quarantined
                .iter()
                .map(|f| MaskedShard {
                    shard: f.shard,
                    attr_start: f.attr_start,
                    attr_end: f.attr_end,
                })
                .collect(),
        ))
    });

    let time_slices = manifest
        .slices
        .iter()
        .zip(slice_builders)
        .map(|(&(interval, expanded), b)| TimeSlice { interval, expanded, matrix: b.build() })
        .collect();
    let index = TindIndex {
        dataset,
        config: manifest.config.clone(),
        m_t: mt.build(),
        time_slices,
        universes,
        m_r: mr.map(BloomMatrixBuilder::build),
        masked,
    };
    let report = LoadReport {
        generation: manifest.generation,
        shards_total: manifest.shards.len(),
        quarantined,
        swept_temps,
        swept_stale,
    };
    Ok((index, report))
}

/// Verifies the store at `dir` without binding it to a dataset: manifest
/// container integrity, then every shard against its committed digest and
/// structure. Read-only — performs no recovery sweep.
pub fn verify_store(dir: &Path) -> Result<VerifyReport, StoreError> {
    let _span = tind_obs::span("core.store.verify");
    let manifest = read_manifest(dir)?;
    let mut faults = Vec::new();
    for entry in &manifest.shards {
        if let Err(error) = load_shard(dir, &manifest, entry) {
            let (attr_start, attr_end) = entry.attr_range(manifest.num_attrs);
            faults.push(ShardFault { shard: entry.id, attr_start, attr_end, error });
        }
    }
    Ok(VerifyReport {
        generation: manifest.generation,
        fingerprint: manifest.fingerprint,
        shards_total: manifest.shards.len(),
        faults,
    })
}

/// Rebuilds every quarantined shard of the store at `dir` from `dataset`
/// and republishes it atomically.
///
/// A rebuilt shard must hash to the digest the manifest committed — the
/// per-lane render is deterministic, so anything else means the dataset or
/// build config drifted and the repair is refused rather than silently
/// rewriting history. The manifest (and generation) never changes: a crash
/// mid-repair leaves the store exactly as recoverable as before.
pub fn repair_store(
    dir: &Path,
    dataset: &Dataset,
    options: &RepairOptions,
) -> Result<RepairReport, StoreError> {
    let _span = tind_obs::span("core.store.repair");
    let manifest = read_manifest(dir)?;
    if manifest.fingerprint != dataset_fingerprint(dataset) {
        return Err(mismatch(
            "store fingerprint does not match the dataset (stale or mismatched files)",
        ));
    }
    if manifest.num_attrs != dataset.len() {
        return Err(mismatch("store attribute count does not match the dataset"));
    }
    sweep(dir, manifest.generation)?;
    let timeline = dataset.timeline();
    let sizing = manifest.has_m_r.then(|| {
        TindParams::weighted(
            manifest.config.slices.sizing_eps,
            0,
            manifest.config.slices.sizing_weights.clone(),
        )
    });
    let (m, k_hashes) = (manifest.config.m, manifest.config.k_hashes);
    let num_slices = manifest.slices.len();
    let mut budget = OpBudget::new(options.kill_after_ops);
    let mut rebuilt = Vec::new();
    let mut intact = 0;
    let mut strip = BloomColumnStrip::new(m, k_hashes);
    for entry in &manifest.shards {
        if load_shard(dir, &manifest, entry).is_ok() {
            intact += 1;
            continue;
        }
        // Re-render the shard with the exact per-lane fill of the parallel
        // builder: M_T from value universes, each slice from its persisted
        // expanded window, M_R from required values under the manifest's
        // sizing parameters.
        let payload = encode_shard_with(
            &manifest,
            entry.id,
            entry.block_start,
            entry.block_count,
            |target, block| {
                strip.clear();
                let lo = block * 64;
                let hi = (lo + 64).min(manifest.num_attrs);
                for id in lo..hi {
                    let hist = dataset.attribute(id as AttrId);
                    let lane = id - lo;
                    if target == 0 {
                        strip.insert_lane(lane, &hist.value_universe());
                    } else if target <= num_slices {
                        let values = hist.values_in(manifest.slices[target - 1].1);
                        if !values.is_empty() {
                            strip.insert_lane(lane, &values);
                        }
                    } else {
                        let req =
                            required_values(hist, sizing.as_ref().expect("m_r sizing"), timeline);
                        if !req.is_empty() {
                            strip.insert_lane(lane, &req);
                        }
                    }
                }
                strip.words().to_vec()
            },
            |attr, buf| put_value_set(buf, &dataset.attribute(attr as AttrId).value_universe()),
        );
        let digest = shard_digest(&payload);
        if digest != entry.digest || payload.len() as u64 != entry.byte_len {
            return Err(mismatch(format!(
                "rebuilt shard {} hashes to {digest:#010x} but the manifest committed \
                 {:#010x} — dataset or config drift; re-pack instead of repairing",
                entry.id, entry.digest
            )));
        }
        write_atomic(&dir.join(shard_name(manifest.generation, entry.id)), &payload, &mut budget)?;
        rebuilt.push(entry.id);
    }
    step(&mut budget)?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(RepairReport { generation: manifest.generation, rebuilt, intact })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use tind_model::{DatasetBuilder, Timeline};

    fn dataset() -> Arc<Dataset> {
        let mut b = DatasetBuilder::new(Timeline::new(80));
        b.add_attribute("q", &[(0, vec!["a", "b"]), (40, vec!["a", "b", "c"])], 79);
        b.add_attribute("big", &[(0, vec!["a", "b", "c", "d"])], 79);
        b.add_attribute("other", &[(5, vec!["x", "y"])], 60);
        Arc::new(b.build())
    }

    fn store_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tind-core-store-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn pack_open_roundtrip_is_byte_identical() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("roundtrip");
        let report = pack_store(&index, &dir, &PackOptions::default()).expect("pack");
        assert_eq!(report.generation, 1);
        let (loaded, load) = open_store(&dir, d.clone()).expect("open");
        assert!(load.is_clean());
        assert!(loaded.shard_mask().is_none());
        assert_eq!(
            crate::persist::encode_index(&loaded),
            crate::persist::encode_index(&index),
            "store round-trip must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_digests_are_content_hashes_not_the_crc_residue() {
        // CRC-32 of any message with its own CRC appended is the constant
        // residue 0x2144df1c; if digests were taken over the whole file
        // every valid shard would share it and a swapped-in shard from
        // another store would pass. Pin that digests vary with content and
        // that a foreign shard of identical geometry is rejected by the
        // digest alone.
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("digest-content");
        pack_store(&index, &dir, &PackOptions::default()).expect("pack");
        let manifest = read_manifest(&dir).expect("manifest");
        for entry in &manifest.shards {
            assert_ne!(entry.digest, 0x2144df1c, "digest must not be the CRC residue");
        }

        // Doctor the shard: flip a Bloom-strip byte, then *re-sign* the
        // file's own trailer. The result is the same length and fully
        // self-consistent — only a real content digest can reject it.
        let shard_path = dir.join(shard_name(1, 0));
        let mut raw = std::fs::read(&shard_path).expect("read shard");
        let body = raw.len() - checksum::TRAILER_LEN;
        raw[body / 2] ^= 0xff;
        let resigned = crc32(&raw[..body]).to_le_bytes();
        raw[body..].copy_from_slice(&resigned);
        std::fs::write(&shard_path, &raw).expect("write doctored shard");
        let report = verify_store(&dir).expect("verify runs");
        assert_eq!(report.faults.len(), 1, "doctored shard must fail verification");
        assert!(
            matches!(report.faults[0].error, StoreError::ShardCorrupt { .. }),
            "digest mismatch, not a structural error: {}",
            report.faults[0].error
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shard_is_quarantined_and_masked() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("missing-shard");
        // 3 attrs → 1 block → 1 shard; delete it.
        pack_store(&index, &dir, &PackOptions::default()).expect("pack");
        std::fs::remove_file(dir.join(shard_name(1, 0))).expect("remove shard");
        let (loaded, load) = open_store(&dir, d.clone()).expect("open degraded");
        assert_eq!(load.quarantined.len(), 1);
        assert_eq!(load.quarantined[0].shard, 0);
        let mask = loaded.shard_mask().expect("mask present");
        assert_eq!(mask.masked_attrs(), 3);
        assert_eq!(mask.live_fraction(), 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_reports_expected_and_actual_crc() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("corrupt-shard");
        pack_store(&index, &dir, &PackOptions::default()).expect("pack");
        let shard_path = dir.join(shard_name(1, 0));
        crate::fault::flip_file_byte(&shard_path, 40).expect("flip");
        let (_, load) = open_store(&dir, d.clone()).expect("open degraded");
        assert_eq!(load.quarantined.len(), 1);
        match &load.quarantined[0].error {
            StoreError::ShardCorrupt { shard, expected, actual } => {
                assert_eq!(*shard, 0);
                assert_ne!(expected, actual);
            }
            other => panic!("expected ShardCorrupt, got {other}"),
        }
        // Repair restores byte-identity.
        let repair = repair_store(&dir, &d, &RepairOptions::default()).expect("repair");
        assert_eq!(repair.rebuilt, vec![0]);
        let (loaded, load) = open_store(&dir, d.clone()).expect("open clean");
        assert!(load.is_clean());
        assert_eq!(
            crate::persist::encode_index(&loaded),
            crate::persist::encode_index(&index)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_pack_bumps_generation_and_sweeps_stale() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("generations");
        pack_store(&index, &dir, &PackOptions::default()).expect("pack 1");
        let report = pack_store(&index, &dir, &PackOptions::default()).expect("pack 2");
        assert_eq!(report.generation, 2);
        assert!(report.swept_stale >= 1, "generation-1 shards swept");
        let (_, load) = open_store(&dir, d.clone()).expect("open");
        assert_eq!(load.generation, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_pack_leaves_previous_generation_intact() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("killed-pack");
        pack_store(&index, &dir, &PackOptions::default()).expect("pack 1");
        let err = pack_store(
            &index,
            &dir,
            &PackOptions { kill_after_ops: Some(1), ..PackOptions::default() },
        )
        .expect_err("killed");
        assert!(matches!(err, StoreError::Killed { .. }));
        // Generation 1 still opens cleanly; the stranded temp is swept.
        let (loaded, load) = open_store(&dir, d.clone()).expect("open");
        assert_eq!(load.generation, 1);
        assert!(load.is_clean());
        assert!(load.swept_temps >= 1, "orphan temp swept");
        assert_eq!(
            crate::persist::encode_index(&loaded),
            crate::persist::encode_index(&index)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_faults_without_sweeping() {
        let d = dataset();
        let index =
            TindIndex::build(d.clone(), IndexConfig { m: 128, ..IndexConfig::default() });
        let dir = store_dir("verify");
        pack_store(&index, &dir, &PackOptions::default()).expect("pack");
        let clean = verify_store(&dir).expect("verify");
        assert!(clean.faults.is_empty());
        assert_eq!(clean.generation, 1);
        crate::fault::flip_file_byte(&dir.join(shard_name(1, 0)), 12).expect("flip");
        let report = verify_store(&dir).expect("verify");
        assert_eq!(report.faults.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_name_parses_back() {
        assert_eq!(parse_shard_gen(&shard_name(12, 3)), Some(12));
        assert_eq!(parse_shard_gen("index.manifest"), None);
        assert_eq!(parse_shard_gen("g12-s3.shard.tmp"), None);
        assert_eq!(parse_shard_gen("gX-s3.shard"), None);
    }

    #[test]
    fn partition_covers_all_blocks_contiguously() {
        for blocks in 1..40 {
            for shards in 1..10 {
                let parts = partition_blocks(blocks, shards);
                assert_eq!(parts.len(), shards.min(blocks));
                let mut next = 0;
                for &(start, count) in &parts {
                    assert_eq!(start, next);
                    assert!(count >= 1);
                    next += count;
                }
                assert_eq!(next, blocks);
            }
        }
    }
}
